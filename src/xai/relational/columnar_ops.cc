#include "xai/relational/columnar_ops.h"

#include <cstring>
#include <unordered_map>
#include <utility>

#include "xai/core/parallel.h"
#include "xai/core/telemetry.h"
#include "xai/relational/agg_kernels.h"
#include "xai/relational/compiled_expr.h"

namespace xai::rel {
namespace {

/// Appends column `c`'s rendered cell for `row` to `*key`, prefixed with
/// its length, so multi-column keys concatenate injectively (same merge
/// classes as the row path's vector<string> keys).
void AppendRenderedCell(const Column& col, int64_t row, std::string* cell,
                        std::string* key) {
  cell->clear();
  col.RenderTo(row, cell);
  const uint32_t len = static_cast<uint32_t>(cell->size());
  key->append(reinterpret_cast<const char*>(&len), sizeof(len));
  key->append(*cell);
}

/// True when every key column is a (possibly unfixed all-NULL) int64
/// column, for which raw (payload, validity) bytes induce exactly the
/// rendered-key merge classes: std::to_string is injective on int64 and
/// never renders "NULL".
bool AllInt64(const ColumnarRelation& rel, const std::vector<int>& cols) {
  for (int c : cols) {
    if (rel.column(c).kind() != Column::Kind::kInt64) return false;
  }
  return true;
}

/// First-appearance-ordered grouping of rows by rendered key, shared by
/// distinct projection and group-by.
struct KeyedGroups {
  std::vector<int32_t> group_of_row;
  std::vector<int32_t> first_row;   // Row whose values name the group.
  std::vector<int32_t> group_size;
  int num_groups() const { return static_cast<int>(first_row.size()); }
};

KeyedGroups BuildGroups(const ColumnarRelation& rel,
                        const std::vector<int>& cols) {
  const int64_t n = rel.num_rows();
  KeyedGroups g;
  g.group_of_row.resize(n);
  const bool raw = AllInt64(rel, cols);
  if (raw && cols.size() == 1) {
    // Single int64 key: hash the value directly. All NULL cells render
    // "NULL" and so form one group; valid cells group by value (NULL
    // payload slots hold 0 but are routed to the NULL group first, so
    // they never collide with a genuine 0).
    const Column& col = rel.column(cols[0]);
    std::unordered_map<int64_t, int32_t> index;
    index.reserve(256);
    int32_t null_group = -1;
    for (int64_t i = 0; i < n; ++i) {
      int32_t gi;
      if (!col.validity()[i]) {
        if (null_group < 0) {
          null_group = static_cast<int32_t>(g.first_row.size());
          g.first_row.push_back(static_cast<int32_t>(i));
          g.group_size.push_back(0);
        }
        gi = null_group;
      } else {
        auto [it, inserted] = index.try_emplace(
            col.ints()[i], static_cast<int32_t>(g.first_row.size()));
        if (inserted) {
          g.first_row.push_back(static_cast<int32_t>(i));
          g.group_size.push_back(0);
        }
        gi = it->second;
      }
      g.group_of_row[i] = gi;
      ++g.group_size[gi];
    }
    return g;
  }
  std::unordered_map<std::string, int32_t> index;
  std::string key, cell;
  for (int64_t i = 0; i < n; ++i) {
    key.clear();
    if (raw) {
      for (int c : cols) {
        const Column& col = rel.column(c);
        const int64_t v = col.ints()[i];
        const char valid = static_cast<char>(col.validity()[i]);
        key.append(reinterpret_cast<const char*>(&v), sizeof(v));
        key.push_back(valid);
      }
    } else {
      for (int c : cols) AppendRenderedCell(rel.column(c), i, &cell, &key);
    }
    auto [it, inserted] =
        index.try_emplace(key, static_cast<int32_t>(g.first_row.size()));
    if (inserted) {
      g.first_row.push_back(static_cast<int32_t>(i));
      g.group_size.push_back(0);
    }
    g.group_of_row[i] = it->second;
    ++g.group_size[it->second];
  }
  return g;
}

/// Per-group row annotations in row order, summed with PlusAll — the
/// provenance rule both distinct projection and group-by share.
std::vector<ProvExprPtr> GroupAnnotations(const ColumnarRelation& rel,
                                          const KeyedGroups& g) {
  const int64_t ng = g.num_groups();
  std::vector<std::vector<ProvExprPtr>> per_group(ng);
  for (int64_t gi = 0; gi < ng; ++gi)
    per_group[gi].reserve(g.group_size[gi]);
  for (int64_t i = 0; i < rel.num_rows(); ++i)
    per_group[g.group_of_row[i]].push_back(rel.annotation(i));
  // Each group's sum tree is independent of every other group's, so the
  // PlusAll reductions run in parallel: the trees built are identical at
  // any thread count (the bit-identity contract), and concurrent refcount
  // traffic on subtrees shared across groups is atomic.
  std::vector<ProvExprPtr> out(ng);
  ParallelFor(ng, /*grain=*/64, [&](int64_t begin, int64_t end, int64_t) {
    for (int64_t gi = begin; gi < end; ++gi)
      out[gi] = ProvExpr::PlusAll(std::move(per_group[gi]));
  });
  return out;
}

/// Value::operator== between two cells of (possibly different) columns.
bool CellsEqual(const Column& a, int64_t i, const Column& b, int64_t j) {
  const bool av = !a.IsNull(i), bv = !b.IsNull(j);
  if (!av || !bv) return av == bv;
  const bool as = a.kind() == Column::Kind::kString;
  const bool bs = b.kind() == Column::Kind::kString;
  if (as != bs) return false;
  if (as) return a.dict()[a.codes()[i]] == b.dict()[b.codes()[j]];
  return a.AsDoubleAt(i) == b.AsDoubleAt(j);
}

}  // namespace

xai::Result<ColumnarRelation> Select(const ColumnarRelation& input,
                                     const ExprPtr& predicate) {
  XAI_ASSIGN_OR_RETURN(CompiledPredicate compiled,
                       CompiledPredicate::Compile(predicate, input));
  const int64_t n = input.num_rows();
  XAI_COUNTER_ADD("relational/columnar_rows", n);
  const int64_t num_chunks = (n + kBatchRows - 1) / kBatchRows;
  std::vector<std::vector<int32_t>> per_chunk(num_chunks);
  // One batch per chunk (grain == kBatchRows); scratch is per worker
  // thread and fully overwritten each batch, so reuse is benign.
  ParallelFor(n, kBatchRows, [&](int64_t begin, int64_t end, int64_t chunk) {
    thread_local CompiledPredicate::Scratch scratch;
    compiled.SelectInto(input, begin, end, &scratch, &per_chunk[chunk]);
  });
  int64_t total = 0;
  for (const auto& v : per_chunk) total += static_cast<int64_t>(v.size());
  if (n > 0) {
    XAI_HISTOGRAM_RECORD("relational/select_selectivity_pct",
                         100.0 * static_cast<double>(total) /
                             static_cast<double>(n));
  }
  std::vector<int32_t> matches;
  matches.reserve(total);
  for (const auto& v : per_chunk)
    matches.insert(matches.end(), v.begin(), v.end());
  return input.GatherRows(matches, "select(" + input.name() + ")");
}

xai::Result<ColumnarRelation> Project(const ColumnarRelation& input,
                                      const std::vector<int>& columns,
                                      bool distinct) {
  std::vector<std::string> names;
  for (int c : columns) {
    if (c < 0 || c >= input.num_columns())
      return Status::OutOfRange("projection column out of range");
    names.push_back(input.column_names()[c]);
  }
  XAI_COUNTER_ADD("relational/columnar_rows", input.num_rows());
  ColumnarRelation out("project(" + input.name() + ")", std::move(names));
  if (!distinct) {
    for (size_t k = 0; k < columns.size(); ++k)
      out.SetColumn(static_cast<int>(k), input.column(columns[k]));
    out.SetAnnotations(input.annotations());
    return out;
  }
  const KeyedGroups g = BuildGroups(input, columns);
  for (size_t k = 0; k < columns.size(); ++k)
    out.SetColumn(static_cast<int>(k),
                  input.column(columns[k]).Gather(g.first_row));
  out.SetAnnotations(GroupAnnotations(input, g));
  return out;
}

xai::Result<ColumnarRelation> EquiJoin(const ColumnarRelation& a,
                                       const ColumnarRelation& b, int col_a,
                                       int col_b) {
  if (col_a < 0 || col_a >= a.num_columns() || col_b < 0 ||
      col_b >= b.num_columns())
    return Status::OutOfRange("join column out of range");
  std::vector<std::string> names = a.column_names();
  for (const std::string& c : b.column_names())
    names.push_back(b.name() + "." + c);
  XAI_COUNTER_ADD("relational/columnar_rows", a.num_rows() + b.num_rows());

  const Column& ka = a.column(col_a);
  const Column& kb = b.column(col_b);

  // Per-chunk (a-row, b-row) match lists; ascending-chunk concatenation
  // reproduces the row path's a-major, ascending-b output order.
  const int64_t na = a.num_rows();
  const int64_t num_chunks = (na + kBatchRows - 1) / kBatchRows;
  std::vector<std::vector<int32_t>> ai(num_chunks), bi(num_chunks);

  const bool fast = ka.kind() == Column::Kind::kInt64 &&
                    kb.kind() == Column::Kind::kInt64;
  if (fast) {
    // Both key columns are int64: probe by value directly. Raw equality
    // coincides with the row path's rendered-key-then-Value== protocol
    // (to_string is injective; NULL keys join NULL keys).
    std::unordered_map<int64_t, std::vector<int32_t>> index;
    std::vector<int32_t> null_rows;
    index.reserve(static_cast<size_t>(b.num_rows()));
    for (int64_t j = 0; j < b.num_rows(); ++j) {
      if (kb.IsNull(j)) {
        null_rows.push_back(static_cast<int32_t>(j));
      } else {
        index[kb.ints()[j]].push_back(static_cast<int32_t>(j));
      }
    }
    ParallelFor(na, kBatchRows, [&](int64_t begin, int64_t end,
                                    int64_t chunk) {
      for (int64_t i = begin; i < end; ++i) {
        const std::vector<int32_t>* matches = nullptr;
        if (ka.IsNull(i)) {
          matches = &null_rows;
        } else {
          auto it = index.find(ka.ints()[i]);
          if (it != index.end()) matches = &it->second;
        }
        if (!matches) continue;
        for (int32_t j : *matches) {
          ai[chunk].push_back(static_cast<int32_t>(i));
          bi[chunk].push_back(j);
        }
      }
    });
  } else {
    // General path: the row path's protocol verbatim — index b on rendered
    // keys, probe a's renderings, keep pairs whose values actually compare
    // equal (rendered collisions like INT 1000000 vs DOUBLE 1e+06 behave
    // identically to the row engine).
    std::unordered_map<std::string, std::vector<int32_t>> index;
    index.reserve(static_cast<size_t>(b.num_rows()));
    {
      std::string key;
      for (int64_t j = 0; j < b.num_rows(); ++j) {
        key.clear();
        kb.RenderTo(j, &key);
        index[key].push_back(static_cast<int32_t>(j));
      }
    }
    ParallelFor(na, kBatchRows, [&](int64_t begin, int64_t end,
                                    int64_t chunk) {
      std::string key;
      for (int64_t i = begin; i < end; ++i) {
        key.clear();
        ka.RenderTo(i, &key);
        auto it = index.find(key);
        if (it == index.end()) continue;
        for (int32_t j : it->second) {
          if (!CellsEqual(ka, i, kb, j)) continue;
          ai[chunk].push_back(static_cast<int32_t>(i));
          bi[chunk].push_back(j);
        }
      }
    });
  }

  int64_t total = 0;
  for (const auto& v : ai) total += static_cast<int64_t>(v.size());
  std::vector<int32_t> arows, brows;
  arows.reserve(total);
  brows.reserve(total);
  for (int64_t c = 0; c < num_chunks; ++c) {
    arows.insert(arows.end(), ai[c].begin(), ai[c].end());
    brows.insert(brows.end(), bi[c].begin(), bi[c].end());
  }

  ColumnarRelation out("join(" + a.name() + "," + b.name() + ")",
                       std::move(names));
  for (int c = 0; c < a.num_columns(); ++c)
    out.SetColumn(c, a.column(c).Gather(arows));
  for (int c = 0; c < b.num_columns(); ++c)
    out.SetColumn(a.num_columns() + c, b.column(c).Gather(brows));
  std::vector<ProvExprPtr> anns;
  anns.reserve(total);
  for (int64_t k = 0; k < total; ++k)
    anns.push_back(
        ProvExpr::Times(a.annotation(arows[k]), b.annotation(brows[k])));
  out.SetAnnotations(std::move(anns));
  return out;
}

xai::Result<ColumnarRelation> Union(const ColumnarRelation& a,
                                    const ColumnarRelation& b) {
  if (a.num_columns() != b.num_columns())
    return Status::InvalidArgument("union arity mismatch");
  XAI_COUNTER_ADD("relational/columnar_rows", a.num_rows() + b.num_rows());
  ColumnarRelation out("union(" + a.name() + "," + b.name() + ")",
                       a.column_names());
  for (int c = 0; c < a.num_columns(); ++c) {
    Column col = a.column(c);
    XAI_RETURN_NOT_OK(col.AppendColumn(b.column(c)));
    out.SetColumn(c, std::move(col));
  }
  std::vector<ProvExprPtr> anns = a.annotations();
  anns.insert(anns.end(), b.annotations().begin(), b.annotations().end());
  out.SetAnnotations(std::move(anns));
  return out;
}

xai::Result<ColumnarRelation> GroupByAggregate(
    const ColumnarRelation& input, const std::vector<int>& group_columns,
    AggFn fn, int agg_column, const std::string& agg_name) {
  if (fn != AggFn::kCount &&
      (agg_column < 0 || agg_column >= input.num_columns()))
    return Status::OutOfRange("aggregate column out of range");
  std::vector<std::string> names;
  for (int c : group_columns) {
    if (c < 0 || c >= input.num_columns())
      return Status::OutOfRange("group column out of range");
    names.push_back(input.column_names()[c]);
  }
  names.push_back(agg_name);
  const int64_t n = input.num_rows();
  XAI_COUNTER_ADD("relational/columnar_rows", n);

  const KeyedGroups g = BuildGroups(input, group_columns);
  const int ng = g.num_groups();

  // Finalized aggregate values, via the canonical kernels the row path
  // shares. COUNT needs only group sizes; the single-group numeric case
  // streams the column payload directly (NULL slots store 0.0, which is
  // exactly Value::AsDouble's NULL contribution).
  std::vector<double> agg_values(ng, 0.0);
  std::vector<int64_t> counts(ng, 0);
  for (int gi = 0; gi < ng; ++gi) counts[gi] = g.group_size[gi];
  if (fn != AggFn::kCount && ng > 0) {
    const Column& ac = input.column(agg_column);
    const double* payload = nullptr;
    std::vector<double> values;
    if (ng == 1 && ac.kind() == Column::Kind::kDouble) {
      payload = ac.doubles().data();
    } else {
      // Scatter per-row values into per-group slices, preserving row
      // order within each group (min/max NaN folds depend on it).
      values.resize(n);
      std::vector<int64_t> offset(ng + 1, 0);
      for (int gi = 0; gi < ng; ++gi)
        offset[gi + 1] = offset[gi] + g.group_size[gi];
      std::vector<int64_t> cursor(offset.begin(), offset.end() - 1);
      for (int64_t i = 0; i < n; ++i)
        values[cursor[g.group_of_row[i]]++] = ac.AsDoubleAt(i);
      // Finalize per group below via the offsets.
      for (int gi = 0; gi < ng; ++gi) {
        const double* v = values.data() + offset[gi];
        const int64_t len = g.group_size[gi];
        switch (fn) {
          case AggFn::kSum:
            agg_values[gi] = CanonicalSum(v, len);
            break;
          case AggFn::kAvg:
            agg_values[gi] = len ? CanonicalSum(v, len) / len : 0.0;
            break;
          case AggFn::kMin:
            agg_values[gi] = CanonicalMin(v, len);
            break;
          case AggFn::kMax:
            agg_values[gi] = CanonicalMax(v, len);
            break;
          case AggFn::kCount:
            break;
        }
      }
    }
    if (payload) {
      switch (fn) {
        case AggFn::kSum:
          agg_values[0] = CanonicalSum(payload, n);
          break;
        case AggFn::kAvg:
          agg_values[0] = n ? CanonicalSum(payload, n) / n : 0.0;
          break;
        case AggFn::kMin:
          agg_values[0] = CanonicalMin(payload, n);
          break;
        case AggFn::kMax:
          agg_values[0] = CanonicalMax(payload, n);
          break;
        case AggFn::kCount:
          break;
      }
    }
  }

  ColumnarRelation out("agg(" + input.name() + ")", std::move(names));
  for (size_t k = 0; k < group_columns.size(); ++k)
    out.SetColumn(static_cast<int>(k),
                  input.column(group_columns[k]).Gather(g.first_row));
  Column agg_col = Column::OfKind(fn == AggFn::kCount ? Column::Kind::kInt64
                                                      : Column::Kind::kDouble);
  agg_col.Reserve(ng);
  for (int gi = 0; gi < ng; ++gi) {
    const Status s =
        agg_col.AppendValue(fn == AggFn::kCount
                                ? Value::Int(counts[gi])
                                : Value::Double(agg_values[gi]));
    XAI_RETURN_NOT_OK(s);
  }
  out.SetColumn(static_cast<int>(group_columns.size()), std::move(agg_col));
  out.SetAnnotations(GroupAnnotations(input, g));
  return out;
}

}  // namespace xai::rel
