#ifndef XAI_RELATIONAL_AGG_KERNELS_H_
#define XAI_RELATIONAL_AGG_KERNELS_H_

#include <cstdint>

namespace xai::rel {

/// \brief Canonical aggregation kernels shared by the row and columnar
/// GroupByAggregate paths (and the dbx shared-scan Shapley fast path).
///
/// Both engines buffer a group's contributing values in row order and
/// finalize through these functions, so their aggregate values are
/// bit-identical by construction — there is exactly one summation order in
/// the codebase, not one per engine.
///
/// CanonicalSum reduces kBatchRows-sized blocks with simd::Dot against a
/// ones vector (multiplying by 1.0 is exact, so the fixed striped
/// accumulator of the SIMD determinism contract applies unchanged) and
/// folds the per-block partials in ascending block order. Min/max fold
/// sequentially in row order with std::min/std::max encounter semantics
/// (NaN behavior included).

double CanonicalSum(const double* v, int64_t n);

/// n == 0 returns 0.0 (the row path's zero-initialized Group).
double CanonicalMin(const double* v, int64_t n);
double CanonicalMax(const double* v, int64_t n);

}  // namespace xai::rel

#endif  // XAI_RELATIONAL_AGG_KERNELS_H_
