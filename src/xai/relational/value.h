#ifndef XAI_RELATIONAL_VALUE_H_
#define XAI_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include <vector>

namespace xai::rel {

class Value;
/// \brief A tuple is a vector of values.
using Tuple = std::vector<Value>;

/// \brief Dynamically typed SQL-ish scalar: NULL, INT, DOUBLE or STRING.
class Value {
 public:
  enum class Type { kNull, kInt, kDouble, kString };

  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }

  /// Numeric view (ints widen to double); 0 for NULL/strings.
  double AsDouble() const;
  int64_t AsInt() const;
  const std::string& AsString() const;

  /// SQL-style comparisons: NULL compares equal only to NULL (simplified
  /// two-valued logic); numeric types compare by value across INT/DOUBLE;
  /// cross-type (number vs string) compares by type order.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;

  std::string ToString() const;

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace xai::rel

#endif  // XAI_RELATIONAL_VALUE_H_
