#ifndef XAI_RELATIONAL_COLUMNAR_OPS_H_
#define XAI_RELATIONAL_COLUMNAR_OPS_H_

#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/relational/columnar.h"
#include "xai/relational/expression.h"
#include "xai/relational/operators.h"

namespace xai::rel {

/// \brief Vectorized relational operators over ColumnarRelation — the
/// batch-of-kBatchRows engine behind the row operators in operators.h.
///
/// Each operator is observationally identical to its row twin: converting
/// the output with ToRows() yields the same relation name, columns,
/// tuples (values and order), and provenance structure that the row
/// operator produces from ToRows() of the inputs. That includes the row
/// path's rendered-string semantics — group-by/distinct keys merge on
/// Value::ToString renderings (so "%.6g" collisions merge here too), and
/// the equi-join probes rendered keys before filtering on actual value
/// equality (so a match the row path's rendered index misses is missed
/// here as well). Aggregates finalize through the canonical kernels in
/// agg_kernels.h, which the row path shares — aggregate values are
/// bit-identical by construction.
///
/// Scans (selection, join probe) are parallelized over kBatchRows-sized
/// row blocks via ParallelFor; per-block results are concatenated in
/// ascending block order, so output order — and every floating-point
/// combine — is independent of the thread count (the repo-wide
/// bit-identity contract).

/// sigma_predicate(input): compiles the predicate once, evaluates it
/// batch-at-a-time, gathers matching rows.
xai::Result<ColumnarRelation> Select(const ColumnarRelation& input,
                                     const ExprPtr& predicate);

/// pi_columns(input); with `distinct`, equal (rendered) tuples merge and
/// annotations combine with +, first-appearance order.
xai::Result<ColumnarRelation> Project(const ColumnarRelation& input,
                                      const std::vector<int>& columns,
                                      bool distinct);

/// Equi-join on a.col_a == b.col_b; output columns are a's then b's
/// (prefixed with b's name), a-major with b matches in ascending row
/// order. NULL keys join NULL keys, like the row path.
xai::Result<ColumnarRelation> EquiJoin(const ColumnarRelation& a,
                                       const ColumnarRelation& b, int col_a,
                                       int col_b);

/// Bag union; annotations pass through. Fails if a column's storage
/// classes cannot be reconciled (string/number mix).
xai::Result<ColumnarRelation> Union(const ColumnarRelation& a,
                                    const ColumnarRelation& b);

/// Group-by aggregate; see the row twin for the provenance rules. The
/// sum/avg inner loops run simd::Dot over the contiguous payload.
xai::Result<ColumnarRelation> GroupByAggregate(
    const ColumnarRelation& input, const std::vector<int>& group_columns,
    AggFn fn, int agg_column, const std::string& agg_name);

}  // namespace xai::rel

#endif  // XAI_RELATIONAL_COLUMNAR_OPS_H_
