#ifndef XAI_RELATIONAL_COMPILED_EXPR_H_
#define XAI_RELATIONAL_COMPILED_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "xai/core/status.h"
#include "xai/relational/columnar.h"
#include "xai/relational/expression.h"

namespace xai::rel {

/// \brief An Expr tree compiled against a ColumnarRelation's schema into a
/// flat postorder program of batch kernels.
///
/// Compilation resolves everything the row interpreter re-derives per
/// tuple: column indices are bounds-checked once, every node's value class
/// (numeric vs string) is fixed statically from the column storage classes,
/// string constants keep their std::string out of the inner loops, and
/// nodes whose inputs can never be NULL dispatch to branch-free kernels.
/// Evaluation then runs batch-of-kBatchRows at a time over the typed
/// column arrays — no Value boxing, no variant dispatch, no shared_ptr
/// chasing per row.
///
/// Semantics are exactly Expr::Eval/EvalBool over the row representation
/// (SQL-ish two-valued logic: NULL == NULL, NULL sorts first, numbers sort
/// before strings, arithmetic coerces NULL/STRING to 0.0, booleans are
/// non-NULL 0/1); the columnar operators' results stay bit-identical to
/// the row interpreter's because both execute the same IEEE comparisons
/// and arithmetic on the same doubles.
///
/// A CompiledPredicate is immutable after Compile and safe to share across
/// threads; per-thread mutable state lives in a Scratch, one per
/// ParallelFor chunk.
class CompiledPredicate {
 public:
  /// Per-node output buffers for one evaluator. Sized on first use;
  /// reused across batches so steady-state evaluation allocates nothing.
  class Scratch {
   public:
    Scratch();
    ~Scratch();
    Scratch(Scratch&&) noexcept;
    Scratch& operator=(Scratch&&) noexcept;

   private:
    friend class CompiledPredicate;
    struct Batch;
    std::vector<std::unique_ptr<Batch>> slots_;
    // Constant nodes fill their whole batch once per compiled program
    // (the payload never varies with the row range), not once per batch.
    // `program_id_` detects reuse of a (thread_local) Scratch against a
    // different program and invalidates the fills; slot pointers stay.
    std::vector<uint8_t> const_filled_;
    uint64_t program_id_ = 0;
  };

  /// Validates `expr` against the relation's schema. The program keeps
  /// column *indices* only, so it can evaluate against any relation with
  /// the same arity and column storage classes (the shared-scan Shapley
  /// path relies on this for its one-compile-many-scans reuse).
  static Result<CompiledPredicate> Compile(const ExprPtr& expr,
                                           const ColumnarRelation& rel);

  /// Appends the global indices of rows in [begin, end) where the
  /// predicate evaluates true, in row order. `end - begin` is typically
  /// one kBatchRows block; any range works.
  void SelectInto(const ColumnarRelation& rel, int64_t begin, int64_t end,
                  Scratch* scratch, std::vector<int32_t>* out) const;

  /// Writes EvalBool per row of [begin, end) into out[0 .. end-begin).
  void EvalBoolInto(const ColumnarRelation& rel, int64_t begin, int64_t end,
                    Scratch* scratch, uint8_t* out) const;

 private:
  struct Node {
    Expr::Op op;
    int column = -1;      // kColumn: resolved index.
    int child0 = -1;      // Indices into nodes_ (postorder, so < self).
    int child1 = -1;
    bool is_string = false;   // Static value class of this node.
    bool never_null = false;  // No row of this node can be NULL.
    // kConst payload.
    bool const_valid = false;
    double const_num = 0.0;
    std::string const_str;
  };

  CompiledPredicate() = default;
  void EvalNode(const ColumnarRelation& rel, int node, int64_t begin,
                int64_t len, Scratch* scratch) const;
  void PrepareScratch(Scratch* scratch) const;

  std::vector<Node> nodes_;  // Postorder; root last.
  uint64_t program_id_ = 0;  // Process-unique; keys Scratch const caching.
};

}  // namespace xai::rel

#endif  // XAI_RELATIONAL_COMPILED_EXPR_H_
