#include "xai/relational/value.h"

#include <cmath>
#include <cstdio>

namespace xai::rel {

Value::Type Value::type() const {
  switch (data_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kInt;
    case 2:
      return Type::kDouble;
    default:
      return Type::kString;
  }
}

double Value::AsDouble() const {
  if (auto* i = std::get_if<int64_t>(&data_)) return static_cast<double>(*i);
  if (auto* d = std::get_if<double>(&data_)) return *d;
  return 0.0;
}

int64_t Value::AsInt() const {
  if (auto* i = std::get_if<int64_t>(&data_)) return *i;
  if (auto* d = std::get_if<double>(&data_))
    return static_cast<int64_t>(std::llround(*d));
  return 0;
}

const std::string& Value::AsString() const {
  static const std::string kEmpty;
  if (auto* s = std::get_if<std::string>(&data_)) return *s;
  return kEmpty;
}

namespace {

bool IsNumeric(Value::Type t) {
  return t == Value::Type::kInt || t == Value::Type::kDouble;
}

}  // namespace

bool Value::operator==(const Value& other) const {
  Type a = type(), b = other.type();
  if (a == Type::kNull || b == Type::kNull) return a == b;
  if (IsNumeric(a) && IsNumeric(b)) return AsDouble() == other.AsDouble();
  if (a != b) return false;
  return AsString() == other.AsString();
}

bool Value::operator<(const Value& other) const {
  Type a = type(), b = other.type();
  if (a == Type::kNull || b == Type::kNull) return a < b;
  if (IsNumeric(a) && IsNumeric(b)) return AsDouble() < other.AsDouble();
  if (IsNumeric(a) != IsNumeric(b)) return IsNumeric(a);
  return AsString() < other.AsString();
}

std::string Value::ToString() const {
  switch (type()) {
    case Type::kNull:
      return "NULL";
    case Type::kInt:
      return std::to_string(AsInt());
    case Type::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    default:
      return AsString();
  }
}

}  // namespace xai::rel
