#include "xai/relational/provenance.h"

#include <algorithm>
#include <map>

#include "xai/core/check.h"
#include "xai/core/rng.h"

namespace xai::rel {

ProvExprPtr ProvExpr::Zero() {
  static const ProvExprPtr kZero(new ProvExpr(Kind::kZero, -1, {}));
  return kZero;
}

ProvExprPtr ProvExpr::One() {
  static const ProvExprPtr kOne(new ProvExpr(Kind::kOne, -1, {}));
  return kOne;
}

ProvExprPtr ProvExpr::Base(int id) {
  return ProvExprPtr(new ProvExpr(Kind::kBase, id, {}));
}

ProvExprPtr ProvExpr::Plus(ProvExprPtr a, ProvExprPtr b) {
  if (a->kind_ == Kind::kZero) return b;
  if (b->kind_ == Kind::kZero) return a;
  return ProvExprPtr(
      new ProvExpr(Kind::kPlus, -1, {std::move(a), std::move(b)}));
}

ProvExprPtr ProvExpr::PlusAll(std::vector<ProvExprPtr> terms) {
  if (terms.empty()) return Zero();
  // Pairwise tree reduction keeps the expression depth logarithmic.
  while (terms.size() > 1) {
    std::vector<ProvExprPtr> next;
    next.reserve((terms.size() + 1) / 2);
    for (size_t i = 0; i + 1 < terms.size(); i += 2)
      next.push_back(Plus(terms[i], terms[i + 1]));
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms[0];
}

ProvExprPtr ProvExpr::Times(ProvExprPtr a, ProvExprPtr b) {
  if (a->kind_ == Kind::kZero || b->kind_ == Kind::kZero) return Zero();
  if (a->kind_ == Kind::kOne) return b;
  if (b->kind_ == Kind::kOne) return a;
  return ProvExprPtr(
      new ProvExpr(Kind::kTimes, -1, {std::move(a), std::move(b)}));
}

bool ProvExpr::EvalBool(const std::function<bool(int)>& present) const {
  switch (kind_) {
    case Kind::kZero:
      return false;
    case Kind::kOne:
      return true;
    case Kind::kBase:
      return present(base_id_);
    case Kind::kPlus:
      return children_[0]->EvalBool(present) ||
             children_[1]->EvalBool(present);
    case Kind::kTimes:
      return children_[0]->EvalBool(present) &&
             children_[1]->EvalBool(present);
  }
  return false;
}

int64_t ProvExpr::EvalCount(const std::function<int64_t(int)>& mult) const {
  switch (kind_) {
    case Kind::kZero:
      return 0;
    case Kind::kOne:
      return 1;
    case Kind::kBase:
      return mult(base_id_);
    case Kind::kPlus:
      return children_[0]->EvalCount(mult) + children_[1]->EvalCount(mult);
    case Kind::kTimes:
      return children_[0]->EvalCount(mult) * children_[1]->EvalCount(mult);
  }
  return 0;
}

double ProvExpr::EvalNumeric(
    const std::function<double(int)>& value,
    const std::function<double(double, double)>& plus,
    const std::function<double(double, double)>& times, double zero,
    double one) const {
  switch (kind_) {
    case Kind::kZero:
      return zero;
    case Kind::kOne:
      return one;
    case Kind::kBase:
      return value(base_id_);
    case Kind::kPlus:
      return plus(
          children_[0]->EvalNumeric(value, plus, times, zero, one),
          children_[1]->EvalNumeric(value, plus, times, zero, one));
    case Kind::kTimes:
      return times(
          children_[0]->EvalNumeric(value, plus, times, zero, one),
          children_[1]->EvalNumeric(value, plus, times, zero, one));
  }
  return zero;
}

std::set<int> ProvExpr::Lineage() const {
  std::set<int> out;
  switch (kind_) {
    case Kind::kBase:
      out.insert(base_id_);
      break;
    case Kind::kPlus:
    case Kind::kTimes:
      for (const auto& child : children_) {
        std::set<int> sub = child->Lineage();
        out.insert(sub.begin(), sub.end());
      }
      break;
    default:
      break;
  }
  return out;
}

std::set<std::set<int>> ProvExpr::WhyProvenance() const {
  switch (kind_) {
    case Kind::kZero:
      return {};
    case Kind::kOne:
      return {{}};
    case Kind::kBase:
      return {{base_id_}};
    case Kind::kPlus: {
      std::set<std::set<int>> out = children_[0]->WhyProvenance();
      std::set<std::set<int>> rhs = children_[1]->WhyProvenance();
      out.insert(rhs.begin(), rhs.end());
      // Minimize: drop witnesses that strictly contain another witness.
      std::set<std::set<int>> minimal;
      for (const auto& w : out) {
        bool dominated = false;
        for (const auto& other : out) {
          if (other != w &&
              std::includes(w.begin(), w.end(), other.begin(), other.end())) {
            dominated = true;
            break;
          }
        }
        if (!dominated) minimal.insert(w);
      }
      return minimal;
    }
    case Kind::kTimes: {
      std::set<std::set<int>> lhs = children_[0]->WhyProvenance();
      std::set<std::set<int>> rhs = children_[1]->WhyProvenance();
      std::set<std::set<int>> out;
      for (const auto& a : lhs) {
        for (const auto& b : rhs) {
          std::set<int> merged = a;
          merged.insert(b.begin(), b.end());
          out.insert(std::move(merged));
        }
      }
      return out;
    }
  }
  return {};
}

double ProvExpr::ProbabilityExact(
    const std::function<double(int)>& prob) const {
  std::set<int> lineage = Lineage();
  std::vector<int> vars(lineage.begin(), lineage.end());
  int k = static_cast<int>(vars.size());
  XAI_CHECK_MSG(k <= 20,
                "exact possible-worlds enumeration limited to 20 variables");
  double total = 0.0;
  uint64_t limit = 1ULL << k;
  for (uint64_t world = 0; world < limit; ++world) {
    double p_world = 1.0;
    std::map<int, bool> present;
    for (int i = 0; i < k; ++i) {
      bool exists = (world >> i) & 1ULL;
      present[vars[i]] = exists;
      double p = prob(vars[i]);
      p_world *= exists ? p : 1.0 - p;
    }
    if (p_world == 0.0) continue;
    if (EvalBool([&](int id) {
          auto it = present.find(id);
          return it == present.end() ? true : it->second;
        })) {
      total += p_world;
    }
  }
  return total;
}

double ProvExpr::ProbabilityMonteCarlo(
    const std::function<double(int)>& prob, int samples,
    uint64_t seed) const {
  XAI_CHECK_GT(samples, 0);
  std::set<int> lineage = Lineage();
  xai::Rng rng(seed);
  int hits = 0;
  std::map<int, bool> present;
  for (int s = 0; s < samples; ++s) {
    for (int id : lineage) present[id] = rng.Bernoulli(prob(id));
    if (EvalBool([&](int id) {
          auto it = present.find(id);
          return it == present.end() ? true : it->second;
        })) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / samples;
}

std::string ProvExpr::ToString(
    const std::function<std::string(int)>& name) const {
  auto render = [&](int id) {
    return name ? name(id) : "t" + std::to_string(id);
  };
  switch (kind_) {
    case Kind::kZero:
      return "0";
    case Kind::kOne:
      return "1";
    case Kind::kBase:
      return render(base_id_);
    case Kind::kPlus:
      return children_[0]->ToString(name) + " + " +
             children_[1]->ToString(name);
    case Kind::kTimes: {
      auto wrap = [&](const ProvExprPtr& child) {
        std::string s = child->ToString(name);
        if (child->kind_ == Kind::kPlus) return "(" + s + ")";
        return s;
      };
      return wrap(children_[0]) + "*" + wrap(children_[1]);
    }
  }
  return "?";
}

}  // namespace xai::rel
