#include "xai/relational/provenance.h"

#include <algorithm>
#include <map>

#include "xai/core/check.h"
#include "xai/core/rng.h"

namespace xai::rel {

ProvExprPtr ProvExpr::Zero() {
  static const ProvExprPtr kZero(new ProvExpr(Kind::kZero, -1, {}));
  return kZero;
}

ProvExprPtr ProvExpr::One() {
  static const ProvExprPtr kOne(new ProvExpr(Kind::kOne, -1, {}));
  return kOne;
}

ProvExprPtr ProvExpr::Base(int id) {
  // Local shim so make_shared can reach the private constructor; fusing
  // the control block with the node halves the allocations per variable.
  struct Node : ProvExpr {
    explicit Node(int id) : ProvExpr(Kind::kBase, id, {}) {}
  };
  return std::make_shared<const Node>(id);
}

ProvExprPtr ProvExpr::MakeBinary(Kind kind, ProvExprPtr a, ProvExprPtr b) {
  struct Node : ProvExpr {
    Node(Kind k, std::vector<ProvExprPtr> c) : ProvExpr(k, -1, std::move(c)) {}
  };
  std::vector<ProvExprPtr> children;
  children.reserve(2);
  children.push_back(std::move(a));
  children.push_back(std::move(b));
  return std::make_shared<const Node>(kind, std::move(children));
}

ProvExprPtr ProvExpr::Plus(ProvExprPtr a, ProvExprPtr b) {
  if (a->kind_ == Kind::kZero) return b;
  if (b->kind_ == Kind::kZero) return a;
  return MakeBinary(Kind::kPlus, std::move(a), std::move(b));
}

ProvExprPtr ProvExpr::PlusAll(std::vector<ProvExprPtr> terms) {
  // 0 + x = x, matching the binary Plus simplification.
  terms.erase(std::remove_if(terms.begin(), terms.end(),
                             [](const ProvExprPtr& t) {
                               return t->kind_ == Kind::kZero;
                             }),
              terms.end());
  if (terms.empty()) return Zero();
  if (terms.size() == 1) return std::move(terms[0]);
  // One n-ary sum node: a single allocation regardless of the group size
  // (the evaluators iterate children, so depth is constant), instead of
  // n-1 binary nodes. Group-by over large relations spends its time here.
  struct Node : ProvExpr {
    explicit Node(std::vector<ProvExprPtr> c)
        : ProvExpr(Kind::kPlus, -1, std::move(c)) {}
  };
  return std::make_shared<const Node>(std::move(terms));
}

ProvExprPtr ProvExpr::Times(ProvExprPtr a, ProvExprPtr b) {
  if (a->kind_ == Kind::kZero || b->kind_ == Kind::kZero) return Zero();
  if (a->kind_ == Kind::kOne) return b;
  if (b->kind_ == Kind::kOne) return a;
  return MakeBinary(Kind::kTimes, std::move(a), std::move(b));
}

bool ProvExpr::EvalBool(const std::function<bool(int)>& present) const {
  switch (kind_) {
    case Kind::kZero:
      return false;
    case Kind::kOne:
      return true;
    case Kind::kBase:
      return present(base_id_);
    case Kind::kPlus:
      for (const ProvExprPtr& c : children_)
        if (c->EvalBool(present)) return true;
      return false;
    case Kind::kTimes:
      for (const ProvExprPtr& c : children_)
        if (!c->EvalBool(present)) return false;
      return true;
  }
  return false;
}

int64_t ProvExpr::EvalCount(const std::function<int64_t(int)>& mult) const {
  switch (kind_) {
    case Kind::kZero:
      return 0;
    case Kind::kOne:
      return 1;
    case Kind::kBase:
      return mult(base_id_);
    case Kind::kPlus: {
      int64_t sum = 0;
      for (const ProvExprPtr& c : children_) sum += c->EvalCount(mult);
      return sum;
    }
    case Kind::kTimes: {
      int64_t product = 1;
      for (const ProvExprPtr& c : children_) product *= c->EvalCount(mult);
      return product;
    }
  }
  return 0;
}

double ProvExpr::EvalNumeric(
    const std::function<double(int)>& value,
    const std::function<double(double, double)>& plus,
    const std::function<double(double, double)>& times, double zero,
    double one) const {
  switch (kind_) {
    case Kind::kZero:
      return zero;
    case Kind::kOne:
      return one;
    case Kind::kBase:
      return value(base_id_);
    case Kind::kPlus: {
      double acc = children_[0]->EvalNumeric(value, plus, times, zero, one);
      for (size_t i = 1; i < children_.size(); ++i)
        acc = plus(acc,
                   children_[i]->EvalNumeric(value, plus, times, zero, one));
      return acc;
    }
    case Kind::kTimes: {
      double acc = children_[0]->EvalNumeric(value, plus, times, zero, one);
      for (size_t i = 1; i < children_.size(); ++i)
        acc = times(acc,
                    children_[i]->EvalNumeric(value, plus, times, zero, one));
      return acc;
    }
  }
  return zero;
}

std::set<int> ProvExpr::Lineage() const {
  std::set<int> out;
  switch (kind_) {
    case Kind::kBase:
      out.insert(base_id_);
      break;
    case Kind::kPlus:
    case Kind::kTimes:
      for (const auto& child : children_) {
        std::set<int> sub = child->Lineage();
        out.insert(sub.begin(), sub.end());
      }
      break;
    default:
      break;
  }
  return out;
}

std::set<std::set<int>> ProvExpr::WhyProvenance() const {
  switch (kind_) {
    case Kind::kZero:
      return {};
    case Kind::kOne:
      return {{}};
    case Kind::kBase:
      return {{base_id_}};
    case Kind::kPlus: {
      std::set<std::set<int>> out;
      for (const ProvExprPtr& c : children_) {
        std::set<std::set<int>> sub = c->WhyProvenance();
        out.insert(sub.begin(), sub.end());
      }
      // Minimize: drop witnesses that strictly contain another witness.
      std::set<std::set<int>> minimal;
      for (const auto& w : out) {
        bool dominated = false;
        for (const auto& other : out) {
          if (other != w &&
              std::includes(w.begin(), w.end(), other.begin(), other.end())) {
            dominated = true;
            break;
          }
        }
        if (!dominated) minimal.insert(w);
      }
      return minimal;
    }
    case Kind::kTimes: {
      std::set<std::set<int>> out = children_[0]->WhyProvenance();
      for (size_t i = 1; i < children_.size(); ++i) {
        std::set<std::set<int>> rhs = children_[i]->WhyProvenance();
        std::set<std::set<int>> next;
        for (const auto& a : out) {
          for (const auto& b : rhs) {
            std::set<int> merged = a;
            merged.insert(b.begin(), b.end());
            next.insert(std::move(merged));
          }
        }
        out = std::move(next);
      }
      return out;
    }
  }
  return {};
}

double ProvExpr::ProbabilityExact(
    const std::function<double(int)>& prob) const {
  std::set<int> lineage = Lineage();
  std::vector<int> vars(lineage.begin(), lineage.end());
  int k = static_cast<int>(vars.size());
  XAI_CHECK_MSG(k <= 20,
                "exact possible-worlds enumeration limited to 20 variables");
  double total = 0.0;
  uint64_t limit = 1ULL << k;
  for (uint64_t world = 0; world < limit; ++world) {
    double p_world = 1.0;
    std::map<int, bool> present;
    for (int i = 0; i < k; ++i) {
      bool exists = (world >> i) & 1ULL;
      present[vars[i]] = exists;
      double p = prob(vars[i]);
      p_world *= exists ? p : 1.0 - p;
    }
    if (p_world == 0.0) continue;
    if (EvalBool([&](int id) {
          auto it = present.find(id);
          return it == present.end() ? true : it->second;
        })) {
      total += p_world;
    }
  }
  return total;
}

double ProvExpr::ProbabilityMonteCarlo(
    const std::function<double(int)>& prob, int samples,
    uint64_t seed) const {
  XAI_CHECK_GT(samples, 0);
  std::set<int> lineage = Lineage();
  xai::Rng rng(seed);
  int hits = 0;
  std::map<int, bool> present;
  for (int s = 0; s < samples; ++s) {
    for (int id : lineage) present[id] = rng.Bernoulli(prob(id));
    if (EvalBool([&](int id) {
          auto it = present.find(id);
          return it == present.end() ? true : it->second;
        })) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / samples;
}

std::string ProvExpr::ToString(
    const std::function<std::string(int)>& name) const {
  auto render = [&](int id) {
    return name ? name(id) : "t" + std::to_string(id);
  };
  switch (kind_) {
    case Kind::kZero:
      return "0";
    case Kind::kOne:
      return "1";
    case Kind::kBase:
      return render(base_id_);
    case Kind::kPlus: {
      std::string s = children_[0]->ToString(name);
      for (size_t i = 1; i < children_.size(); ++i)
        s += " + " + children_[i]->ToString(name);
      return s;
    }
    case Kind::kTimes: {
      auto wrap = [&](const ProvExprPtr& child) {
        std::string s = child->ToString(name);
        if (child->kind_ == Kind::kPlus) return "(" + s + ")";
        return s;
      };
      std::string s = wrap(children_[0]);
      for (size_t i = 1; i < children_.size(); ++i) s += "*" + wrap(children_[i]);
      return s;
    }
  }
  return "?";
}

}  // namespace xai::rel
