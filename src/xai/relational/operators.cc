#include "xai/relational/operators.h"

#include <algorithm>
#include <map>

namespace xai::rel {

xai::Result<Relation> Select(const Relation& input, const ExprPtr& predicate) {
  Relation out("select(" + input.name() + ")", input.columns());
  for (int i = 0; i < input.num_tuples(); ++i) {
    if (predicate->EvalBool(input.tuple(i))) {
      XAI_RETURN_NOT_OK(out.Append(input.tuple(i), input.annotation(i)));
    }
  }
  return out;
}

xai::Result<Relation> Project(const Relation& input,
                              const std::vector<int>& columns,
                              bool distinct) {
  std::vector<std::string> names;
  for (int c : columns) {
    if (c < 0 || c >= input.num_columns())
      return xai::Status::OutOfRange("projection column out of range");
    names.push_back(input.columns()[c]);
  }
  Relation out("project(" + input.name() + ")", names);
  if (!distinct) {
    for (int i = 0; i < input.num_tuples(); ++i) {
      Tuple t;
      for (int c : columns) t.push_back(input.tuple(i)[c]);
      XAI_RETURN_NOT_OK(out.Append(std::move(t), input.annotation(i)));
    }
    return out;
  }
  // Distinct: merge equal tuples; annotations combine with a balanced sum
  // so huge duplicate groups cannot create deep expression chains.
  std::map<std::vector<std::string>,
           std::pair<Tuple, std::vector<ProvExprPtr>>>
      merged;
  std::vector<std::vector<std::string>> order;
  for (int i = 0; i < input.num_tuples(); ++i) {
    Tuple t;
    std::vector<std::string> key;
    for (int c : columns) {
      t.push_back(input.tuple(i)[c]);
      key.push_back(input.tuple(i)[c].ToString());
    }
    auto it = merged.find(key);
    if (it == merged.end()) {
      merged.emplace(key,
                     std::make_pair(std::move(t),
                                    std::vector<ProvExprPtr>{
                                        input.annotation(i)}));
      order.push_back(std::move(key));
    } else {
      it->second.second.push_back(input.annotation(i));
    }
  }
  for (const auto& key : order) {
    auto& [tuple, annotations] = merged[key];
    XAI_RETURN_NOT_OK(
        out.Append(tuple, ProvExpr::PlusAll(std::move(annotations))));
  }
  return out;
}

xai::Result<Relation> EquiJoin(const Relation& a, const Relation& b,
                               int col_a, int col_b) {
  if (col_a < 0 || col_a >= a.num_columns() || col_b < 0 ||
      col_b >= b.num_columns())
    return xai::Status::OutOfRange("join column out of range");
  std::vector<std::string> names = a.columns();
  for (const std::string& c : b.columns()) names.push_back(b.name() + "." + c);
  Relation out("join(" + a.name() + "," + b.name() + ")", names);

  // Hash join on the rendered key.
  std::multimap<std::string, int> index;
  for (int j = 0; j < b.num_tuples(); ++j)
    index.emplace(b.tuple(j)[col_b].ToString(), j);
  for (int i = 0; i < a.num_tuples(); ++i) {
    auto [lo, hi] = index.equal_range(a.tuple(i)[col_a].ToString());
    for (auto it = lo; it != hi; ++it) {
      int j = it->second;
      if (!(a.tuple(i)[col_a] == b.tuple(j)[col_b])) continue;
      Tuple t = a.tuple(i);
      for (const Value& v : b.tuple(j)) t.push_back(v);
      XAI_RETURN_NOT_OK(out.Append(
          std::move(t),
          ProvExpr::Times(a.annotation(i), b.annotation(j))));
    }
  }
  return out;
}

xai::Result<Relation> Union(const Relation& a, const Relation& b) {
  if (a.num_columns() != b.num_columns())
    return xai::Status::InvalidArgument("union arity mismatch");
  Relation out("union(" + a.name() + "," + b.name() + ")", a.columns());
  for (int i = 0; i < a.num_tuples(); ++i)
    XAI_RETURN_NOT_OK(out.Append(a.tuple(i), a.annotation(i)));
  for (int i = 0; i < b.num_tuples(); ++i)
    XAI_RETURN_NOT_OK(out.Append(b.tuple(i), b.annotation(i)));
  return out;
}

xai::Result<Relation> GroupByAggregate(const Relation& input,
                                       const std::vector<int>& group_columns,
                                       AggFn fn, int agg_column,
                                       const std::string& agg_name) {
  if (fn != AggFn::kCount &&
      (agg_column < 0 || agg_column >= input.num_columns()))
    return xai::Status::OutOfRange("aggregate column out of range");
  std::vector<std::string> names;
  for (int c : group_columns) {
    if (c < 0 || c >= input.num_columns())
      return xai::Status::OutOfRange("group column out of range");
    names.push_back(input.columns()[c]);
  }
  names.push_back(agg_name);
  Relation out("agg(" + input.name() + ")", names);

  struct Group {
    Tuple key;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    int64_t count = 0;
    std::vector<ProvExprPtr> annotations;
  };
  std::map<std::vector<std::string>, Group> groups;
  std::vector<std::vector<std::string>> order;
  for (int i = 0; i < input.num_tuples(); ++i) {
    std::vector<std::string> key_str;
    Tuple key;
    for (int c : group_columns) {
      key.push_back(input.tuple(i)[c]);
      key_str.push_back(input.tuple(i)[c].ToString());
    }
    auto it = groups.find(key_str);
    if (it == groups.end()) {
      it = groups.emplace(key_str, Group{}).first;
      it->second.key = std::move(key);
      order.push_back(std::move(key_str));
    }
    Group& g = it->second;
    double v =
        fn == AggFn::kCount ? 1.0 : input.tuple(i)[agg_column].AsDouble();
    if (g.count == 0) {
      g.min = g.max = v;
    } else {
      g.min = std::min(g.min, v);
      g.max = std::max(g.max, v);
    }
    g.sum += v;
    g.count += 1;
    g.annotations.push_back(input.annotation(i));
  }
  for (const auto& key : order) {
    Group& g = groups[key];
    double value = 0.0;
    switch (fn) {
      case AggFn::kCount:
        value = static_cast<double>(g.count);
        break;
      case AggFn::kSum:
        value = g.sum;
        break;
      case AggFn::kAvg:
        value = g.count ? g.sum / g.count : 0.0;
        break;
      case AggFn::kMin:
        value = g.min;
        break;
      case AggFn::kMax:
        value = g.max;
        break;
    }
    Tuple t = g.key;
    t.push_back(fn == AggFn::kCount ? Value::Int(g.count)
                                    : Value::Double(value));
    XAI_RETURN_NOT_OK(out.Append(std::move(t),
                                 rel::ProvExpr::PlusAll(
                                     std::move(g.annotations))));
  }
  return out;
}

}  // namespace xai::rel
