#include "xai/relational/operators.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "xai/relational/agg_kernels.h"

namespace xai::rel {

xai::Result<Relation> Select(const Relation& input, const ExprPtr& predicate) {
  Relation out("select(" + input.name() + ")", input.columns());
  out.Reserve(input.num_tuples());
  for (int i = 0; i < input.num_tuples(); ++i) {
    if (predicate->EvalBool(input.tuple(i))) {
      XAI_RETURN_NOT_OK(out.Append(input.tuple(i), input.annotation(i)));
    }
  }
  return out;
}

xai::Result<Relation> Project(const Relation& input,
                              const std::vector<int>& columns,
                              bool distinct) {
  std::vector<std::string> names;
  for (int c : columns) {
    if (c < 0 || c >= input.num_columns())
      return xai::Status::OutOfRange("projection column out of range");
    names.push_back(input.columns()[c]);
  }
  Relation out("project(" + input.name() + ")", names);
  if (!distinct) {
    out.Reserve(input.num_tuples());
    for (int i = 0; i < input.num_tuples(); ++i) {
      Tuple t;
      t.reserve(columns.size());
      for (int c : columns) t.push_back(input.tuple(i)[c]);
      XAI_RETURN_NOT_OK(out.Append(std::move(t), input.annotation(i)));
    }
    return out;
  }
  // Distinct: merge equal tuples; annotations combine with a balanced sum
  // so huge duplicate groups cannot create deep expression chains.
  using Merged = std::pair<Tuple, std::vector<ProvExprPtr>>;
  std::map<std::vector<std::string>, Merged> merged;
  std::vector<Merged*> order;  // Map nodes are stable; no finalize re-lookup.
  std::vector<std::string> key;
  for (int i = 0; i < input.num_tuples(); ++i) {
    key.clear();
    for (int c : columns) key.push_back(input.tuple(i)[c].ToString());
    auto [it, inserted] = merged.try_emplace(key);
    if (inserted) {
      Tuple t;
      t.reserve(columns.size());
      for (int c : columns) t.push_back(input.tuple(i)[c]);
      it->second.first = std::move(t);
      order.push_back(&it->second);
    }
    it->second.second.push_back(input.annotation(i));
  }
  out.Reserve(static_cast<int64_t>(order.size()));
  for (Merged* m : order) {
    XAI_RETURN_NOT_OK(
        out.Append(m->first, ProvExpr::PlusAll(std::move(m->second))));
  }
  return out;
}

xai::Result<Relation> EquiJoin(const Relation& a, const Relation& b,
                               int col_a, int col_b) {
  if (col_a < 0 || col_a >= a.num_columns() || col_b < 0 ||
      col_b >= b.num_columns())
    return xai::Status::OutOfRange("join column out of range");
  std::vector<std::string> names = a.columns();
  for (const std::string& c : b.columns()) names.push_back(b.name() + "." + c);
  Relation out("join(" + a.name() + "," + b.name() + ")", names);

  // Hash join on the rendered key; per-key match lists hold b-rows in
  // ascending order (the insertion order the old multimap preserved).
  std::unordered_map<std::string, std::vector<int>> index;
  index.reserve(b.num_tuples());
  for (int j = 0; j < b.num_tuples(); ++j)
    index[b.tuple(j)[col_b].ToString()].push_back(j);
  const size_t out_width = a.num_columns() + b.num_columns();
  for (int i = 0; i < a.num_tuples(); ++i) {
    const Value& key_a = a.tuple(i)[col_a];
    auto it = index.find(key_a.ToString());
    if (it == index.end()) continue;
    for (int j : it->second) {
      if (!(key_a == b.tuple(j)[col_b])) continue;
      Tuple t;
      t.reserve(out_width);
      t.insert(t.end(), a.tuple(i).begin(), a.tuple(i).end());
      t.insert(t.end(), b.tuple(j).begin(), b.tuple(j).end());
      XAI_RETURN_NOT_OK(out.Append(
          std::move(t),
          ProvExpr::Times(a.annotation(i), b.annotation(j))));
    }
  }
  return out;
}

xai::Result<Relation> Union(const Relation& a, const Relation& b) {
  if (a.num_columns() != b.num_columns())
    return xai::Status::InvalidArgument("union arity mismatch");
  Relation out("union(" + a.name() + "," + b.name() + ")", a.columns());
  for (int i = 0; i < a.num_tuples(); ++i)
    XAI_RETURN_NOT_OK(out.Append(a.tuple(i), a.annotation(i)));
  for (int i = 0; i < b.num_tuples(); ++i)
    XAI_RETURN_NOT_OK(out.Append(b.tuple(i), b.annotation(i)));
  return out;
}

xai::Result<Relation> GroupByAggregate(const Relation& input,
                                       const std::vector<int>& group_columns,
                                       AggFn fn, int agg_column,
                                       const std::string& agg_name) {
  if (fn != AggFn::kCount &&
      (agg_column < 0 || agg_column >= input.num_columns()))
    return xai::Status::OutOfRange("aggregate column out of range");
  std::vector<std::string> names;
  for (int c : group_columns) {
    if (c < 0 || c >= input.num_columns())
      return xai::Status::OutOfRange("group column out of range");
    names.push_back(input.columns()[c]);
  }
  names.push_back(agg_name);
  Relation out("agg(" + input.name() + ")", names);

  // Each group buffers its contributing values in row order and finalizes
  // through the canonical kernels in agg_kernels.h — the same kernels the
  // columnar engine calls — so the two paths' aggregate values are
  // bit-identical by construction.
  struct Group {
    Tuple key;
    std::vector<double> values;
    std::vector<ProvExprPtr> annotations;
  };
  std::map<std::vector<std::string>, Group> groups;
  std::vector<Group*> order;  // Map nodes are stable; no finalize re-lookup.
  std::vector<std::string> key_str;
  for (int i = 0; i < input.num_tuples(); ++i) {
    key_str.clear();
    for (int c : group_columns)
      key_str.push_back(input.tuple(i)[c].ToString());
    auto [it, inserted] = groups.try_emplace(key_str);
    if (inserted) {
      Tuple key;
      key.reserve(group_columns.size());
      for (int c : group_columns) key.push_back(input.tuple(i)[c]);
      it->second.key = std::move(key);
      order.push_back(&it->second);
    }
    Group& g = it->second;
    g.values.push_back(
        fn == AggFn::kCount ? 1.0 : input.tuple(i)[agg_column].AsDouble());
    g.annotations.push_back(input.annotation(i));
  }
  out.Reserve(static_cast<int64_t>(order.size()));
  for (Group* g : order) {
    const int64_t count = static_cast<int64_t>(g->values.size());
    double value = 0.0;
    switch (fn) {
      case AggFn::kCount:
        value = static_cast<double>(count);
        break;
      case AggFn::kSum:
        value = CanonicalSum(g->values.data(), count);
        break;
      case AggFn::kAvg:
        value = count ? CanonicalSum(g->values.data(), count) / count : 0.0;
        break;
      case AggFn::kMin:
        value = CanonicalMin(g->values.data(), count);
        break;
      case AggFn::kMax:
        value = CanonicalMax(g->values.data(), count);
        break;
    }
    Tuple t = std::move(g->key);
    t.push_back(fn == AggFn::kCount ? Value::Int(count)
                                    : Value::Double(value));
    XAI_RETURN_NOT_OK(out.Append(std::move(t),
                                 rel::ProvExpr::PlusAll(
                                     std::move(g->annotations))));
  }
  return out;
}

}  // namespace xai::rel
