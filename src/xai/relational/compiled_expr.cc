#include "xai/relational/compiled_expr.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "xai/core/check.h"

namespace xai::rel {

/// Per-node batch values. The invariant `num == 0 wherever valid == 0 or
/// the node is string-classed` mirrors Value::AsDouble(), so arithmetic
/// and truthiness kernels stream `num` without consulting `valid`.
struct CompiledPredicate::Scratch::Batch {
  double num[kBatchRows];
  const std::string* str[kBatchRows];
  uint8_t valid[kBatchRows];
};

// Out-of-line because Scratch::Batch is incomplete at the class definition.
CompiledPredicate::Scratch::Scratch() = default;
CompiledPredicate::Scratch::~Scratch() = default;
CompiledPredicate::Scratch::Scratch(Scratch&&) noexcept = default;
CompiledPredicate::Scratch& CompiledPredicate::Scratch::operator=(
    Scratch&&) noexcept = default;

namespace {

/// eq/lt for one row, exactly Value::operator== / operator<: NULL equals
/// only NULL, NULL sorts before everything, numbers sort before strings,
/// numerics compare as double, strings lexicographically.
inline void RowCompare(bool a_str, bool b_str, uint8_t av, uint8_t bv,
                       double an, double bn, const std::string* as,
                       const std::string* bs, bool* eq, bool* lt) {
  if (!av || !bv) {
    *eq = av == bv;
    *lt = !av && bv;
    return;
  }
  if (a_str != b_str) {
    *eq = false;
    *lt = !a_str;  // Numeric sorts before string.
    return;
  }
  if (a_str) {
    *eq = *as == *bs;
    *lt = *as < *bs;
  } else {
    *eq = an == bn;
    *lt = an < bn;
  }
}

/// Combines per-row eq/lt into the requested comparison, matching
/// Expr::Eval's composition (kLe = lt||eq, kGt = !lt&&!eq, kGe = !lt —
/// which differ from native >,>=,<= on NaN, so the compositions are kept).
inline bool ComposeCompare(Expr::Op op, bool eq, bool lt) {
  switch (op) {
    case Expr::Op::kEq:
      return eq;
    case Expr::Op::kNe:
      return !eq;
    case Expr::Op::kLt:
      return lt;
    case Expr::Op::kLe:
      return lt || eq;
    case Expr::Op::kGt:
      return !lt && !eq;
    default:  // kGe
      return !lt;
  }
}

void CompareInto(Expr::Op op, bool a_str, bool b_str, bool no_nulls,
                 const double* an, const std::string* const* as,
                 const uint8_t* av, const double* bn,
                 const std::string* const* bs, const uint8_t* bv, int64_t len,
                 double* out_num, uint8_t* out_valid) {
  std::memset(out_valid, 1, len);  // Comparisons are never NULL.
  if (!a_str && !b_str && !no_nulls) {
    // Columns are statically nullable (a compiled program may be re-run
    // against relations with NULLs), but most batches carry none in
    // practice. A 2×len byte scan buys the branch-free kernel below.
    no_nulls = std::memchr(av, 0, len) == nullptr &&
               std::memchr(bv, 0, len) == nullptr;
  }
  if (!a_str && !b_str && no_nulls) {
    // Hot path: all-valid numeric vs numeric — branch-free and
    // auto-vectorizable. The op switch is hoisted out of the row loop.
    switch (op) {
      case Expr::Op::kEq:
        for (int64_t i = 0; i < len; ++i) out_num[i] = an[i] == bn[i];
        return;
      case Expr::Op::kNe:
        for (int64_t i = 0; i < len; ++i) out_num[i] = !(an[i] == bn[i]);
        return;
      case Expr::Op::kLt:
        for (int64_t i = 0; i < len; ++i) out_num[i] = an[i] < bn[i];
        return;
      case Expr::Op::kLe:
        for (int64_t i = 0; i < len; ++i)
          out_num[i] = an[i] < bn[i] || an[i] == bn[i];
        return;
      case Expr::Op::kGt:
        for (int64_t i = 0; i < len; ++i)
          out_num[i] = !(an[i] < bn[i]) && !(an[i] == bn[i]);
        return;
      default:  // kGe
        for (int64_t i = 0; i < len; ++i) out_num[i] = !(an[i] < bn[i]);
        return;
    }
  }
  for (int64_t i = 0; i < len; ++i) {
    bool eq, lt;
    RowCompare(a_str, b_str, av[i], bv[i], an[i], bn[i], as ? as[i] : nullptr,
               bs ? bs[i] : nullptr, &eq, &lt);
    out_num[i] = ComposeCompare(op, eq, lt);
  }
}

}  // namespace

Result<CompiledPredicate> CompiledPredicate::Compile(
    const ExprPtr& expr, const ColumnarRelation& rel) {
  CompiledPredicate p;
  // Postorder flatten with explicit recursion over the (small) tree.
  struct Walker {
    const ColumnarRelation& rel;
    std::vector<Node>* nodes;
    Status status = Status::OK();

    int Walk(const Expr& e) {
      Node n;
      n.op = e.op();
      switch (e.op()) {
        case Expr::Op::kColumn: {
          const int c = e.column_index();
          if (c < 0 || c >= rel.num_columns()) {
            status = Status::InvalidArgument("predicate column out of range");
            return -1;
          }
          n.column = c;
          n.is_string = rel.column(c).kind() == Column::Kind::kString &&
                        !rel.column(c).all_null();
          // Deliberately NOT derived from has_nulls(): a compiled program
          // may be re-run against other relations with the same schema, and
          // those may have NULLs where this one does not.
          n.never_null = false;
          break;
        }
        case Expr::Op::kConst: {
          const Value& v = e.constant();
          n.const_valid = !v.is_null();
          n.never_null = n.const_valid;
          n.is_string = v.type() == Value::Type::kString;
          n.const_num = v.AsDouble();
          if (n.is_string) n.const_str = v.AsString();
          break;
        }
        default: {
          for (const ExprPtr& child : e.children()) {
            const int idx = Walk(*child);
            if (!status.ok()) return -1;
            if (n.child0 < 0) {
              n.child0 = idx;
            } else {
              n.child1 = idx;
            }
          }
          // Comparisons, connectives and arithmetic all produce non-NULL
          // values (booleans are INT 0/1, arithmetic coerces to double).
          n.never_null = true;
          n.is_string = false;
          break;
        }
      }
      nodes->push_back(std::move(n));
      return static_cast<int>(nodes->size()) - 1;
    }
  };
  Walker w{rel, &p.nodes_};
  w.Walk(*expr);
  XAI_RETURN_NOT_OK(w.status);
  static std::atomic<uint64_t> next_program_id{1};
  p.program_id_ = next_program_id.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void CompiledPredicate::PrepareScratch(Scratch* scratch) const {
  while (scratch->slots_.size() < nodes_.size())
    scratch->slots_.push_back(std::make_unique<Scratch::Batch>());
  if (scratch->program_id_ != program_id_) {
    // A (possibly thread_local) Scratch last used by a different program:
    // its constant fills describe the wrong expression. Slots are shape-
    // compatible and fully overwritten per batch, so only the fills reset.
    scratch->program_id_ = program_id_;
    std::fill(scratch->const_filled_.begin(), scratch->const_filled_.end(),
              uint8_t{0});
  }
  scratch->const_filled_.resize(nodes_.size(), 0);
}

void CompiledPredicate::EvalNode(const ColumnarRelation& rel, int ni,
                                 int64_t begin, int64_t len,
                                 Scratch* scratch) const {
  const Node& n = nodes_[ni];
  using Batch = Scratch::Batch;
  Batch& out = *scratch->slots_[ni];
  switch (n.op) {
    case Expr::Op::kColumn: {
      const Column& col = rel.column(n.column);
      std::memcpy(out.valid, col.validity().data() + begin, len);
      switch (col.kind()) {
        case Column::Kind::kInt64: {
          const int64_t* src = col.ints().data() + begin;
          for (int64_t i = 0; i < len; ++i)
            out.num[i] = static_cast<double>(src[i]);
          break;
        }
        case Column::Kind::kDouble:
          std::memcpy(out.num, col.doubles().data() + begin,
                      len * sizeof(double));
          break;
        case Column::Kind::kString: {
          const int32_t* codes = col.codes().data() + begin;
          const std::string* dict = col.dict().data();
          for (int64_t i = 0; i < len; ++i) {
            out.num[i] = 0.0;  // Value::AsDouble(STRING) == 0.
            out.str[i] = out.valid[i] ? &dict[codes[i]] : nullptr;
          }
          break;
        }
      }
      break;
    }
    case Expr::Op::kConst: {
      if (scratch->const_filled_[ni]) break;
      // The payload is row-independent: fill the whole batch once (not
      // just `len`, so a short first range cannot leave a later full
      // batch reading stale tail entries) and skip on every later batch.
      for (int64_t i = 0; i < kBatchRows; ++i) {
        out.valid[i] = n.const_valid;
        out.num[i] = n.const_num;
        if (n.is_string) out.str[i] = &n.const_str;
      }
      scratch->const_filled_[ni] = 1;
      break;
    }
    case Expr::Op::kEq:
    case Expr::Op::kNe:
    case Expr::Op::kLt:
    case Expr::Op::kLe:
    case Expr::Op::kGt:
    case Expr::Op::kGe: {
      const Node& a = nodes_[n.child0];
      const Node& b = nodes_[n.child1];
      const Batch& ba = *scratch->slots_[n.child0];
      const Batch& bb = *scratch->slots_[n.child1];
      CompareInto(n.op, a.is_string, b.is_string,
                  a.never_null && b.never_null, ba.num,
                  a.is_string ? ba.str : nullptr, ba.valid, bb.num,
                  b.is_string ? bb.str : nullptr, bb.valid, len, out.num,
                  out.valid);
      break;
    }
    case Expr::Op::kAnd: {
      const Batch& ba = *scratch->slots_[n.child0];
      const Batch& bb = *scratch->slots_[n.child1];
      // Truthiness is EvalBool: present and numerically non-zero. The
      // `num == 0 where invalid/string` invariant makes `valid && num != 0`
      // exactly that.
      for (int64_t i = 0; i < len; ++i) {
        out.num[i] = (ba.valid[i] && ba.num[i] != 0.0) &&
                     (bb.valid[i] && bb.num[i] != 0.0);
        out.valid[i] = 1;
      }
      break;
    }
    case Expr::Op::kOr: {
      const Batch& ba = *scratch->slots_[n.child0];
      const Batch& bb = *scratch->slots_[n.child1];
      for (int64_t i = 0; i < len; ++i) {
        out.num[i] = (ba.valid[i] && ba.num[i] != 0.0) ||
                     (bb.valid[i] && bb.num[i] != 0.0);
        out.valid[i] = 1;
      }
      break;
    }
    case Expr::Op::kNot: {
      const Batch& ba = *scratch->slots_[n.child0];
      for (int64_t i = 0; i < len; ++i) {
        out.num[i] = !(ba.valid[i] && ba.num[i] != 0.0);
        out.valid[i] = 1;
      }
      break;
    }
    case Expr::Op::kAdd: {
      const Batch& ba = *scratch->slots_[n.child0];
      const Batch& bb = *scratch->slots_[n.child1];
      for (int64_t i = 0; i < len; ++i) {
        out.num[i] = ba.num[i] + bb.num[i];
        out.valid[i] = 1;
      }
      break;
    }
    case Expr::Op::kSub: {
      const Batch& ba = *scratch->slots_[n.child0];
      const Batch& bb = *scratch->slots_[n.child1];
      for (int64_t i = 0; i < len; ++i) {
        out.num[i] = ba.num[i] - bb.num[i];
        out.valid[i] = 1;
      }
      break;
    }
    case Expr::Op::kMul: {
      const Batch& ba = *scratch->slots_[n.child0];
      const Batch& bb = *scratch->slots_[n.child1];
      for (int64_t i = 0; i < len; ++i) {
        out.num[i] = ba.num[i] * bb.num[i];
        out.valid[i] = 1;
      }
      break;
    }
  }
}

void CompiledPredicate::EvalBoolInto(const ColumnarRelation& rel,
                                     int64_t begin, int64_t end,
                                     Scratch* scratch, uint8_t* out) const {
  PrepareScratch(scratch);
  const int num_nodes = static_cast<int>(nodes_.size());
  for (int64_t b0 = begin; b0 < end; b0 += kBatchRows) {
    const int64_t len = std::min<int64_t>(kBatchRows, end - b0);
    for (int ni = 0; ni < num_nodes; ++ni)
      EvalNode(rel, ni, b0, len, scratch);
    const Scratch::Batch& root = *scratch->slots_[num_nodes - 1];
    uint8_t* dst = out + (b0 - begin);
    for (int64_t i = 0; i < len; ++i)
      dst[i] = root.valid[i] && root.num[i] != 0.0;
  }
}

void CompiledPredicate::SelectInto(const ColumnarRelation& rel, int64_t begin,
                                   int64_t end, Scratch* scratch,
                                   std::vector<int32_t>* out) const {
  PrepareScratch(scratch);
  const int num_nodes = static_cast<int>(nodes_.size());
  for (int64_t b0 = begin; b0 < end; b0 += kBatchRows) {
    const int64_t len = std::min<int64_t>(kBatchRows, end - b0);
    for (int ni = 0; ni < num_nodes; ++ni)
      EvalNode(rel, ni, b0, len, scratch);
    const Scratch::Batch& root = *scratch->slots_[num_nodes - 1];
    // Branch-free compaction: write every candidate index, advance the
    // cursor only on matches, then trim. Avoids a per-row push_back
    // (capacity check + branch) in the selection loop.
    const size_t base = out->size();
    out->resize(base + len);
    int32_t* dst = out->data() + base;
    int64_t k = 0;
    for (int64_t i = 0; i < len; ++i) {
      dst[k] = static_cast<int32_t>(b0 + i);
      k += root.valid[i] && root.num[i] != 0.0;
    }
    out->resize(base + k);
  }
}

}  // namespace xai::rel
