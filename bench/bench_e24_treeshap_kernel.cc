// E24 — Flat batched TreeSHAP: allocation-free iterative polynomial kernel
// on the SoA ensemble vs the recursive AoS walk, plus the batch API and
// the serving wire-in.
//
// Systems claim (§3 of the paper: explanation workloads are data-management
// workloads): exact TreeSHAP is the workhorse attribution for tree models,
// and its inner loop deserves the same compiled treatment inference got in
// E20 — SoA node layout plus a lazily built cover side-table, an explicit
// node stack with a preallocated path arena instead of recursion with a
// heap-allocated path copy per node, and a rows-by-trees blocked batch API
// for global importance and batch serving.
// Expected shape: the flat kernel beats the recursive walk on serial
// single-instance latency and per-node cost, the batch API beats a per-row
// loop of the recursive walk, every attribution stays bitwise identical to
// the reference at 1/4/8 threads, and the serving path runs TreeSHAP on
// the registry's prebuilt kernel with zero steady-state arena growth.
// (Headroom note: ~80% of the walk is the Algorithm 2 path arithmetic —
// divides in EXTEND/UNWIND — which bit-identity pins in place, so the
// structural win is bounded; on multi-core hosts the batch API additionally
// scales across row tiles, which a 1-CPU CI container cannot show.)
//
// Emits BENCH_e24.json (+ Chrome trace) via bench::RunReport; `--smoke`
// shrinks the workload for CI.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/explain/shapley/flat_tree_shap.h"
#include "xai/explain/shapley/tree_shap.h"
#include "xai/model/gbdt.h"
#include "xai/model/random_forest.h"
#include "xai/model/serialization.h"
#include "xai/model/tree_ensemble_view.h"
#include "xai/serve/explain_server.h"

namespace xai {
namespace {

// Best-of-k wall time of `fn` (first call also serves as warm-up).
template <typename Fn>
double BestOf(int reps, const Fn& fn) {
  double best = 1e300;
  for (int i = 0; i <= reps; ++i) {
    WallTimer timer;
    fn();
    if (i > 0) best = std::min(best, timer.Seconds());
  }
  return best;
}

bool BitIdentical(const AttributionExplanation& a,
                  const AttributionExplanation& b) {
  return a.attributions == b.attributions && a.base_value == b.base_value &&
         a.prediction == b.prediction;
}

int64_t CounterValue(const std::map<std::string, int64_t>& snapshot,
                     const std::string& name) {
  auto it = snapshot.find(name);
  return it != snapshot.end() ? it->second : 0;
}

// Single-instance latency: recursive AoS reference vs the flat iterative
// kernel, both serial (SetNumThreads(1) makes the reference's per-tree
// ParallelFor run inline). TreeShap() is the real API cost including the
// per-call FlatTreeShap::Build against warm caches.
void RunSingleInstance(int threads, bool smoke, bench::RunReport* report) {
  bench::Section("single instance: recursive AoS walk vs flat kernel");
  Dataset train = MakeLoans(smoke ? 600 : 1200, 30);
  const int kInstances = 20;
  const int kReps = smoke ? 5 : 10;

  RandomForestConfig rf_config;
  rf_config.n_trees = smoke ? 50 : 100;
  auto rf = RandomForestModel::Train(train, rf_config).ValueOrDie();
  GbdtConfig gb_config;
  gb_config.n_trees = smoke ? 100 : 200;
  gb_config.max_depth = 6;
  auto gb = GbdtModel::Train(train, gb_config).ValueOrDie();

  struct Case {
    const char* name;
    TreeEnsembleView view;
  };
  Case cases[] = {{"rf", TreeEnsembleView::Of(rf)},
                  {"gbdt", TreeEnsembleView::Of(gb)}};

  std::printf("%8s %12s %14s %14s %9s %6s\n", "model", "kernel",
              "us/instance", "speedup", "threads", "biteq");
  SetNumThreads(1);
  for (Case& c : cases) {
    double sink = 0.0;
    const double legacy_sec = BestOf(kReps, [&] {
      for (int i = 0; i < kInstances; ++i)
        sink += TreeShapLegacy(c.view, train.Row(i)).base_value;
    });
    const double flat_sec = BestOf(kReps, [&] {
      for (int i = 0; i < kInstances; ++i)
        sink += TreeShap(c.view, train.Row(i)).base_value;
    });
    bool identical = true;
    for (int i = 0; i < kInstances; ++i)
      identical = identical && BitIdentical(TreeShap(c.view, train.Row(i)),
                                            TreeShapLegacy(c.view,
                                                           train.Row(i)));
    const double speedup = flat_sec > 0 ? legacy_sec / flat_sec : 0.0;
    std::printf("%8s %12s %14.1f %14s %9d %6s\n", c.name, "recursive",
                legacy_sec / kInstances * 1e6, "ref", 1, "ref");
    std::printf("%8s %12s %14.1f %13.2fx %9d %6s\n", c.name, "flat",
                flat_sec / kInstances * 1e6, speedup, 1,
                identical ? "yes" : "NO");
    report->Metric(std::string(c.name) + "_single_speedup_serial", speedup);
    report->Metric(std::string(c.name) + "_single_bit_identical",
                   identical ? 1.0 : 0.0);
    (void)sink;
  }
  SetNumThreads(threads);
}

// Global-importance shape: explain every row of a matrix. Reference is the
// pre-batch path — a serial per-row loop over the recursive walk — against
// TreeShapBatch at 1/4/8 threads.
void RunBatch(int threads, bool smoke, bench::RunReport* report) {
  bench::Section("batched rows: per-row recursive loop vs TreeShapBatch");
  Dataset train = MakeLoans(smoke ? 600 : 1200, 31);
  const int kRows = smoke ? 192 : 768;
  const int kReps = smoke ? 3 : 5;

  GbdtConfig config;
  config.n_trees = smoke ? 100 : 200;
  config.max_depth = 6;
  auto model = GbdtModel::Train(train, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);

  Matrix rows(kRows, train.num_features());
  for (int i = 0; i < kRows; ++i) {
    const double* src = train.x().RowPtr(i % train.num_rows());
    std::copy(src, src + train.num_features(), rows.RowPtr(i));
  }

  SetNumThreads(1);
  std::vector<AttributionExplanation> reference(kRows);
  const double legacy_sec = BestOf(kReps, [&] {
    for (int i = 0; i < kRows; ++i)
      reference[i] = TreeShapLegacy(view, rows.Row(i));
  });
  std::printf("%10s %12d rows %12.1f ms %10.1f rows/s (reference)\n",
              "recursive", kRows, legacy_sec * 1e3, kRows / legacy_sec);

  double best_speedup = 0.0;
  for (int t : {1, 4, 8}) {
    SetNumThreads(t);
    TreeShapBatchResult batch;
    const double flat_sec =
        BestOf(kReps, [&] { batch = TreeShapBatch(view, rows); });
    bool identical = batch.attributions.rows() == kRows;
    for (int i = 0; identical && i < kRows; ++i) {
      identical = batch.base_value == reference[i].base_value &&
                  batch.predictions[i] == reference[i].prediction;
      for (int j = 0; identical && j < rows.cols(); ++j)
        identical = batch.attributions(i, j) == reference[i].attributions[j];
    }
    const double speedup = flat_sec > 0 ? legacy_sec / flat_sec : 0.0;
    best_speedup = std::max(best_speedup, speedup);
    std::printf("%10s %2d thread(s) %12.1f ms %10.1f rows/s %8.2fx %s\n",
                "flat-batch", t, flat_sec * 1e3, kRows / flat_sec, speedup,
                identical ? "biteq" : "MISMATCH");
    report->Metric("global_speedup_t" + std::to_string(t), speedup);
    report->Metric("global_bit_identical_t" + std::to_string(t),
                   identical ? 1.0 : 0.0);
  }
  report->Metric("global_speedup_max", best_speedup);
  SetNumThreads(threads);
}

// Depth / tree-count sweep: serial per-node retire rate of both kernels.
void RunSweep(bool smoke, bench::RunReport* report) {
  bench::Section("depth x tree-count sweep (serial, ns per node visit)");
  Dataset train = MakeLoans(smoke ? 400 : 800, 32);
  const int kReps = smoke ? 3 : 5;
  const int kInstances = 10;
  std::printf("%8s %8s %10s %14s %14s %10s\n", "trees", "depth", "nodes",
              "recursive", "flat", "speedup");
  SetNumThreads(1);
  for (int n_trees : smoke ? std::vector<int>{30, 60}
                           : std::vector<int>{50, 200}) {
    for (int depth : {4, 8}) {
      GbdtConfig config;
      config.n_trees = n_trees;
      config.max_depth = depth;
      auto model = GbdtModel::Train(train, config).ValueOrDie();
      TreeEnsembleView view = TreeEnsembleView::Of(model);
      FlatTreeShap kernel = FlatTreeShap::Build(view);
      const double nodes = static_cast<double>(kernel.num_nodes());
      double sink = 0.0;
      const double legacy_sec = BestOf(kReps, [&] {
        for (int i = 0; i < kInstances; ++i)
          sink += TreeShapLegacy(view, train.Row(i)).base_value;
      });
      const double flat_sec = BestOf(kReps, [&] {
        for (int i = 0; i < kInstances; ++i)
          sink += kernel.Shap(train.Row(i)).base_value;
      });
      (void)sink;
      const double legacy_ns = legacy_sec / kInstances / nodes * 1e9;
      const double flat_ns = flat_sec / kInstances / nodes * 1e9;
      std::printf("%8d %8d %10.0f %11.2f ns %11.2f ns %9.2fx\n", n_trees,
                  depth, nodes, legacy_ns, flat_ns,
                  flat_ns > 0 ? legacy_ns / flat_ns : 0.0);
      report->Metric("sweep_t" + std::to_string(n_trees) + "_d" +
                         std::to_string(depth) + "_flat_ns_per_node",
                     flat_ns);
    }
  }
}

// Serving wire-in: a kTreeShap request through ExplainServer runs on the
// registry's prebuilt flat kernel. Steady state must not grow any arena:
// after warm-up, `tree_shap/arena_grow` stays flat while
// `tree_shap/arena_reuse` advances once per request.
void RunServing(int threads, bool smoke, bench::RunReport* report) {
  bench::Section("serving e2e: kTreeShap request on the prebuilt kernel");
  Dataset train = MakeLoans(600, 33);
  Dataset background = MakeLoans(64, 34);
  GbdtConfig config;
  config.n_trees = smoke ? 100 : 200;
  config.max_depth = 6;
  auto model = GbdtModel::Train(train, config).ValueOrDie();

  SetNumThreads(threads);
  serve::ExplainServer server;
  server.registry()
      .Register("loans", SerializeModel(model), background)
      .ValueOrDie();

  serve::ExplainRequest request;
  request.model = "loans";
  request.kind = serve::ExplainerKind::kTreeShap;
  request.use_cache = false;  // Measure execution, not the response cache.

  const int kWarm = 32;
  const int kRequests = smoke ? 200 : 1000;
  for (int i = 0; i < kWarm; ++i) {
    request.instance = train.Row(i % train.num_rows());
    server.Explain(request).ValueOrDie();
  }

  auto& registry = telemetry::Registry::Global();
  const auto before = registry.CounterSnapshot();
  WallTimer timer;
  for (int i = 0; i < kRequests; ++i) {
    request.instance = train.Row(i % train.num_rows());
    server.Explain(request).ValueOrDie();
  }
  const double total_sec = timer.Seconds();
  const auto after = registry.CounterSnapshot();

  const int64_t grew = CounterValue(after, "tree_shap/arena_grow") -
                       CounterValue(before, "tree_shap/arena_grow");
  const int64_t reused = CounterValue(after, "tree_shap/arena_reuse") -
                         CounterValue(before, "tree_shap/arena_reuse");
  const bool steady = grew == 0 && reused >= kRequests;
  std::printf("%d requests in %.1f ms (%.0f req/s, %.3f ms/req)\n",
              kRequests, total_sec * 1e3, kRequests / total_sec,
              total_sec / kRequests * 1e3);
#if XAI_TELEMETRY
  std::printf("arena after warm-up: grow +%lld, reuse +%lld -> steady "
              "state %s\n",
              static_cast<long long>(grew), static_cast<long long>(reused),
              steady ? "allocation-free" : "STILL ALLOCATING");
  report->Metric("serving_arena_steady_ok", steady ? 1.0 : 0.0);
#else
  // The arena counters are compiled out with the rest of telemetry, so
  // steady state is unobservable here; only the telemetry-on CI job runs
  // the --e24 gates. Emitting a fake 0/1 either way would be dishonest.
  (void)grew;
  (void)reused;
  (void)steady;
  std::printf("arena counters compiled out (XAI_TELEMETRY=0) — steady "
              "state not observable in this build\n");
#endif
  report->Metric("serving_treeshap_ms", total_sec / kRequests * 1e3);
}

void Run(int threads, bool smoke) {
  const char* claim =
      "exact TreeSHAP is a batch data-management workload: an iterative "
      "allocation-free kernel on the SoA ensemble beats the recursive "
      "per-instance walk without changing a single output bit (S3)";
  bench::Banner("E24: flat batched TreeSHAP kernel", claim,
                "loans RF/GBDT; single-instance, batched rows, depth/tree "
                "sweep, serving e2e");
  bench::RunReport report("e24", claim);
  telemetry::Registry::Global().Reset();

  RunSingleInstance(threads, smoke, &report);
  RunBatch(threads, smoke, &report);
  RunSweep(smoke, &report);
  RunServing(threads, smoke, &report);

  std::printf("\nShape check: flat kernel faster serially and per-node, "
              "batch faster than a per-row recursive loop, everything "
              "bit-identical, serving arena allocation-free in steady "
              "state.\n");
  report.Note("smoke", smoke ? "true" : "false");
  report.Write();
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main(int argc, char** argv) {
  int threads = xai::bench::ThreadsFlag(argc, argv);
  bool smoke = xai::bench::SmokeFlag(argc, argv);
  xai::SetNumThreads(threads);
  xai::Run(threads, smoke);
}
