// E6 — Anchors: short high-precision rules via bandit search (§2.2).
//
// Paper claim: "Anchors is a method that attempts to generate short and
// widely applicable rules. It uses a multi-armed bandit-based algorithm to
// search for these rules."; also "longer rules (more than 5 clauses) are
// incomprehensible".
// Expected shape: anchors reach the precision target with rules of 1-3
// predicates; a LIME-top-k-as-rule baseline at the same length has lower
// precision because LIME optimizes local fit, not rule precision.

#include <cstdio>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/explain/lime.h"
#include "xai/model/random_forest.h"
#include "xai/rules/anchors.h"

namespace xai {
namespace {

// Estimates the precision of the rule "features frozen to instance's bins"
// under the anchors perturbation distribution.
double RulePrecision(const Dataset& train, const PredictFn& f,
                     const Vector& instance,
                     const std::vector<int>& features, uint64_t seed) {
  Perturber perturber(train, Perturber::Strategy::kDiscretized);
  const QuantileDiscretizer& disc = perturber.discretizer();
  Rng rng(seed);
  int instance_class = f(instance) >= 0.5 ? 1 : 0;
  int agree = 0;
  const int kSamples = 2000;
  Matrix samples = perturber.Sample(instance, kSamples, &rng);
  for (int i = 0; i < kSamples; ++i) {
    Vector row = samples.Row(i);
    for (int j : features) {
      if (train.schema().features[j].is_categorical()) {
        row[j] = instance[j];
      } else {
        row[j] = disc.SampleFromBin(j, disc.BinOf(j, instance[j]), &rng);
      }
    }
    if ((f(row) >= 0.5 ? 1 : 0) == instance_class) ++agree;
  }
  return static_cast<double>(agree) / kSamples;
}

void Run() {
  bench::Banner(
      "E6: Anchors vs LIME-as-rule",
      "\"short and widely applicable rules ... multi-armed bandit-based "
      "algorithm\" (S2.2)",
      "loans n=1200, random forest(40); 10 instances; tau = 0.9");

  Dataset train = MakeLoans(1200, 1);
  RandomForestModel::Config mc;
  mc.n_trees = 40;
  auto model = RandomForestModel::Train(train, mc).ValueOrDie();
  PredictFn f = AsPredictFn(model);

  AnchorsConfig config;
  config.precision_target = 0.9;
  AnchorsExplainer anchors(train, config);
  LimeConfig lime_config;
  lime_config.num_samples = 1000;
  LimeExplainer lime(train, lime_config);

  double anchor_precision = 0, anchor_coverage = 0, anchor_len = 0,
         anchor_samples = 0, anchor_ms = 0;
  double lime_precision = 0, lime_ms = 0;
  const int kInstances = 10;
  for (int i = 0; i < kInstances; ++i) {
    int row = i * 37 + 5;
    Vector instance = train.Row(row);
    {
      WallTimer timer;
      AnchorRule rule = anchors.Explain(f, instance, 40 + i).ValueOrDie();
      anchor_ms += timer.Millis();
      anchor_precision += RulePrecision(train, f, instance, rule.features,
                                        500 + i);
      anchor_coverage += rule.coverage;
      anchor_len += static_cast<double>(rule.features.size());
      anchor_samples += rule.samples_used;
    }
    {
      WallTimer timer;
      LimeExplanation exp = lime.Explain(f, instance, 60 + i).ValueOrDie();
      lime_ms += timer.Millis();
      // Baseline rule: freeze LIME's top-2 features.
      std::vector<int> top = exp.TopFeatures(2);
      lime_precision += RulePrecision(train, f, instance, top, 700 + i);
    }
  }

  std::printf("%18s %12s %10s %8s %12s %10s\n", "method", "precision",
              "coverage", "length", "samples", "ms/inst");
  std::printf("%18s %12.3f %10.3f %8.1f %12.0f %10.1f\n", "Anchors",
              anchor_precision / kInstances, anchor_coverage / kInstances,
              anchor_len / kInstances, anchor_samples / kInstances,
              anchor_ms / kInstances);
  std::printf("%18s %12.3f %10s %8.1f %12s %10.1f\n", "LIME-top2-rule",
              lime_precision / kInstances, "-", 2.0, "-",
              lime_ms / kInstances);
  std::printf(
      "\nShape check: Anchors precision >= 0.9 target and above the "
      "LIME-as-rule baseline at comparable length.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
