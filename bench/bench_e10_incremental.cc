// E10 — PrIU-style incremental model maintenance vs full retraining (§3).
//
// Paper claim: "An interesting new direction is to adopt database techniques
// such as incremental view maintenance to estimate the parameters of the
// updated model by incrementally retraining the model" (PrIU, Wu et al.).
// Expected shape: Sherman-Morrison downdates update the linear model orders
// of magnitude faster than refitting, with parameter distance at numerical
// noise; the logistic one-step correction is fast with small approximation
// error that the warm-started refinement removes.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/unlearn/incremental_linear.h"
#include "xai/unlearn/incremental_logistic.h"

namespace xai {
namespace {

double ParamDistance(const Vector& a, double ba, const Vector& b,
                     double bb) {
  double acc = (ba - bb) * (ba - bb);
  for (size_t j = 0; j < a.size(); ++j)
    acc += (a[j] - b[j]) * (a[j] - b[j]);
  return std::sqrt(acc);
}

void Run() {
  bench::Banner(
      "E10: incremental maintenance vs full retraining",
      "\"adopt database techniques such as incremental view maintenance to "
      "estimate the parameters of the updated model\" (S3, PrIU)",
      "linear n=4000 d=12; logistic n=3000 d=8; delete k rows");

  bench::Section("ridge linear regression (Sherman-Morrison downdates)");
  auto [linear_data, lin_gt] = MakeLinearData(4000, 12, 0.4, 1);
  (void)lin_gt;
  std::printf("%8s %16s %14s %10s %16s\n", "k", "incremental_ms",
              "retrain_ms", "speedup", "param_dist");
  for (int k : {1, 16, 128, 512}) {
    auto maintained = MaintainedLinearRegression::Fit(linear_data.x(),
                                                      linear_data.y(), 1e-6)
                          .ValueOrDie();
    std::vector<int> rows;
    for (int i = 0; i < k; ++i) rows.push_back(i * 7);
    WallTimer inc_timer;
    XAI_CHECK(maintained.RemoveRows(rows).ok());
    double inc_ms = inc_timer.Millis();

    WallTimer retrain_timer;
    LinearRegressionModel::Config config;
    config.l2 = 1e-6;
    auto retrained =
        LinearRegressionModel::Train(linear_data.Without(rows), config)
            .ValueOrDie();
    double retrain_ms = retrain_timer.Millis();

    std::printf("%8d %16.3f %14.1f %9.0fx %16.2e\n", k, inc_ms, retrain_ms,
                retrain_ms / inc_ms,
                ParamDistance(maintained.weights(), maintained.bias(),
                              retrained.weights(), retrained.bias()));
  }

  bench::Section(
      "logistic regression (cached-aggregate one-step Newton correction)");
  auto [logistic_data, log_gt] = MakeLogisticData(3000, 8, 2);
  (void)log_gt;
  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  std::printf("%8s %10s %16s %14s %10s %16s\n", "k", "refine",
              "incremental_ms", "retrain_ms", "speedup", "param_dist");
  for (int k : {8, 64, 256}) {
    for (int refine : {0, 3}) {
      auto maintained = MaintainedLogisticRegression::Fit(
                            logistic_data.x(), logistic_data.y(), config)
                            .ValueOrDie();
      std::vector<int> rows;
      for (int i = 0; i < k; ++i) rows.push_back(i * 9);
      WallTimer inc_timer;
      XAI_CHECK(maintained.RemoveRows(rows, refine).ok());
      double inc_ms = inc_timer.Millis();

      WallTimer retrain_timer;
      auto retrained = LogisticRegressionModel::Train(
                           logistic_data.Without(rows), config)
                           .ValueOrDie();
      double retrain_ms = retrain_timer.Millis();
      std::printf("%8d %10d %16.2f %14.1f %9.1fx %16.2e\n", k, refine,
                  inc_ms, retrain_ms, retrain_ms / inc_ms,
                  ParamDistance(maintained.weights(), maintained.bias(),
                                retrained.weights(), retrained.bias()));
    }
  }
  std::printf(
      "\nShape check: linear updates exact (param_dist ~1e-10) with 10-"
      "1000x speedups; logistic one-step small error, refined ~exact.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
