// A2 (ablation) — DaRE-tree rebuild tolerance.
//
// DESIGN.md calls out the robustness margin (HedgeCut's split-robustness
// idea): the cached split is kept unless a competitor beats it by a relative
// margin. Tolerance 0 rebuilds on every near-tie flip (slow, "exact-greedy"
// structure); large tolerances rarely rebuild but let the structure drift.
// This sweep measures the latency/rebuild/accuracy trade-off.

#include <cstdio>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/unlearn/dare_tree.h"

namespace xai {
namespace {

double TreeAccuracy(const DareTree& tree, const Dataset& test) {
  int correct = 0;
  for (int i = 0; i < test.num_rows(); ++i) {
    int pred = tree.Predict(test.Row(i)) >= 0.5 ? 1 : 0;
    if (pred == static_cast<int>(test.Label(i))) ++correct;
  }
  return static_cast<double>(correct) / test.num_rows();
}

void Run() {
  bench::Banner(
      "A2 (ablation): DaRE rebuild tolerance",
      "design choice from DESIGN.md: keep the cached split unless beaten by "
      "a relative robustness margin",
      "loans n_train=4500; 1000 random deletions per setting");

  Dataset data = MakeLoans(6000, 1);
  auto [train, test] = data.TrainTestSplit(0.25, 2);

  std::printf("%12s %14s %12s %14s %12s\n", "tolerance", "us/deletion",
              "rebuilds", "rows_rebuilt", "accuracy");
  for (double tolerance : {0.0, 0.005, 0.02, 0.05, 0.2}) {
    DareTreeConfig config;
    config.rebuild_tolerance = tolerance;
    auto tree = DareTree::Train(train, config).ValueOrDie();
    Rng rng(3);
    std::vector<int> order = rng.Permutation(train.num_rows());
    const int kDeletions = 1000;
    WallTimer timer;
    for (int i = 0; i < kDeletions; ++i)
      XAI_CHECK(tree.Delete(order[i]).ok());
    double us = timer.Micros() / kDeletions;
    std::printf("%12.3f %14.1f %12d %14d %12.3f\n", tolerance, us,
                tree.num_rebuilds(), tree.rows_retrained(),
                TreeAccuracy(tree, test));
  }
  std::printf(
      "\nShape check: rebuilds and latency fall monotonically with "
      "tolerance while accuracy stays within noise — the margin buys "
      "latency nearly for free.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
