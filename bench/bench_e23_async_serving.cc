// E23 — Async multi-tenant serving front end: open-loop admission under
// Zipfian load, interactive explanation sessions, and wire-level
// determinism (§3, explanations as query results).
//
// Paper claim: interactive, multi-tenant explanation serving needs a
// database-style front end — admission control that sheds load *before*
// compute is spent, a compact wire format whose cache fast path never
// deserializes the payload, and session-scoped dialogue state so what-if
// follow-ups cost a fraction of a cold query.
// Expected shape: >= 10k req/s synthetic (virtual-time) arrival through
// the admission path with a bounded, deterministic shed rate; zero torn
// responses (every frame's embedded payload hash matches a recomputation
// over the decoded payload); session follow-ups >= 2x faster than the
// cold turn; wire payloads bit-identical across {1, 4, 8} compute
// threads.
//
// Emits BENCH_e23.json and BENCH_e23.provenance.jsonl (completed turns
// plus typed shed records, schema-validated in CI by
// tools/validate_bench_report.py --e23 --provenance); `--smoke` shrinks
// the workload for CI.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "xai/core/rng.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/model/gbdt.h"
#include "xai/model/serialization.h"
#include "xai/serve/async/admission.h"
#include "xai/serve/async/event_loop.h"
#include "xai/serve/async/frontend.h"
#include "xai/serve/async/wire.h"
#include "xai/serve/explain_server.h"
#include "xai/serve/provenance.h"

namespace xai {
namespace {

using serve::ExplainRequest;
using serve::ExplainServer;
using serve::ExplainerKind;
using serve::ExplanationProvenance;
using serve::FidelityTier;
using serve::async::AsyncFrontEnd;
using serve::async::DecodeError;
using serve::async::DecodeResponse;
using serve::async::EncodeRequest;
using serve::async::FrameFuture;
using serve::async::FrameType;
using serve::async::PeekFrameType;
using serve::async::VirtualClock;
using serve::async::WireResponse;

struct Workbench {
  Dataset background;
  std::string gbdt_text;
  std::vector<Vector> instances;

  explicit Workbench(bool smoke) : background(MakeLoans(smoke ? 24 : 48, 4)) {
    Dataset train = MakeLoans(300, 3);
    GbdtModel::Config config;
    config.n_trees = 5;
    gbdt_text = SerializeModel(GbdtModel::Train(train, config).ValueOrDie());
    for (int i = 0; i < 8; ++i) instances.push_back(train.Row(i));
  }

  void Register(ExplainServer* server) const {
    server->registry().Register("loans", gbdt_text, background).ValueOrDie();
  }
};

// Open-loop arrivals on a virtual clock: N requests at a fixed synthetic
// rate, tenants and instances drawn from Zipf-shaped weights. Admission is
// a pure function of (tenant state, virtual arrival time), so the
// admit/shed split is bit-reproducible run to run — the bucket gate does
// the shedding (the pending bound is disabled: completions happen in real
// time and would make the split machine-dependent). Every completed frame
// is checked for tearing against its embedded payload hash.
void RunOpenLoopAdmission(const Workbench& bench, bool smoke,
                          bench::RunReport* report,
                          std::vector<ExplanationProvenance>* provenance) {
  bench::Section("open-loop Zipfian load through admission (virtual time)");
  const int kArrivals = smoke ? 4000 : 20000;
  // The batcher queue must hold every admitted request at once: arrivals
  // are submitted in a virtual-time burst, so a smaller queue would add
  // machine-dependent try-enqueue sheds on top of the deterministic
  // token-bucket split.
  ExplainServer::Config server_config;
  server_config.batcher.max_queue = kArrivals;
  ExplainServer server(server_config);
  bench.Register(&server);

  static const char* kTenants[] = {"alpha", "beta",    "gamma",
                                   "delta", "epsilon", "zeta"};
  constexpr int kNumTenants = 6;
  const double kArrivalRate = 20000.0;  // req/s of virtual time.
  const int64_t kGapNs = static_cast<int64_t>(1e9 / kArrivalRate);

  VirtualClock clock;
  AsyncFrontEnd::Config config;
  config.clock = &clock;
  config.admission.tokens_per_sec = 3000.0;
  config.admission.burst = 150.0;
  config.admission.max_pending_per_tenant = 0;  // See function comment.
  config.max_shed_records = static_cast<size_t>(kArrivals);
  AsyncFrontEnd frontend(&server, config);

  // Zipf weights 1/rank over tenants, instances, and explainer kinds.
  auto zipf = [](int n) {
    std::vector<double> w(n);
    for (int i = 0; i < n; ++i) w[i] = 1.0 / (i + 1);
    return w;
  };
  const std::vector<double> tenant_w = zipf(kNumTenants);
  const std::vector<double> instance_w = zipf(8);
  const ExplainerKind kinds[] = {ExplainerKind::kTreeShap,
                                 ExplainerKind::kKernelShap,
                                 ExplainerKind::kLime};
  const std::vector<double> kind_w = zipf(3);

  Rng rng(2023);
  std::vector<FrameFuture> futures;
  futures.reserve(kArrivals);
  WallTimer timer;
  for (int i = 0; i < kArrivals; ++i) {
    clock.AdvanceTo(static_cast<int64_t>(i) * kGapNs);
    ExplainRequest request;
    request.model = "loans";
    request.instance = bench.instances[rng.Categorical(instance_w)];
    request.kind = kinds[rng.Categorical(kind_w)];
    request.fidelity = FidelityTier::kReduced;
    request.tenant = kTenants[rng.Categorical(tenant_w)];
    request.trace.trace_id = static_cast<uint64_t>(i) + 1;
    futures.push_back(frontend.SubmitWire(EncodeRequest(request)));
  }
  frontend.Drain();
  const double wall_s = timer.Seconds();

  int64_t completed = 0, shed = 0, torn = 0, errors = 0;
  for (FrameFuture& future : futures) {
    const std::string& frame = future.Get();
    const FrameType type = PeekFrameType(frame).ValueOrDie();
    if (type == FrameType::kResponse) {
      const WireResponse wire = DecodeResponse(frame).ValueOrDie();
      if (serve::PayloadHash(wire.response) != wire.payload_hash) ++torn;
      ++completed;
    } else {
      const auto error = DecodeError(frame).ValueOrDie();
      if (error.code == StatusCode::kOverloaded)
        ++shed;
      else
        ++errors;
    }
  }
  const double virtual_span_s =
      static_cast<double>(kArrivals) * kGapNs / 1e9;
  const double shed_rate =
      static_cast<double>(shed) / static_cast<double>(kArrivals);
  const bool shed_bounded = shed > 0 && shed_rate < 0.6;

  std::printf("  %d arrivals over %.2f s virtual (%.0f req/s synthetic), "
              "wall %.2f s (%.0f req/s delivered)\n",
              kArrivals, virtual_span_s, kArrivals / virtual_span_s, wall_s,
              wall_s > 0 ? completed / wall_s : 0.0);
  std::printf("  %lld completed, %lld shed (rate %.3f, bounded=%s), %lld "
              "torn (must be 0), %lld errors\n",
              static_cast<long long>(completed), static_cast<long long>(shed),
              shed_rate, shed_bounded ? "yes" : "NO",
              static_cast<long long>(torn), static_cast<long long>(errors));
  for (const auto& [tenant, stats] : frontend.admission().Snapshot())
    std::printf("    tenant %-8s admitted=%-6lld shed=%-6lld pending=%d\n",
                tenant.c_str(), static_cast<long long>(stats.admitted),
                static_cast<long long>(stats.shed_rate_limited +
                                       stats.shed_pending_full),
                stats.pending);

  for (ExplanationProvenance& record : frontend.DrainShedRecords())
    provenance->push_back(std::move(record));

  report->Metric("arrival_rate_rps", kArrivals / virtual_span_s);
  report->Metric("arrival_rate_ok",
                 kArrivals / virtual_span_s >= 10000.0 ? 1.0 : 0.0);
  report->Metric("delivered_rps", wall_s > 0 ? completed / wall_s : 0.0);
  report->Metric("open_loop_arrivals", kArrivals);
  report->Metric("open_loop_completed", static_cast<double>(completed));
  report->Metric("open_loop_shed", static_cast<double>(shed));
  report->Metric("shed_rate", shed_rate);
  report->Metric("shed_rate_bounded_ok", shed_bounded ? 1.0 : 0.0);
  report->Metric("torn_responses", static_cast<double>(torn));
  report->Metric("open_loop_errors", static_cast<double>(errors));
}

// Interactive dialogue: a cold KernelSHAP turn builds the session's
// coalition memo; what-if follow-ups (one feature nudged per turn) replay
// memoized coalitions and must land >= 2x faster than the cold turn while
// staying bit-identical to a from-scratch stateless run. A counterfactual
// turn then banks its candidates and a follow-up is answered from the
// pool by re-validation.
void RunSessionDialogue(const Workbench& bench, bool smoke,
                        bench::RunReport* report,
                        std::vector<ExplanationProvenance>* provenance) {
  bench::Section("session dialogue: cold turn vs what-if follow-ups");
  ExplainServer server;
  bench.Register(&server);
  AsyncFrontEnd frontend(&server);
  const uint64_t session = frontend.OpenSession().ValueOrDie();

  ExplainRequest base;
  base.model = "loans";
  base.instance = bench.instances[0];
  base.kind = ExplainerKind::kKernelShap;
  base.fidelity = FidelityTier::kStandard;
  base.seed = 17;
  base.tenant = "acme";
  base.trace.trace_id = 424242;  // Session turns keep the caller's trace.
  base.use_cache = false;  // Follow-ups differ, the memo does the caching.

  WallTimer cold_timer;
  const auto cold = frontend.Submit(base, session).Get().ValueOrDie();
  const double cold_ms = cold_timer.Seconds() * 1e3;
  provenance->push_back(cold.provenance);

  const int kFollowUps = smoke ? 6 : 24;
  double warm_total_ms = 0.0;
  int64_t warm_evals = 0;
  bool identical = true;
  for (int i = 0; i < kFollowUps; ++i) {
    ExplainRequest what_if = base;
    what_if.instance[i % what_if.instance.size()] += 0.5 * (1 + i / 8);
    WallTimer warm_timer;
    const auto warm = frontend.Submit(what_if, session).Get().ValueOrDie();
    warm_total_ms += warm_timer.Seconds() * 1e3;
    warm_evals += warm.provenance.used_evals;
    provenance->push_back(warm.provenance);
    // Memo trades cost, never content: bit-identical to stateless.
    const auto stateless = server.Explain(what_if).ValueOrDie();
    if (serve::PayloadHash(warm) != serve::PayloadHash(stateless))
      identical = false;
  }
  const double warm_ms = warm_total_ms / kFollowUps;
  const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
  const auto stats = frontend.sessions().GetStats();
  std::printf("  cold turn %8.2f ms (%lld evals); %d follow-ups avg %8.2f "
              "ms — %.2fx (target >= 2x), bit-identical=%s\n",
              cold_ms, static_cast<long long>(cold.provenance.used_evals),
              kFollowUps, warm_ms, speedup, identical ? "yes" : "NO");
  std::printf("  memo: %lld hits / %lld misses across the dialogue\n",
              static_cast<long long>(stats.memo_hits),
              static_cast<long long>(stats.memo_misses));

  // Counterfactual pool: ask for the flip class so the search is
  // non-trivial, then re-ask — the follow-up re-validates pooled
  // candidates instead of re-running the random-walk search.
  ExplainRequest cf = base;
  cf.kind = ExplainerKind::kCounterfactual;
  cf.desired_class = 0;
  const auto cf_first = frontend.Submit(cf, session).Get().ValueOrDie();
  const auto cf_second = frontend.Submit(cf, session).Get().ValueOrDie();
  provenance->push_back(cf_first.provenance);
  provenance->push_back(cf_second.provenance);
  std::printf("  counterfactual pool: first turn %lld evals, follow-up "
              "%lld\n",
              static_cast<long long>(cf_first.provenance.used_evals),
              static_cast<long long>(cf_second.provenance.used_evals));

  frontend.Drain();
  report->Metric("session_cold_ms", cold_ms);
  report->Metric("session_warm_ms", warm_ms);
  report->Metric("session_speedup", speedup);
  report->Metric("session_speedup_ok", speedup >= 2.0 ? 1.0 : 0.0);
  report->Metric("session_identical_to_stateless", identical ? 1.0 : 0.0);
  report->Metric("session_memo_hits", static_cast<double>(stats.memo_hits));
  report->Metric("session_reuse_answers",
                 static_cast<double>(stats.reuse_answers));
  report->Metric("cf_pool_first_evals",
                 static_cast<double>(cf_first.provenance.used_evals));
  report->Metric("cf_pool_followup_evals",
                 static_cast<double>(cf_second.provenance.used_evals));
}

// The acceptance gate carried over from e19/e22, now through the wire:
// full encode → admit → execute → encode round trips must produce
// bit-identical payloads at 1, 4, and 8 compute threads.
void RunDeterminism(const Workbench& bench, bench::RunReport* report) {
  bench::Section("wire payload determinism across compute thread counts");
  const ExplainerKind kinds[] = {
      ExplainerKind::kTreeShap, ExplainerKind::kKernelShap,
      ExplainerKind::kSamplingShapley, ExplainerKind::kLime};

  bool identical = true;
  std::map<ExplainerKind, uint64_t> reference;
  for (int threads : {1, 4, 8}) {
    SetNumThreads(threads);
    ExplainServer server;
    bench.Register(&server);
    AsyncFrontEnd frontend(&server);
    for (ExplainerKind kind : kinds) {
      ExplainRequest request;
      request.model = "loans";
      request.instance = bench.instances[1];
      request.kind = kind;
      request.fidelity = FidelityTier::kReduced;
      request.seed = 7;
      request.trace.trace_id = 99;
      FrameFuture future = frontend.SubmitWire(EncodeRequest(request));
      const WireResponse wire = DecodeResponse(future.Get()).ValueOrDie();
      auto [it, inserted] = reference.emplace(kind, wire.payload_hash);
      if (it->second != wire.payload_hash) {
        identical = false;
        std::printf("  MISMATCH: %s differs at %d threads\n",
                    serve::ExplainerKindName(kind), threads);
      }
    }
    frontend.Drain();
  }
  SetNumThreads(1);
  std::printf("  wire payloads bit-identical across {1, 4, 8} threads: %s\n",
              identical ? "yes" : "NO");
  report->Metric("determinism_bit_identical", identical ? 1.0 : 0.0);
}

}  // namespace
}  // namespace xai

int main(int argc, char** argv) {
  const bool smoke = xai::bench::SmokeFlag(argc, argv);
  const int threads = xai::bench::ThreadsFlag(argc, argv);
  xai::SetNumThreads(threads);

  xai::bench::Banner(
      "E23 — async serving front end: admission, sessions, wire",
      "interactive multi-tenant explanation serving: shed before compute, "
      "cache without deserializing, answer follow-ups from session state",
      "open-loop Zipfian arrivals on a virtual clock through token-bucket "
      "admission; session what-if dialogue vs cold turns; wire round-trip "
      "determinism at 1/4/8 threads");

  xai::bench::RunReport report(
      "e23",
      "async front end: admission control, sessions, binary wire format");
  xai::Workbench bench(smoke);
  std::vector<xai::serve::ExplanationProvenance> provenance;
  xai::RunOpenLoopAdmission(bench, smoke, &report, &provenance);
  xai::RunSessionDialogue(bench, smoke, &report, &provenance);
  xai::RunDeterminism(bench, &report);

  const char* jsonl_path = "BENCH_e23.provenance.jsonl";
  {
    std::ofstream os(jsonl_path);
    for (const auto& p : provenance) xai::serve::WriteProvenanceJsonl(os, p);
  }
  std::printf("\nprovenance records (completed + shed): %s (%zu)\n",
              jsonl_path, provenance.size());

  report.Note("smoke", smoke ? "true" : "false");
  report.Write();
  xai::bench::Footer();
  return 0;
}
