// E16 — Complaint-driven training-data debugging (§3).
//
// Paper claim: "Wu et al. proposed a system that uses influence functions
// to explain SQL queries by identifying data points that are responsible
// for an error in a query result (where the query includes predictions from
// an ML model trained over that data)."
// Expected shape: the influence ranking concentrates the injected poisoned
// points at the top (high precision@k); deleting the top-ranked points via
// incremental maintenance moves the complained-about aggregate toward its
// clean value at a fraction of retraining cost.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/influence/complaint.h"
#include "xai/influence/influence_function.h"
#include "xai/model/logistic_regression.h"
#include "xai/unlearn/incremental_logistic.h"

namespace xai {
namespace {

double Aggregate(const LogisticRegressionModel& model, const Matrix& x,
                 const std::vector<int>& rows) {
  double acc = 0;
  for (int r : rows) acc += Sigmoid(model.Margin(x.Row(r)));
  return acc;
}

void Run() {
  bench::Banner(
      "E16: complaint-driven training-data debugging",
      "\"uses influence functions to explain SQL queries by identifying "
      "data points responsible for an error in a query result\" (S3)",
      "logistic model; 60 poisoned labels in one region; complaint: "
      "COUNT(predicted positive) for that region is too high");

  auto [data, gt] = MakeLogisticData(1500, 4, 1);
  (void)gt;
  auto [train, query] = data.TrainTestSplit(0.3, 2);

  // Poison: flip negatives with x0 > 0.4 to positive.
  std::vector<int> poisoned;
  for (int i = 0; i < train.num_rows() && poisoned.size() < 60u; ++i) {
    if (train.Label(i) == 0.0 && train.At(i, 0) > 0.4) {
      (*train.mutable_y())[i] = 1.0;
      poisoned.push_back(i);
    }
  }

  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  auto model = LogisticRegressionModel::Train(train, config).ValueOrDie();
  auto influence =
      LogisticInfluence::Make(model, train.x(), train.y()).ValueOrDie();

  Complaint complaint;
  complaint.direction = +1;
  for (int r = 0; r < query.num_rows(); ++r)
    if (query.At(r, 0) > 0.4) complaint.query_rows.push_back(r);

  WallTimer rank_timer;
  ComplaintResult result =
      ExplainComplaint(influence, query.x(), complaint).ValueOrDie();
  double rank_ms = rank_timer.Millis();

  bench::Section("ranking quality (precision@k over poisoned points)");
  std::printf("%8s %14s\n", "k", "precision@k");
  for (int k : {10, 30, 60, 120}) {
    int hits = 0;
    for (int rank = 0; rank < k; ++rank)
      if (std::find(poisoned.begin(), poisoned.end(),
                    result.ranking[rank]) != poisoned.end())
        ++hits;
    std::printf("%8d %14.3f\n", k, static_cast<double>(hits) / k);
  }
  std::printf("ranking all %d training points took %.1f ms (one Hessian "
              "solve + n dot products)\n",
              train.num_rows(), rank_ms);

  bench::Section("fix: unlearn the top-60 suspects incrementally");
  // Clean reference: what the aggregate should be.
  Dataset clean = train;
  for (int r : poisoned) (*clean.mutable_y())[r] = 0.0;
  auto clean_model = LogisticRegressionModel::Train(clean, config)
                         .ValueOrDie();
  double clean_agg =
      Aggregate(clean_model, query.x(), complaint.query_rows);
  std::printf("aggregate before fix: %.1f (clean reference %.1f)\n",
              result.aggregate, clean_agg);

  std::vector<int> suspects(result.ranking.begin(),
                            result.ranking.begin() + 60);
  auto maintained =
      MaintainedLogisticRegression::Fit(train.x(), train.y(), config)
          .ValueOrDie();
  WallTimer fix_timer;
  XAI_CHECK(maintained.RemoveRows(suspects, 2).ok());
  double fix_ms = fix_timer.Millis();
  auto fixed_model = maintained.CurrentModel();
  double fixed_agg =
      Aggregate(fixed_model, query.x(), complaint.query_rows);

  WallTimer retrain_timer;
  auto retrained = LogisticRegressionModel::Train(
                       train.Without(suspects), config)
                       .ValueOrDie();
  double retrain_ms = retrain_timer.Millis();
  double retrain_agg =
      Aggregate(retrained, query.x(), complaint.query_rows);

  std::printf("aggregate after incremental fix: %.1f (%.1f ms)\n",
              fixed_agg, fix_ms);
  std::printf("aggregate after full retrain   : %.1f (%.1f ms)\n",
              retrain_agg, retrain_ms);
  std::printf(
      "\nShape check: precision@60 well above the poison base rate (60/%d "
      "= %.2f); the fix moves the aggregate most of the way to the clean "
      "reference at lower cost than retraining.\n",
      train.num_rows(), 60.0 / train.num_rows());
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
