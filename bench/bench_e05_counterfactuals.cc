// E5 — Counterfactual generation: plausibility, feasibility, real time
// (§2.1.4 and §3).
//
// Paper claims: DiCE "generates a candidate set of diverse and feasible
// counterfactuals"; counterfactuals "sometimes provide unrealistic and
// impossible counterfactual instances"; "counterfactual explanations must be
// plausible, feasible, and given the huge search space of perturbations,
// generated in real time. Recent efforts in this direction includes GeCo".
// Expected shape: GeCo reaches a valid counterfactual fastest with the
// fewest changed features and near-data (plausible) values; DiCE pays more
// model calls for a *diverse set*; the random-walk baseline is slower and
// produces off-manifold (high plausibility-distance) instances.

#include <cstdio>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/explain/counterfactual/counterfactual.h"
#include "xai/explain/counterfactual/dice.h"
#include "xai/explain/counterfactual/geco.h"
#include "xai/model/gbdt.h"

namespace xai {
namespace {

struct Row {
  double time_ms = 0, calls = 0, proximity = 0, sparsity = 0,
         plausibility = 0, diversity = 0;
  int found = 0, total = 0;

  void Print(const char* name) const {
    std::printf("%14s %8d/%d %10.2f %10.1f %10.2f %10.2f %12.2f %10.2f\n",
                name, found, total, time_ms / total, calls / total,
                proximity / std::max(1, found),
                sparsity / std::max(1, found),
                plausibility / std::max(1, found),
                diversity / std::max(1, found));
  }
};

// Naive baseline: Gaussian random walk until the prediction flips.
Counterfactual RandomWalkBaseline(const PredictFn& f, const Vector& instance,
                                  const CounterfactualEvaluator& eval,
                                  Rng* rng, int* calls) {
  Vector mad = eval.mad();
  Vector current = instance;
  for (int step = 0; step < 3000; ++step) {
    int j = rng->UniformInt(static_cast<int>(instance.size()));
    current[j] += rng->Normal(0.0, 2.0 * mad[j]);
    ++*calls;
    if (f(current) >= 0.5) break;
  }
  return eval.Evaluate(f, instance, current, 1);
}

void Run() {
  bench::Banner(
      "E5: counterfactual generators",
      "\"plausible, feasible, and ... generated in real time. Recent "
      "efforts ... GeCo\" (S3); DiCE: \"diverse and feasible\" (S2.1.4)",
      "loans n=1500, GBDT(60); 20 rejected applicants per method");

  Dataset train = MakeLoans(1500, 1);
  GbdtModel::Config mc;
  mc.n_trees = 60;
  auto model = GbdtModel::Train(train, mc).ValueOrDie();
  PredictFn f = AsPredictFn(model);
  CounterfactualEvaluator eval(train);
  ActionabilitySpec spec = ActionabilitySpec::AllFree(train);
  // Feasibility: gender immutable, age can only grow.
  spec.immutable[train.schema().FeatureIndex("gender")] = true;
  spec.monotonicity[train.schema().FeatureIndex("age")] = +1;

  // Collect 20 rejected applicants.
  std::vector<int> rejected;
  for (int i = 0; i < train.num_rows() && rejected.size() < 20u; ++i)
    if (model.Predict(train.Row(i)) < 0.4) rejected.push_back(i);

  std::printf("%14s %10s %10s %10s %10s %10s %12s %10s\n", "method",
              "found", "ms/inst", "calls", "proximity", "sparsity",
              "plaus_dist", "diversity");

  Row geco_row, dice_row, rand_row;
  for (int r : rejected) {
    Vector instance = train.Row(r);
    {
      WallTimer timer;
      GecoConfig config;
      config.seed = 100 + r;
      auto result =
          GecoCounterfactual(f, instance, 1, eval, spec, {}, config)
              .ValueOrDie();
      geco_row.time_ms += timer.Millis();
      geco_row.calls += result.model_calls;
      ++geco_row.total;
      if (result.found) {
        ++geco_row.found;
        geco_row.proximity += result.best.proximity;
        geco_row.sparsity += result.best.sparsity;
        geco_row.plausibility += result.best.plausibility_distance;
      }
    }
    {
      WallTimer timer;
      Rng rng(200 + r);
      DiceConfig config;
      config.k = 4;
      auto result =
          DiceCounterfactuals(f, instance, 1, eval, spec, config, &rng)
              .ValueOrDie();
      dice_row.time_ms += timer.Millis();
      dice_row.calls += result.model_calls;
      ++dice_row.total;
      if (!result.counterfactuals.empty()) {
        ++dice_row.found;
        const auto& best = result.counterfactuals[0];
        dice_row.proximity += best.proximity;
        dice_row.sparsity += best.sparsity;
        dice_row.plausibility += best.plausibility_distance;
        dice_row.diversity += result.diversity;
      }
    }
    {
      WallTimer timer;
      Rng rng(300 + r);
      int calls = 0;
      Counterfactual cf =
          RandomWalkBaseline(f, instance, eval, &rng, &calls);
      rand_row.time_ms += timer.Millis();
      rand_row.calls += calls;
      ++rand_row.total;
      if (cf.valid) {
        ++rand_row.found;
        rand_row.proximity += cf.proximity;
        rand_row.sparsity += cf.sparsity;
        rand_row.plausibility += cf.plausibility_distance;
      }
    }
  }
  geco_row.Print("GeCo");
  dice_row.Print("DiCE");
  rand_row.Print("random-walk");
  std::printf(
      "\nShape check: GeCo fastest + sparsest + lowest plaus_dist "
      "(data-grounded values); DiCE trades calls for diversity; random-walk "
      "drifts off-manifold (plaus_dist high).\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
