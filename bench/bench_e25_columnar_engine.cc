// E25 — Vectorized columnar relational engine: batch-of-1024 operators on
// SIMD kernels, shared-scan tuple-Shapley at relation scale.
//
// Systems claim (§3 of the paper: explanations in databases are *queries*
// and deserve query-engine treatment): the row-at-a-time interpreter —
// virtual Expr::Eval per tuple, ToString group keys, tuple-vector copies —
// is the relational analogue of the scalar inference loop E20 replaced.
// The columnar engine stores relations as typed columns with validity
// bytes and a provenance side array, compiles predicates once into a
// batch-of-1024 postorder program, parallelizes scans over row blocks
// under the bit-identity contract, and aggregates through the one
// canonical kernel set both engines share. On top of it, the dbx layer
// compiles boolean lineage to a branch-free AND/OR program — evaluated
// bit-parallel, 64 coalition masks per pass — and evaluates Shapley
// coalition games with one shared scan instead of rebuilding the query
// pipeline per coalition.
// Expected shape: columnar scan/filter/aggregate well past 3x over the
// row engine serially, join ahead on the int64 fast path, every operator
// output bit-identical to the row engine at 1/4/8 threads (values,
// types, AND provenance), and shared-scan Shapley several times faster
// than rebuild-per-coalition with bitwise-equal attributions.
//
// Emits BENCH_e25.json (+ Chrome trace) via bench::RunReport; `--smoke`
// shrinks the workload for CI.

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "xai/core/rng.h"
#include "xai/core/timer.h"
#include "xai/dbx/shared_scan.h"
#include "xai/dbx/tuple_shapley.h"
#include "xai/relational/agg_kernels.h"
#include "xai/relational/columnar.h"
#include "xai/relational/columnar_ops.h"
#include "xai/relational/operators.h"

namespace xai {
namespace {

using rel::AggFn;
using rel::ColumnarRelation;
using rel::Expr;
using rel::ExprPtr;
using rel::ProvExpr;
using rel::Relation;
using rel::Tuple;
using rel::Value;

void Ck(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
    std::abort();
  }
}

// Best-of-k wall time of `fn` (first call also serves as warm-up).
template <typename Fn>
double BestOf(int reps, const Fn& fn) {
  double best = 1e300;
  for (int i = 0; i <= reps; ++i) {
    WallTimer timer;
    fn();
    if (i > 0) best = std::min(best, timer.Seconds());
  }
  return best;
}

uint64_t Bits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// Exact (bitwise for doubles) equality: types, bits, names, provenance.
bool SameRelation(const Relation& a, const Relation& b) {
  if (a.columns() != b.columns() || a.num_tuples() != b.num_tuples())
    return false;
  for (int i = 0; i < a.num_tuples(); ++i) {
    for (int c = 0; c < a.num_columns(); ++c) {
      const Value& va = a.tuple(i)[c];
      const Value& vb = b.tuple(i)[c];
      if (va.type() != vb.type()) return false;
      switch (va.type()) {
        case Value::Type::kNull:
          break;
        case Value::Type::kInt:
          if (va.AsInt() != vb.AsInt()) return false;
          break;
        case Value::Type::kDouble:
          if (Bits(va.AsDouble()) != Bits(vb.AsDouble())) return false;
          break;
        case Value::Type::kString:
          if (va.AsString() != vb.AsString()) return false;
          break;
      }
    }
    if (a.annotation(i)->ToString() != b.annotation(i)->ToString())
      return false;
  }
  return true;
}

// Star-schema-ish fact table: int64 key (~2% NULL), double measure
// (~2% NULL), dense double filter column.
Relation MakeFact(int n, int key_range, uint64_t seed) {
  Relation r("fact", {"k", "v", "d"});
  r.Reserve(n);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    Tuple t;
    t.push_back(rng.Uniform() < 0.02
                    ? Value::Null()
                    : Value::Int(rng.UniformInt(key_range)));
    t.push_back(rng.Uniform() < 0.02 ? Value::Null()
                                     : Value::Double(rng.Uniform(-2.0, 2.0)));
    t.push_back(Value::Double(rng.Uniform(-1.0, 1.0)));
    Ck(r.AppendBase(std::move(t), i));
  }
  return r;
}

Relation MakeDim(int keys, uint64_t seed) {
  Relation r("dim", {"k", "p"});
  r.Reserve(keys);
  Rng rng(seed);
  for (int i = 0; i < keys; ++i) {
    Ck(r.AppendBase({Value::Int(i), Value::Double(rng.Uniform(0.0, 1.0))},
                    1'000'000 + i));
  }
  return r;
}

// Operator microbenches: the same logical operator on the same data
// through both engines. The row engine is tuple-at-a-time and inherently
// serial; the columnar engine runs in its native mode — SIMD batches at
// the configured thread count, bit-identical to the serial row result
// (checked for exact equality once per operator before timing).
void RunOperatorMicro(int threads, bool smoke, bench::RunReport* report) {
  bench::Section("operator microbenches: row engine vs columnar engine");
  const int kRows = smoke ? 100'000 : 400'000;
  const int kKeys = 1024;
  const int kReps = smoke ? 2 : 3;
  Relation fact = MakeFact(kRows, kKeys, 7);
  Relation dim = MakeDim(kKeys, 9);

  SetNumThreads(threads);
  WallTimer convert_timer;
  ColumnarRelation cfact = ColumnarRelation::FromRows(fact).ValueOrDie();
  ColumnarRelation cdim = ColumnarRelation::FromRows(dim).ValueOrDie();
  const double convert_ms = convert_timer.Seconds() * 1e3;
  std::printf("FromRows (%d + %d rows): %.1f ms (amortized across ops)\n",
              kRows, kKeys, convert_ms);
  report->Metric("convert_ms", convert_ms);

  std::printf("%10s %14s %14s %10s\n", "operator", "row ms", "columnar ms",
              "speedup");
  auto record = [&](const char* op, double row_sec, double col_sec) {
    const double speedup = col_sec > 0 ? row_sec / col_sec : 0.0;
    std::printf("%10s %11.2f ms %11.2f ms %9.2fx\n", op, row_sec * 1e3,
                col_sec * 1e3, speedup);
    report->Metric(std::string(op) + "_speedup", speedup);
  };

  // scan: full-column SUM through the canonical kernel. The row engine
  // must first materialize tuple-at-a-time Value accesses into a dense
  // buffer (exactly what its GroupByAggregate does per group); the
  // columnar engine reduces the column payload in place.
  {
    double row_sink = 0.0, col_sink = 0.0;
    std::vector<double> buffer(fact.num_tuples());
    const double row_sec = BestOf(kReps, [&] {
      for (int i = 0; i < fact.num_tuples(); ++i)
        buffer[i] = fact.tuple(i)[1].AsDouble();
      row_sink = rel::CanonicalSum(buffer.data(),
                                   static_cast<int64_t>(buffer.size()));
    });
    const rel::Column& v = cfact.column(1);
    const double col_sec = BestOf(kReps, [&] {
      col_sink = rel::CanonicalSum(v.doubles().data(), v.size());
    });
    if (Bits(row_sink) != Bits(col_sink))
      std::printf("  scan MISMATCH: %a vs %a\n", row_sink, col_sink);
    record("scan", row_sec, col_sec);
  }

  // filter: compound predicate, ~50% selectivity.
  ExprPtr pred = Expr::And(
      Expr::Gt(Expr::Column(2), Expr::Const(Value::Double(0.0))),
      Expr::Not(Expr::Eq(Expr::Column(0), Expr::Const(Value::Int(3)))));
  {
    Relation row_out = Select(fact, pred).ValueOrDie();
    ColumnarRelation col_out = Select(cfact, pred).ValueOrDie();
    if (!SameRelation(col_out.ToRows(), row_out))
      std::printf("  filter MISMATCH\n");
    const double row_sec =
        BestOf(kReps, [&] { Select(fact, pred).ValueOrDie(); });
    const double col_sec =
        BestOf(kReps, [&] { Select(cfact, pred).ValueOrDie(); });
    record("filter", row_sec, col_sec);
  }

  // aggregate: SUM(v) grouped by the int64 key (1024 groups).
  {
    Relation row_out =
        GroupByAggregate(fact, {0}, AggFn::kSum, 1, "s").ValueOrDie();
    ColumnarRelation col_out =
        GroupByAggregate(cfact, {0}, AggFn::kSum, 1, "s").ValueOrDie();
    if (!SameRelation(col_out.ToRows(), row_out))
      std::printf("  aggregate MISMATCH\n");
    const double row_sec = BestOf(kReps, [&] {
      GroupByAggregate(fact, {0}, AggFn::kSum, 1, "s").ValueOrDie();
    });
    const double col_sec = BestOf(kReps, [&] {
      GroupByAggregate(cfact, {0}, AggFn::kSum, 1, "s").ValueOrDie();
    });
    record("aggregate", row_sec, col_sec);
  }

  // join: fact-to-dim equi-join on the int64 key (both sides kInt64, so
  // the columnar engine takes the raw-key fast path).
  {
    Relation row_out = EquiJoin(fact, dim, 0, 0).ValueOrDie();
    ColumnarRelation col_out = EquiJoin(cfact, cdim, 0, 0).ValueOrDie();
    if (!SameRelation(col_out.ToRows(), row_out))
      std::printf("  join MISMATCH\n");
    const double row_sec =
        BestOf(kReps, [&] { EquiJoin(fact, dim, 0, 0).ValueOrDie(); });
    const double col_sec =
        BestOf(kReps, [&] { EquiJoin(cfact, cdim, 0, 0).ValueOrDie(); });
    record("join", row_sec, col_sec);
  }
  SetNumThreads(threads);
}

// Full pipeline (join -> filter -> group-by) through the columnar engine
// at 1/4/8 threads, each compared bit-for-bit — values, types, and
// provenance polynomials — against the serial row-engine reference.
void RunPipelineIdentity(int threads, bool smoke, bench::RunReport* report) {
  bench::Section("pipeline bit-identity: columnar at 1/4/8 threads vs row");
  const int kRows = smoke ? 30'000 : 120'000;
  Relation fact = MakeFact(kRows, 256, 11);
  Relation dim = MakeDim(256, 13);
  ExprPtr pred = Expr::Gt(Expr::Add(Expr::Column(2), Expr::Column(4)),
                          Expr::Const(Value::Double(0.4)));

  SetNumThreads(1);
  Relation reference = [&] {
    Relation j = EquiJoin(fact, dim, 0, 0).ValueOrDie();
    Relation s = Select(j, pred).ValueOrDie();
    return GroupByAggregate(s, {0}, AggFn::kSum, 1, "total").ValueOrDie();
  }();
  const double row_sec = BestOf(smoke ? 1 : 2, [&] {
    Relation j = EquiJoin(fact, dim, 0, 0).ValueOrDie();
    Relation s = Select(j, pred).ValueOrDie();
    GroupByAggregate(s, {0}, AggFn::kSum, 1, "total").ValueOrDie();
  });

  ColumnarRelation cfact = ColumnarRelation::FromRows(fact).ValueOrDie();
  ColumnarRelation cdim = ColumnarRelation::FromRows(dim).ValueOrDie();
  for (int t : {1, 4, 8}) {
    SetNumThreads(t);
    ColumnarRelation out = [&] {
      ColumnarRelation j = EquiJoin(cfact, cdim, 0, 0).ValueOrDie();
      ColumnarRelation s = Select(j, pred).ValueOrDie();
      return GroupByAggregate(s, {0}, AggFn::kSum, 1, "total").ValueOrDie();
    }();
    const bool identical = SameRelation(out.ToRows(), reference);
    const double col_sec = BestOf(smoke ? 1 : 2, [&] {
      ColumnarRelation j = EquiJoin(cfact, cdim, 0, 0).ValueOrDie();
      ColumnarRelation s = Select(j, pred).ValueOrDie();
      GroupByAggregate(s, {0}, AggFn::kSum, 1, "total").ValueOrDie();
    });
    const double speedup = col_sec > 0 ? row_sec / col_sec : 0.0;
    std::printf("columnar %d thread(s): %8.2f ms vs row %8.2f ms "
                "(%5.2fx), %s\n",
                t, col_sec * 1e3, row_sec * 1e3, speedup,
                identical ? "bit-identical" : "MISMATCH");
    report->Metric("pipeline_bit_identical_t" + std::to_string(t),
                   identical ? 1.0 : 0.0);
    report->Metric("pipeline_speedup_t" + std::to_string(t), speedup);
  }
  SetNumThreads(threads);
}

// Compiled-lineage microbench: one realistic join-style lineage (a sum of
// endo*exo monomials), every coalition of 16 endogenous tuples, the
// interpreted ProvExpr::EvalBool walk vs the compiled AND/OR program.
void RunLineageMicro(bool smoke, bench::RunReport* report) {
  bench::Section("boolean lineage: interpreted EvalBool vs compiled program");
  const int kEndo = 16;
  const int kMonomials = 256;
  std::vector<rel::ProvExprPtr> terms;
  Rng rng(17);
  for (int m = 0; m < kMonomials; ++m) {
    terms.push_back(ProvExpr::Times(ProvExpr::Base(rng.UniformInt(kEndo)),
                                    ProvExpr::Base(1000 + m)));
  }
  rel::ProvExprPtr lineage = ProvExpr::PlusAll(std::move(terms));
  std::vector<int> endo(kEndo);
  for (int i = 0; i < kEndo; ++i) endo[i] = i;
  std::set<int> endo_set(endo.begin(), endo.end());

  const CompiledLineage compiled = CompiledLineage::Compile(lineage, endo);
  CompiledLineage::Scratch scratch;
  const uint64_t kMasks = smoke ? 1u << 14 : 1u << 16;
  const int kReps = smoke ? 2 : 3;

  bool identical = true;
  uint64_t interp_pop = 0, compiled_pop = 0;
  const double interp_sec = BestOf(kReps, [&] {
    uint64_t pop = 0;
    for (uint64_t mask = 0; mask < kMasks; ++mask) {
      pop += lineage->EvalBool([&](int id) {
        if (!endo_set.count(id)) return true;
        return ((mask >> id) & 1) != 0;
      });
    }
    interp_pop = pop;
  });
  const double compiled_sec = BestOf(kReps, [&] {
    // Exhaustive enumeration is what the exact-Shapley path does; the
    // compiled program evaluates it bit-parallel, 64 coalitions per pass.
    uint64_t pop = 0;
    for (uint64_t base = 0; base < kMasks; base += 64)
      pop += static_cast<uint64_t>(
          std::popcount(compiled.Eval64(base, &scratch)));
    compiled_pop = pop;
  });
  identical = interp_pop == compiled_pop;
  const double speedup = compiled_sec > 0 ? interp_sec / compiled_sec : 0.0;
  std::printf("%llu masks x %d ops: interpreted %.2f ms, compiled "
              "bit-parallel %.2f ms (%5.2fx), %s\n",
              static_cast<unsigned long long>(kMasks), compiled.num_ops(),
              interp_sec * 1e3, compiled_sec * 1e3, speedup,
              identical ? "identical" : "MISMATCH");
  report->Metric("lineage_eval_speedup", speedup);
  report->Metric("lineage_identical", identical ? 1.0 : 0.0);
}

// Shared-scan tuple-Shapley end to end: SUM(salary) over qualifying rows,
// 12 endogenous tuples, Monte-Carlo permutations. The naive baseline
// rebuilds the sub-instance and re-runs select+aggregate per coalition;
// the fast path compiles each result row's lineage once and re-aggregates
// present rows per coalition. Values must agree bit for bit (identical
// coalition values feed the identical RNG stream).
void RunSharedScanShapley(bool smoke, bench::RunReport* report) {
  bench::Section("tuple-Shapley e2e: rebuild-per-coalition vs shared scan");
  const int kEndo = 12;
  TupleShapleyConfig config;
  config.exact_limit = 0;  // Force the sampling estimator at every size.
  config.permutations = smoke ? 8 : 20;

  std::printf("%10s %14s %14s %10s %8s\n", "base rows", "rebuild ms",
              "shared ms", "speedup", "biteq");
  double max_speedup = 0.0;
  double all_identical = 1.0;
  for (int rows : smoke ? std::vector<int>{500, 2000, 8000}
                        : std::vector<int>{1000, 4000, 16000}) {
    Relation emp("emp", {"g", "salary"});
    emp.Reserve(rows);
    Rng rng(19);
    for (int i = 0; i < rows; ++i) {
      Ck(emp.AppendBase({Value::Int(i % 4),
                         Value::Double(rng.Uniform(50.0, 150.0))},
                        i));
    }
    ExprPtr pred =
        Expr::Gt(Expr::Column(1), Expr::Const(Value::Double(100.0)));
    std::vector<int> endo(kEndo);
    for (int i = 0; i < kEndo; ++i) endo[i] = i;

    auto naive_value = [&](const std::vector<int>& present) {
      std::set<int> p(present.begin(), present.end());
      Relation sub("emp", emp.columns());
      sub.Reserve(emp.num_tuples());
      for (int i = 0; i < emp.num_tuples(); ++i) {
        if (i >= kEndo || p.count(i))
          Ck(sub.Append(emp.tuple(i), emp.annotation(i)));
      }
      Relation selected = Select(sub, pred).ValueOrDie();
      Relation agg =
          GroupByAggregate(selected, {}, AggFn::kSum, 1, "s").ValueOrDie();
      return agg.num_tuples() ? agg.tuple(0)[0].AsDouble() : 0.0;
    };

    WallTimer naive_timer;
    auto naive =
        NumericQueryTupleShapley(naive_value, endo, config).ValueOrDie();
    const double naive_sec = naive_timer.Seconds();

    WallTimer fast_timer;
    Relation result = Select(emp, pred).ValueOrDie();
    auto scan = SharedScanAggregate::Build(result, AggFn::kSum, 1, endo)
                    .ValueOrDie();
    auto fast = NumericQueryTupleShapley(scan.AsQueryValue(), endo, config)
                    .ValueOrDie();
    const double fast_sec = fast_timer.Seconds();

    bool identical = naive.game_evaluations == fast.game_evaluations &&
                     naive.values.size() == fast.values.size();
    for (const auto& [id, value] : naive.values) {
      identical = identical && fast.values.count(id) &&
                  Bits(value) == Bits(fast.values.at(id));
    }
    const double speedup = fast_sec > 0 ? naive_sec / fast_sec : 0.0;
    max_speedup = std::max(max_speedup, speedup);
    if (!identical) all_identical = 0.0;
    std::printf("%10d %11.1f ms %11.1f ms %9.2fx %8s\n", rows,
                naive_sec * 1e3, fast_sec * 1e3, speedup,
                identical ? "yes" : "NO");
    report->Metric("shapley_speedup_rows" + std::to_string(rows), speedup);
  }
  report->Metric("shapley_speedup_max", max_speedup);
  report->Metric("shapley_bit_identical", all_identical);
}

void Run(int threads, bool smoke) {
  const char* claim =
      "provenance-aware relational operators are batch kernels: a columnar "
      "engine with compiled predicates and shared canonical aggregation "
      "beats the row interpreter without changing one output bit, and "
      "shared-scan lineage evaluation makes tuple-Shapley a relation-scale "
      "operation (S3)";
  bench::Banner("E25: vectorized columnar relational engine", claim,
                "star-schema scan/filter/aggregate/join micro, pipeline "
                "bit-identity at 1/4/8 threads, compiled lineage, "
                "shared-scan tuple-Shapley e2e");
  bench::RunReport report("e25", claim);
  telemetry::Registry::Global().Reset();

  RunOperatorMicro(threads, smoke, &report);
  RunPipelineIdentity(threads, smoke, &report);
  RunLineageMicro(smoke, &report);
  RunSharedScanShapley(smoke, &report);

  std::printf("\nShape check: columnar scan/filter/aggregate >= 3x at the "
              "configured thread count, join ahead on the int64 fast path, "
              "pipeline bit-identical at 1/4/8 threads, shared-scan Shapley "
              "faster than rebuild with bitwise-equal values.\n");
  report.Note("smoke", smoke ? "true" : "false");
  report.Write();
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main(int argc, char** argv) {
  int threads = xai::bench::ThreadsFlag(argc, argv);
  bool smoke = xai::bench::SmokeFlag(argc, argv);
  xai::SetNumThreads(threads);
  xai::Run(threads, smoke);
}
