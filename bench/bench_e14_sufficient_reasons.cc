// E14 — Logic-based provably-correct explanations (§2.2.2).
//
// Paper claim: "Recent work proposed the use of abductive reasoning and
// logic-based diagnosis to computing provably correct explanations for ML
// predictions ... the notion of sufficient/necessary explanations ...
// translates to explanations in terms of a set of attributes that have a
// sufficiency/necessary score of 1."
// Expected shape: every returned reason verifies sufficiency = 1 against
// the tree (a logical guarantee, unlike Anchors' sampled precision);
// exact minimum search cost grows with tree depth, the greedy fallback
// stays cheap; reasons stay short for shallow trees.

#include <cstdio>

#include "bench_util.h"
#include "xai/core/combinatorics.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/model/decision_tree.h"
#include "xai/rules/anchors.h"
#include "xai/rules/sufficient_reason.h"

namespace xai {
namespace {

void Run() {
  bench::Banner(
      "E14: sufficient reasons (prime implicants) for decision trees",
      "logic-based methods give \"provably correct explanations\"; "
      "sufficiency score of 1 (S2.2.2)",
      "CART trees on loans at depths 3-8; 25 instances per depth");

  Dataset data = MakeLoans(1500, 1);

  bench::Section("reason size / cost vs tree depth (exact BFS search)");
  std::printf("%8s %10s %14s %14s %12s %12s\n", "depth", "leaves",
              "mean_size", "mean_checks", "us/inst", "verified");
  for (int depth : {3, 4, 5, 6, 8}) {
    CartConfig config;
    config.max_depth = depth;
    auto model = DecisionTreeModel::Train(data, config).ValueOrDie();
    const Tree& tree = model.tree();
    double total_size = 0, total_checks = 0;
    int verified = 0;
    const int kInstances = 25;
    WallTimer timer;
    for (int i = 0; i < kInstances; ++i) {
      Vector x = data.Row(i * 13);
      auto reason =
          MinimumSufficientReason(tree, x, data.num_features())
              .ValueOrDie();
      total_size += static_cast<double>(reason.features.size());
      total_checks += reason.checks;
      // The logical guarantee: verify sufficiency holds exactly.
      if (IsSufficientReason(tree, x, IndicesToMask(reason.features)))
        ++verified;
    }
    std::printf("%8d %10d %14.2f %14.1f %12.1f %10d/%d\n", depth,
                tree.NumLeaves(), total_size / kInstances,
                total_checks / kInstances, timer.Micros() / kInstances,
                verified, kInstances);
  }

  bench::Section("exact minimum vs greedy minimal (depth 8)");
  CartConfig config;
  config.max_depth = 8;
  auto model = DecisionTreeModel::Train(data, config).ValueOrDie();
  double exact_size = 0, greedy_size = 0, exact_us = 0, greedy_us = 0;
  const int kInstances = 15;
  for (int i = 0; i < kInstances; ++i) {
    Vector x = data.Row(i * 29);
    WallTimer t1;
    auto exact = MinimumSufficientReason(model.tree(), x,
                                         data.num_features(), 20)
                     .ValueOrDie();
    exact_us += t1.Micros();
    exact_size += static_cast<double>(exact.features.size());
    WallTimer t2;
    auto greedy = MinimumSufficientReason(model.tree(), x,
                                          data.num_features(), 0)
                      .ValueOrDie();
    greedy_us += t2.Micros();
    greedy_size += static_cast<double>(greedy.features.size());
  }
  std::printf("%10s %12s %12s\n", "method", "mean_size", "us/inst");
  std::printf("%10s %12.2f %12.1f\n", "exact", exact_size / kInstances,
              exact_us / kInstances);
  std::printf("%10s %12.2f %12.1f\n", "greedy", greedy_size / kInstances,
              greedy_us / kInstances);

  bench::Section("logical guarantee vs Anchors' sampled precision (d=5)");
  CartConfig tree_config;
  tree_config.max_depth = 5;
  auto tree_model = DecisionTreeModel::Train(data, tree_config).ValueOrDie();
  PredictFn f = AsPredictFn(tree_model);
  AnchorsConfig anchors_config;
  anchors_config.precision_target = 0.95;
  AnchorsExplainer anchors(data, anchors_config);
  Vector x = data.Row(11);
  auto reason = MinimumSufficientReason(tree_model.tree(), x,
                                        data.num_features())
                    .ValueOrDie();
  auto anchor = anchors.Explain(f, x, 5).ValueOrDie();
  std::printf(
      "sufficient reason: %zu features, precision = 1 by construction "
      "(0 model queries beyond the tree walk)\n",
      reason.features.size());
  std::printf(
      "anchors          : %zu features, sampled precision = %.3f using %d "
      "model queries\n",
      anchor.features.size(), anchor.precision, anchor.samples_used);
  std::printf(
      "\nShape check: verified = 25/25 at every depth (provable "
      "correctness); checks grow with depth; greedy is cheaper but can "
      "return larger reasons.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
