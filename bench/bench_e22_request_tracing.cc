// E22 — Request-scoped causal tracing, provenance coverage, and SLO
// accounting on the serving path (§3, explanations as query results).
//
// Paper claim: production explanation serving needs the same observability
// discipline as any query engine — per-request provenance ("why was THIS
// request slow / degraded / a cache miss?"), causal traces that survive
// sampling for exactly the requests that matter, and per-tenant SLO
// standings.
// Expected shape: >= 99.9% of responses carry a complete provenance record
// under e19-style mixed traffic (the funnel design makes it structural);
// tracing costs < 2% wall-clock vs telemetry::SetEnabled(false); at a 0.0
// head-sampling rate every deadline-missed / degraded / error request still
// lands its root span in the trace (tail retention); payloads stay
// bit-identical across thread counts with tracing on.
//
// Emits BENCH_e22.json (+ Chrome trace with causal ids) and
// BENCH_e22.provenance.jsonl (schema-validated in CI by
// tools/validate_bench_report.py --provenance); `--smoke` shrinks the
// workload for CI.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/core/trace.h"
#include "xai/data/synthetic.h"
#include "xai/model/gbdt.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/serialization.h"
#include "xai/serve/explain_server.h"
#include "xai/serve/provenance.h"

namespace xai {
namespace {

using serve::ExplainRequest;
using serve::ExplainServer;
using serve::ExplainerKind;
using serve::ExplanationProvenance;
using serve::FidelityTier;

struct Workbench {
  Dataset background;
  std::string gbdt_text;
  std::string wide_text;
  Dataset wide_data;
  std::vector<Vector> instances;

  explicit Workbench(bool smoke)
      : background(MakeLoans(smoke ? 32 : 64, 4)),
        wide_data(MakeLoans(1, 1)) {  // Placeholder, replaced below.
    Dataset train = MakeLoans(300, 3);
    GbdtModel::Config config;
    config.n_trees = 10;
    gbdt_text = SerializeModel(GbdtModel::Train(train, config).ValueOrDie());
    for (int i = 0; i < 8; ++i) instances.push_back(train.Row(i));

    auto [wide, gt] = MakeLogisticData(300, 12, 5);
    (void)gt;
    wide_data = std::move(wide);
    wide_text = SerializeModel(
        LogisticRegressionModel::Train(wide_data).ValueOrDie());
  }

  void Register(ExplainServer* server) const {
    server->registry().Register("loans", gbdt_text, background).ValueOrDie();
    Dataset wide_background(wide_data.schema(),
                            Matrix(wide_data.x()), wide_data.y());
    server->registry()
        .Register("wide", wide_text, wide_background)
        .ValueOrDie();
  }
};

// E19-style mixed traffic — repeated instances (cache hits), concurrent
// clients on overlapping keys (coalescing), deadline-bound degraded
// requests, and a sprinkle of errors — with every response's provenance
// record captured. Coverage = fraction of responses whose record is
// complete with a nonzero trace id; the serving path funnels every exit
// through one finalizer, so anything below 1.0 is a lost-provenance bug.
void RunProvenanceCoverage(const Workbench& bench, bool smoke,
                           bench::RunReport* report) {
  bench::Section("provenance coverage under mixed traffic");
  ExplainServer server;
  bench.Register(&server);

  static const char* kTenants[] = {"alpha", "beta", "gamma"};
  std::mutex mu;
  std::vector<ExplanationProvenance> records;
  std::atomic<int> errors{0};
  auto keep = [&](const serve::ExplainResponse& response) {
    std::lock_guard<std::mutex> lock(mu);
    records.push_back(response.provenance);
  };

  // Repeated-instance traffic: passes 2+ are cache hits.
  const int kPasses = smoke ? 3 : 6;
  for (int pass = 0; pass < kPasses; ++pass) {
    for (const Vector& instance : bench.instances) {
      ExplainRequest request;
      request.model = "loans";
      request.instance = instance;
      request.kind = ExplainerKind::kKernelShap;
      request.fidelity = FidelityTier::kReduced;
      request.tenant = kTenants[0];
      keep(server.Explain(request).ValueOrDie());
    }
  }

  // Concurrent clients on a small instance set: coalescing in flight.
  const int kClients = smoke ? 4 : 8;
  const int kPerClient = smoke ? 16 : 64;
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kPerClient; ++i) {
          ExplainRequest request;
          request.model = "loans";
          request.instance =
              bench.instances[(c + i) % bench.instances.size()];
          request.kind = ExplainerKind::kSamplingShapley;
          request.fidelity = FidelityTier::kMinimal;
          request.tenant = kTenants[c % 3];
          auto result = server.Explain(request);
          if (result.ok())
            keep(result.ValueOrDie());
          else
            ++errors;
        }
      });
    }
    for (auto& t : clients) t.join();
  }

  // Deadline-bound traffic on the wide model: degraded tiers, some misses.
  const int kDeadlineRequests = smoke ? 16 : 64;
  for (int i = 0; i < kDeadlineRequests; ++i) {
    ExplainRequest request;
    request.model = "wide";
    request.instance = bench.wide_data.Row(i % 50);
    request.kind = ExplainerKind::kKernelShap;
    request.fidelity = FidelityTier::kHigh;
    request.deadline_ms = 50.0;
    request.use_cache = false;
    request.tenant = kTenants[i % 3];
    auto result = server.Explain(request);
    if (result.ok())
      keep(result.ValueOrDie());
    else
      ++errors;
  }

  // Error traffic: unknown model — no response, but SLO-accounted.
  for (int i = 0; i < 4; ++i) {
    ExplainRequest request;
    request.model = "no-such-model";
    request.instance = bench.instances[0];
    request.kind = ExplainerKind::kTreeShap;
    request.tenant = kTenants[2];
    if (!server.Explain(request).ok()) ++errors;
  }

  int64_t complete = 0, cache_hits = 0, coalesced = 0, degraded = 0;
  for (const auto& p : records) {
    if (p.complete && p.trace_id != 0) ++complete;
    if (p.cache_hit) ++cache_hits;
    if (p.coalesced) ++coalesced;
    if (p.degraded) ++degraded;
  }
  const double coverage =
      records.empty()
          ? 0.0
          : static_cast<double>(complete) / static_cast<double>(records.size());
  std::printf("  %zu responses: %lld complete provenance (coverage %.4f, "
              "target >= 0.999)\n",
              records.size(), static_cast<long long>(complete), coverage);
  std::printf("  mix: %lld cache hits, %lld coalesced, %lld degraded, %d "
              "errors\n",
              static_cast<long long>(cache_hits),
              static_cast<long long>(coalesced),
              static_cast<long long>(degraded), errors.load());

  const char* jsonl_path = "BENCH_e22.provenance.jsonl";
  {
    std::ofstream os(jsonl_path);
    for (const auto& p : records) serve::WriteProvenanceJsonl(os, p);
  }
  std::printf("  provenance records: %s\n", jsonl_path);

  // Per-tenant SLO standings out of the same traffic.
  for (const auto& s : server.slo().Snapshot())
    std::printf("    slo %-6s/%-14s req=%-4lld miss=%-3lld degraded=%-3lld "
                "err=%-2lld p99=%.2f ms budget(deadline)=%.2f\n",
                s.tenant.c_str(), s.model.c_str(),
                static_cast<long long>(s.requests),
                static_cast<long long>(s.deadline_misses),
                static_cast<long long>(s.degraded),
                static_cast<long long>(s.errors), s.latency_p99_ms,
                s.deadline_budget_used);

  const std::string prom =
      server.MetricsSnapshot(ExplainServer::MetricsFormat::kPrometheus);
  const std::string jsonl =
      server.MetricsSnapshot(ExplainServer::MetricsFormat::kJsonl);
  std::printf("  metrics export: %zu bytes prometheus, %zu bytes jsonl\n",
              prom.size(), jsonl.size());

  report->Metric("provenance_records", static_cast<double>(records.size()));
  report->Metric("provenance_coverage", coverage);
  report->Metric("provenance_coverage_ok", coverage >= 0.999 ? 1.0 : 0.0);
  report->Metric("mixed_cache_hits", static_cast<double>(cache_hits));
  report->Metric("mixed_coalesced", static_cast<double>(coalesced));
  report->Metric("mixed_degraded", static_cast<double>(degraded));
  report->Metric("mixed_errors", errors.load());
  report->Metric("slo_cells",
                 static_cast<double>(server.slo().Snapshot().size()));
  report->Metric("metrics_prometheus_bytes",
                 static_cast<double>(prom.size()));
  report->Metric("metrics_jsonl_bytes", static_cast<double>(jsonl.size()));
}

// Tracing tax: the same uncached workload with telemetry runtime-disabled
// vs fully on (sample rate 1.0). Best-of-k wall clock on each side; the
// budget that makes default-on tracing defensible is < 2%.
void RunTracingOverhead(const Workbench& bench, bool smoke,
                        bench::RunReport* report) {
  bench::Section("tracing overhead (SetEnabled(false) vs tracing on)");
#if !XAI_TELEMETRY
  // Both sides of the A/B compile to the same code here; any delta would
  // be pure run-to-run noise presented as a measurement.
  (void)bench;
  (void)smoke;
  (void)report;
  std::printf("  skipped: span recording compiled out (XAI_TELEMETRY=0)\n");
  return;
#else
  ExplainServer::Config config;
  config.enable_batching = false;  // Inline: no worker-thread noise.
  // Production-shaped requests (kStandard KernelSHAP, uncached): per-request
  // compute in the milliseconds, so the measured tax is the event-append
  // cost against real work, not against an empty loop.
  const int kRequests = smoke ? 12 : 48;
  const int kReps = smoke ? 3 : 5;

  auto run_once = [&](ExplainServer* server) {
    WallTimer timer;
    for (int i = 0; i < kRequests; ++i) {
      ExplainRequest request;
      request.model = "loans";
      request.instance = bench.instances[i % bench.instances.size()];
      request.kind = ExplainerKind::kKernelShap;
      request.fidelity = FidelityTier::kStandard;
      request.use_cache = false;
      (void)server->Explain(request).ValueOrDie();
    }
    return timer.Seconds();
  };

  auto best_of = [&](bool tracing_on) {
    telemetry::SetEnabled(tracing_on);
    if (tracing_on) telemetry::SetTraceSampleRate(1.0);
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      ExplainServer server(config);
      bench.Register(&server);
      telemetry::internal::ClearTraceEvents();  // Fresh buffers per rep.
      const double seconds = run_once(&server);
      if (rep == 0 || seconds < best) best = seconds;
    }
    return best;
  };

  const double off = best_of(false);
  const double on = best_of(true);
  telemetry::SetEnabled(true);
  const double overhead_pct = off > 0 ? (on - off) / off * 100.0 : 0.0;
  std::printf("  %d uncached requests: off %8.2f ms, on %8.2f ms, overhead "
              "%+.2f%% (budget < 2%%)\n",
              kRequests, off * 1e3, on * 1e3, overhead_pct);
  report->Metric("tracing_off_ms", off * 1e3);
  report->Metric("tracing_on_ms", on * 1e3);
  report->Metric("tracing_overhead_pct", overhead_pct);
  report->Metric("tracing_overhead_ok", overhead_pct < 2.0 ? 1.0 : 0.0);
#endif  // XAI_TELEMETRY
}

// Tail retention: at a 0.0 head-sampling rate nothing records span events —
// except the root spans of deadline-missed / degraded / error requests,
// which the serving layer force-retains. Every such request must be
// findable in the trace.
void RunTailRetention(const Workbench& bench, bool smoke,
                      bench::RunReport* report) {
  bench::Section("tail retention at head-sampling rate 0.0");
#if !XAI_TELEMETRY
  // Force-retention rides on span recording; with it compiled out there is
  // nothing to retain (and nothing to measure) — the telemetry-off CI job
  // instead asserts the trace export is empty.
  (void)bench;
  (void)smoke;
  (void)report;
  std::printf("  skipped: span recording compiled out (XAI_TELEMETRY=0)\n");
  return;
#else
  ExplainServer server;
  bench.Register(&server);

  telemetry::SetTraceSampleRate(0.0);
  telemetry::internal::ClearTraceEvents();

  const int kMissed = smoke ? 16 : 48;
  for (int i = 0; i < kMissed; ++i) {
    ExplainRequest request;
    request.model = "loans";
    request.instance = bench.instances[i % bench.instances.size()];
    request.kind = ExplainerKind::kKernelShap;
    request.fidelity = FidelityTier::kStandard;
    request.deadline_ms = 1e-3;  // Unmeetable: degrades and still misses.
    request.use_cache = false;
    (void)server.Explain(request).ValueOrDie();
  }
  const int kErrors = 4;
  for (int i = 0; i < kErrors; ++i) {
    ExplainRequest request;
    request.model = "no-such-model";
    request.instance = bench.instances[0];
    request.kind = ExplainerKind::kTreeShap;
    (void)server.Explain(request);
  }

  std::vector<telemetry::TraceEvent> events;
  telemetry::internal::CollectTraceEvents(&events);
  int64_t roots = 0, error_roots = 0;
  for (const auto& e : events) {
    if (std::string(e.name) == "serve/request") ++roots;
    if (std::string(e.name) == "serve/request_error") ++error_roots;
  }
  telemetry::SetTraceSampleRate(1.0);

  const bool retained_all = roots >= kMissed && error_roots >= kErrors;
  std::printf("  %d missed/degraded + %d error requests at sample rate 0: "
              "%lld root spans + %lld error spans retained — %s\n",
              kMissed, kErrors, static_cast<long long>(roots),
              static_cast<long long>(error_roots),
              retained_all ? "complete" : "INCOMPLETE");
  const telemetry::TraceStats stats = telemetry::internal::GetTraceStats();
  std::printf("  trace buffers: %lld buffered, %lld dropped, %lld retained-"
              "dropped\n",
              static_cast<long long>(stats.buffered_events),
              static_cast<long long>(stats.dropped_events),
              static_cast<long long>(stats.retained_dropped));
  report->Metric("tail_missed_requests", kMissed);
  report->Metric("tail_retained_roots", static_cast<double>(roots));
  report->Metric("tail_retained_error_roots",
                 static_cast<double>(error_roots));
  report->Metric("tail_retention_ok", retained_all ? 1.0 : 0.0);
#endif  // XAI_TELEMETRY
}

// The acceptance gate carried over from e19: tracing on must not perturb
// payloads — bit-identical responses at 1, 4, and 8 threads.
void RunDeterminism(const Workbench& bench, bench::RunReport* report) {
  bench::Section("payload determinism across thread counts, tracing on");
  telemetry::SetTraceSampleRate(1.0);
  const std::vector<ExplainerKind> kinds = {
      ExplainerKind::kTreeShap, ExplainerKind::kKernelShap,
      ExplainerKind::kSamplingShapley, ExplainerKind::kLime};

  bool identical = true;
  std::map<ExplainerKind, uint64_t> reference;
  for (int threads : {1, 4, 8}) {
    SetNumThreads(threads);
    ExplainServer server;
    bench.Register(&server);
    for (ExplainerKind kind : kinds) {
      ExplainRequest request;
      request.model = "loans";
      request.instance = bench.instances[0];
      request.kind = kind;
      request.fidelity = FidelityTier::kReduced;
      const uint64_t hash =
          serve::PayloadHash(server.Explain(request).ValueOrDie());
      auto [it, inserted] = reference.emplace(kind, hash);
      if (it->second != hash) {
        identical = false;
        std::printf("  MISMATCH: %s differs at %d threads\n",
                    serve::ExplainerKindName(kind), threads);
      }
    }
  }
  std::printf("  responses bit-identical across {1, 4, 8} threads: %s\n",
              identical ? "yes" : "NO");
  report->Metric("determinism_bit_identical", identical ? 1.0 : 0.0);
}

}  // namespace
}  // namespace xai

int main(int argc, char** argv) {
  const bool smoke = xai::bench::SmokeFlag(argc, argv);
  const int threads = xai::bench::ThreadsFlag(argc, argv);
  xai::SetNumThreads(threads);

  xai::bench::Banner(
      "E22 — request tracing, provenance coverage, SLO accounting",
      "serving-side observability: causal traces + per-request provenance",
      "e19-style mixed traffic (cache hits, coalescing, degradation, "
      "errors) with tracing on; overhead, tail retention, and determinism "
      "gates");

  xai::bench::RunReport report(
      "e22", "serving-side observability: causal traces + provenance");
  xai::Workbench bench(smoke);
  xai::RunProvenanceCoverage(bench, smoke, &report);
  xai::RunTracingOverhead(bench, smoke, &report);
  xai::RunTailRetention(bench, smoke, &report);
  xai::RunDeterminism(bench, &report);

  report.Note("smoke", smoke ? "true" : "false");
  report.Note("trace_sample_rate_env",
              std::getenv("XAI_TRACE_SAMPLE") ? std::getenv("XAI_TRACE_SAMPLE")
                                              : "(unset)");
  report.Write();
  xai::bench::Footer();
  return 0;
}
