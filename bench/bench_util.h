#ifndef XAI_BENCH_BENCH_UTIL_H_
#define XAI_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "xai/core/parallel.h"

namespace xai::bench {

/// Parses `--threads=N` from the command line; anything else is ignored.
/// Returns the runtime default (XAI_NUM_THREADS env or hardware
/// concurrency) when the flag is absent or malformed.
inline int ThreadsFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* prefix = "--threads=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      int n = std::atoi(argv[i] + std::strlen(prefix));
      if (n >= 1) return n;
    }
  }
  return GetNumThreads();
}

/// One line of wall-time + throughput for a timed region.
inline void Throughput(const char* label, int threads, double seconds,
                       double evals) {
  std::printf("%-28s threads=%-3d time=%9.2f ms  throughput=%12.0f "
              "evals/sec\n",
              label, threads, seconds * 1e3,
              seconds > 0 ? evals / seconds : 0.0);
}

/// Serial-vs-parallel speedup summary line; `identical` reports whether the
/// two runs produced bit-identical results (the runtime's determinism
/// guarantee).
inline void Speedup(const char* what, double serial_seconds,
                    double parallel_seconds, int threads, bool identical) {
  std::printf("%-28s speedup=%5.2fx at %d threads (serial %.2f ms, parallel "
              "%.2f ms), bit-identical=%s\n",
              what,
              parallel_seconds > 0 ? serial_seconds / parallel_seconds : 0.0,
              threads, serial_seconds * 1e3, parallel_seconds * 1e3,
              identical ? "yes" : "NO");
}

/// Prints the experiment banner: id, the paper claim being reproduced, and
/// the workload description.
inline void Banner(const char* id, const char* claim, const char* workload) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", id);
  std::printf("Claim    : %s\n", claim);
  std::printf("Workload : %s\n", workload);
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
}

inline void Section(const char* title) {
  std::printf("\n-- %s\n", title);
}

inline void Footer() {
  std::printf("==============================================================="
              "=================\n\n");
}

}  // namespace xai::bench

#endif  // XAI_BENCH_BENCH_UTIL_H_
