#ifndef XAI_BENCH_BENCH_UTIL_H_
#define XAI_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "xai/core/json.h"
#include "xai/core/parallel.h"
#include "xai/core/telemetry.h"

namespace xai::bench {

/// Parses `--threads=N` from the command line; anything else is ignored.
/// Returns the runtime default (XAI_NUM_THREADS env or hardware
/// concurrency) when the flag is absent or malformed.
inline int ThreadsFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* prefix = "--threads=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      int n = std::atoi(argv[i] + std::strlen(prefix));
      if (n >= 1) return n;
    }
  }
  return GetNumThreads();
}

/// True if argv contains `--smoke`: benches shrink their workloads to a
/// CI-sized run (same code paths, seconds not minutes).
inline bool SmokeFlag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  return false;
}

/// One line of wall-time + throughput for a timed region.
inline void Throughput(const char* label, int threads, double seconds,
                       double evals) {
  std::printf("%-28s threads=%-3d time=%9.2f ms  throughput=%12.0f "
              "evals/sec\n",
              label, threads, seconds * 1e3,
              seconds > 0 ? evals / seconds : 0.0);
}

/// Serial-vs-parallel speedup summary line; `identical` reports whether the
/// two runs produced bit-identical results (the runtime's determinism
/// guarantee).
inline void Speedup(const char* what, double serial_seconds,
                    double parallel_seconds, int threads, bool identical) {
  std::printf("%-28s speedup=%5.2fx at %d threads (serial %.2f ms, parallel "
              "%.2f ms), bit-identical=%s\n",
              what,
              parallel_seconds > 0 ? serial_seconds / parallel_seconds : 0.0,
              threads, serial_seconds * 1e3, parallel_seconds * 1e3,
              identical ? "yes" : "NO");
}

/// Prints the experiment banner: id, the paper claim being reproduced, and
/// the workload description.
inline void Banner(const char* id, const char* claim, const char* workload) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", id);
  std::printf("Claim    : %s\n", claim);
  std::printf("Workload : %s\n", workload);
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
}

inline void Section(const char* title) {
  std::printf("\n-- %s\n", title);
}

inline void Footer() {
  std::printf("==============================================================="
              "=================\n\n");
}

/// \brief Machine-readable run report: `BENCH_<id>.json` plus a Chrome
/// trace `BENCH_<id>.trace.json`.
///
/// Collects the bench's own measured numbers (Metric/Note) and, at
/// Write() time, snapshots the telemetry registry — counter values and
/// histogram p50/p95/p99 — so every EXPERIMENTS.md row has a checkable
/// artifact instead of only printf output. Schema is validated in CI by
/// tools/validate_bench_report.py.
class RunReport {
 public:
  /// `id` is the short experiment id, e.g. "e02".
  RunReport(std::string id, std::string claim)
      : id_(std::move(id)), claim_(std::move(claim)) {}

  void Metric(const std::string& name, double value) {
    metrics_[name] = value;
  }
  void Note(const std::string& key, const std::string& value) {
    notes_[key] = value;
  }

  /// Writes BENCH_<id>.json and BENCH_<id>.trace.json into the current
  /// directory and prints both paths. Returns the report path.
  std::string Write() const {
    const std::string report_path = "BENCH_" + id_ + ".json";
    const std::string trace_path = "BENCH_" + id_ + ".trace.json";
    auto& registry = xai::telemetry::Registry::Global();
    {
      std::ofstream os(trace_path);
      registry.WriteChromeTrace(os);
    }
    std::ofstream os(report_path);
    os << "{\"id\":\"" << id_ << "\",\"claim\":";
    WriteJsonString(os, claim_);
    os << ",\"threads\":" << GetNumThreads();
    os << ",\"telemetry_compiled\":" << (XAI_TELEMETRY ? "true" : "false");
    os << ",\"metrics\":{";
    bool first = true;
    for (const auto& [name, value] : metrics_) {
      if (!first) os << ",";
      first = false;
      WriteJsonString(os, name);
      os << ":" << value;
    }
    os << "},\"notes\":{";
    first = true;
    for (const auto& [key, value] : notes_) {
      if (!first) os << ",";
      first = false;
      WriteJsonString(os, key);
      os << ":";
      WriteJsonString(os, value);
    }
    os << "},\"telemetry\":";
    registry.WriteJsonObject(os);
    os << ",\"trace_file\":\"" << trace_path << "\"}\n";
    os.close();
    std::printf("\nrun report : %s\nchrome trace: %s\n", report_path.c_str(),
                trace_path.c_str());
    return report_path;
  }

 private:
  // One escaping implementation for the whole tree (core/json.h); this
  // header used to carry its own slightly-wrong copy.
  static void WriteJsonString(std::ostream& os, const std::string& s) {
    json::WriteString(os, s);
  }

  std::string id_;
  std::string claim_;
  std::map<std::string, double> metrics_;
  std::map<std::string, std::string> notes_;
};

}  // namespace xai::bench

#endif  // XAI_BENCH_BENCH_UTIL_H_
