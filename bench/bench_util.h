#ifndef XAI_BENCH_BENCH_UTIL_H_
#define XAI_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>

namespace xai::bench {

/// Prints the experiment banner: id, the paper claim being reproduced, and
/// the workload description.
inline void Banner(const char* id, const char* claim, const char* workload) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", id);
  std::printf("Claim    : %s\n", claim);
  std::printf("Workload : %s\n", workload);
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
}

inline void Section(const char* title) {
  std::printf("\n-- %s\n", title);
}

inline void Footer() {
  std::printf("==============================================================="
              "=================\n\n");
}

}  // namespace xai::bench

#endif  // XAI_BENCH_BENCH_UTIL_H_
