// E1 — LIME neighborhood-sampling stability (§2.1.1).
//
// Paper claim: LIME "involves sampling of points near the local neighborhood
// which can be unreliable"; Visani et al. propose stability indices.
// Expected shape: attribution variance shrinks and the top-k feature set
// stabilizes as the sampling budget grows; fidelity (local R^2) rises.

#include <cstdio>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/explain/lime.h"
#include "xai/model/gbdt.h"

namespace xai {
namespace {

void Run() {
  bench::Banner(
      "E1: LIME stability vs sampling budget",
      "\"sampling of points near the local neighborhood ... can be "
      "unreliable\" (S2.1.1)",
      "loans n=1500, GBDT(60 trees); 10 repeated LIME runs x 3 instances");

  Dataset train = MakeLoans(1500, 1);
  GbdtModel::Config mc;
  mc.n_trees = 60;
  auto model = GbdtModel::Train(train, mc).ValueOrDie();
  PredictFn f = AsPredictFn(model);

  const int kRuns = 10;
  const int kTopK = 3;
  std::printf("%10s %18s %16s %10s %12s\n", "n_samples", "coef_stddev",
              "jaccard_top3", "mean_R2", "ms/explain");
  for (int n_samples : {50, 200, 1000, 5000}) {
    LimeConfig config;
    config.num_samples = n_samples;
    LimeExplainer lime(train, config);
    double coef = 0, jac = 0, r2 = 0;
    WallTimer timer;
    int instances = 0;
    for (int row : {3, 57, 211}) {
      auto stability = EvaluateLimeStability(lime, f, train.Row(row), kRuns,
                                             kTopK, 100 + row)
                           .ValueOrDie();
      coef += stability.coefficient_stddev;
      jac += stability.jaccard_top_k;
      r2 += stability.mean_r2;
      ++instances;
    }
    double total_ms = timer.Millis();
    std::printf("%10d %18.5f %16.3f %10.3f %12.2f\n", n_samples,
                coef / instances, jac / instances, r2 / instances,
                total_ms / (instances * kRuns));
  }
  std::printf(
      "\nShape check: coef_stddev should fall and jaccard_top3 rise "
      "monotonically with n_samples.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
