// E1 — LIME neighborhood-sampling stability (§2.1.1).
//
// Paper claim: LIME "involves sampling of points near the local neighborhood
// which can be unreliable"; Visani et al. propose stability indices.
// Expected shape: attribution variance shrinks and the top-k feature set
// stabilizes as the sampling budget grows; fidelity (local R^2) rises.

#include <cstdio>
#include <utility>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/explain/lime.h"
#include "xai/model/gbdt.h"

namespace xai {
namespace {

void Run(int threads) {
  const char* claim =
      "\"sampling of points near the local neighborhood ... can be "
      "unreliable\" (S2.1.1)";
  bench::Banner("E1: LIME stability vs sampling budget", claim,
                "loans n=1500, GBDT(60 trees); 10 repeated LIME runs x 3 "
                "instances");
  bench::RunReport report("e01", claim);
  telemetry::Registry::Global().Reset();

  Dataset train = MakeLoans(1500, 1);
  GbdtModel::Config mc;
  mc.n_trees = 60;
  auto model = GbdtModel::Train(train, mc).ValueOrDie();
  PredictFn f = AsPredictFn(model);

  const int kRuns = 10;
  const int kTopK = 3;
  std::printf("%10s %18s %16s %10s %12s\n", "n_samples", "coef_stddev",
              "jaccard_top3", "mean_R2", "ms/explain");
  for (int n_samples : {50, 200, 1000, 5000}) {
    LimeConfig config;
    config.num_samples = n_samples;
    LimeExplainer lime(train, config);
    double coef = 0, jac = 0, r2 = 0;
    WallTimer timer;
    int instances = 0;
    for (int row : {3, 57, 211}) {
      auto stability = EvaluateLimeStability(lime, f, train.Row(row), kRuns,
                                             kTopK, 100 + row)
                           .ValueOrDie();
      coef += stability.coefficient_stddev;
      jac += stability.jaccard_top_k;
      r2 += stability.mean_r2;
      ++instances;
    }
    double total_ms = timer.Millis();
    std::printf("%10d %18.5f %16.3f %10.3f %12.2f\n", n_samples,
                coef / instances, jac / instances, r2 / instances,
                total_ms / (instances * kRuns));
    report.Metric("coef_stddev_n" + std::to_string(n_samples),
                  coef / instances);
    report.Metric("jaccard_top3_n" + std::to_string(n_samples),
                  jac / instances);
    report.Metric("ms_per_explain_n" + std::to_string(n_samples),
                  total_ms / (instances * kRuns));
  }
  bench::Section("serial vs parallel scaling (deterministic runtime)");
  {
    LimeConfig config;
    config.num_samples = 2000;
    LimeExplainer lime(train, config);
    auto run = [&](int t) {
      SetNumThreads(t);
      WallTimer timer;
      auto stability =
          EvaluateLimeStability(lime, f, train.Row(57), kRuns, kTopK, 157)
              .ValueOrDie();
      return std::pair<LimeStability, double>(stability, timer.Seconds());
    };
    auto [serial, s_sec] = run(1);
    auto [parallel, p_sec] = run(threads);
    // The runs fan out over the pool and each run's neighborhood scoring
    // fans out internally; both must match the serial result bit for bit.
    bool identical = serial.coefficient_stddev == parallel.coefficient_stddev &&
                     serial.jaccard_top_k == parallel.jaccard_top_k &&
                     serial.mean_r2 == parallel.mean_r2;
    double evals = static_cast<double>(kRuns) * (config.num_samples + 1);
    bench::Throughput("lime-stability", 1, s_sec, evals);
    bench::Throughput("lime-stability", threads, p_sec, evals);
    bench::Speedup("LIME stability (10 runs)", s_sec, p_sec, threads,
                   identical);
    report.Metric("lime_speedup", p_sec > 0 ? s_sec / p_sec : 0.0);
    report.Metric("lime_bit_identical", identical ? 1.0 : 0.0);
    SetNumThreads(threads);
  }

  std::printf(
      "\nShape check: coef_stddev should fall and jaccard_top3 rise "
      "monotonically with n_samples.\n");
  report.Write();
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main(int argc, char** argv) {
  int threads = xai::bench::ThreadsFlag(argc, argv);
  xai::SetNumThreads(threads);
  xai::Run(threads);
}
