// E8 — Data valuation: LOO vs TMC Data Shapley vs KNN-Shapley vs
// Distributional Shapley (§2.3.1).
//
// Paper claims: "Computing exact Shapley values requires the model to be
// retrained for each data point, and is intractable for real-world
// datasets"; Ghorbani & Zou "propose Monte-Carlo based ... approaches to
// efficiently approximate data Shapley values"; Jia et al. "introduce
// practical Shapley value estimation algorithms by making assumptions on
// the ... model" (exact for kNN).
// Expected shape: KNN-Shapley is orders of magnitude faster than TMC at
// equal-or-better noisy-label detection; LOO is cheap but a noisier
// detector; all valuation methods place flipped-label points at the bottom.

#include <algorithm>
#include <cstdio>
#include <utility>

#include "bench_util.h"
#include "xai/core/stats.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/valuation/data_shapley.h"
#include "xai/valuation/distributional_shapley.h"
#include "xai/valuation/knn_shapley.h"
#include "xai/valuation/loo.h"

namespace xai {
namespace {

// Fraction of the flipped points among the `k` lowest-valued points.
double DetectionRate(const Vector& values, const std::vector<int>& flipped) {
  std::vector<int> order = ArgSortAscending(values);
  int k = static_cast<int>(flipped.size());
  int hits = 0;
  for (int rank = 0; rank < k; ++rank)
    if (std::find(flipped.begin(), flipped.end(), order[rank]) !=
        flipped.end())
      ++hits;
  return static_cast<double>(hits) / k;
}

void Run(int threads) {
  const char* claim =
      "exact Data Shapley \"intractable\"; TMC approximation; KNN-Shapley "
      "\"practical\" exact algorithm (S2.3.1)";
  bench::Banner("E8: data valuation for noisy-label detection", claim,
                "blobs n_train=200 (15% labels flipped), n_valid=120, "
                "kNN(k=5) utility");
  bench::RunReport report("e08", claim);
  telemetry::Registry::Global().Reset();

  Dataset pool = MakeBlobs(320, 4, 2, 0.9, 3);
  auto [train, valid] = pool.TrainTestSplit(0.375, 4);
  std::vector<int> flipped = FlipBinaryLabels(&train, 0.15, 5);
  UtilityFn utility = MakeKnnAccuracyUtility(train, valid, 5);
  int n = train.num_rows();

  std::printf("%24s %12s %16s %16s\n", "method", "time_ms",
              "utility_calls", "detection@k");

  {
    WallTimer timer;
    Vector values = LeaveOneOutValues(n, utility);
    double det = DetectionRate(values, flipped);
    std::printf("%24s %12.1f %16d %16.3f\n", "leave-one-out",
                timer.Millis(), n + 1, det);
    report.Metric("loo_time_ms", timer.Millis());
    report.Metric("loo_detection", det);
  }
  {
    WallTimer timer;
    TmcConfig config;
    config.max_permutations = 60;
    config.truncation_tolerance = 0.02;
    TmcResult result = TmcDataShapley(n, utility, config);
    double det = DetectionRate(result.values, flipped);
    std::printf("%24s %12.1f %16d %16.3f\n", "TMC Data Shapley",
                timer.Millis(), result.utility_calls, det);
    report.Metric("tmc_time_ms", timer.Millis());
    report.Metric("tmc_utility_calls", result.utility_calls);
    report.Metric("tmc_detection", det);
  }
  {
    WallTimer timer;
    Vector values = KnnShapley(train, valid, 5).ValueOrDie();
    double det = DetectionRate(values, flipped);
    std::printf("%24s %12.1f %16d %16.3f\n", "KNN-Shapley (exact)",
                timer.Millis(), 0, det);
    report.Metric("knn_shapley_time_ms", timer.Millis());
    report.Metric("knn_shapley_detection", det);
  }
  {
    WallTimer timer;
    DistributionalShapleyConfig config;
    config.iterations = 25;
    config.max_cardinality = 48;
    Vector values = DistributionalShapley(n, utility, config);
    std::printf("%24s %12.1f %16d %16.3f\n", "Distributional Shapley",
                timer.Millis(), 2 * 25 * n,
                DetectionRate(values, flipped));
  }

  bench::Section("TMC truncation: calls saved vs tolerance");
  std::printf("%12s %16s %20s\n", "tolerance", "utility_calls",
              "truncated_frac");
  for (double tol : {0.0, 0.01, 0.05, 0.1}) {
    TmcConfig config;
    config.max_permutations = 25;
    config.truncation_tolerance = tol;
    TmcResult result = TmcDataShapley(n, utility, config);
    std::printf("%12.2f %16d %20.3f\n", tol, result.utility_calls,
                result.truncation_fraction);
  }
  bench::Section("serial vs parallel scaling (deterministic runtime)");
  {
    auto run = [&](int t) {
      SetNumThreads(t);
      TmcConfig config;
      config.max_permutations = 60;
      config.truncation_tolerance = 0.02;
      WallTimer timer;
      TmcResult result = TmcDataShapley(n, utility, config);
      return std::pair<TmcResult, double>(result, timer.Seconds());
    };
    auto [serial, s_sec] = run(1);
    auto [parallel, p_sec] = run(threads);
    bool identical = serial.values == parallel.values &&
                     serial.utility_calls == parallel.utility_calls;
    bench::Throughput("tmc-data-shapley", 1, s_sec, serial.utility_calls);
    bench::Throughput("tmc-data-shapley", threads, p_sec,
                      parallel.utility_calls);
    bench::Speedup("TMC Data Shapley", s_sec, p_sec, threads, identical);
    report.Metric("tmc_speedup", p_sec > 0 ? s_sec / p_sec : 0.0);
    report.Metric("tmc_bit_identical", identical ? 1.0 : 0.0);
    SetNumThreads(threads);
  }

  std::printf(
      "\nShape check: KNN-Shapley ~100-1000x faster than TMC at similar or "
      "better detection; truncation saves calls as tolerance grows.\n");
  report.Write();
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main(int argc, char** argv) {
  int threads = xai::bench::ThreadsFlag(argc, argv);
  xai::SetNumThreads(threads);
  xai::Run(threads);
}
