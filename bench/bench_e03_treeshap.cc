// E3 — TreeSHAP: polynomial-time exact Shapley values for trees (§2.1.2).
//
// Paper claim: "TreeSHAP introduces a polynomial-time algorithm to
// approximate Shapley values for tree-based complex models. It exploits
// properties of the tree structure for faster and efficient computation."
// (For the path-conditional game the algorithm is in fact *exact*.)
// Expected shape: TreeSHAP per-instance time grows linearly in the number
// of trees and stays microseconds-scale, while exact enumeration over the
// same game grows exponentially in d; the two agree to float precision.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "xai/core/combinatorics.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/explain/shapley/kernel_shap.h"
#include "xai/explain/shapley/tree_shap.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/gbdt.h"

namespace xai {
namespace {

void Run() {
  bench::Banner(
      "E3: TreeSHAP vs enumeration vs KernelSHAP",
      "\"TreeSHAP introduces a polynomial-time algorithm ... exploits "
      "properties of the tree structure\" (S2.1.2)",
      "GBDT on loans (d=8); per-instance explanation cost and exactness");

  Dataset train = MakeLoans(2000, 1);

  bench::Section("per-instance time vs ensemble size (20 instances)");
  std::printf("%8s %8s %18s %20s\n", "trees", "depth", "treeshap_us/inst",
              "margin_check");
  for (int n_trees : {10, 50, 150, 400}) {
    GbdtModel::Config config;
    config.n_trees = n_trees;
    config.max_depth = 4;
    auto model = GbdtModel::Train(train, config).ValueOrDie();
    TreeEnsembleView view = TreeEnsembleView::Of(model);
    WallTimer timer;
    double max_gap = 0;
    for (int i = 0; i < 20; ++i) {
      auto exp = TreeShap(view, train.Row(i));
      max_gap = std::max(max_gap, std::fabs(exp.AttributionSum() -
                                            model.Margin(train.Row(i))));
    }
    std::printf("%8d %8d %18.1f %20.2e\n", n_trees, 4,
                timer.Micros() / 20.0, max_gap);
  }

  bench::Section(
      "TreeSHAP vs brute-force enumeration of the same game (1 tree)");
  std::printf("%4s %18s %18s %14s\n", "d", "treeshap_us", "bruteforce_us",
              "max_diff");
  for (int dd : {6, 8, 10, 12, 14, 16}) {
    auto [data, gt] = MakeLogisticData(400, dd, 20 + dd);
    (void)gt;
    GbdtModel::Config config;
    config.n_trees = 1;
    config.max_depth = 6;
    config.min_samples_leaf = 2;
    auto model = GbdtModel::Train(data, config).ValueOrDie();
    const Tree& tree = model.trees()[0];
    Vector x = data.Row(0);

    WallTimer fast_timer;
    Vector fast = TreeShapValues(tree, x, dd);
    double fast_us = fast_timer.Micros();

    WallTimer slow_timer;
    std::vector<double> slow = ShapleyOfSetFunction(dd, [&](uint64_t mask) {
      return TreeConditionalExpectation(tree, x, mask);
    });
    double slow_us = slow_timer.Micros();

    double diff = 0;
    for (int j = 0; j < dd; ++j)
      diff = std::max(diff, std::fabs(fast[j] - slow[j]));
    std::printf("%4d %18.1f %18.1f %14.2e\n", dd, fast_us, slow_us, diff);
  }

  bench::Section("TreeSHAP vs model-agnostic KernelSHAP on the GBDT (d=8)");
  GbdtModel::Config config;
  config.n_trees = 100;
  auto model = GbdtModel::Train(train, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  PredictFn margin_fn = [&model](const Vector& row) {
    return model.Margin(row);
  };
  std::printf("%22s %16s %14s\n", "method", "us/instance", "model_evals");
  {
    WallTimer timer;
    for (int i = 0; i < 10; ++i) TreeShap(view, train.Row(i));
    std::printf("%22s %16.1f %14s\n", "TreeSHAP", timer.Micros() / 10.0,
                "0");
  }
  {
    WallTimer timer;
    int evals = 0;
    for (int i = 0; i < 10; ++i) {
      MarginalFeatureGame game(margin_fn, train.Row(i), train.x(), 24);
      Rng rng(31 + i);
      KernelShapConfig ks_config;
      ks_config.coalition_budget = 254;  // All coalitions at d=8: exact.
      KernelShap(game, ks_config, &rng).ValueOrDie();
      evals += game.num_evaluations();
    }
    std::printf("%22s %16.1f %14d\n", "KernelSHAP(exact)",
                timer.Micros() / 10.0, evals / 10);
  }
  std::printf(
      "\nShape check: treeshap_us linear in trees; brute force explodes "
      "with d while TreeSHAP stays flat; max_diff ~ 1e-12.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
