// E7 — Frequent-itemset mining: Apriori vs FP-Growth (§2.2.1).
//
// Paper claim: rule mining "is one of the fundamental topics of research in
// the data management community"; FP-Growth mines "frequent patterns
// without candidate generation" (Han, Pei & Yin 2000) and famously
// outperforms Apriori as the support threshold drops (more/longer
// candidates).
// Expected shape: identical itemset counts; FP-Growth's advantage grows as
// min_support falls.

#include <cstdio>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/rules/apriori.h"
#include "xai/rules/fpgrowth.h"
#include "xai/rules/itemset.h"

namespace xai {
namespace {

void Run() {
  bench::Banner(
      "E7: Apriori vs FP-Growth",
      "FP-Growth: \"mining frequent patterns without candidate "
      "generation\" (S2.2.1)",
      "IBM-Quest-style transactions: n=4000, 120 items, ~10 items/txn, "
      "8 planted patterns");

  TransactionDb db = MakeTransactions(4000, 120, 10, 8, 4, 7);

  std::printf("%12s %12s %14s %14s %10s %12s\n", "min_support", "itemsets",
              "apriori_ms", "fpgrowth_ms", "speedup", "agree");
  for (double frac : {0.08, 0.04, 0.02, 0.01, 0.005}) {
    int min_support = static_cast<int>(frac * db.size());
    WallTimer apriori_timer;
    auto apriori = Apriori(db, min_support).ValueOrDie();
    double apriori_ms = apriori_timer.Millis();

    WallTimer fp_timer;
    auto fpgrowth = FpGrowth(db, min_support).ValueOrDie();
    double fp_ms = fp_timer.Millis();

    bool agree = apriori.size() == fpgrowth.size();
    for (size_t i = 0; agree && i < apriori.size(); ++i)
      agree = apriori[i].items == fpgrowth[i].items &&
              apriori[i].support == fpgrowth[i].support;

    std::printf("%11.1f%% %12zu %14.1f %14.1f %9.1fx %12s\n", frac * 100,
                apriori.size(), apriori_ms, fp_ms, apriori_ms / fp_ms,
                agree ? "yes" : "NO!");
  }

  bench::Section("association rules at min_support = 1%");
  int min_support = static_cast<int>(0.01 * db.size());
  auto frequent = FpGrowth(db, min_support).ValueOrDie();
  auto rules = GenerateRules(frequent, static_cast<int>(db.size()), 0.8);
  std::printf("rules with confidence >= 0.8: %zu\n", rules.size());
  for (size_t i = 0; i < rules.size() && i < 5; ++i)
    std::printf("  %s\n", rules[i].ToString().c_str());

  std::printf(
      "\nShape check: identical itemsets; FP-Growth speedup grows as "
      "min_support drops.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
