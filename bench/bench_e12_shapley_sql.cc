// E12 — Shapley values of tuples in query answering (§3).
//
// Paper claim: "recent developments in XAI have inspired novel
// explainability approaches such as Shapley value-based methods to generate
// explanations for SQL query answers" (Livshits/Bertossi/Kimelfeld/Sebag).
// The problem is #P-hard in general: exact subset enumeration explodes with
// the number of endogenous tuples while permutation sampling scales.
// Expected shape: exact runtime doubles per endogenous tuple; sampling
// error ~ 1/sqrt(permutations); responsibility gives coarser (1/(1+k))
// scores consistent with the Shapley ranking.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "xai/core/check.h"
#include "xai/core/rng.h"
#include "xai/core/timer.h"
#include "xai/dbx/responsibility.h"
#include "xai/dbx/tuple_shapley.h"
#include "xai/relational/expression.h"
#include "xai/relational/operators.h"
#include "xai/relational/relation.h"

namespace xai {
namespace {

using rel::AggFn;
using rel::Expr;
using rel::ProvExpr;
using rel::ProvExprPtr;
using rel::Relation;
using rel::Value;

// Builds Orders(customer, product) JOIN Products(product, category),
// selects category = 'toys', projects the customer — the boolean answer
// "some customer bought a toy" has a DNF lineage over order tuples.
// Orders are endogenous; product tuples exogenous.
struct QueryCase {
  ProvExprPtr lineage;
  std::vector<int> endogenous;
};

// `n_toys` controls how many orders hit a toy product (>= 1 so the answer
// holds); -1 draws products uniformly (expected 1/3 toys).
QueryCase BuildCase(int n_orders, uint64_t seed, int n_toys = -1) {
  Rng rng(seed);
  Relation orders("orders", {"customer", "product"});
  Relation products("products", {"product", "category"});
  int next_id = 0;
  std::vector<int> endogenous;
  for (int i = 0; i < n_orders; ++i) {
    int id = next_id++;
    endogenous.push_back(id);
    int product;
    if (n_toys < 0) {
      product = i < 2 ? i : rng.UniformInt(6);  // Answer always holds.
    } else {
      product = i < n_toys ? rng.UniformInt(2) : 2 + rng.UniformInt(4);
    }
    XAI_CHECK(orders
                  .AppendBase({Value::Str("c" + std::to_string(
                                              rng.UniformInt(4))),
                               Value::Int(product)},
                              id)
                  .ok());
  }
  for (int p = 0; p < 6; ++p) {
    XAI_CHECK(products
                  .AppendBase({Value::Int(p),
                               Value::Str(p < 2 ? "toys" : "food")},
                              next_id++)
                  .ok());
  }
  auto joined = rel::EquiJoin(orders, products, 1, 0).ValueOrDie();
  auto toys = rel::Select(joined, Expr::Eq(Expr::Column(3),
                                           Expr::Const(Value::Str("toys"))))
                  .ValueOrDie();
  auto answer = rel::GroupByAggregate(toys, {}, AggFn::kCount, -1, "cnt")
                    .ValueOrDie();
  QueryCase result;
  result.lineage = answer.num_tuples() > 0 ? answer.annotation(0)
                                           : ProvExpr::Zero();
  result.endogenous = endogenous;
  return result;
}

void Run() {
  bench::Banner(
      "E12: Shapley values of tuples in query answering",
      "\"Shapley value-based methods to generate explanations for SQL "
      "query answers\" (S3)",
      "boolean query: EXISTS(orders JOIN products WHERE category='toys'); "
      "orders endogenous, products exogenous");

  bench::Section("exact enumeration cost vs #endogenous tuples");
  std::printf("%8s %14s %16s\n", "tuples", "evaluations", "time_ms");
  for (int n : {8, 12, 16, 20}) {
    QueryCase qc = BuildCase(n, 100 + n);
    WallTimer timer;
    auto result =
        BooleanQueryTupleShapley(qc.lineage, qc.endogenous).ValueOrDie();
    std::printf("%8d %14d %16.2f\n", n, result.game_evaluations,
                timer.Millis());
  }

  bench::Section("sampling vs exact at 16 endogenous tuples");
  QueryCase qc = BuildCase(16, 7);
  auto exact =
      BooleanQueryTupleShapley(qc.lineage, qc.endogenous).ValueOrDie();
  std::printf("%14s %14s %12s\n", "permutations", "max_error", "time_ms");
  for (int permutations : {100, 1000, 10000}) {
    TupleShapleyConfig config;
    config.exact_limit = 0;  // Force sampling.
    config.permutations = permutations;
    WallTimer timer;
    auto sampled =
        BooleanQueryTupleShapley(qc.lineage, qc.endogenous, config)
            .ValueOrDie();
    double err = 0;
    for (const auto& [id, v] : exact.values)
      err = std::max(err, std::fabs(v - sampled.values[id]));
    std::printf("%14d %14.5f %12.2f\n", permutations, err, timer.Millis());
  }

  bench::Section(
      "Shapley vs causal responsibility (12 tuples, 3 toy orders)");
  QueryCase small = BuildCase(12, 9, /*n_toys=*/3);
  auto shapley =
      BooleanQueryTupleShapley(small.lineage, small.endogenous)
          .ValueOrDie();
  auto responsibility =
      TupleResponsibility(small.lineage, small.endogenous).ValueOrDie();
  std::printf("%8s %14s %18s\n", "tuple", "shapley", "responsibility");
  for (int id : small.endogenous)
    std::printf("t%-7d %14.4f %18.4f\n", id, shapley.values[id],
                responsibility.responsibility[id]);
  std::printf(
      "\nShape check: exact evaluations = 2^n; sampling error falls with "
      "permutations; responsibility coarsens but preserves the zero/non-"
      "zero structure of the Shapley ranking.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
