// E13 — Provenance through ML pipelines; blaming a buggy stage (§3).
//
// Paper claim: "training data errors may get introduced or exacerbated
// during different data preparation stages. To hold particular stages
// accountable for ML decisions, the flow of training data points must be
// monitored through different stages using provenance techniques."
// Expected shape: stage-Shapley attribution ranks the injected corrupting
// stage most harmful in nearly every trial, regardless of its position;
// row-level provenance pinpoints exactly the rows each stage touched.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/metrics.h"
#include "xai/pipeline/operators.h"
#include "xai/pipeline/pipeline.h"
#include "xai/pipeline/stage_attribution.h"

namespace xai {
namespace {

void Run() {
  bench::Banner(
      "E13: pipeline provenance and stage attribution",
      "\"the flow of training data points must be monitored through "
      "different stages using provenance techniques\" (S3)",
      "5-stage prep pipeline on loans; one corrupting stage injected at a "
      "random position; 10 trials");

  Dataset data = MakeLoans(1200, 1);
  auto [input, valid] = data.TrainTestSplit(0.3, 2);
  int income = input.schema().FeatureIndex("income");
  int age = input.schema().FeatureIndex("age");
  int credit = input.schema().FeatureIndex("credit_score");

  auto quality = [&valid](const Dataset& prepared) {
    auto model = LogisticRegressionModel::Train(prepared);
    return model.ok() ? EvaluateAccuracy(*model, valid) : 0.0;
  };

  bench::Section("does stage Shapley find the bug? (bug position varies)");
  std::printf("%8s %22s %14s %12s\n", "trial", "bug_position",
              "found_bug", "bug_shapley");
  int found = 0;
  const int kTrials = 10;
  WallTimer attribution_timer;
  int evaluations = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    int bug_pos = trial % 5;
    Pipeline pipeline;
    std::vector<std::shared_ptr<PipelineOp>> benign = {
        std::make_shared<ClipOp>(income, 0.0, 400.0),
        std::make_shared<ImputeMeanOp>(income, -999.0),
        std::make_shared<ClipOp>(age, 18.0, 100.0),
        std::make_shared<ImputeMeanOp>(credit, -1.0),
    };
    auto buggy = std::make_shared<CorruptLabelsOp>(
        "buggy_dedup", [income, trial](const Vector& x, double) {
          return x[income] > 40.0 + trial;
        });
    int b = 0;
    for (int pos = 0; pos < 5; ++pos) {
      if (pos == bug_pos)
        pipeline.Add(buggy);
      else
        pipeline.Add(benign[b++]);
    }
    auto attribution = StageShapley(pipeline, input, quality).ValueOrDie();
    evaluations += attribution.pipeline_evaluations;
    bool hit = attribution.MostHarmfulStage() == bug_pos;
    if (hit) ++found;
    std::printf("%8d %22d %14s %12.4f\n", trial, bug_pos,
                hit ? "yes" : "NO", attribution.shapley[bug_pos]);
  }
  std::printf("\nbug identified in %d/%d trials; %.1f ms and %d pipeline "
              "evaluations per trial\n",
              found, kTrials, attribution_timer.Millis() / kTrials,
              evaluations / kTrials);

  bench::Section("row-level provenance bookkeeping cost");
  Pipeline pipeline;
  pipeline.Add(std::make_shared<ClipOp>(income, 0.0, 400.0));
  pipeline.Add(std::make_shared<ImputeMeanOp>(income, -999.0));
  pipeline.Add(std::make_shared<StandardizeOp>());
  const int kReps = 50;
  WallTimer run_timer;
  PipelineResult traced;
  for (int rep = 0; rep < kReps; ++rep)
    traced = pipeline.Run(input).ValueOrDie();
  double traced_ms = run_timer.Millis() / kReps;
  WallTimer plain_timer;
  for (int rep = 0; rep < kReps; ++rep) {
    Dataset plain =
        pipeline.RunWithStages(input, {true, true, true}).ValueOrDie();
    (void)plain;
  }
  double plain_ms = plain_timer.Millis() / kReps;
  std::printf("with provenance: %.2f ms ; without: %.2f ms (overhead "
              "%.0f%%)\n",
              traced_ms, plain_ms,
              100.0 * (traced_ms - plain_ms) / std::max(plain_ms, 1e-9));
  std::printf("example trace: %s\n", traced.TraceRow(0).c_str());
  std::printf(
      "\nShape check: bug found in ~10/10 trials with a clearly negative "
      "Shapley value; provenance overhead modest.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
