// A3 (ablation) — background-sample size of the marginal SHAP game.
//
// DESIGN.md calls out the background set: the marginal game estimates
// conditional expectations with B background rows, so attribution quality
// and cost both scale with B. This sweep measures error (vs a large-B
// reference) and runtime per explanation.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/gbdt.h"

namespace xai {
namespace {

void Run() {
  bench::Banner(
      "A3 (ablation): background set size of the marginal SHAP game",
      "design choice from DESIGN.md: off-coalition features take values "
      "from B background rows",
      "GBDT(40) on loans (d=8), exact Shapley; reference = B=512");

  Dataset train = MakeLoans(2000, 1);
  GbdtModel::Config mc;
  mc.n_trees = 40;
  auto model = GbdtModel::Train(train, mc).ValueOrDie();
  PredictFn f = AsPredictFn(model);

  const int kInstances = 5;
  // Reference attributions at B = 512.
  std::vector<Vector> reference;
  for (int i = 0; i < kInstances; ++i) {
    MarginalFeatureGame game(f, train.Row(i * 17), train.x(), 512);
    reference.push_back(ExactShapley(game).ValueOrDie());
  }

  std::printf("%8s %16s %16s\n", "B", "max_err_vs_ref", "ms/explanation");
  for (int b : {4, 16, 64, 256}) {
    double err = 0;
    WallTimer timer;
    for (int i = 0; i < kInstances; ++i) {
      MarginalFeatureGame game(f, train.Row(i * 17), train.x(), b);
      Vector phi = ExactShapley(game).ValueOrDie();
      for (size_t j = 0; j < phi.size(); ++j)
        err = std::max(err, std::fabs(phi[j] - reference[i][j]));
    }
    std::printf("%8d %16.5f %16.2f\n", b, err, timer.Millis() / kInstances);
  }
  std::printf(
      "\nShape check: error falls roughly as 1/sqrt(B) while cost grows "
      "linearly in B — the knob trades fidelity for latency.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
