// Microbenchmarks of the computational kernels (google-benchmark):
// Cholesky solve, TreeSHAP per instance, FP-Growth per database, tuple
// Shapley per endogenous tuple, LIME per explanation, and the row-vs-
// columnar relational operator pairs.

#include <benchmark/benchmark.h>

#include "xai/core/matrix.h"
#include "xai/core/parallel.h"
#include "xai/core/rng.h"
#include "xai/core/simd.h"
#include "xai/data/synthetic.h"
#include "xai/dbx/tuple_shapley.h"
#include "xai/explain/lime.h"
#include "xai/explain/shapley/flat_tree_shap.h"
#include "xai/explain/shapley/tree_shap.h"
#include "xai/model/gbdt.h"
#include "xai/relational/columnar.h"
#include "xai/relational/columnar_ops.h"
#include "xai/relational/operators.h"
#include "xai/rules/fpgrowth.h"

namespace xai {
namespace {

// range(0) is the problem size, range(1) selects the simd backend
// (0 = scalar, 1 = dispatched best). The pairs of rows quantify what the
// kernel layer buys at each size; results are bit-identical by contract.
simd::Backend BenchBackend(int64_t selector) {
  return selector == 0 ? simd::Backend::kScalar : simd::MaxSupported();
}

void BM_DotKernel(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  simd::Backend prev = simd::SetBackend(BenchBackend(state.range(1)));
  Rng rng(1);
  Vector a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Normal();
    b[i] = rng.Normal();
  }
  for (auto _ : state) {
    double d = simd::Dot(a.data(), b.data(), n);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations() * n);
  simd::SetBackend(prev);
}
BENCHMARK(BM_DotKernel)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({4096, 0})
    ->Args({4096, 1});

void BM_AxpyKernel(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  simd::Backend prev = simd::SetBackend(BenchBackend(state.range(1)));
  Rng rng(1);
  Vector x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal();
  }
  for (auto _ : state) {
    simd::Axpy(1e-9, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  simd::SetBackend(prev);
}
BENCHMARK(BM_AxpyKernel)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({4096, 0})
    ->Args({4096, 1});

void BM_GemmKernel(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  simd::Backend prev = simd::SetBackend(BenchBackend(state.range(1)));
  Rng rng(1);
  Matrix a(n, n), b(n, n), c(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      a(i, j) = rng.Normal();
      b(i, j) = rng.Normal();
    }
  for (auto _ : state) {
    simd::Gemm(n, n, n, a.RowPtr(0), n, b.RowPtr(0), n, c.RowPtr(0), n);
    benchmark::DoNotOptimize(c.RowPtr(0));
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<int64_t>(n) *
                          n * n);
  simd::SetBackend(prev);
}
BENCHMARK(BM_GemmKernel)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({192, 0})
    ->Args({192, 1});

// Packed GEMM flop-rate sweep: range(0) = n (C += A*B at n^3), range(1) =
// the Backend enum value (0 scalar, 1 sse2, 2 avx2, 3 fma — fma is opt-in
// and skipped when the host lacks it), range(2) = thread count.
// items_per_second == FLOP/s (2 n^3 per iteration).
void BM_GemmPackedFlopRate(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto want = static_cast<simd::Backend>(state.range(1));
  simd::Backend prev = simd::Active();
  if (simd::SetBackend(want) != want) {
    simd::SetBackend(prev);
    state.SkipWithError("backend not supported on this host");
    return;
  }
  int prev_threads = GetNumThreads();
  SetNumThreads(static_cast<int>(state.range(2)));
  Rng rng(1);
  Matrix a(n, n), b(n, n), c(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      a(i, j) = rng.Normal();
      b(i, j) = rng.Normal();
    }
  for (auto _ : state) {
    simd::GemmPacked(n, n, n, a.RowPtr(0), n, b.RowPtr(0), n, c.RowPtr(0),
                     n);
    benchmark::DoNotOptimize(c.RowPtr(0));
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<int64_t>(n) *
                          n * n);
  SetNumThreads(prev_threads);
  simd::SetBackend(prev);
}
void GemmPackedSweepArgs(benchmark::internal::Benchmark* bench) {
  for (int size : {64, 128, 256, 512, 1024})
    for (int backend : {0, 1, 2, 3})
      for (int threads : {1, 4, 8}) bench->Args({size, backend, threads});
}
BENCHMARK(BM_GemmPackedFlopRate)->Apply(GemmPackedSweepArgs);

void BM_CholeskySolve(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Matrix x(2 * n, n);
  for (int i = 0; i < 2 * n; ++i)
    for (int j = 0; j < n; ++j) x(i, j) = rng.Normal();
  Matrix a = x.Gram();
  a.AddScaledIdentity(1.0);
  Vector b(n);
  for (int j = 0; j < n; ++j) b[j] = rng.Normal();
  for (auto _ : state) {
    auto sol = CholeskySolve(a, b);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(8)->Arg(32)->Arg(128);

void BM_TreeShapPerInstance(benchmark::State& state) {
  int n_trees = static_cast<int>(state.range(0));
  Dataset train = MakeLoans(1000, 2);
  GbdtModel::Config config;
  config.n_trees = n_trees;
  auto model = GbdtModel::Train(train, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  int row = 0;
  for (auto _ : state) {
    auto exp = TreeShap(view, train.Row(row));
    benchmark::DoNotOptimize(exp);
    row = (row + 1) % train.num_rows();
  }
}
BENCHMARK(BM_TreeShapPerInstance)->Arg(10)->Arg(100);

void BM_TreeShapRecursive(benchmark::State& state) {
  // The recursive AoS reference walk (tree_shap.cc): pointer-chases 48-byte
  // TreeNode structs and heap-allocates one cold-path copy per internal
  // node. The row below quantifies what the flat kernel's SoA layout +
  // path arena buy; outputs are bit-identical by contract.
  int n_trees = static_cast<int>(state.range(0));
  Dataset train = MakeLoans(1000, 2);
  GbdtModel::Config config;
  config.n_trees = n_trees;
  auto model = GbdtModel::Train(train, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  int row = 0;
  for (auto _ : state) {
    auto exp = TreeShapLegacy(view, train.Row(row));
    benchmark::DoNotOptimize(exp);
    row = (row + 1) % train.num_rows();
  }
}
BENCHMARK(BM_TreeShapRecursive)->Arg(10)->Arg(100);

void BM_TreeShapFlat(benchmark::State& state) {
  // Same workload through the flat iterative kernel (flat_tree_shap.h) on
  // a prebuilt FlatTreeShap, the serving configuration: SoA nodes + cover
  // side-table, register-resident hot-path chase, zero steady-state heap
  // allocation.
  int n_trees = static_cast<int>(state.range(0));
  Dataset train = MakeLoans(1000, 2);
  GbdtModel::Config config;
  config.n_trees = n_trees;
  auto model = GbdtModel::Train(train, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  FlatTreeShap kernel = FlatTreeShap::Build(view);
  int row = 0;
  for (auto _ : state) {
    auto exp = kernel.Shap(train.Row(row));
    benchmark::DoNotOptimize(exp);
    row = (row + 1) % train.num_rows();
  }
}
BENCHMARK(BM_TreeShapFlat)->Arg(10)->Arg(100);

void BM_EnsembleMarginScalar(benchmark::State& state) {
  // Single-row latency of the AoS pointer-walking path: per tree this pays
  // a 48-byte TreeNode chase; the view's Margin hoists the scales/trees
  // array bases but still walks the original node layout.
  int n_trees = static_cast<int>(state.range(0));
  Dataset train = MakeLoans(1000, 5);
  GbdtModel::Config config;
  config.n_trees = n_trees;
  auto model = GbdtModel::Train(train, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  int row = 0;
  for (auto _ : state) {
    double margin = view.Margin(train.Row(row));
    benchmark::DoNotOptimize(margin);
    row = (row + 1) % train.num_rows();
  }
}
BENCHMARK(BM_EnsembleMarginScalar)->Arg(10)->Arg(100);

void BM_EnsembleMarginFlat(benchmark::State& state) {
  // Same workload through the compiled SoA kernel (flat_ensemble.h):
  // branch-reduced stepping over 16-byte effective nodes.
  int n_trees = static_cast<int>(state.range(0));
  Dataset train = MakeLoans(1000, 5);
  GbdtModel::Config config;
  config.n_trees = n_trees;
  auto model = GbdtModel::Train(train, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  auto flat = view.flat();
  int row = 0;
  for (auto _ : state) {
    double margin = flat->MarginRow(train.x().RowPtr(row));
    benchmark::DoNotOptimize(margin);
    row = (row + 1) % train.num_rows();
  }
}
BENCHMARK(BM_EnsembleMarginFlat)->Arg(10)->Arg(100);

void BM_FpGrowth(benchmark::State& state) {
  auto db = MakeTransactions(1000, 80, 8, 6, 3, 3);
  int min_support = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = FpGrowth(db, min_support);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FpGrowth)->Arg(50)->Arg(10);

void BM_TupleShapleyExact(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // Lineage = OR of AND pairs over n endogenous tuples.
  rel::ProvExprPtr lineage = rel::ProvExpr::Zero();
  std::vector<int> endo;
  for (int i = 0; i + 1 < n; i += 2) {
    lineage = rel::ProvExpr::Plus(
        lineage, rel::ProvExpr::Times(rel::ProvExpr::Base(i),
                                      rel::ProvExpr::Base(i + 1)));
  }
  for (int i = 0; i < n; ++i) endo.push_back(i);
  for (auto _ : state) {
    auto result = BooleanQueryTupleShapley(lineage, endo);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TupleShapleyExact)->Arg(10)->Arg(16);

// Row engine vs columnar engine on the same relational operator — the
// tuple-at-a-time interpreter against batch-of-1024 kernels. Outputs are
// bit-identical by contract (bench_e25 checks that; these rows quantify
// the per-operator throughput gap).
rel::Relation MicroFact(int rows) {
  Rng rng(13);
  rel::Relation fact("fact", {"k", "v"});
  for (int i = 0; i < rows; ++i) {
    (void)fact.AppendBase({rel::Value::Int(rng.UniformInt(64)),
                           rel::Value::Double(rng.Uniform(-1.0, 1.0))},
                          i);
  }
  return fact;
}

rel::ExprPtr MicroPred() {
  return rel::Expr::Gt(rel::Expr::Column(1),
                       rel::Expr::Const(rel::Value::Double(0.0)));
}

void BM_SelectRowEngine(benchmark::State& state) {
  rel::Relation fact = MicroFact(static_cast<int>(state.range(0)));
  rel::ExprPtr pred = MicroPred();
  for (auto _ : state) {
    auto out = rel::Select(fact, pred).ValueOrDie();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelectRowEngine)->Arg(4096)->Arg(65536);

void BM_SelectColumnar(benchmark::State& state) {
  SetNumThreads(1);
  rel::Relation fact = MicroFact(static_cast<int>(state.range(0)));
  rel::ColumnarRelation cfact =
      rel::ColumnarRelation::FromRows(fact).ValueOrDie();
  rel::ExprPtr pred = MicroPred();
  for (auto _ : state) {
    auto out = rel::Select(cfact, pred).ValueOrDie();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelectColumnar)->Arg(4096)->Arg(65536);

void BM_GroupByRowEngine(benchmark::State& state) {
  rel::Relation fact = MicroFact(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out =
        rel::GroupByAggregate(fact, {0}, rel::AggFn::kSum, 1, "s")
            .ValueOrDie();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByRowEngine)->Arg(4096)->Arg(65536);

void BM_GroupByColumnar(benchmark::State& state) {
  SetNumThreads(1);
  rel::Relation fact = MicroFact(static_cast<int>(state.range(0)));
  rel::ColumnarRelation cfact =
      rel::ColumnarRelation::FromRows(fact).ValueOrDie();
  for (auto _ : state) {
    auto out =
        rel::GroupByAggregate(cfact, {0}, rel::AggFn::kSum, 1, "s")
            .ValueOrDie();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupByColumnar)->Arg(4096)->Arg(65536);

void BM_LimeExplain(benchmark::State& state) {
  int n_samples = static_cast<int>(state.range(0));
  Dataset train = MakeLoans(800, 4);
  GbdtModel::Config mc;
  mc.n_trees = 30;
  auto model = GbdtModel::Train(train, mc).ValueOrDie();
  PredictFn f = AsPredictFn(model);
  LimeConfig config;
  config.num_samples = n_samples;
  LimeExplainer lime(train, config);
  uint64_t seed = 0;
  for (auto _ : state) {
    auto exp = lime.Explain(f, train.Row(0), seed++);
    benchmark::DoNotOptimize(exp);
  }
}
BENCHMARK(BM_LimeExplain)->Arg(200)->Arg(1000);

}  // namespace
}  // namespace xai
