// E21 — SIMD math-kernel layer: dispatched dot/axpy/GEMM core.
//
// Pins the two claims DESIGN.md §10 makes for the kernel layer:
//  (1) Performance: the dispatched backend beats the scalar backend by >= 2x
//      on serial GEMM and WLS normal-equation assembly, and the win is
//      visible end-to-end in LIME and KernelSHAP (whose inner loop is a
//      weighted least-squares solve over the perturbation design).
//  (2) Accuracy: results differ from the pre-kernel textbook loops only by
//      summation order — max |delta| on WLS/GEMM outputs vs faithful
//      replicas of the seed implementations stays < 1e-9 — while scalar,
//      SSE2, and AVX2 backends are BIT-identical among themselves (the
//      striped-accumulator contract of core/simd.h).
//
// The "pre" numbers come from in-bench replicas of the seed loops (same
// summation order, same skip-zero guards), so the comparison tracks this
// binary and this compiler, not a stale snapshot.

#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "xai/core/linalg.h"
#include "xai/core/matrix.h"
#include "xai/core/parallel.h"
#include "xai/core/rng.h"
#include "xai/core/simd.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/explain/lime.h"
#include "xai/explain/shapley/kernel_shap.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/logistic_regression.h"

namespace xai {
namespace {

template <typename Fn>
double BestOf(int reps, const Fn& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.Seconds());
  }
  return best;
}

bool BitIdentical(const Vector& a, const Vector& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  if (a.rows() == 0 || a.cols() == 0) return true;
  return std::memcmp(a.RowPtr(0), b.RowPtr(0),
                     static_cast<size_t>(a.rows()) * a.cols() *
                         sizeof(double)) == 0;
}

double MaxAbsDelta(const Vector& a, const Vector& b) {
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

double MaxAbsDelta(const Matrix& a, const Matrix& b) {
  double m = 0.0;
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < a.cols(); ++j)
      m = std::max(m, std::fabs(a(i, j) - b(i, j)));
  return m;
}

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j) m(i, j) = rng->Normal();
  return m;
}

// ---------------------------------------------------------------------------
// Replicas of the pre-kernel (seed) implementations, preserved with their
// original summation order and skip-zero guards. These define the accuracy
// baseline the kernels are pinned against.
// ---------------------------------------------------------------------------

Matrix PreMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = out.RowPtr(i);
    for (int k = 0; k < a.cols(); ++k) {
      double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.RowPtr(k);
      for (int j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix PreWeightedGram(const Matrix& x, const Vector& w) {
  Matrix g(x.cols(), x.cols());
  for (int i = 0; i < x.rows(); ++i) {
    const double* row = x.RowPtr(i);
    double wi = w[i];
    if (wi == 0.0) continue;
    for (int a = 0; a < x.cols(); ++a) {
      double ra = wi * row[a];
      if (ra == 0.0) continue;
      double* grow = g.RowPtr(a);
      for (int b = a; b < x.cols(); ++b) grow[b] += ra * row[b];
    }
  }
  for (int a = 0; a < x.cols(); ++a)
    for (int b = 0; b < a; ++b) g(a, b) = g(b, a);
  return g;
}

Vector PreTransposeMatVec(const Matrix& x, const Vector& v) {
  Vector out(x.cols(), 0.0);
  for (int i = 0; i < x.rows(); ++i) {
    const double* row = x.RowPtr(i);
    double vi = v[i];
    if (vi == 0.0) continue;
    for (int j = 0; j < x.cols(); ++j) out[j] += row[j] * vi;
  }
  return out;
}

Vector PreCholeskySolve(const Matrix& a, const Vector& b) {
  int n = a.rows();
  Matrix l(n, n);
  for (int j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (int k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    l(j, j) = std::sqrt(diag);
    for (int i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (int k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / l(j, j);
    }
  }
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    double v = b[i];
    for (int k = 0; k < i; ++k) v -= l(i, k) * y[k];
    y[i] = v / l(i, i);
  }
  Vector x(n);
  for (int i = n - 1; i >= 0; --i) {
    double v = y[i];
    for (int k = i + 1; k < n; ++k) v -= l(k, i) * x[k];
    x[i] = v / l(i, i);
  }
  return x;
}

// Seed WeightedRidgeRegression flow on the replica primitives.
Vector PreWls(const Matrix& x, const Vector& y, const Vector& sw, double l2,
              bool fit_intercept) {
  Matrix xx = x;
  if (fit_intercept) {
    xx = Matrix(x.rows(), x.cols() + 1);
    for (int i = 0; i < x.rows(); ++i) {
      for (int j = 0; j < x.cols(); ++j) xx(i, j) = x(i, j);
      xx(i, x.cols()) = 1.0;
    }
  }
  Matrix gram = PreWeightedGram(xx, sw);
  int d = gram.rows();
  int reg_dims = fit_intercept ? d - 1 : d;
  for (int i = 0; i < reg_dims; ++i) gram(i, i) += l2;
  gram.AddScaledIdentity(1e-12);
  Vector wy(y.size());
  for (size_t i = 0; i < y.size(); ++i) wy[i] = sw[i] * y[i];
  Vector rhs = PreTransposeMatVec(xx, wy);
  return PreCholeskySolve(gram, rhs);
}

// ---------------------------------------------------------------------------

struct BackendAb {
  double scalar_sec = 0.0;
  double simd_sec = 0.0;
  bool bit_identical = false;
};

void Run(int argc, char** argv) {
  const bool smoke = bench::SmokeFlag(argc, argv);
  const int threads = bench::ThreadsFlag(argc, argv);
  const int kReps = smoke ? 3 : 7;
  const simd::Backend best = simd::MaxSupported();

  bench::Banner(
      "E21: SIMD math-kernel layer (dot/axpy/GEMM under WLS, Newton, "
      "batch predict)",
      "dispatched kernels give >= 2x serial GEMM / WLS-assembly speedup "
      "with bit-identical results across scalar/sse2/avx2 backends and "
      "< 1e-9 drift vs the pre-kernel loops; the packed/tiled GEMM adds "
      ">= 2x over the direct kernel at 512^3 and the fused LIME/KernelSHAP "
      "pipelines beat the materialized paths bit-identically",
      "GEMM 256^3 + packed 512^3 (+ opt-in fma tier); WLS 6000x64; LIME "
      "d=128 n=4000 and KernelSHAP d=64 end-to-end A/B between scalar and "
      "dispatched backends and fused vs materialized pipelines");
  bench::RunReport report(
      "e21",
      "SIMD kernel layer: >=2x serial GEMM/WLS-assembly speedup, "
      "bit-identical across backends, <1e-9 vs pre-kernel loops; packed "
      "GEMM >=2x over direct; fused explainer pipelines bit-identical");
  report.Note("simd_best_backend", simd::BackendName(best));
  report.Note("mode", smoke ? "smoke" : "full");
  report.Metric("threads", threads);

  Rng rng(7);

  // -- GEMM kernel, serial ---------------------------------------------------
  {
    bench::Section("GEMM C = A * B (serial, scalar vs dispatched backend)");
    const int n = smoke ? 96 : 256;
    Matrix a = RandomMatrix(n, n, &rng), b = RandomMatrix(n, n, &rng);

    Matrix pre = PreMatMul(a, b);
    double pre_sec = BestOf(kReps, [&] {
      Matrix c = PreMatMul(a, b);
      (void)c;
    });

    simd::SetBackend(simd::Backend::kScalar);
    Matrix c_scalar = a.MatMul(b);
    double scalar_sec = BestOf(kReps, [&] {
      Matrix c = a.MatMul(b);
      (void)c;
    });
    simd::SetBackend(best);
    Matrix c_simd = a.MatMul(b);
    double simd_sec = BestOf(kReps, [&] {
      Matrix c = a.MatMul(b);
      (void)c;
    });

    bool identical = BitIdentical(c_scalar, c_simd);
    double delta = MaxAbsDelta(c_simd, pre);
    std::printf("n=%d  pre=%.2f ms  scalar=%.2f ms  %s=%.2f ms  "
                "speedup(scalar->%s)=%.2fx  bit-identical=%s  "
                "max|delta| vs pre=%.3g\n",
                n, pre_sec * 1e3, scalar_sec * 1e3, simd::BackendName(best),
                simd_sec * 1e3, simd::BackendName(best),
                scalar_sec / simd_sec, identical ? "yes" : "NO", delta);
    report.Metric("gemm_n", n);
    report.Metric("gemm_pre_ms", pre_sec * 1e3);
    report.Metric("gemm_scalar_ms", scalar_sec * 1e3);
    report.Metric("gemm_simd_ms", simd_sec * 1e3);
    report.Metric("gemm_speedup_serial", scalar_sec / simd_sec);
    report.Metric("gemm_bit_identical_backends", identical ? 1 : 0);
    report.Metric("gemm_max_delta_vs_pre", delta);
  }

  // -- Packed GEMM vs PR5 direct path ---------------------------------------
  {
    bench::Section(
        "packed GEMM vs direct (cache-blocked + register-tiled + threaded)");
    const int n = smoke ? 256 : 512;
    Matrix a = RandomMatrix(n, n, &rng), b = RandomMatrix(n, n, &rng);
    const double flops = 2.0 * n * n * n;

    simd::SetBackend(best);
    SetNumThreads(1);
    Matrix c_direct(n, n), c_packed(n, n);
    simd::GemmDirect(n, n, n, a.RowPtr(0), n, b.RowPtr(0), n,
                     c_direct.RowPtr(0), n);
    simd::GemmPacked(n, n, n, a.RowPtr(0), n, b.RowPtr(0), n,
                     c_packed.RowPtr(0), n);
    bool identical = BitIdentical(c_direct, c_packed);

    double direct_sec = BestOf(kReps, [&] {
      Matrix c(n, n);
      simd::GemmDirect(n, n, n, a.RowPtr(0), n, b.RowPtr(0), n, c.RowPtr(0),
                       n);
    });
    double packed1_sec = BestOf(kReps, [&] {
      Matrix c(n, n);
      simd::GemmPacked(n, n, n, a.RowPtr(0), n, b.RowPtr(0), n, c.RowPtr(0),
                       n);
    });
    SetNumThreads(8);
    double packed8_sec = BestOf(kReps, [&] {
      Matrix c(n, n);
      simd::GemmPacked(n, n, n, a.RowPtr(0), n, b.RowPtr(0), n, c.RowPtr(0),
                       n);
    });
    SetNumThreads(threads);

    std::printf("n=%d  direct=%.2f ms  packed(t1)=%.2f ms  "
                "packed(t8)=%.2f ms  speedup(t1)=%.2fx  speedup(t8)=%.2fx  "
                "%.2f GFLOP/s(t8)  bit-identical=%s\n",
                n, direct_sec * 1e3, packed1_sec * 1e3, packed8_sec * 1e3,
                direct_sec / packed1_sec, direct_sec / packed8_sec,
                flops / packed8_sec * 1e-9, identical ? "yes" : "NO");
    report.Metric("gemm_packed_n", n);
    report.Metric("gemm_direct_ms", direct_sec * 1e3);
    report.Metric("gemm_packed_t1_ms", packed1_sec * 1e3);
    report.Metric("gemm_packed_t8_ms", packed8_sec * 1e3);
    report.Metric("gemm_packed_speedup_vs_direct_serial",
                  direct_sec / packed1_sec);
    report.Metric("gemm_packed_speedup_vs_direct",
                  direct_sec / packed8_sec);
    report.Metric("gemm_packed_gflops", flops / packed8_sec * 1e-9);
    report.Metric("gemm_packed_bit_identical", identical ? 1 : 0);

    // -- Opt-in FMA tier: flop rate plus drift vs the default tier. --------
    if (simd::FmaSupported()) {
      SetNumThreads(1);
      simd::SetBackend(simd::Backend::kFma);
      Matrix c_fma(n, n);
      simd::GemmPacked(n, n, n, a.RowPtr(0), n, b.RowPtr(0), n,
                       c_fma.RowPtr(0), n);
      double fma_sec = BestOf(kReps, [&] {
        Matrix c(n, n);
        simd::GemmPacked(n, n, n, a.RowPtr(0), n, b.RowPtr(0), n,
                         c.RowPtr(0), n);
      });
      double rel = 0.0;
      for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) {
          double scale = std::max(1.0, std::fabs(c_packed(i, j)));
          rel = std::max(rel, std::fabs(c_fma(i, j) - c_packed(i, j)) /
                                  scale);
        }
      simd::SetBackend(best);
      SetNumThreads(threads);
      std::printf("fma : packed=%.2f ms  %.2f GFLOP/s  "
                  "max rel drift vs %s=%.3g\n",
                  fma_sec * 1e3, flops / fma_sec * 1e-9,
                  simd::BackendName(best), rel);
      report.Metric("gemm_fma_ms", fma_sec * 1e3);
      report.Metric("gemm_fma_gflops", flops / fma_sec * 1e-9);
      report.Metric("gemm_fma_max_rel_drift", rel);
    }
  }

  // -- WLS assembly + solve --------------------------------------------------
  {
    bench::Section("WLS (X^T diag(s) X assembly + Cholesky solve)");
    const int rows = smoke ? 1200 : 6000;
    const int d = smoke ? 24 : 64;
    Matrix x = RandomMatrix(rows, d, &rng);
    Vector y(rows), w(rows);
    for (int i = 0; i < rows; ++i) {
      y[i] = rng.Normal();
      w[i] = rng.Uniform(0.05, 2.0);
    }

    Vector pre = PreWls(x, y, w, 0.01, true);
    double pre_sec = BestOf(kReps, [&] {
      Vector c = PreWls(x, y, w, 0.01, true);
      (void)c;
    });

    simd::SetBackend(simd::Backend::kScalar);
    Vector c_scalar =
        WeightedRidgeRegression(x, y, w, 0.01, true).ValueOrDie();
    double scalar_sec = BestOf(kReps, [&] {
      auto c = WeightedRidgeRegression(x, y, w, 0.01, true);
      (void)c;
    });
    double asm_scalar_sec = BestOf(kReps, [&] {
      Matrix g = x.WeightedGram(w);
      (void)g;
    });
    simd::SetBackend(best);
    Vector c_simd = WeightedRidgeRegression(x, y, w, 0.01, true).ValueOrDie();
    double simd_sec = BestOf(kReps, [&] {
      auto c = WeightedRidgeRegression(x, y, w, 0.01, true);
      (void)c;
    });
    double asm_simd_sec = BestOf(kReps, [&] {
      Matrix g = x.WeightedGram(w);
      (void)g;
    });

    bool identical = BitIdentical(c_scalar, c_simd);
    double delta = MaxAbsDelta(c_simd, pre);
    std::printf("rows=%d d=%d  pre=%.2f ms  scalar=%.2f ms  %s=%.2f ms  "
                "solve speedup=%.2fx  assembly speedup=%.2fx  "
                "bit-identical=%s  max|coef delta| vs pre=%.3g\n",
                rows, d, pre_sec * 1e3, scalar_sec * 1e3,
                simd::BackendName(best), simd_sec * 1e3,
                scalar_sec / simd_sec, asm_scalar_sec / asm_simd_sec,
                identical ? "yes" : "NO", delta);
    report.Metric("wls_rows", rows);
    report.Metric("wls_dim", d);
    report.Metric("wls_pre_ms", pre_sec * 1e3);
    report.Metric("wls_scalar_ms", scalar_sec * 1e3);
    report.Metric("wls_simd_ms", simd_sec * 1e3);
    report.Metric("wls_speedup_serial", scalar_sec / simd_sec);
    report.Metric("wls_assembly_speedup_serial",
                  asm_scalar_sec / asm_simd_sec);
    report.Metric("wls_bit_identical_backends", identical ? 1 : 0);
    report.Metric("wls_max_coef_delta_vs_pre", delta);
  }

  // -- Dot / Axpy throughput -------------------------------------------------
  {
    bench::Section("dot/axpy throughput (serial)");
    const size_t n = 1 << 14;
    const int inner = smoke ? 200 : 2000;
    Vector a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Normal();
      b[i] = rng.Normal();
    }
    double sink = 0.0;
    auto time_backend = [&](simd::Backend be, double* dot_gf,
                            double* axpy_gf) {
      simd::SetBackend(be);
      double dot_sec = BestOf(kReps, [&] {
        for (int r = 0; r < inner; ++r)
          sink += simd::Dot(a.data(), b.data(), n);
      });
      Vector y = b;
      double axpy_sec = BestOf(kReps, [&] {
        for (int r = 0; r < inner; ++r)
          simd::Axpy(1e-9, a.data(), y.data(), n);
      });
      sink += y[0];
      *dot_gf = 2.0 * n * inner / dot_sec * 1e-9;
      *axpy_gf = 2.0 * n * inner / axpy_sec * 1e-9;
    };
    double dot_scalar, axpy_scalar, dot_simd, axpy_simd;
    time_backend(simd::Backend::kScalar, &dot_scalar, &axpy_scalar);
    time_backend(best, &dot_simd, &axpy_simd);
    std::printf("dot : scalar %.2f GFLOP/s, %s %.2f GFLOP/s (%.2fx)\n",
                dot_scalar, simd::BackendName(best), dot_simd,
                dot_simd / dot_scalar);
    std::printf("axpy: scalar %.2f GFLOP/s, %s %.2f GFLOP/s (%.2fx) "
                "[sink %.1f]\n",
                axpy_scalar, simd::BackendName(best), axpy_simd,
                axpy_simd / axpy_scalar, sink);
    report.Metric("dot_scalar_gflops", dot_scalar);
    report.Metric("dot_simd_gflops", dot_simd);
    report.Metric("dot_speedup", dot_simd / dot_scalar);
    report.Metric("axpy_scalar_gflops", axpy_scalar);
    report.Metric("axpy_simd_gflops", axpy_simd);
    report.Metric("axpy_speedup", axpy_simd / axpy_scalar);
  }

  // -- End-to-end: LIME ------------------------------------------------------
  {
    bench::Section("end-to-end LIME (scalar vs dispatched backend)");
    // Wide tabular instance (d=128): the WLS solve over the perturbation
    // design is a real fraction of the explanation, as in feature-store
    // serving, so the kernel win is visible end-to-end.
    auto [train, gt] = MakeLogisticData(smoke ? 200 : 600, 128, 3);
    (void)gt;
    auto model = LogisticRegressionModel::Train(train).ValueOrDie();
    PredictFn f = AsPredictFn(model);
    LimeConfig config;
    config.num_samples = smoke ? 800 : 4000;
    LimeExplainer lime(train, config);

    SetNumThreads(1);
    simd::SetBackend(simd::Backend::kScalar);
    LimeExplanation e_scalar =
        lime.Explain(f, train.Row(0), 1).ValueOrDie();
    double scalar_sec = BestOf(kReps, [&] {
      auto e = lime.Explain(f, train.Row(0), 1);
      (void)e;
    });
    simd::SetBackend(best);
    LimeExplanation e_simd = lime.Explain(f, train.Row(0), 1).ValueOrDie();
    double simd_sec = BestOf(kReps, [&] {
      auto e = lime.Explain(f, train.Row(0), 1);
      (void)e;
    });
    SetNumThreads(threads);

    bool identical = BitIdentical(e_scalar.attributions, e_simd.attributions);
    std::printf("scalar=%.2f ms  %s=%.2f ms  speedup=%.2fx  "
                "attributions bit-identical=%s\n",
                scalar_sec * 1e3, simd::BackendName(best), simd_sec * 1e3,
                scalar_sec / simd_sec, identical ? "yes" : "NO");
    report.Metric("lime_scalar_ms", scalar_sec * 1e3);
    report.Metric("lime_simd_ms", simd_sec * 1e3);
    report.Metric("lime_speedup_e2e", scalar_sec / simd_sec);
    report.Metric("lime_bit_identical_backends", identical ? 1 : 0);
    double checksum = 0.0;
    for (double v : e_simd.attributions) checksum += v;
    report.Metric("lime_attribution_checksum", checksum);

    // Fused streaming pipeline vs the materialized design-matrix path
    // (both on the dispatched backend, serial — the PR5 baseline is the
    // materialized path).
    LimeConfig mat_config = config;
    mat_config.fused = false;
    LimeExplainer lime_mat(train, mat_config);
    SetNumThreads(1);
    simd::SetBackend(best);
    LimeExplanation e_mat = lime_mat.Explain(f, train.Row(0), 1).ValueOrDie();
    double mat_sec = BestOf(kReps, [&] {
      auto e = lime_mat.Explain(f, train.Row(0), 1);
      (void)e;
    });
    SetNumThreads(threads);
    bool fused_identical =
        BitIdentical(e_mat.attributions, e_simd.attributions);
    std::printf("fused=%.2f ms  materialized=%.2f ms  speedup=%.2fx  "
                "attributions bit-identical=%s\n",
                simd_sec * 1e3, mat_sec * 1e3, mat_sec / simd_sec,
                fused_identical ? "yes" : "NO");
    report.Metric("lime_materialized_ms", mat_sec * 1e3);
    report.Metric("lime_fused_speedup", mat_sec / simd_sec);
    report.Metric("lime_fused_bit_identical", fused_identical ? 1 : 0);
  }

  // -- End-to-end: KernelSHAP ------------------------------------------------
  {
    bench::Section("end-to-end KernelSHAP (scalar vs dispatched backend)");
    auto [data, gt] = MakeLogisticData(smoke ? 200 : 400, 64, 3);
    (void)gt;
    auto model = LogisticRegressionModel::Train(data).ValueOrDie();
    Vector instance = data.Row(11);
    KernelShapConfig config;
    config.coalition_budget = smoke ? 600 : 4000;

    SetNumThreads(1);
    auto run_once = [&] {
      MarginalFeatureGame game(AsPredictFn(model), instance, data.x(),
                               /*background_rows=*/16);
      Rng r(99);
      return KernelShap(game, config, &r).ValueOrDie();
    };
    simd::SetBackend(simd::Backend::kScalar);
    AttributionExplanation ks_scalar = run_once();
    double scalar_sec = BestOf(kReps, [&] {
      auto e = run_once();
      (void)e;
    });
    simd::SetBackend(best);
    AttributionExplanation ks_simd = run_once();
    double simd_sec = BestOf(kReps, [&] {
      auto e = run_once();
      (void)e;
    });
    SetNumThreads(threads);

    bool identical =
        BitIdentical(ks_scalar.attributions, ks_simd.attributions);
    std::printf("scalar=%.2f ms  %s=%.2f ms  speedup=%.2fx  "
                "attributions bit-identical=%s\n",
                scalar_sec * 1e3, simd::BackendName(best), simd_sec * 1e3,
                scalar_sec / simd_sec, identical ? "yes" : "NO");
    report.Metric("kernelshap_scalar_ms", scalar_sec * 1e3);
    report.Metric("kernelshap_simd_ms", simd_sec * 1e3);
    report.Metric("kernelshap_speedup_e2e", scalar_sec / simd_sec);
    report.Metric("kernelshap_bit_identical_backends", identical ? 1 : 0);
    double checksum = 0.0;
    for (double v : ks_simd.attributions) checksum += v;
    report.Metric("kernelshap_attribution_checksum", checksum);

    // Fused streaming pipeline vs the materialized design + constrained
    // solve (both dispatched backend, serial).
    KernelShapConfig mat_config = config;
    mat_config.fused = false;
    SetNumThreads(1);
    simd::SetBackend(best);
    auto run_mat = [&] {
      MarginalFeatureGame game(AsPredictFn(model), instance, data.x(),
                               /*background_rows=*/16);
      Rng r(99);
      return KernelShap(game, mat_config, &r).ValueOrDie();
    };
    AttributionExplanation ks_mat = run_mat();
    double mat_sec = BestOf(kReps, [&] {
      auto e = run_mat();
      (void)e;
    });
    SetNumThreads(threads);
    bool fused_identical =
        BitIdentical(ks_mat.attributions, ks_simd.attributions);
    std::printf("fused=%.2f ms  materialized=%.2f ms  speedup=%.2fx  "
                "attributions bit-identical=%s\n",
                simd_sec * 1e3, mat_sec * 1e3, mat_sec / simd_sec,
                fused_identical ? "yes" : "NO");
    report.Metric("kernelshap_materialized_ms", mat_sec * 1e3);
    report.Metric("kernelshap_fused_speedup", mat_sec / simd_sec);
    report.Metric("kernelshap_fused_bit_identical", fused_identical ? 1 : 0);
  }

  simd::SetBackend(best);
  report.Write();
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main(int argc, char** argv) {
  xai::SetNumThreads(xai::bench::ThreadsFlag(argc, argv));
  xai::Run(argc, argv);
  return 0;
}
