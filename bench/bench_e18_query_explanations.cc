// E18 — Intervention-based explanations for query answers (§3).
//
// Paper claim: "Explaining database query results has been an active area
// of research where the focus is on providing justification and evidence
// that establish the validity of or assist with the interpretation of a
// query answer" (Roy & Suciu's formal approach; Meliou et al.).
// Expected shape: with a planted skew (one region's sales inflated), the
// top-ranked predicate intervention recovers the planted region in ~every
// trial; candidate enumeration cost grows with #distinct values and the
// pairs option.

#include <cstdio>

#include "bench_util.h"
#include "xai/core/check.h"
#include "xai/core/rng.h"
#include "xai/core/timer.h"
#include "xai/dbx/query_explanations.h"
#include "xai/relational/relation.h"

namespace xai {
namespace {

using rel::Relation;
using rel::Value;

// Sales(region, product, amount) with a planted dominant region.
Relation MakeSales(int n, int regions, int products, int planted_region,
                   uint64_t seed) {
  Rng rng(seed);
  Relation r("sales", {"region", "product", "amount"});
  for (int i = 0; i < n; ++i) {
    int region = rng.UniformInt(regions);
    int product = rng.UniformInt(products);
    double amount = rng.Uniform(5.0, 15.0);
    if (region == planted_region) amount *= 6.0;  // The planted skew.
    XAI_CHECK(r.AppendBase({Value::Str("r" + std::to_string(region)),
                            Value::Str("p" + std::to_string(product)),
                            Value::Double(amount)},
                           i)
                  .ok());
  }
  return r;
}

double TotalAmount(const Relation& r) {
  double acc = 0;
  for (int i = 0; i < r.num_tuples(); ++i)
    acc += r.tuple(i)[2].AsDouble();
  return acc;
}

void Run() {
  bench::Banner(
      "E18: intervention-based explanations for aggregate answers",
      "\"providing justification and evidence that ... assist with the "
      "interpretation of a query answer\" (S3, Roy & Suciu style)",
      "sales(region, product, amount) with one region's amounts inflated "
      "6x; query = SUM(amount); 10 trials");

  bench::Section("does the top predicate recover the planted region?");
  std::printf("%8s %16s %12s %14s\n", "trial", "planted", "recovered",
              "top_effect");
  int hits = 0;
  const int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    int planted = trial % 6;
    Relation sales = MakeSales(600, 6, 8, planted, 100 + trial);
    auto explanations =
        ExplainAggregateAnswer(sales, TotalAmount, {0, 1}).ValueOrDie();
    std::string expected = "r" + std::to_string(planted);
    bool hit = !explanations.empty() &&
               explanations[0].predicate.size() == 1 &&
               explanations[0].predicate[0].second.AsString() == expected;
    if (hit) ++hits;
    std::printf("%8d %16s %12s %14.0f\n", trial, expected.c_str(),
                hit ? "yes" : "NO", explanations[0].effect);
  }
  std::printf("recovered %d/%d\n", hits, kTrials);

  bench::Section("candidate enumeration cost");
  std::printf("%10s %10s %8s %14s %12s\n", "tuples", "regions", "pairs",
              "candidates", "time_ms");
  for (int n : {300, 1000, 3000}) {
    for (bool pairs : {false, true}) {
      Relation sales = MakeSales(n, 8, 10, 0, 7);
      QueryExplanationConfig config;
      config.include_pairs = pairs;
      config.top_k = 0;
      WallTimer timer;
      auto explanations =
          ExplainAggregateAnswer(sales, TotalAmount, {0, 1}, config)
              .ValueOrDie();
      std::printf("%10d %10d %8s %14zu %12.1f\n", n, 8,
                  pairs ? "yes" : "no", explanations.size(),
                  timer.Millis());
    }
  }
  std::printf(
      "\nShape check: planted region recovered 10/10; cost scales with "
      "tuples x candidate predicates (pairs multiply the candidates).\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
