// A1 (ablation) — Kernel SHAP estimator design choices.
//
// DESIGN.md calls out two choices in the sampling regime: (1) sampled
// coalitions' regression weights are rescaled to the kernel mass their sizes
// stand in for, and (2) samples are drawn in antithetic complement pairs.
// This ablation quantifies (1): without mass normalization the sampled
// middle sizes dwarf the enumerated extreme sizes and the estimator is
// biased at any budget.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "xai/data/synthetic.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/kernel_shap.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/logistic_regression.h"

namespace xai {
namespace {

double MaxAbsError(const Vector& a, const Vector& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

void Run() {
  bench::Banner(
      "A1 (ablation): KernelSHAP sampled-mass normalization",
      "design choice from DESIGN.md: sampled coalition weights are rescaled "
      "to the kernel mass of their sizes",
      "logistic d=12, marginal game with 24 background rows; error vs exact "
      "averaged over 5 instances");

  auto [data, gt] = MakeLogisticData(300, 12, 3);
  (void)gt;
  auto model = LogisticRegressionModel::Train(data).ValueOrDie();

  std::printf("%10s %22s %22s\n", "budget", "max_err(normalized)",
              "max_err(ablated)");
  for (int budget : {200, 400, 800, 1600}) {
    double err_norm = 0, err_ablated = 0;
    const int kInstances = 5;
    for (int i = 0; i < kInstances; ++i) {
      Vector instance = data.Row(i * 11);
      MarginalFeatureGame reference(AsPredictFn(model), instance, data.x(),
                                    24);
      Vector exact = ExactShapley(reference).ValueOrDie();
      {
        MarginalFeatureGame game(AsPredictFn(model), instance, data.x(),
                                 24);
        Rng rng(100 + i);
        KernelShapConfig config;
        config.coalition_budget = budget;
        auto ks = KernelShap(game, config, &rng).ValueOrDie();
        err_norm += MaxAbsError(ks.attributions, exact) / kInstances;
      }
      {
        MarginalFeatureGame game(AsPredictFn(model), instance, data.x(),
                                 24);
        Rng rng(100 + i);
        KernelShapConfig config;
        config.coalition_budget = budget;
        config.normalize_sampled_mass = false;
        auto ks = KernelShap(game, config, &rng).ValueOrDie();
        err_ablated += MaxAbsError(ks.attributions, exact) / kInstances;
      }
    }
    std::printf("%10d %22.5f %22.5f\n", budget, err_norm, err_ablated);
  }
  std::printf(
      "\nShape check: normalized error falls with budget; ablated error "
      "plateaus at a bias floor several times higher.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
