// E9 — Influence functions vs retraining; second-order group influence
// (§2.3.2).
//
// Paper claims: "Retraining the model is computationally prohibitive when
// there are numerous data points"; Koh & Liang "compute the first-order
// approximate change in model parameters ... avoid(ing) retraining";
// "applying first-order approximations to a group of data points can be
// inaccurate because they do not capture the correlations among data points
// in the group" (Basu et al.); Sharchilev et al. extend influence to GBDTs
// with fixed structure.
// Expected shape: influence correlates > 0.9 with true leave-one-out at a
// fraction of the cost; the second-order group estimate dominates the
// first-order one, increasingly so for larger coherent groups.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "xai/core/stats.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/influence/group_influence.h"
#include "xai/influence/influence_function.h"
#include "xai/influence/tree_influence.h"
#include "xai/model/gbdt.h"

namespace xai {
namespace {

void Run() {
  bench::Banner(
      "E9: influence functions vs retraining",
      "influence \"avoids retraining the model\"; first-order group "
      "influence \"can be inaccurate\" (S2.3.2)",
      "logistic n=500 d=5; GBDT(20) n=400; ground truth = actual retrain");

  auto [data, gt] = MakeLogisticData(600, 5, 1);
  (void)gt;
  auto [train, test] = data.TrainTestSplit(0.2, 2);
  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  auto model = LogisticRegressionModel::Train(train, config).ValueOrDie();
  auto influence =
      LogisticInfluence::Make(model, train.x(), train.y()).ValueOrDie();
  Vector x_test = test.Row(0);
  double y_test = test.Label(0);

  bench::Section("single-point influence vs true retraining (100 points)");
  WallTimer influence_timer;
  Vector predicted =
      influence.InfluenceOnLossAll(x_test, y_test).ValueOrDie();
  double influence_ms = influence_timer.Millis();

  WallTimer retrain_timer;
  std::vector<double> actual, predicted_subset;
  for (int i = 0; i < 100; ++i) {
    auto retrained =
        LogisticRegressionModel::Train(train.Without({i}).x(),
                                       train.Without({i}).y(), config)
            .ValueOrDie();
    actual.push_back(retrained.ExampleLoss(x_test, y_test) -
                     model.ExampleLoss(x_test, y_test));
    predicted_subset.push_back(predicted[i]);
  }
  double retrain_ms = retrain_timer.Millis();
  std::printf("pearson(influence, retrain) = %.4f  spearman = %.4f\n",
              PearsonCorrelation(predicted_subset, actual),
              SpearmanCorrelation(predicted_subset, actual));
  std::printf(
      "influence: %.1f ms for ALL %d points; retraining: %.1f ms for 100 "
      "points (%.0fx speedup per point)\n",
      influence_ms, train.num_rows(), retrain_ms,
      (retrain_ms / 100.0) / (influence_ms / train.num_rows()));

  bench::Section("group influence: first vs second order");
  std::printf("%12s %18s %18s %12s\n", "group_size", "err_first_order",
              "err_second_order", "ratio");
  for (int m : {5, 20, 60, 120}) {
    // Coherent group: the m rows with the largest x0.
    std::vector<int> order = ArgSortDescending(train.x().Col(0));
    std::vector<int> group(order.begin(), order.begin() + m);
    Vector first =
        FirstOrderGroupParamChange(influence, group).ValueOrDie();
    Vector second = SecondOrderGroupParamChange(model, train.x(),
                                                train.y(), group)
                        .ValueOrDie();
    auto retrained =
        LogisticRegressionModel::Train(train.Without(group), config)
            .ValueOrDie();
    double err1 = 0, err2 = 0;
    for (int j = 0; j < 5; ++j) {
      double delta = retrained.weights()[j] - model.weights()[j];
      err1 += std::fabs(first[j] - delta);
      err2 += std::fabs(second[j] - delta);
    }
    std::printf("%12d %18.5f %18.5f %12.2f\n", m, err1, err2,
                err1 / std::max(err2, 1e-12));
  }

  bench::Section("GBDT fixed-structure leaf influence (Sharchilev-style)");
  Dataset tree_data = MakeLoans(400, 3);
  GbdtModel::Config tree_config;
  tree_config.n_trees = 20;
  auto gbdt = GbdtModel::Train(tree_data, tree_config).ValueOrDie();
  auto leaf_influence =
      GbdtLeafInfluence::Make(gbdt, tree_data.x(), tree_data.y())
          .ValueOrDie();
  Vector x_probe = tree_data.Row(7);
  WallTimer leaf_timer;
  Vector leaf_scores = leaf_influence.InfluenceOnMarginAll(x_probe);
  double leaf_ms = leaf_timer.Millis();

  // Ground truth on 60 points: retrain the GBDT without the point.
  WallTimer gbdt_retrain_timer;
  std::vector<double> tree_actual, tree_predicted;
  for (int i = 0; i < 60; ++i) {
    auto retrained = GbdtModel::Train(tree_data.Without({i}).x(),
                                      tree_data.Without({i}).y(),
                                      TaskType::kClassification,
                                      tree_config)
                         .ValueOrDie();
    tree_actual.push_back(retrained.Margin(x_probe) - gbdt.Margin(x_probe));
    tree_predicted.push_back(leaf_scores[i]);
  }
  double gbdt_retrain_ms = gbdt_retrain_timer.Millis();
  std::printf(
      "pearson(leaf_influence, retrain) = %.3f ; leaf influence %.2f ms "
      "for all %d points vs %.0f ms for 60 retrains\n",
      PearsonCorrelation(tree_predicted, tree_actual), leaf_ms,
      tree_data.num_rows(), gbdt_retrain_ms);
  std::printf(
      "\nShape check: single-point correlation > 0.9 with >100x speedup; "
      "err_second < err_first and the gap widens with group size; leaf "
      "influence correlates positively at near-zero cost (fixed-structure "
      "approximation).\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
