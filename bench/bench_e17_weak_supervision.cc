// E17 — Weak supervision for training-data labeling (§2.2.1).
//
// Paper claim: "The research in this domain has evolved from pattern mining
// towards designing rule-based data mining techniques that leverage recent
// advances of weak-supervision for labelling datasets" (Snorkel, Snuba,
// adaptive rule discovery).
// Expected shape: with labeling functions auto-synthesized from a tiny
// labeled set, the label model labels a large unlabeled pool far above
// chance and above unweighted majority vote; quality rises with the
// odds-ratio bar (precision of kept functions) until coverage collapses.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/metrics.h"
#include "xai/rules/weak_supervision.h"

namespace xai {
namespace {

void Run() {
  bench::Banner(
      "E17: weak supervision (Snorkel/Snuba-style)",
      "\"rule-based data mining techniques that leverage ... weak-"
      "supervision for labelling datasets\" (S2.2.1)",
      "blobs n=2500 d=4; 100 labeled rows synthesize stump LFs; label "
      "model labels 1800 unlabeled rows");

  Dataset pool = MakeBlobs(2500, 4, 2, 1.5, 7);
  auto [rest, tiny] = pool.TrainTestSplit(0.04, 8);
  auto [unlabeled, test] = rest.TrainTestSplit(0.25, 9);

  std::printf("%12s %6s %10s %12s %14s %12s %12s\n", "odds_ratio", "lfs",
              "coverage", "agreement", "majority_vote", "weak_acc",
              "time_ms");
  for (double odds_ratio : {1.5, 2.0, 3.0, 5.0, 8.0}) {
    WallTimer timer;
    auto lfs_result = GenerateStumpLfs(tiny, 2, odds_ratio);
    if (!lfs_result.ok()) {
      std::printf("%12.1f %6s (no stump clears the bar)\n", odds_ratio,
                  "-");
      continue;
    }
    auto lfs = std::move(lfs_result).ValueUnsafe();
    Matrix votes = ApplyLabelingFunctions(lfs, unlabeled);
    auto label_model = LabelModel::Fit(votes).ValueOrDie();
    Vector soft = label_model.PosteriorPositiveAll(votes);
    double ms = timer.Millis();

    int covered = 0, agree = 0, majority_agree = 0;
    for (int i = 0; i < unlabeled.num_rows(); ++i) {
      double vote_sum = 0;
      bool any = false;
      for (int j = 0; j < votes.cols(); ++j) {
        vote_sum += votes(i, j);
        any = any || votes(i, j) != 0;
      }
      if (!any) continue;
      ++covered;
      if ((soft[i] >= 0.5 ? 1.0 : 0.0) == unlabeled.Label(i)) ++agree;
      if ((vote_sum >= 0 ? 1.0 : 0.0) == unlabeled.Label(i))
        ++majority_agree;
    }

    // Noise-aware downstream model on confident rows.
    std::vector<int> confident;
    for (int i = 0; i < unlabeled.num_rows(); ++i)
      if (std::fabs(soft[i] - 0.5) >= 0.15) confident.push_back(i);
    double weak_acc = 0.0;
    if (confident.size() > 50) {
      Dataset conf = unlabeled.Subset(confident);
      Vector weak(confident.size());
      for (size_t k = 0; k < confident.size(); ++k)
        weak[k] = soft[confident[k]] >= 0.5 ? 1.0 : 0.0;
      auto weak_model =
          LogisticRegressionModel::Train(conf.x(), weak, {}).ValueOrDie();
      weak_acc = EvaluateAccuracy(weak_model, test);
    }
    std::printf("%12.1f %6zu %10.3f %12.3f %14.3f %12.3f %12.1f\n",
                odds_ratio, lfs.size(),
                static_cast<double>(covered) / unlabeled.num_rows(),
                covered ? static_cast<double>(agree) / covered : 0.0,
                covered
                    ? static_cast<double>(majority_agree) / covered
                    : 0.0,
                weak_acc, ms);
  }
  std::printf(
      "\nShape check: past a meaningful bar (odds_ratio >= 2) both the "
      "label model and majority vote label ~0.9 of the pool correctly and "
      "the downstream model reaches ~0.9 accuracy from only 100 labels. "
      "With *correlated* stumps, majority vote is a strong baseline; the "
      "label model's advantage appears under heterogeneous independent "
      "functions (see the PosteriorBeatsMajorityVote unit test).\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
