// E11 — Low-latency machine unlearning for randomized trees (§3).
//
// Paper claim: "HedgeCut: Maintaining Randomised Trees for Low-Latency
// Machine Unlearning" — deletions should be served in microseconds by
// updating cached split statistics, with occasional subtree rebuilds,
// instead of retraining from scratch.
// Expected shape: per-deletion latency orders of magnitude below a full
// retrain; rebuild rate low; accuracy tracks a freshly trained tree.

#include <cstdio>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/unlearn/dare_tree.h"

namespace xai {
namespace {

double TreeAccuracy(const DareTree& tree, const Dataset& test) {
  int correct = 0;
  for (int i = 0; i < test.num_rows(); ++i) {
    int pred = tree.Predict(test.Row(i)) >= 0.5 ? 1 : 0;
    if (pred == static_cast<int>(test.Label(i))) ++correct;
  }
  return static_cast<double>(correct) / test.num_rows();
}

void Run() {
  bench::Banner(
      "E11: unlearnable trees (DaRE/HedgeCut-style)",
      "\"maintaining randomised trees for low-latency machine unlearning\" "
      "(S3)",
      "loans n_train=6000; 1500 random deletions; retrain = full rebuild");

  Dataset data = MakeLoans(8000, 1);
  auto [train, test] = data.TrainTestSplit(0.25, 2);

  WallTimer train_timer;
  auto tree = DareTree::Train(train).ValueOrDie();
  double train_ms = train_timer.Millis();
  std::printf("initial training: %.1f ms, accuracy %.3f\n", train_ms,
              TreeAccuracy(tree, test));

  Rng rng(3);
  std::vector<int> order = rng.Permutation(train.num_rows());
  const int kBatch = 300;
  std::printf("\n%12s %16s %12s %14s %12s %14s\n", "deleted",
              "us/deletion", "rebuilds", "rows_rebuilt", "accuracy",
              "retrain_ms");
  int deleted = 0;
  for (int batch = 0; batch < 5; ++batch) {
    int rebuilds_before = tree.num_rebuilds();
    int rows_before = tree.rows_retrained();
    WallTimer timer;
    for (int i = 0; i < kBatch; ++i) {
      XAI_CHECK(tree.Delete(order[deleted]).ok());
      ++deleted;
    }
    double us = timer.Micros() / kBatch;

    // Cost of the naive alternative: full retrain on the remaining rows.
    std::vector<int> keep;
    for (int i = deleted; i < train.num_rows(); ++i)
      keep.push_back(order[i]);
    Dataset remaining = train.Subset(keep);
    WallTimer retrain_timer;
    auto fresh = DareTree::Train(remaining).ValueOrDie();
    double retrain_ms = retrain_timer.Millis();

    std::printf("%12d %16.1f %12d %14d %12.3f %14.1f\n", deleted, us,
                tree.num_rebuilds() - rebuilds_before,
                tree.rows_retrained() - rows_before,
                TreeAccuracy(tree, test), retrain_ms);
    (void)fresh;
  }
  std::printf(
      "\naccuracy parity: maintained %.3f vs fresh tree on remaining data ",
      TreeAccuracy(tree, test));
  std::vector<int> keep;
  for (int i = deleted; i < train.num_rows(); ++i) keep.push_back(order[i]);
  auto fresh = DareTree::Train(train.Subset(keep)).ValueOrDie();
  std::printf("%.3f\n", TreeAccuracy(fresh, test));
  std::printf(
      "\nShape check: us/deletion is 100-10000x below retrain_ms*1000; "
      "rebuilds are a small fraction of deletions; accuracy parity holds.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
