// E4 — Causal attribution: marginal vs asymmetric vs causal Shapley values
// and Shapley flow (§2.1.3).
//
// Paper claims: asymmetric Shapley values "incorporate causality by
// discarding coalitions that do not follow causal ordering" (sacrificing
// symmetry); causal Shapley values "decompose a feature's influence into
// direct and indirect effects without violating any of the original Shapley
// value axioms"; Shapley flow "interprets (the) model based on assigning
// credit to the edges in a graph".
// Expected shape: on a causal chain x0 -> x1 -> x2 with a model reading only
// x2, marginal SV credits only x2; causal SV spreads credit to ancestors;
// asymmetric SV pushes all credit to the root; Shapley flow puts credit on
// the x2->model path edges.

#include <cstdio>

#include "bench_util.h"
#include "xai/causal/scm.h"
#include "xai/explain/shapley/asymmetric_shapley.h"
#include "xai/explain/shapley/causal_shapley.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/shapley_flow.h"
#include "xai/explain/shapley/value_function.h"

namespace xai {
namespace {

void AttributionRow(const char* name, const Vector& phi) {
  std::printf("%24s ", name);
  for (double v : phi) std::printf("%10.4f", v);
  std::printf("\n");
}

void RunStructure(const char* title, LinearScm scm, const Vector& instance,
                  const PredictFn& f) {
  bench::Section(title);
  std::printf("%24s %10s%10s%10s\n", "method", "x0", "x1", "x2");

  Rng rng(3);
  Matrix background = scm.Sample(400, &rng);
  MarginalFeatureGame marginal(f, instance, background, 200);
  AttributionRow("marginal (SHAP)", ExactShapley(marginal).ValueOrDie());

  InterventionalScmGame causal_game(&scm, f, instance, 3000, 5);
  AttributionRow("causal Shapley",
                 ExactShapley(causal_game).ValueOrDie());
  AttributionRow(
      "asymmetric Shapley",
      ExactAsymmetricShapley(causal_game, scm.dag()).ValueOrDie());
}

void Run() {
  bench::Banner(
      "E4: Shapley variants under causal structure",
      "asymmetric SV \"discard(s) coalitions that do not follow causal "
      "ordering\"; causal SV \"decompose(s) ... direct and indirect "
      "effects\" (S2.1.3)",
      "3-node linear-Gaussian SCMs; model f(x) = x2; instance = consistent "
      "world (2,2,2)");

  PredictFn f = [](const Vector& x) { return x[2]; };
  Vector instance = {2.0, 2.0, 2.0};

  RunStructure("chain x0 -> x1 -> x2 (unit weights)",
               MakeChainScm(1.0, 1.0), instance, f);
  RunStructure("fork x1 <- x0 -> x2 (unit weights)", MakeForkScm(1.0, 1.0),
               instance, f);
  RunStructure("collider x0 -> x2 <- x1 (unit weights)",
               MakeColliderScm(1.0, 1.0), instance, f);

  bench::Section("direct/indirect decomposition (linear, chain 2.0/3.0)");
  LinearScm chain = MakeChainScm(2.0, 3.0);
  Vector weights = {0.0, 0.0, 1.0};  // Model reads x2 only.
  Vector x = {1.0, 2.0, 6.0};
  Vector baseline = {0.0, 0.0, 0.0};
  auto effects = LinearDirectIndirectEffects(chain, weights, x, baseline);
  std::printf("%8s %12s %12s %12s\n", "feature", "direct", "indirect",
              "total");
  for (int j = 0; j < 3; ++j)
    std::printf("x%-7d %12.4f %12.4f %12.4f\n", j, effects[j].first,
                effects[j].second, effects[j].first + effects[j].second);

  bench::Section("Shapley flow on the chain (edge credits)");
  LinearScm flow_scm = MakeChainScm(1.0, 1.0);
  Rng rng(7);
  auto flow =
      ShapleyFlow(flow_scm, f, instance, {0.0, 0.0, 0.0}, 60, &rng)
          .ValueOrDie();
  std::printf("%20s %12s\n", "edge", "credit");
  for (size_t e = 0; e < flow.edges.size(); ++e)
    std::printf("%20s %12.4f\n",
                flow.EdgeLabel(flow_scm.dag(), e).c_str(),
                flow.edges[e].credit);
  double total = 0;
  for (const auto& e : flow.edges) total += e.credit;
  std::printf("%20s %12.4f (= f(x) - f(baseline) = %.4f)\n", "SUM", total,
              flow.foreground_output - flow.background_output);
  std::printf(
      "\nShape check: marginal credits only x2; causal spreads over "
      "ancestors; asymmetric loads the chain root; flow credit runs along "
      "the causal path to the model.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
