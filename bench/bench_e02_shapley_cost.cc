// E2 — Exponential cost of exact Shapley values; approximation quality
// (§2.1.2).
//
// Paper claim: "Computing Shapley values takes exponential time, since all
// possible feature orderings are considered. Existing methods, therefore,
// compute some approximation of these values."
// Expected shape: exact runtime doubles with every added feature; the
// sampling estimators trade model evaluations for error ~ 1/sqrt(budget).
//
// Emits BENCH_e02.json (+ Chrome trace) via bench::RunReport; `--smoke`
// shrinks the workload for CI.

#include <cmath>
#include <cstdio>
#include <utility>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/kernel_shap.h"
#include "xai/explain/shapley/sampling_shapley.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/logistic_regression.h"

namespace xai {
namespace {

double MaxAbsError(const Vector& a, const Vector& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

// Serial-vs-parallel scaling of the Monte-Carlo estimators: the same seeded
// workload at 1 thread and at `threads`, asserting bit-identical output (the
// runtime's determinism guarantee) while reporting speedup and throughput.
void RunScaling(int threads, bool smoke, bench::RunReport* report) {
  bench::Section("serial vs parallel scaling (deterministic runtime)");
  auto [data, gt] = MakeLogisticData(300, 12, 3);
  (void)gt;
  auto model = LogisticRegressionModel::Train(data).ValueOrDie();
  Vector instance = data.Row(5);

  const int kPermutations = smoke ? 100 : 400;
  auto run_sampling = [&](int t) {
    SetNumThreads(t);
    MarginalFeatureGame game(AsPredictFn(model), instance, data.x(), 24);
    Rng rng(13);
    WallTimer timer;
    auto r = SamplingShapley(game, kPermutations, &rng);
    return std::pair<Vector, double>(r.values, timer.Seconds());
  };
  auto [sampling_serial, ss_sec] = run_sampling(1);
  auto [sampling_parallel, sp_sec] = run_sampling(threads);
  double sampling_evals = static_cast<double>(kPermutations) * 12;
  bench::Throughput("sampling-shapley", 1, ss_sec, sampling_evals);
  bench::Throughput("sampling-shapley", threads, sp_sec, sampling_evals);
  bench::Speedup("sampling Shapley", ss_sec, sp_sec, threads,
                 sampling_serial == sampling_parallel);
  report->Metric("sampling_speedup",
                 sp_sec > 0 ? ss_sec / sp_sec : 0.0);
  report->Metric("sampling_bit_identical",
                 sampling_serial == sampling_parallel ? 1.0 : 0.0);

  const int kBudget = smoke ? 1024 : 4096;
  auto run_kernel = [&](int t) {
    SetNumThreads(t);
    MarginalFeatureGame game(AsPredictFn(model), instance, data.x(), 24);
    Rng rng(11);
    KernelShapConfig config;
    config.coalition_budget = kBudget;
    WallTimer timer;
    auto r = KernelShap(game, config, &rng).ValueOrDie();
    return std::pair<Vector, double>(r.attributions, timer.Seconds());
  };
  auto [kernel_serial, ks_sec] = run_kernel(1);
  auto [kernel_parallel, kp_sec] = run_kernel(threads);
  bench::Throughput("kernel-shap", 1, ks_sec, kBudget);
  bench::Throughput("kernel-shap", threads, kp_sec, kBudget);
  bench::Speedup("KernelSHAP", ks_sec, kp_sec, threads,
                 kernel_serial == kernel_parallel);
  report->Metric("kernel_shap_speedup", kp_sec > 0 ? ks_sec / kp_sec : 0.0);
  report->Metric("kernel_shap_bit_identical",
                 kernel_serial == kernel_parallel ? 1.0 : 0.0);
  SetNumThreads(threads);
}

// Measures the cost of enabled telemetry on the e02 hot loop (sampling
// Shapley over a fresh marginal game) by toggling the runtime switch:
// enabled vs disabled runs of the identical seeded workload. The budget is
// <2%; the measured number lands in the report as telemetry_overhead_pct.
void RunTelemetryOverhead(bool smoke, bench::RunReport* report) {
  bench::Section("telemetry overhead on the hot loop (runtime toggle)");
  auto [data, gt] = MakeLogisticData(300, 12, 3);
  (void)gt;
  auto model = LogisticRegressionModel::Train(data).ValueOrDie();
  Vector instance = data.Row(5);
  const int kPermutations = smoke ? 100 : 400;
  const int kReps = smoke ? 8 : 15;

  auto time_once = [&]() {
    MarginalFeatureGame game(AsPredictFn(model), instance, data.x(), 24);
    Rng rng(13);
    WallTimer timer;
    auto r = SamplingShapley(game, kPermutations, &rng);
    (void)r;
    return timer.Seconds();
  };
  time_once();  // Warm-up (pool spin-up, cache warm).
  // Interleave enabled/disabled reps so clock drift and cache state hit
  // both modes equally; best-of filters scheduler noise.
  double on_sec = 1e300, off_sec = 1e300;
  for (int i = 0; i < kReps; ++i) {
    telemetry::SetEnabled(true);
    on_sec = std::min(on_sec, time_once());
    telemetry::SetEnabled(false);
    off_sec = std::min(off_sec, time_once());
  }
  telemetry::SetEnabled(true);
  double overhead_pct =
      off_sec > 0 ? (on_sec - off_sec) / off_sec * 100.0 : 0.0;
  std::printf("hot loop: enabled %.3f ms, disabled %.3f ms, overhead "
              "%+.2f%% (budget < 2%%)\n",
              on_sec * 1e3, off_sec * 1e3, overhead_pct);
  report->Metric("telemetry_overhead_pct", overhead_pct);
}

void Run(int threads, bool smoke) {
  const char* claim =
      "\"Computing Shapley values takes exponential time ... existing "
      "methods compute some approximation\" (S2.1.2)";
  bench::Banner(
      "E2: exact Shapley cost growth and approximation error", claim,
      "logistic model on synthetic data; marginal game, 24 background rows");
  bench::RunReport report("e02", claim);
  telemetry::Registry::Global().Reset();

  bench::Section("exact Shapley runtime vs number of features d");
  std::printf("%4s %14s %16s %12s\n", "d", "coalitions", "evaluations",
              "time_ms");
  int d_max = smoke ? 10 : 14;
  for (int d = 4; d <= d_max; d += 2) {
    auto [data, gt] = MakeLogisticData(300, d, 7 + d);
    (void)gt;
    auto model = LogisticRegressionModel::Train(data).ValueOrDie();
    MarginalFeatureGame game(AsPredictFn(model), data.Row(0), data.x(), 24);
    WallTimer timer;
    Vector phi = ExactShapley(game).ValueOrDie();
    double ms = timer.Millis();
    std::printf("%4d %14.0f %16lld %12.2f\n", d, std::pow(2.0, d),
                static_cast<long long>(game.num_evaluations()), ms);
    report.Metric("exact_time_ms_d" + std::to_string(d), ms);
    report.Metric("exact_evals_d" + std::to_string(d),
                  static_cast<double>(game.num_evaluations()));
  }

  bench::Section(
      "approximation error vs budget at d = 12 (exact = reference)");
  auto [data, gt] = MakeLogisticData(300, 12, 3);
  (void)gt;
  auto model = LogisticRegressionModel::Train(data).ValueOrDie();
  Vector instance = data.Row(5);

  MarginalFeatureGame reference_game(AsPredictFn(model), instance, data.x(),
                                     24);
  Vector exact = ExactShapley(reference_game).ValueOrDie();

  std::printf("%22s %10s %14s %12s\n", "estimator", "budget", "max_error",
              "time_ms");
  for (int budget : {64, 256, 1024, 4096}) {
    if (smoke && budget > 1024) continue;
    {
      MarginalFeatureGame game(AsPredictFn(model), instance, data.x(), 24);
      Rng rng(11);
      KernelShapConfig config;
      config.coalition_budget = budget;
      WallTimer timer;
      auto ks = KernelShap(game, config, &rng).ValueOrDie();
      double err = MaxAbsError(ks.attributions, exact);
      std::printf("%22s %10d %14.5f %12.2f\n", "KernelSHAP", budget, err,
                  timer.Millis());
      report.Metric("kernel_shap_maxerr_b" + std::to_string(budget), err);
    }
    {
      MarginalFeatureGame game(AsPredictFn(model), instance, data.x(), 24);
      Rng rng(13);
      int permutations = std::max(1, budget / 12);
      WallTimer timer;
      auto ss = SamplingShapley(game, permutations, &rng);
      double err = MaxAbsError(ss.values, exact);
      std::printf("%22s %10d %14.5f %12.2f\n", "permutation-sampling",
                  budget, err, timer.Millis());
      report.Metric("sampling_maxerr_b" + std::to_string(budget), err);
    }
  }
  RunScaling(threads, smoke, &report);
  RunTelemetryOverhead(smoke, &report);

  std::printf(
      "\nShape check: exact time roughly x4 per +2 features; estimator "
      "errors fall with budget.\n");
  report.Note("smoke", smoke ? "true" : "false");
  report.Write();
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main(int argc, char** argv) {
  int threads = xai::bench::ThreadsFlag(argc, argv);
  bool smoke = xai::bench::SmokeFlag(argc, argv);
  xai::SetNumThreads(threads);
  xai::Run(threads, smoke);
}
