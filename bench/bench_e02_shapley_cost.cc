// E2 — Exponential cost of exact Shapley values; approximation quality
// (§2.1.2).
//
// Paper claim: "Computing Shapley values takes exponential time, since all
// possible feature orderings are considered. Existing methods, therefore,
// compute some approximation of these values."
// Expected shape: exact runtime doubles with every added feature; the
// sampling estimators trade model evaluations for error ~ 1/sqrt(budget).

#include <cmath>
#include <cstdio>
#include <utility>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/kernel_shap.h"
#include "xai/explain/shapley/sampling_shapley.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/logistic_regression.h"

namespace xai {
namespace {

double MaxAbsError(const Vector& a, const Vector& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

// Serial-vs-parallel scaling of the Monte-Carlo estimators: the same seeded
// workload at 1 thread and at `threads`, asserting bit-identical output (the
// runtime's determinism guarantee) while reporting speedup and throughput.
void RunScaling(int threads) {
  bench::Section("serial vs parallel scaling (deterministic runtime)");
  auto [data, gt] = MakeLogisticData(300, 12, 3);
  (void)gt;
  auto model = LogisticRegressionModel::Train(data).ValueOrDie();
  Vector instance = data.Row(5);

  const int kPermutations = 400;
  auto run_sampling = [&](int t) {
    SetNumThreads(t);
    MarginalFeatureGame game(AsPredictFn(model), instance, data.x(), 24);
    Rng rng(13);
    WallTimer timer;
    auto r = SamplingShapley(game, kPermutations, &rng);
    return std::pair<Vector, double>(r.values, timer.Seconds());
  };
  auto [sampling_serial, ss_sec] = run_sampling(1);
  auto [sampling_parallel, sp_sec] = run_sampling(threads);
  double sampling_evals = static_cast<double>(kPermutations) * 12;
  bench::Throughput("sampling-shapley", 1, ss_sec, sampling_evals);
  bench::Throughput("sampling-shapley", threads, sp_sec, sampling_evals);
  bench::Speedup("sampling Shapley", ss_sec, sp_sec, threads,
                 sampling_serial == sampling_parallel);

  const int kBudget = 4096;
  auto run_kernel = [&](int t) {
    SetNumThreads(t);
    MarginalFeatureGame game(AsPredictFn(model), instance, data.x(), 24);
    Rng rng(11);
    KernelShapConfig config;
    config.coalition_budget = kBudget;
    WallTimer timer;
    auto r = KernelShap(game, config, &rng).ValueOrDie();
    return std::pair<Vector, double>(r.attributions, timer.Seconds());
  };
  auto [kernel_serial, ks_sec] = run_kernel(1);
  auto [kernel_parallel, kp_sec] = run_kernel(threads);
  bench::Throughput("kernel-shap", 1, ks_sec, kBudget);
  bench::Throughput("kernel-shap", threads, kp_sec, kBudget);
  bench::Speedup("KernelSHAP", ks_sec, kp_sec, threads,
                 kernel_serial == kernel_parallel);
  SetNumThreads(threads);
}

void Run(int threads) {
  bench::Banner(
      "E2: exact Shapley cost growth and approximation error",
      "\"Computing Shapley values takes exponential time ... existing "
      "methods compute some approximation\" (S2.1.2)",
      "logistic model on synthetic data; marginal game, 24 background rows");

  bench::Section("exact Shapley runtime vs number of features d");
  std::printf("%4s %14s %16s %12s\n", "d", "coalitions", "evaluations",
              "time_ms");
  for (int d = 4; d <= 14; d += 2) {
    auto [data, gt] = MakeLogisticData(300, d, 7 + d);
    (void)gt;
    auto model = LogisticRegressionModel::Train(data).ValueOrDie();
    MarginalFeatureGame game(AsPredictFn(model), data.Row(0), data.x(), 24);
    WallTimer timer;
    Vector phi = ExactShapley(game).ValueOrDie();
    std::printf("%4d %14.0f %16d %12.2f\n", d, std::pow(2.0, d),
                game.num_evaluations(), timer.Millis());
  }

  bench::Section(
      "approximation error vs budget at d = 12 (exact = reference)");
  auto [data, gt] = MakeLogisticData(300, 12, 3);
  (void)gt;
  auto model = LogisticRegressionModel::Train(data).ValueOrDie();
  Vector instance = data.Row(5);

  MarginalFeatureGame reference_game(AsPredictFn(model), instance, data.x(),
                                     24);
  Vector exact = ExactShapley(reference_game).ValueOrDie();

  std::printf("%22s %10s %14s %12s\n", "estimator", "budget", "max_error",
              "time_ms");
  for (int budget : {64, 256, 1024, 4096}) {
    {
      MarginalFeatureGame game(AsPredictFn(model), instance, data.x(), 24);
      Rng rng(11);
      KernelShapConfig config;
      config.coalition_budget = budget;
      WallTimer timer;
      auto ks = KernelShap(game, config, &rng).ValueOrDie();
      std::printf("%22s %10d %14.5f %12.2f\n", "KernelSHAP", budget,
                  MaxAbsError(ks.attributions, exact), timer.Millis());
    }
    {
      MarginalFeatureGame game(AsPredictFn(model), instance, data.x(), 24);
      Rng rng(13);
      int permutations = std::max(1, budget / 12);
      WallTimer timer;
      auto ss = SamplingShapley(game, permutations, &rng);
      std::printf("%22s %10d %14.5f %12.2f\n", "permutation-sampling",
                  budget, MaxAbsError(ss.values, exact), timer.Millis());
    }
  }
  RunScaling(threads);

  std::printf(
      "\nShape check: exact time roughly x4 per +2 features; estimator "
      "errors fall with budget.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main(int argc, char** argv) {
  int threads = xai::bench::ThreadsFlag(argc, argv);
  xai::SetNumThreads(threads);
  xai::Run(threads);
}
