// E19 — Explanation serving: cache, batching, and deadline-aware
// degradation (§3, explanations as query results).
//
// Paper claim: explanations "generated in real time" — the serving layer
// must answer interactive requests within a latency budget, not re-run a
// Monte-Carlo estimator from scratch per page load.
// Expected shape: repeated-instance workloads collapse onto the explanation
// cache (>= 5x p50 latency reduction vs the cold path); deadline-bound
// requests degrade to an affordable fidelity tier and meet their deadlines;
// responses stay bit-identical at any thread count.
//
// Emits BENCH_e19.json (+ Chrome trace) via bench::RunReport; `--smoke`
// shrinks the workload for CI.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/model/gbdt.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/serialization.h"
#include "xai/serve/explain_server.h"

namespace xai {
namespace {

using serve::ExplainRequest;
using serve::ExplainServer;
using serve::ExplainerKind;
using serve::FidelityTier;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * (values.size() - 1));
  return values[index];
}

struct Workbench {
  Dataset background;
  std::string gbdt_text;
  std::string wide_text;
  Dataset wide_data;
  std::vector<Vector> instances;

  explicit Workbench(bool smoke)
      : background(MakeLoans(smoke ? 32 : 64, 4)),
        wide_data(MakeLoans(1, 1)) {  // Placeholder, replaced below.
    Dataset train = MakeLoans(300, 3);
    GbdtModel::Config config;
    config.n_trees = 10;
    gbdt_text = SerializeModel(GbdtModel::Train(train, config).ValueOrDie());
    for (int i = 0; i < 8; ++i) instances.push_back(train.Row(i));

    auto [wide, gt] = MakeLogisticData(300, 12, 5);
    (void)gt;
    wide_data = std::move(wide);
    wide_text = SerializeModel(
        LogisticRegressionModel::Train(wide_data).ValueOrDie());
  }

  void Register(ExplainServer* server) const {
    server->registry().Register("loans", gbdt_text, background).ValueOrDie();
    Dataset wide_background(wide_data.schema(),
                            Matrix(wide_data.x()), wide_data.y());
    server->registry()
        .Register("wide", wide_text, wide_background)
        .ValueOrDie();
  }
};

// Repeated-instance workload: the same 8 instances requested over and over
// ("the same loan application explained on every page load"). Pass 1 is the
// cold path (every request computes); later passes hit the cache.
void RunCacheLatency(const Workbench& bench, bool smoke,
                     bench::RunReport* report) {
  bench::Section("cold vs warm p50 latency (repeated-instance workload)");
  ExplainServer server;
  bench.Register(&server);

  const int kPasses = smoke ? 4 : 10;
  std::vector<double> cold_ms, warm_ms;
  for (int pass = 0; pass < kPasses; ++pass) {
    for (const Vector& instance : bench.instances) {
      ExplainRequest request;
      request.model = "loans";
      request.instance = instance;
      request.kind = ExplainerKind::kKernelShap;
      request.fidelity = FidelityTier::kStandard;
      auto response = server.Explain(request).ValueOrDie();
      (pass == 0 ? cold_ms : warm_ms).push_back(response.latency_ms);
      if (pass > 0 && !response.cache_hit)
        std::printf("  unexpected cache miss on warm pass %d\n", pass);
    }
  }

  const double cold_p50 = Percentile(cold_ms, 0.5);
  const double warm_p50 = Percentile(warm_ms, 0.5);
  const double speedup = warm_p50 > 0 ? cold_p50 / warm_p50 : 0.0;
  std::printf("  cold p50 %8.3f ms   warm p50 %8.4f ms   speedup %7.1fx "
              "(target >= 5x)\n",
              cold_p50, warm_p50, speedup);
  auto stats = server.cache().GetStats();
  std::printf("  cache: %lld hits / %lld misses, %lld entries, %zu bytes\n",
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.misses),
              static_cast<long long>(stats.entries), stats.bytes);
  report->Metric("cold_p50_ms", cold_p50);
  report->Metric("warm_p50_ms", warm_p50);
  report->Metric("cache_p50_speedup", speedup);
  report->Metric("cache_speedup_ok", speedup >= 5.0 ? 1.0 : 0.0);
}

// Concurrent clients against one server: throughput and end-to-end latency
// percentiles with the batcher coalescing duplicate in-flight requests.
void RunThroughput(const Workbench& bench, int threads, bool smoke,
                   bench::RunReport* report) {
  bench::Section("concurrent-client throughput (batching + coalescing)");
  SetNumThreads(threads);
  ExplainServer server;
  bench.Register(&server);

  const int kClients = smoke ? 4 : 8;
  const int kPerClient = smoke ? 24 : 100;
  std::vector<std::vector<double>> latencies(kClients);
  std::atomic<int> failures{0};

  WallTimer timer;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        ExplainRequest request;
        request.model = "loans";
        // Clients overlap on a small instance set, so many in-flight
        // requests carry identical cache keys.
        request.instance = bench.instances[(c + i) % bench.instances.size()];
        request.kind = ExplainerKind::kSamplingShapley;
        request.fidelity = FidelityTier::kReduced;
        auto result = server.Explain(request);
        if (!result.ok()) {
          ++failures;
          continue;
        }
        latencies[c].push_back(result.ValueOrDie().latency_ms);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double seconds = timer.Seconds();

  std::vector<double> all;
  for (const auto& per_client : latencies)
    all.insert(all.end(), per_client.begin(), per_client.end());
  const double total = static_cast<double>(kClients) * kPerClient;
  std::printf("  %d clients x %d requests at %d threads: %8.0f req/s, "
              "p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, failures %d\n",
              kClients, kPerClient, threads,
              seconds > 0 ? total / seconds : 0.0, Percentile(all, 0.5),
              Percentile(all, 0.95), Percentile(all, 0.99), failures.load());
  report->Metric("throughput_rps", seconds > 0 ? total / seconds : 0.0);
  report->Metric("latency_p50_ms", Percentile(all, 0.5));
  report->Metric("latency_p95_ms", Percentile(all, 0.95));
  report->Metric("latency_p99_ms", Percentile(all, 0.99));
  report->Metric("request_failures", failures.load());
}

// Deadline-bound requests on the 12-feature model: the kHigh KernelSHAP
// rung costs far more than the deadline funds, so the policy degrades each
// request to an affordable tier — and the served tier must then actually
// meet the deadline (zero misses on the smoke config).
void RunDegradedMode(const Workbench& bench, bool smoke,
                     bench::RunReport* report) {
  bench::Section("deadline-aware degradation (zero-miss target)");
  ExplainServer server;
  bench.Register(&server);

  const int kRequests = smoke ? 32 : 128;
  const double kDeadlineMs = 50.0;
  int degraded = 0, misses = 0;
  std::map<std::string, int> tiers_served;
  for (int i = 0; i < kRequests; ++i) {
    ExplainRequest request;
    request.model = "wide";
    request.instance = bench.wide_data.Row(i % 50);
    request.kind = ExplainerKind::kKernelShap;
    request.fidelity = FidelityTier::kHigh;
    request.deadline_ms = kDeadlineMs;
    request.use_cache = false;  // Every request pays full computation.
    auto response = server.Explain(request).ValueOrDie();
    degraded += response.degraded ? 1 : 0;
    misses += response.deadline_met ? 0 : 1;
    ++tiers_served[serve::FidelityTierName(response.served_tier)];
  }
  std::printf("  %d requests, deadline %.0f ms: %d degraded, %d deadline "
              "misses\n",
              kRequests, kDeadlineMs, degraded, misses);
  for (const auto& [tier, count] : tiers_served)
    std::printf("    served tier %-10s x%d\n", tier.c_str(), count);
  report->Metric("degraded_requests", degraded);
  report->Metric("deadline_misses", misses);
  report->Metric("deadline_miss_rate",
                 static_cast<double>(misses) / kRequests);
}

// The acceptance gate: a fixed request must produce a bit-identical
// response at 1, 4, and 8 threads (fresh server and cache each time).
void RunDeterminism(const Workbench& bench, bench::RunReport* report) {
  bench::Section("response determinism across thread counts");
  const std::vector<ExplainerKind> kinds = {
      ExplainerKind::kTreeShap, ExplainerKind::kKernelShap,
      ExplainerKind::kSamplingShapley, ExplainerKind::kLime};

  bool identical = true;
  std::map<ExplainerKind, uint64_t> reference;
  for (int threads : {1, 4, 8}) {
    SetNumThreads(threads);
    ExplainServer server;
    bench.Register(&server);
    for (ExplainerKind kind : kinds) {
      ExplainRequest request;
      request.model = "loans";
      request.instance = bench.instances[0];
      request.kind = kind;
      request.fidelity = FidelityTier::kReduced;
      const uint64_t hash =
          serve::PayloadHash(server.Explain(request).ValueOrDie());
      auto [it, inserted] = reference.emplace(kind, hash);
      if (it->second != hash) {
        identical = false;
        std::printf("  MISMATCH: %s differs at %d threads\n",
                    serve::ExplainerKindName(kind), threads);
      }
    }
  }
  std::printf("  responses bit-identical across {1, 4, 8} threads: %s\n",
              identical ? "yes" : "NO");
  report->Metric("determinism_bit_identical", identical ? 1.0 : 0.0);
}

}  // namespace
}  // namespace xai

int main(int argc, char** argv) {
  const bool smoke = xai::bench::SmokeFlag(argc, argv);
  const int threads = xai::bench::ThreadsFlag(argc, argv);
  xai::SetNumThreads(threads);

  xai::bench::Banner(
      "E19 — explanation serving: cache, batching, degradation",
      "explanations generated in real time",
      "GBDT + logistic snapshots served via registry/cache/batcher under "
      "repeated-instance, concurrent, and deadline-bound workloads");

  xai::bench::RunReport report("e19",
                               "explanations generated in real time");
  xai::Workbench bench(smoke);
  xai::RunCacheLatency(bench, smoke, &report);
  xai::RunThroughput(bench, threads, smoke, &report);
  xai::RunDegradedMode(bench, smoke, &report);
  xai::RunDeterminism(bench, &report);

  report.Note("smoke", smoke ? "true" : "false");
  report.Write();
  xai::bench::Footer();
  return 0;
}
