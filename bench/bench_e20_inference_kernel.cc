// E20 — Flattened tree-ensemble inference kernel: SoA node layout, blocked
// batch traversal, zero-virtual dispatch under perturbation explainers.
//
// Systems claim (§3 of the paper: explanation workloads are data-management
// workloads): every perturbation-based explainer bottlenecks on batch model
// inference, so the ensemble traversal deserves a compiled kernel — one
// contiguous SoA block, rows x trees tiling for cache residency, and
// branch-reduced stepping — instead of a virtual call into 48-byte AoS
// nodes per perturbed row.
// Expected shape: the flat kernel wins >= 3x on batch inference over the
// scalar AoS walk at equal thread counts, stays bit-identical to it at 1/4/8
// threads, and the win carries through to end-to-end KernelSHAP and LIME
// wall-clock.
//
// Emits BENCH_e20.json (+ Chrome trace) via bench::RunReport; `--smoke`
// shrinks the workload for CI.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/explain/lime.h"
#include "xai/explain/shapley/kernel_shap.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/flat_ensemble.h"
#include "xai/model/gbdt.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/random_forest.h"
#include "xai/model/tree_ensemble_view.h"

namespace xai {
namespace {

// The pre-kernel batch path, replicated as the baseline: a serial loop that
// walks the original AoS TreeNode arrays through the ensemble-view
// indirections per row. Per-model post-ops mirror RandomForestModel::Predict
// (sum then divide) and GbdtModel::Predict (base + sum, sigmoid).
Vector ScalarForestBatch(const RandomForestModel& model, const Matrix& x) {
  Vector out(x.rows());
  const auto& trees = model.trees();
  for (int i = 0; i < x.rows(); ++i) {
    const double* row = x.RowPtr(i);
    double acc = 0.0;
    for (size_t t = 0; t < trees.size(); ++t) acc += trees[t].PredictRow(row);
    out[i] = trees.empty() ? 0.0 : acc / trees.size();
  }
  return out;
}

Vector ScalarGbdtBatch(const GbdtModel& model, const Matrix& x) {
  Vector out(x.rows());
  const auto& trees = model.trees();
  for (int i = 0; i < x.rows(); ++i) {
    const double* row = x.RowPtr(i);
    double acc = model.base_score();
    for (size_t t = 0; t < trees.size(); ++t) acc += trees[t].PredictRow(row);
    out[i] = model.task() == TaskType::kClassification ? Sigmoid(acc) : acc;
  }
  return out;
}

// Best-of-k wall time of `fn` (first call also serves as warm-up).
template <typename Fn>
double BestOf(int reps, const Fn& fn) {
  double best = 1e300;
  for (int i = 0; i <= reps; ++i) {
    WallTimer timer;
    fn();
    if (i > 0) best = std::min(best, timer.Seconds());
  }
  return best;
}

// E02-shaped perturbation batch: background rows with coalition-masked
// features overwritten by the instance, exactly the row stream a marginal
// SHAP game pushes through the model.
Matrix PerturbationBatch(const Matrix& background, const Vector& instance,
                         int rows, uint64_t seed) {
  Rng rng(seed);
  const int d = background.cols();
  Matrix batch(rows, d);
  for (int i = 0; i < rows; ++i) {
    const double* bg = background.RowPtr(i % background.rows());
    double* out = batch.RowPtr(i);
    const uint64_t mask = rng.NextU64();
    for (int j = 0; j < d; ++j)
      out[j] = (mask >> (j % 64)) & 1 ? instance[j] : bg[j];
  }
  return batch;
}

void RunBatchKernel(int threads, bool smoke, bench::RunReport* report) {
  bench::Section("batch inference: scalar AoS walk vs flat SoA kernel");
  const int kTrees = smoke ? 100 : 200;
  const int kRows = smoke ? 8000 : 40000;
  const int kReps = smoke ? 3 : 5;

  Dataset train = MakeLoans(1500, 20);
  RandomForestConfig rf_config;
  rf_config.n_trees = kTrees;
  auto rf = RandomForestModel::Train(train, rf_config).ValueOrDie();
  GbdtConfig gb_config;
  gb_config.n_trees = kTrees;
  gb_config.max_depth = 6;
  auto gb = GbdtModel::Train(train, gb_config).ValueOrDie();
  Matrix batch = PerturbationBatch(train.x(), train.Row(0), kRows, 7);

  std::printf("%8s %10s %12s %12s %9s %6s\n", "model", "layout", "threads",
              "time_ms", "Mrows/s", "biteq");
  struct Case {
    const char* name;
    std::function<Vector()> scalar;
    std::function<Vector()> flat;
  };
  const Case cases[] = {
      {"rf", [&] { return ScalarForestBatch(rf, batch); },
       [&] { return rf.PredictBatch(batch); }},
      {"gbdt", [&] { return ScalarGbdtBatch(gb, batch); },
       [&] { return gb.PredictBatch(batch); }},
  };
  for (const Case& c : cases) {
    SetNumThreads(1);
    Vector scalar_out;
    const double scalar_sec = BestOf(kReps, [&] { scalar_out = c.scalar(); });
    // Flat kernel, serial: isolates the layout + tiling win from the
    // ParallelFor win (which PR 1 already banked).
    Vector flat_serial;
    const double flat1_sec = BestOf(kReps, [&] { flat_serial = c.flat(); });
    const bool identical_serial = flat_serial == scalar_out;
    std::printf("%8s %10s %12d %12.2f %9.1f %6s\n", c.name, "scalar-AoS", 1,
                scalar_sec * 1e3, kRows / scalar_sec * 1e-6, "ref");
    std::printf("%8s %10s %12d %12.2f %9.1f %6s\n", c.name, "flat-SoA", 1,
                flat1_sec * 1e3, kRows / flat1_sec * 1e-6,
                identical_serial ? "yes" : "NO");
    const double kernel_speedup = flat1_sec > 0 ? scalar_sec / flat1_sec : 0;
    report->Metric(std::string(c.name) + "_flat_speedup_serial",
                   kernel_speedup);

    bool identical_all_threads = identical_serial;
    double flat_thr_sec = flat1_sec;
    for (int t : {4, 8}) {
      SetNumThreads(t);
      Vector flat_out;
      flat_thr_sec = BestOf(kReps, [&] { flat_out = c.flat(); });
      const bool identical = flat_out == scalar_out;
      identical_all_threads = identical_all_threads && identical;
      std::printf("%8s %10s %12d %12.2f %9.1f %6s\n", c.name, "flat-SoA", t,
                  flat_thr_sec * 1e3, kRows / flat_thr_sec * 1e-6,
                  identical ? "yes" : "NO");
      report->Metric(std::string(c.name) + "_flat_bit_identical_t" +
                         std::to_string(t),
                     identical ? 1.0 : 0.0);
    }
    report->Metric(std::string(c.name) + "_flat_bit_identical_t1",
                   identical_serial ? 1.0 : 0.0);
    report->Metric(std::string(c.name) + "_flat_speedup_vs_scalar_threaded",
                   flat_thr_sec > 0 ? scalar_sec / flat_thr_sec : 0.0);
    std::printf("%8s serial kernel speedup %.2fx, bit-identical at "
                "1/4/8 threads: %s\n",
                c.name, kernel_speedup,
                identical_all_threads ? "yes" : "NO");
  }
  SetNumThreads(threads);
}

void RunEndToEnd(int threads, bool smoke, bench::RunReport* report) {
  bench::Section("end-to-end explainers: scalar black box vs flat kernel");
  Dataset train = MakeLoans(smoke ? 400 : 800, 21);
  GbdtConfig config;
  config.n_trees = smoke ? 60 : 150;
  auto model = GbdtModel::Train(train, config).ValueOrDie();
  Vector instance = train.Row(3);
  const int kReps = smoke ? 3 : 5;

  // The pre-kernel black box: virtual dispatch + AoS walk per row, no
  // batching inside the game.
  PredictFn scalar_fn = [&model](const Vector& row) {
    return model.Predict(row);
  };

  {
    KernelShapConfig ks_config;
    ks_config.coalition_budget = smoke ? 512 : 2048;
    Vector scalar_phi, flat_phi;
    const double scalar_sec = BestOf(kReps, [&] {
      MarginalFeatureGame game(scalar_fn, instance, train.x(), 64);
      Rng rng(11);
      scalar_phi = KernelShap(game, ks_config, &rng).ValueOrDie().attributions;
    });
    const double flat_sec = BestOf(kReps, [&] {
      // Model-aware game: one batched call through the flat kernel per
      // coalition sweep.
      MarginalFeatureGame game(model, instance, train.x(), 64);
      Rng rng(11);
      flat_phi = KernelShap(game, ks_config, &rng).ValueOrDie().attributions;
    });
    bench::Speedup("KernelSHAP e2e", scalar_sec, flat_sec, threads,
                   scalar_phi == flat_phi);
    report->Metric("kernel_shap_e2e_speedup",
                   flat_sec > 0 ? scalar_sec / flat_sec : 0.0);
    report->Metric("kernel_shap_identical",
                   scalar_phi == flat_phi ? 1.0 : 0.0);
  }
  {
    LimeConfig lime_config;
    lime_config.num_samples = smoke ? 1000 : 4000;
    LimeExplainer lime(train, lime_config);
    PredictFn flat_fn = AsPredictFn(model);  // Flat-kernel fast path.
    Vector scalar_w, flat_w;
    const double scalar_sec = BestOf(kReps, [&] {
      scalar_w = lime.Explain(scalar_fn, instance, 5).ValueOrDie().attributions;
    });
    const double flat_sec = BestOf(kReps, [&] {
      flat_w = lime.Explain(flat_fn, instance, 5).ValueOrDie().attributions;
    });
    bench::Speedup("LIME e2e", scalar_sec, flat_sec, threads,
                   scalar_w == flat_w);
    report->Metric("lime_e2e_speedup",
                   flat_sec > 0 ? scalar_sec / flat_sec : 0.0);
    report->Metric("lime_identical", scalar_w == flat_w ? 1.0 : 0.0);
  }
}

// Telemetry cost on the kernel hot loop (counter bump per batch + per-row
// counters on the scalar fast path): runtime toggle, interleaved reps.
void RunTelemetryOverhead(bool smoke, bench::RunReport* report) {
  bench::Section("telemetry overhead on the flat batch hot loop");
  Dataset train = MakeLoans(1000, 22);
  GbdtConfig config;
  config.n_trees = smoke ? 60 : 150;
  auto model = GbdtModel::Train(train, config).ValueOrDie();
  Matrix batch = PerturbationBatch(train.x(), train.Row(0),
                                   smoke ? 4000 : 20000, 9);
  const int kReps = smoke ? 8 : 15;
  auto time_once = [&] {
    WallTimer timer;
    Vector out = model.PredictBatch(batch);
    (void)out;
    return timer.Seconds();
  };
  time_once();  // Warm-up (kernel build, pool spin-up).
  double on_sec = 1e300, off_sec = 1e300;
  for (int i = 0; i < kReps; ++i) {
    telemetry::SetEnabled(true);
    on_sec = std::min(on_sec, time_once());
    telemetry::SetEnabled(false);
    off_sec = std::min(off_sec, time_once());
  }
  telemetry::SetEnabled(true);
  double overhead_pct =
      off_sec > 0 ? (on_sec - off_sec) / off_sec * 100.0 : 0.0;
  std::printf("hot loop: enabled %.3f ms, disabled %.3f ms, overhead "
              "%+.2f%% (budget < 2%%)\n",
              on_sec * 1e3, off_sec * 1e3, overhead_pct);
  report->Metric("telemetry_overhead_pct", overhead_pct);
}

void Run(int threads, bool smoke) {
  const char* claim =
      "perturbation explainers are batch-inference workloads; a compiled "
      "SoA tree kernel beats the pointer-walking path without changing a "
      "single output bit (S3)";
  bench::Banner("E20: flattened tree-ensemble inference kernel", claim,
                "loans RF/GBDT; E02-shaped perturbation batches; KernelSHAP "
                "and LIME end to end");
  bench::RunReport report("e20", claim);
  telemetry::Registry::Global().Reset();

  RunBatchKernel(threads, smoke, &report);
  RunEndToEnd(threads, smoke, &report);
  RunTelemetryOverhead(smoke, &report);

  std::printf("\nShape check: flat kernel >= 3x over scalar batch at equal "
              "threads; all paths bit-identical; explainer wall-clock "
              "improves end to end.\n");
  report.Note("smoke", smoke ? "true" : "false");
  report.Write();
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main(int argc, char** argv) {
  int threads = xai::bench::ThreadsFlag(argc, argv);
  bool smoke = xai::bench::SmokeFlag(argc, argv);
  xai::SetNumThreads(threads);
  xai::Run(threads, smoke);
}
