// E15 — Adversarial attacks on perturbation-based explainers (§2.1.1).
//
// Paper claim: "These components can be exploited to perform adversarial
// attacks that render the explanations futile" (Slack et al., "Fooling LIME
// and SHAP").
// Expected shape: explaining the *honest* biased model puts the sensitive
// feature on top for ~100% of instances; against the adversarial model
// (an OOD detector routing synthetic perturbations to an innocuous model),
// LIME's detection rate collapses. Marginal-SHAP hybrids of nearly
// independent synthetic features stay close to the manifold, so that attack
// variant is measured too — typically weaker, which we report honestly.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "xai/core/timer.h"
#include "xai/data/synthetic.h"
#include "xai/explain/adversarial.h"
#include "xai/explain/lime.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/value_function.h"

namespace xai {
namespace {

void Run() {
  bench::Banner(
      "E15: fooling LIME and SHAP",
      "\"adversarial attacks that render the explanations futile\" "
      "(S2.1.1, Slack et al.)",
      "recidivism n=800; biased model = f(race); innocuous = f(age); OOD "
      "detector = RF(64) on real-vs-perturbed");

  Dataset train = MakeRecidivism(800, 1);
  int race = train.schema().FeatureIndex("race");
  int age = train.schema().FeatureIndex("age");
  PredictFn biased = [race](const Vector& x) {
    return x[race] == 1.0 ? 0.9 : 0.1;
  };
  PredictFn innocuous = [age](const Vector& x) {
    return x[age] > 40.0 ? 0.9 : 0.1;
  };
  Perturber perturber(train, Perturber::Strategy::kGaussian);
  auto adversarial =
      AdversarialModel::Make(train, perturber, biased, innocuous, {})
          .ValueOrDie();

  Dataset holdout = MakeRecidivism(300, 2);
  std::printf("OOD detector accuracy on held-out real+perturbed: %.3f\n",
              adversarial.DetectorAccuracy(holdout, perturber, 3));

  const int kInstances = 25;
  std::vector<int> probes;
  for (int i = 0; i < train.num_rows() &&
                  static_cast<int>(probes.size()) < kInstances;
       ++i)
    probes.push_back(i);

  auto race_top_rate_lime = [&](const PredictFn& f) {
    LimeConfig config;
    config.strategy = Perturber::Strategy::kGaussian;
    config.num_samples = 1000;
    LimeExplainer lime(train, config);
    int hits = 0;
    for (size_t i = 0; i < probes.size(); ++i) {
      auto exp = lime.Explain(f, train.Row(probes[i]), 100 + i)
                     .ValueOrDie();
      if (exp.TopFeatures(1)[0] == race) ++hits;
    }
    return static_cast<double>(hits) / probes.size();
  };
  auto race_top_rate_shap = [&](const PredictFn& f, bool conditional) {
    int hits = 0;
    for (size_t i = 0; i < probes.size(); ++i) {
      Vector phi;
      if (conditional) {
        ConditionalFeatureGame game(f, train.Row(probes[i]), train.x(),
                                    25);
        phi = ExactShapley(game).ValueOrDie();
      } else {
        MarginalFeatureGame game(f, train.Row(probes[i]), train.x(), 25);
        phi = ExactShapley(game).ValueOrDie();
      }
      int top = 0;
      for (size_t j = 1; j < phi.size(); ++j)
        if (std::fabs(phi[j]) > std::fabs(phi[top]))
          top = static_cast<int>(j);
      if (top == race) ++hits;
    }
    return static_cast<double>(hits) / probes.size();
  };

  std::printf("\n%26s %22s %22s\n", "explainer",
              "race top-1 (honest)", "race top-1 (attacked)");
  PredictFn adv = AsPredictFn(adversarial);
  std::printf("%26s %22.2f %22.2f\n", "LIME (gaussian)",
              race_top_rate_lime(biased), race_top_rate_lime(adv));
  std::printf("%26s %22.2f %22.2f\n", "SHAP (marginal, exact)",
              race_top_rate_shap(biased, false),
              race_top_rate_shap(adv, false));
  std::printf("%26s %22.2f %22.2f\n", "SHAP (conditional, exact)",
              race_top_rate_shap(biased, true),
              race_top_rate_shap(adv, true));
  std::printf(
      "\nShape check: honest rates ~1.0; attacked LIME rate collapses "
      "toward 0. The marginal-SHAP attack is weaker here because hybrids "
      "of independent synthetic features stay near the manifold — the "
      "vulnerability is distribution-dependent, which is exactly Slack et "
      "al.'s point. Conditional (on-manifold) SHAP keeps detecting the "
      "bias: its evaluation points are splices with *similar* real rows, "
      "the known mitigation.\n");
  bench::Footer();
}

}  // namespace
}  // namespace xai

int main() { xai::Run(); }
