#include <gtest/gtest.h>

#include <cmath>

#include "xai/dbx/responsibility.h"
#include "xai/dbx/tuple_shapley.h"
#include "xai/relational/provenance.h"

namespace xai {
namespace {

using rel::ProvExpr;
using rel::ProvExprPtr;

// Lineage t1*t2 + t3: the textbook example with known Shapley values
// phi(t1) = phi(t2) = 1/6, phi(t3) = 2/3.
ProvExprPtr AndOrLineage() {
  return ProvExpr::Plus(
      ProvExpr::Times(ProvExpr::Base(1), ProvExpr::Base(2)),
      ProvExpr::Base(3));
}

TEST(TupleShapleyTest, KnownAndOrValues) {
  auto result =
      BooleanQueryTupleShapley(AndOrLineage(), {1, 2, 3}).ValueOrDie();
  EXPECT_TRUE(result.exact);
  EXPECT_NEAR(result.values[1], 1.0 / 6, 1e-12);
  EXPECT_NEAR(result.values[2], 1.0 / 6, 1e-12);
  EXPECT_NEAR(result.values[3], 2.0 / 3, 1e-12);
}

TEST(TupleShapleyTest, EfficiencySumsToOneWhenAnswerHolds) {
  auto result =
      BooleanQueryTupleShapley(AndOrLineage(), {1, 2, 3}).ValueOrDie();
  double sum = 0;
  for (const auto& [id, v] : result.values) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(TupleShapleyTest, ExogenousTuplesAlwaysPresent) {
  // Endogenous only t1; t2 exogenous: lineage t1*t2 behaves like t1.
  auto lineage = ProvExpr::Times(ProvExpr::Base(1), ProvExpr::Base(2));
  auto result = BooleanQueryTupleShapley(lineage, {1}).ValueOrDie();
  EXPECT_NEAR(result.values[1], 1.0, 1e-12);
}

TEST(TupleShapleyTest, IrrelevantTupleGetsZero) {
  auto lineage = ProvExpr::Base(1);
  auto result = BooleanQueryTupleShapley(lineage, {1, 2}).ValueOrDie();
  EXPECT_NEAR(result.values[1], 1.0, 1e-12);
  EXPECT_NEAR(result.values[2], 0.0, 1e-12);
}

TEST(TupleShapleyTest, SamplingMatchesExact) {
  // Force sampling with a low exact limit.
  TupleShapleyConfig config;
  config.exact_limit = 2;
  config.permutations = 20000;
  auto sampled =
      BooleanQueryTupleShapley(AndOrLineage(), {1, 2, 3}, config)
          .ValueOrDie();
  EXPECT_FALSE(sampled.exact);
  EXPECT_NEAR(sampled.values[1], 1.0 / 6, 0.02);
  EXPECT_NEAR(sampled.values[3], 2.0 / 3, 0.02);
}

TEST(TupleShapleyTest, RejectsEmptyPlayers) {
  EXPECT_FALSE(BooleanQueryTupleShapley(AndOrLineage(), {}).ok());
}

TEST(NumericTupleShapleyTest, CountQuery) {
  // Query = number of derivable answers among two answers with lineages
  // a1 = t1, a2 = t2*t3. phi(t1) = 1; phi(t2) = phi(t3) = 1/2.
  auto a1 = ProvExpr::Base(1);
  auto a2 = ProvExpr::Times(ProvExpr::Base(2), ProvExpr::Base(3));
  auto count_query = [&](const std::vector<int>& present) {
    auto has = [&](int id) {
      return std::find(present.begin(), present.end(), id) !=
             present.end();
    };
    double count = 0;
    if (a1->EvalBool(has)) count += 1;
    if (a2->EvalBool(has)) count += 1;
    return count;
  };
  auto result =
      NumericQueryTupleShapley(count_query, {1, 2, 3}).ValueOrDie();
  EXPECT_NEAR(result.values[1], 1.0, 1e-12);
  EXPECT_NEAR(result.values[2], 0.5, 1e-12);
  EXPECT_NEAR(result.values[3], 0.5, 1e-12);
}

TEST(ResponsibilityTest, CounterfactualCauseHasFullResponsibility) {
  // Lineage t1 * t2: each tuple is a counterfactual cause.
  auto lineage = ProvExpr::Times(ProvExpr::Base(1), ProvExpr::Base(2));
  auto result = TupleResponsibility(lineage, {1, 2}).ValueOrDie();
  EXPECT_DOUBLE_EQ(result.responsibility[1], 1.0);
  EXPECT_DOUBLE_EQ(result.responsibility[2], 1.0);
  EXPECT_TRUE(result.contingency[1].empty());
}

TEST(ResponsibilityTest, DisjunctionNeedsContingency) {
  // Lineage t1 + t2: removing t1 alone keeps the answer (t2 covers it);
  // with contingency {t2}, removing t1 kills it: responsibility 1/2.
  auto lineage = ProvExpr::Plus(ProvExpr::Base(1), ProvExpr::Base(2));
  auto result = TupleResponsibility(lineage, {1, 2}).ValueOrDie();
  EXPECT_DOUBLE_EQ(result.responsibility[1], 0.5);
  EXPECT_DOUBLE_EQ(result.responsibility[2], 0.5);
  EXPECT_EQ(result.contingency[1], (std::vector<int>{2}));
}

TEST(ResponsibilityTest, AndOrMixedCase) {
  // t1*t2 + t3: t3 has responsibility 1/2 (contingency {t1} or {t2});
  // t1 needs contingency {t3}: responsibility 1/2... but removing t3 alone
  // doesn't kill the answer unless t1,t2 both present. Check consistency.
  auto result =
      TupleResponsibility(AndOrLineage(), {1, 2, 3}).ValueOrDie();
  EXPECT_DOUBLE_EQ(result.responsibility[3], 0.5);
  EXPECT_DOUBLE_EQ(result.responsibility[1], 0.5);
  EXPECT_DOUBLE_EQ(result.responsibility[2], 0.5);
}

TEST(ResponsibilityTest, IrrelevantTupleNotACause) {
  auto lineage = ProvExpr::Base(1);
  auto result = TupleResponsibility(lineage, {1, 2}).ValueOrDie();
  EXPECT_DOUBLE_EQ(result.responsibility[1], 1.0);
  EXPECT_DOUBLE_EQ(result.responsibility[2], 0.0);
}

TEST(ResponsibilityTest, AnswerDoesNotHold) {
  // Lineage over an absent tuple id set: treat as answer not derivable
  // when all endogenous removed... here lineage = t9 & endo = {1}: t9 is
  // exogenous so the answer always holds and t1 is irrelevant.
  auto lineage = ProvExpr::Base(9);
  auto result = TupleResponsibility(lineage, {1}).ValueOrDie();
  EXPECT_DOUBLE_EQ(result.responsibility[1], 0.0);
}

TEST(ResponsibilityTest, ResponsibilityDecreasesWithRedundancy) {
  // t1 + t2 + t3 (three redundant derivations): responsibility 1/3 each.
  auto lineage = ProvExpr::Plus(
      ProvExpr::Plus(ProvExpr::Base(1), ProvExpr::Base(2)),
      ProvExpr::Base(3));
  auto result = TupleResponsibility(lineage, {1, 2, 3}).ValueOrDie();
  EXPECT_DOUBLE_EQ(result.responsibility[1], 1.0 / 3);
}

}  // namespace
}  // namespace xai
