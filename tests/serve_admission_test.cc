#include "xai/serve/async/admission.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace xai {
namespace serve {
namespace async {
namespace {

constexpr int64_t kSecond = 1000LL * 1000 * 1000;

using Outcome = AdmissionController::Outcome;

TEST(TokenBucketTest, RefillsAtConfiguredRateUpToBurst) {
  TokenBucket bucket;
  bucket.tokens = 2.0;
  bucket.last_refill_ns = 0;

  EXPECT_TRUE(bucket.TryAcquire(0, /*rate_per_sec=*/1.0, /*burst=*/2.0));
  EXPECT_TRUE(bucket.TryAcquire(0, 1.0, 2.0));
  EXPECT_FALSE(bucket.TryAcquire(0, 1.0, 2.0));
  // Half a second buys half a token — still short.
  EXPECT_FALSE(bucket.TryAcquire(kSecond / 2, 1.0, 2.0));
  // By t=1.5s the bucket holds a full token again.
  EXPECT_TRUE(bucket.TryAcquire(kSecond + kSecond / 2, 1.0, 2.0));
  // A long idle period caps at burst, not elapsed * rate.
  EXPECT_TRUE(bucket.TryAcquire(100 * kSecond, 1.0, 2.0));
  EXPECT_TRUE(bucket.TryAcquire(100 * kSecond, 1.0, 2.0));
  EXPECT_FALSE(bucket.TryAcquire(100 * kSecond, 1.0, 2.0));
}

TEST(AdmissionTest, FirstTouchSeedsAFullBucket) {
  AdmissionController::Config config;
  config.tokens_per_sec = 1.0;
  config.burst = 2.0;
  config.max_pending_per_tenant = 0;  // Bucket gate only.
  AdmissionController admission(config);

  // The bucket is seeded full at the tenant's first request time, so a
  // tenant arriving late gets its burst, not burst + elapsed credit.
  const int64_t t0 = 50 * kSecond;
  EXPECT_EQ(admission.Admit("acme", t0), Outcome::kAdmitted);
  EXPECT_EQ(admission.Admit("acme", t0), Outcome::kAdmitted);
  EXPECT_EQ(admission.Admit("acme", t0), Outcome::kShedRateLimited);
  EXPECT_EQ(admission.Admit("acme", t0 + kSecond), Outcome::kAdmitted);
  EXPECT_EQ(admission.Admit("acme", t0 + kSecond), Outcome::kShedRateLimited);
}

TEST(AdmissionTest, PendingBoundShedsWithoutDrainingTheBucket) {
  AdmissionController::Config config;
  config.tokens_per_sec = 1.0;
  config.burst = 10.0;
  config.max_pending_per_tenant = 2;
  AdmissionController admission(config);

  EXPECT_EQ(admission.Admit("acme", 0), Outcome::kAdmitted);
  EXPECT_EQ(admission.Admit("acme", 0), Outcome::kAdmitted);
  EXPECT_EQ(admission.Admit("acme", 0), Outcome::kShedPendingFull);

  auto snapshot = admission.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].first, "acme");
  EXPECT_EQ(snapshot[0].second.pending, 2);
  EXPECT_EQ(snapshot[0].second.shed_pending_full, 1);
  // The pending-full shed did not touch the bucket: 10 - 2 tokens remain.
  EXPECT_DOUBLE_EQ(snapshot[0].second.tokens_available, 8.0);

  admission.OnComplete("acme");
  EXPECT_EQ(admission.Admit("acme", 0), Outcome::kAdmitted);
  EXPECT_EQ(admission.TotalShed(), 1);
}

TEST(AdmissionTest, TenantsAreIsolated) {
  AdmissionController::Config config;
  config.tokens_per_sec = 1.0;
  config.burst = 1.0;
  config.max_pending_per_tenant = 64;
  AdmissionController admission(config);

  EXPECT_EQ(admission.Admit("noisy", 0), Outcome::kAdmitted);
  EXPECT_EQ(admission.Admit("noisy", 0), Outcome::kShedRateLimited);
  // A different tenant's bucket is untouched by the noisy neighbor.
  EXPECT_EQ(admission.Admit("quiet", 0), Outcome::kAdmitted);
}

TEST(AdmissionTest, NonPositiveLimitsDisableTheirGate) {
  AdmissionController::Config config;
  config.tokens_per_sec = 0.0;
  config.max_pending_per_tenant = 0;
  AdmissionController admission(config);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(admission.Admit("acme", 0), Outcome::kAdmitted);
  }
  EXPECT_EQ(admission.TotalShed(), 0);
}

/// One tenant's scripted arrivals: monotonic timestamps plus completions
/// (negative entries release a pending slot before the next arrival).
struct Lane {
  std::string tenant;
  std::vector<int64_t> schedule;  // >= 0: Admit at that time; -1: OnComplete.
};

std::vector<Lane> MakeLanes() {
  std::vector<Lane> lanes;
  for (int t = 0; t < 8; ++t) {
    Lane lane;
    lane.tenant = "tenant-" + std::to_string(t);
    int64_t now = t * 1000;  // Staggered start, nanosecond offsets.
    for (int i = 0; i < 200; ++i) {
      // A mix of bursts (same timestamp), steady arrivals, and completions,
      // all deterministic functions of (t, i).
      now += ((i * 7 + t) % 5) * (kSecond / 100);
      lane.schedule.push_back(now);
      if ((i + t) % 3 == 0) lane.schedule.push_back(-1);
    }
    lanes.push_back(lane);
  }
  return lanes;
}

AdmissionController::Config TightConfig() {
  AdmissionController::Config config;
  config.tokens_per_sec = 40.0;
  config.burst = 5.0;
  config.max_pending_per_tenant = 3;
  return config;
}

/// Replays one lane against `admission`, recording each Admit outcome.
std::vector<Outcome> ReplayLane(AdmissionController* admission,
                                const Lane& lane) {
  std::vector<Outcome> outcomes;
  int pending = 0;
  for (int64_t entry : lane.schedule) {
    if (entry < 0) {
      if (pending > 0) {
        admission->OnComplete(lane.tenant);
        --pending;
      }
      continue;
    }
    Outcome outcome = admission->Admit(lane.tenant, entry);
    if (outcome == Outcome::kAdmitted) ++pending;
    outcomes.push_back(outcome);
  }
  while (pending-- > 0) admission->OnComplete(lane.tenant);
  return outcomes;
}

TEST(AdmissionTest, FixedScheduleIsBitIdenticalAcrossThreadCounts) {
  const std::vector<Lane> lanes = MakeLanes();

  // Reference: sequential replay on a fresh controller.
  std::vector<std::vector<Outcome>> reference(lanes.size());
  {
    AdmissionController admission(TightConfig());
    for (size_t i = 0; i < lanes.size(); ++i) {
      reference[i] = ReplayLane(&admission, lanes[i]);
    }
    // The schedule must exercise both decisions, or this test is vacuous.
    int64_t sheds = admission.TotalShed();
    EXPECT_GT(sheds, 0);
    bool any_admitted = false;
    for (const auto& lane : reference) {
      for (Outcome o : lane) any_admitted |= (o == Outcome::kAdmitted);
    }
    EXPECT_TRUE(any_admitted);
  }

  // Each tenant's lane replays wholly inside one thread (per-tenant
  // timestamps must stay monotonic); lanes race against each other freely.
  for (int threads : {1, 4, 8}) {
    AdmissionController admission(TightConfig());
    std::vector<std::vector<Outcome>> observed(lanes.size());
    std::vector<std::thread> workers;
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        for (size_t i = w; i < lanes.size();
             i += static_cast<size_t>(threads)) {
          observed[i] = ReplayLane(&admission, lanes[i]);
        }
      });
    }
    for (auto& worker : workers) worker.join();
    for (size_t i = 0; i < lanes.size(); ++i) {
      EXPECT_EQ(observed[i], reference[i])
          << "lane " << i << " at " << threads << " threads";
    }
  }
}

TEST(AdmissionDeathTest, OnCompleteWithoutAdmitAborts) {
  AdmissionController admission(AdmissionController::Config{});
  EXPECT_DEATH(admission.OnComplete("ghost"), "");
}

}  // namespace
}  // namespace async
}  // namespace serve
}  // namespace xai
