#include "xai/core/stats.h"


#include <cmath>
#include <gtest/gtest.h>

namespace xai {
namespace {

TEST(StatsTest, MeanVarianceStdDev) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(Variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0}), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median({5, 1, 3}), 3.0);
}

TEST(StatsTest, PearsonPerfectAndAnti) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(StatsTest, SpearmanIsRankBased) {
  // Monotone nonlinear relation: Spearman 1, Pearson < 1.
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {1, 8, 27, 64, 125};
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(a, b), 1.0);
}

TEST(StatsTest, RanksWithTiesAveraged) {
  std::vector<double> r = Ranks({10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(StatsTest, ArgMaxArgMin) {
  std::vector<double> v = {3, 9, 1, 9};
  EXPECT_EQ(ArgMax(v), 1);  // First max.
  EXPECT_EQ(ArgMin(v), 2);
  EXPECT_EQ(ArgMax({}), -1);
}

TEST(StatsTest, ArgSort) {
  std::vector<double> v = {0.3, 0.1, 0.5};
  EXPECT_EQ(ArgSortDescending(v), (std::vector<int>{2, 0, 1}));
  EXPECT_EQ(ArgSortAscending(v), (std::vector<int>{1, 0, 2}));
}

TEST(StatsTest, ArgSortStable) {
  std::vector<double> v = {1, 1, 1};
  EXPECT_EQ(ArgSortDescending(v), (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace xai
