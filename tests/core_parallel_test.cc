#include "xai/core/parallel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "xai/core/rng.h"

namespace xai {
namespace {

// RAII guard so a test never leaks its pool size into the next one.
class ThreadsGuard {
 public:
  ThreadsGuard() : saved_(GetNumThreads()) {}
  ~ThreadsGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadsGuard guard;
  for (int threads : {1, 4, 8}) {
    SetNumThreads(threads);
    const int64_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h = 0;
    ParallelFor(n, /*grain=*/7, [&](int64_t begin, int64_t end, int64_t) {
      for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (int64_t i = 0; i < n; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads;
  }
}

TEST(ParallelForTest, ChunkBoundsMatchGrain) {
  ThreadsGuard guard;
  SetNumThreads(4);
  const int64_t n = 103, grain = 10;
  std::vector<std::pair<int64_t, int64_t>> ranges(11);
  ParallelFor(n, grain, [&](int64_t begin, int64_t end, int64_t chunk) {
    ranges[chunk] = {begin, end};
  });
  for (int64_t c = 0; c < 11; ++c) {
    EXPECT_EQ(ranges[c].first, c * grain);
    EXPECT_EQ(ranges[c].second, std::min<int64_t>(n, (c + 1) * grain));
  }
}

TEST(ParallelForTest, ZeroAndNegativeNAreNoOps) {
  ThreadsGuard guard;
  SetNumThreads(4);
  int calls = 0;
  ParallelFor(0, 8, [&](int64_t, int64_t, int64_t) { ++calls; });
  ParallelFor(-5, 8, [&](int64_t, int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, NSmallerThanGrainIsOneChunk) {
  ThreadsGuard guard;
  SetNumThreads(4);
  std::atomic<int> chunks{0};
  ParallelFor(3, /*grain=*/100, [&](int64_t begin, int64_t end, int64_t c) {
    chunks.fetch_add(1);
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 3);
    EXPECT_EQ(c, 0);
  });
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ParallelForTest, GrainBelowOneIsClamped) {
  ThreadsGuard guard;
  SetNumThreads(2);
  std::atomic<int64_t> sum{0};
  ParallelFor(10, /*grain=*/0, [&](int64_t begin, int64_t end, int64_t) {
    for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelForTest, PropagatesException) {
  ThreadsGuard guard;
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    EXPECT_THROW(
        ParallelFor(100, 1,
                    [&](int64_t begin, int64_t, int64_t) {
                      if (begin == 42) throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<int64_t> sum{0};
    ParallelFor(10, 1, [&](int64_t begin, int64_t end, int64_t) {
      for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ParallelForTest, NestedCallsRunInline) {
  ThreadsGuard guard;
  SetNumThreads(4);
  EXPECT_FALSE(InParallelRegion());
  std::atomic<int64_t> total{0};
  ParallelFor(8, 1, [&](int64_t, int64_t, int64_t) {
    EXPECT_TRUE(InParallelRegion());
    // Nested region: must not deadlock, must still cover all indices.
    ParallelFor(5, 2, [&](int64_t begin, int64_t end, int64_t) {
      EXPECT_TRUE(InParallelRegion());
      for (int64_t i = begin; i < end; ++i) total.fetch_add(i);
    });
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(total.load(), 8 * 10);
}

TEST(ParallelRuntimeTest, SetAndGetNumThreadsRoundTrip) {
  ThreadsGuard guard;
  SetNumThreads(3);
  EXPECT_EQ(GetNumThreads(), 3);
  SetNumThreads(1);
  EXPECT_EQ(GetNumThreads(), 1);
  SetNumThreads(0);  // Clamped.
  EXPECT_EQ(GetNumThreads(), 1);
  SetNumThreads(8);
  EXPECT_EQ(GetNumThreads(), 8);
  EXPECT_GE(HardwareConcurrency(), 1);
}

TEST(ParallelRuntimeTest, PoolSurvivesRepeatedResizing) {
  ThreadsGuard guard;
  for (int round = 0; round < 3; ++round) {
    for (int threads : {1, 2, 8}) {
      SetNumThreads(threads);
      std::atomic<int64_t> sum{0};
      ParallelFor(100, 9, [&](int64_t begin, int64_t end, int64_t) {
        for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
      });
      EXPECT_EQ(sum.load(), 4950);
    }
  }
}

TEST(ParallelReduceTest, OrderedFoldIsBitIdenticalAcrossThreadCounts) {
  ThreadsGuard guard;
  // Summing pathologically scaled values: any change in summation order
  // changes the result, so equality below proves the fold order is fixed.
  const int64_t n = 10000;
  std::vector<double> values(n);
  Rng rng(123);
  for (int64_t i = 0; i < n; ++i)
    values[i] = (rng.Uniform() - 0.5) * std::pow(10.0, i % 30);
  auto sum_at = [&](int threads) {
    SetNumThreads(threads);
    return ParallelReduce(
        n, /*grain=*/64, 0.0,
        [&](int64_t begin, int64_t end, int64_t) {
          double acc = 0.0;
          for (int64_t i = begin; i < end; ++i) acc += values[i];
          return acc;
        },
        [](double acc, const double& partial) { return acc + partial; });
  };
  double serial = sum_at(1);
  EXPECT_EQ(serial, sum_at(2));
  EXPECT_EQ(serial, sum_at(5));
  EXPECT_EQ(serial, sum_at(8));
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit) {
  ThreadsGuard guard;
  SetNumThreads(4);
  double out = ParallelReduce(
      0, 8, 7.5, [](int64_t, int64_t, int64_t) { return 0.0; },
      [](double acc, const double& p) { return acc + p; });
  EXPECT_EQ(out, 7.5);
}

TEST(SplitSeedTest, StreamsAreDistinctAndDeterministic) {
  std::vector<uint64_t> seeds;
  for (uint64_t stream = 0; stream < 1000; ++stream)
    seeds.push_back(SplitSeed(42, stream));
  // Deterministic: same inputs, same stream seeds.
  for (uint64_t stream = 0; stream < 1000; ++stream)
    EXPECT_EQ(seeds[stream], SplitSeed(42, stream));
  // Distinct across streams (collisions would correlate permutations).
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  // And across base seeds.
  EXPECT_NE(SplitSeed(42, 0), SplitSeed(43, 0));
}

}  // namespace
}  // namespace xai
