// End-to-end determinism of the parallel runtime: every parallelized
// explainer, valuation method, and model must produce bit-identical output
// at 1 thread and at 8 threads for a fixed seed. EXPECT_EQ on double
// vectors is intentional — these are exact-equality contracts, not
// tolerance checks.

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "xai/core/parallel.h"
#include "xai/data/synthetic.h"
#include "xai/explain/lime.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/kernel_shap.h"
#include "xai/explain/shapley/sampling_shapley.h"
#include "xai/explain/shapley/tree_shap.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/gbdt.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/random_forest.h"
#include "xai/model/tree_ensemble_view.h"
#include "xai/valuation/data_shapley.h"
#include "xai/valuation/loo.h"

namespace xai {
namespace {

class ThreadsGuard {
 public:
  ThreadsGuard() : saved_(GetNumThreads()) {}
  ~ThreadsGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};

// Runs `workload` at 1 and at 8 threads and returns the two results.
template <typename Fn>
auto AtOneAndEightThreads(const Fn& workload) {
  SetNumThreads(1);
  auto serial = workload();
  SetNumThreads(8);
  auto parallel = workload();
  return std::pair(std::move(serial), std::move(parallel));
}

TEST(ParallelDeterminismTest, KernelShap) {
  ThreadsGuard guard;
  auto [data, gt] = MakeLogisticData(200, 8, 3);
  (void)gt;
  auto model = LogisticRegressionModel::Train(data).ValueOrDie();
  auto [serial, parallel] = AtOneAndEightThreads([&] {
    MarginalFeatureGame game(AsPredictFn(model), data.Row(0), data.x(), 16);
    Rng rng(7);
    KernelShapConfig config;
    config.coalition_budget = 128;
    return KernelShap(game, config, &rng).ValueOrDie();
  });
  EXPECT_EQ(serial.attributions, parallel.attributions);
  EXPECT_EQ(serial.base_value, parallel.base_value);
}

TEST(ParallelDeterminismTest, SamplingShapley) {
  ThreadsGuard guard;
  auto [data, gt] = MakeLogisticData(200, 8, 3);
  (void)gt;
  auto model = LogisticRegressionModel::Train(data).ValueOrDie();
  auto [serial, parallel] = AtOneAndEightThreads([&] {
    MarginalFeatureGame game(AsPredictFn(model), data.Row(0), data.x(), 16);
    Rng rng(7);
    return SamplingShapley(game, /*permutations=*/50, &rng);
  });
  EXPECT_EQ(serial.values, parallel.values);
  EXPECT_EQ(serial.std_errors, parallel.std_errors);
}

TEST(ParallelDeterminismTest, ExactShapleyAndBanzhaf) {
  ThreadsGuard guard;
  auto [data, gt] = MakeLogisticData(200, 10, 3);
  (void)gt;
  auto model = LogisticRegressionModel::Train(data).ValueOrDie();
  auto [serial, parallel] = AtOneAndEightThreads([&] {
    MarginalFeatureGame game(AsPredictFn(model), data.Row(0), data.x(), 8);
    Vector shapley = ExactShapley(game).ValueOrDie();
    Vector banzhaf = ExactBanzhaf(game).ValueOrDie();
    return std::pair(shapley, banzhaf);
  });
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
}

TEST(ParallelDeterminismTest, TreeShap) {
  ThreadsGuard guard;
  Dataset train = MakeLoans(400, 1);
  GbdtConfig config;
  config.n_trees = 40;
  auto model = GbdtModel::Train(train, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  auto [serial, parallel] = AtOneAndEightThreads(
      [&] { return TreeShap(view, train.Row(3)); });
  EXPECT_EQ(serial.attributions, parallel.attributions);
  EXPECT_EQ(serial.base_value, parallel.base_value);
}

TEST(ParallelDeterminismTest, Lime) {
  ThreadsGuard guard;
  Dataset train = MakeLoans(500, 1);
  GbdtConfig mc;
  mc.n_trees = 20;
  auto model = GbdtModel::Train(train, mc).ValueOrDie();
  PredictFn f = AsPredictFn(model);
  LimeConfig config;
  config.num_samples = 300;
  config.top_k = 3;  // Exercises the parallel forward-selection path.
  LimeExplainer lime(train, config);
  auto [serial, parallel] = AtOneAndEightThreads(
      [&] { return lime.Explain(f, train.Row(11), 99).ValueOrDie(); });
  EXPECT_EQ(serial.attributions, parallel.attributions);
  EXPECT_EQ(serial.intercept, parallel.intercept);
  EXPECT_EQ(serial.local_r2, parallel.local_r2);
}

TEST(ParallelDeterminismTest, LimeStability) {
  ThreadsGuard guard;
  Dataset train = MakeLoans(400, 1);
  GbdtConfig mc;
  mc.n_trees = 15;
  auto model = GbdtModel::Train(train, mc).ValueOrDie();
  PredictFn f = AsPredictFn(model);
  LimeConfig config;
  config.num_samples = 200;
  LimeExplainer lime(train, config);
  auto [serial, parallel] = AtOneAndEightThreads([&] {
    return EvaluateLimeStability(lime, f, train.Row(5), /*runs=*/4,
                                 /*top_k=*/3, 17)
        .ValueOrDie();
  });
  EXPECT_EQ(serial.coefficient_stddev, parallel.coefficient_stddev);
  EXPECT_EQ(serial.jaccard_top_k, parallel.jaccard_top_k);
  EXPECT_EQ(serial.mean_r2, parallel.mean_r2);
}

TEST(ParallelDeterminismTest, TmcDataShapleyAndLoo) {
  ThreadsGuard guard;
  Dataset pool = MakeBlobs(160, 4, 2, 0.9, 3);
  auto [train, valid] = pool.TrainTestSplit(0.5, 4);
  UtilityFn utility = MakeKnnAccuracyUtility(train, valid, 5);
  int n = train.num_rows();
  auto [serial, parallel] = AtOneAndEightThreads([&] {
    TmcConfig config;
    config.max_permutations = 8;
    config.truncation_tolerance = 0.05;
    TmcResult tmc = TmcDataShapley(n, utility, config);
    Vector loo = LeaveOneOutValues(n, utility);
    return std::pair(tmc, loo);
  });
  EXPECT_EQ(serial.first.values, parallel.first.values);
  EXPECT_EQ(serial.first.utility_calls, parallel.first.utility_calls);
  EXPECT_EQ(serial.first.truncation_fraction,
            parallel.first.truncation_fraction);
  EXPECT_EQ(serial.second, parallel.second);
}

TEST(ParallelDeterminismTest, RandomForestTrainAndPredictBatch) {
  ThreadsGuard guard;
  Dataset train = MakeLoans(300, 1);
  auto [serial, parallel] = AtOneAndEightThreads([&] {
    RandomForestConfig config;
    config.n_trees = 30;
    auto model = RandomForestModel::Train(train, config).ValueOrDie();
    return model.PredictBatch(train.x());
  });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelDeterminismTest, PredictBatchMatchesRowwisePredict) {
  ThreadsGuard guard;
  SetNumThreads(8);
  Dataset train = MakeLoans(300, 1);
  RandomForestConfig rf_config;
  rf_config.n_trees = 20;
  auto rf = RandomForestModel::Train(train, rf_config).ValueOrDie();
  GbdtConfig gb_config;
  gb_config.n_trees = 20;
  auto gb = GbdtModel::Train(train, gb_config).ValueOrDie();
  Vector rf_batch = rf.PredictBatch(train.x());
  Vector gb_batch = gb.PredictBatch(train.x());
  for (int i = 0; i < train.num_rows(); ++i) {
    EXPECT_EQ(rf_batch[i], rf.Predict(train.Row(i)));
    EXPECT_EQ(gb_batch[i], gb.Predict(train.Row(i)));
  }
  TreeEnsembleView view = TreeEnsembleView::Of(gb);
  Vector margins = view.MarginBatch(train.x());
  for (int i = 0; i < train.num_rows(); ++i)
    EXPECT_EQ(margins[i], view.Margin(train.Row(i)));
}

}  // namespace
}  // namespace xai
