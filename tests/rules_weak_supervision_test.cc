#include "xai/rules/weak_supervision.h"

#include <gtest/gtest.h>

#include <cmath>

#include "xai/core/rng.h"
#include "xai/core/stats.h"
#include "xai/data/synthetic.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/metrics.h"

namespace xai {
namespace {

// Synthetic votes with known per-LF accuracies and coverages over known
// latent labels.
struct VoteWorld {
  Matrix votes;
  Vector labels;
  Vector true_accuracies;
};

VoteWorld MakeVotes(int n, const Vector& accuracies,
                    const Vector& coverages, uint64_t seed) {
  Rng rng(seed);
  int m = static_cast<int>(accuracies.size());
  VoteWorld world;
  world.votes = Matrix(n, m);
  world.labels.resize(n);
  world.true_accuracies = accuracies;
  for (int i = 0; i < n; ++i) {
    int y = rng.Bernoulli(0.5) ? 1 : 0;
    world.labels[i] = y;
    for (int j = 0; j < m; ++j) {
      if (!rng.Bernoulli(coverages[j])) continue;  // Abstain.
      bool correct = rng.Bernoulli(accuracies[j]);
      int vote = correct == (y == 1) ? +1 : -1;
      world.votes(i, j) = vote;
    }
  }
  return world;
}

TEST(LabelModelTest, RecoversKnownAccuracies) {
  VoteWorld world = MakeVotes(4000, {0.9, 0.75, 0.6, 0.85},
                              {0.8, 0.7, 0.9, 0.5}, 1);
  auto model = LabelModel::Fit(world.votes).ValueOrDie();
  for (int j = 0; j < 4; ++j)
    EXPECT_NEAR(model.accuracies()[j], world.true_accuracies[j], 0.05)
        << "lf " << j;
  EXPECT_NEAR(model.prior_positive(), 0.5, 0.05);
}

TEST(LabelModelTest, CoverageEstimatedExactly) {
  VoteWorld world = MakeVotes(3000, {0.8, 0.8}, {0.9, 0.3}, 2);
  auto model = LabelModel::Fit(world.votes).ValueOrDie();
  EXPECT_NEAR(model.coverages()[0], 0.9, 0.03);
  EXPECT_NEAR(model.coverages()[1], 0.3, 0.03);
}

TEST(LabelModelTest, PosteriorBeatsMajorityVote) {
  // Heterogeneous accuracies: weighting by estimated accuracy must beat
  // unweighted majority vote.
  VoteWorld world = MakeVotes(3000, {0.95, 0.55, 0.55, 0.55, 0.55},
                              {1.0, 1.0, 1.0, 1.0, 1.0}, 3);
  auto model = LabelModel::Fit(world.votes).ValueOrDie();
  Vector posterior = model.PosteriorPositiveAll(world.votes);

  int model_correct = 0, majority_correct = 0;
  for (int i = 0; i < world.votes.rows(); ++i) {
    int pred = posterior[i] >= 0.5 ? 1 : 0;
    if (pred == static_cast<int>(world.labels[i])) ++model_correct;
    double vote_sum = 0;
    for (int j = 0; j < world.votes.cols(); ++j)
      vote_sum += world.votes(i, j);
    int maj = vote_sum >= 0 ? 1 : 0;
    if (maj == static_cast<int>(world.labels[i])) ++majority_correct;
  }
  EXPECT_GT(model_correct, majority_correct);
  // The strong LF alone achieves 0.95: the model should get close.
  EXPECT_GT(static_cast<double>(model_correct) / world.votes.rows(), 0.9);
}

TEST(LabelModelTest, AbstainsCarryNoInformation) {
  auto model =
      LabelModel::Fit(Matrix({{1, 0}, {-1, 0}, {1, 0}, {-1, 1}}))
          .ValueOrDie();
  double p = model.PosteriorPositive({0.0, 0.0});
  EXPECT_NEAR(p, model.prior_positive(), 1e-9);
}

TEST(LabelModelTest, RejectsBadVotes) {
  EXPECT_FALSE(LabelModel::Fit(Matrix(0, 0)).ok());
  EXPECT_FALSE(LabelModel::Fit(Matrix({{2.0}})).ok());
}

TEST(ApplyLfsTest, MatrixMatchesFunctions) {
  Dataset d = MakeLoans(50, 4);
  int credit = d.schema().FeatureIndex("credit_score");
  std::vector<LabelingFunction> lfs = {
      [credit](const Vector& x) { return x[credit] > 700 ? +1 : 0; },
      [credit](const Vector& x) { return x[credit] < 550 ? -1 : 0; },
  };
  Matrix votes = ApplyLabelingFunctions(lfs, d);
  for (int i = 0; i < d.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(votes(i, 0), d.At(i, credit) > 700 ? 1.0 : 0.0);
    EXPECT_DOUBLE_EQ(votes(i, 1), d.At(i, credit) < 550 ? -1.0 : 0.0);
  }
}

TEST(GenerateStumpLfsTest, StumpsClearTheOddsRatioBar) {
  Dataset labeled = MakeLoans(200, 5);
  double min_odds_ratio = 3.0;
  auto lfs = GenerateStumpLfs(labeled, 2, min_odds_ratio).ValueOrDie();
  ASSERT_FALSE(lfs.empty());
  double base_pos = Mean(labeled.y());
  auto bar = [&](double base) {
    double logit =
        std::log(base / (1.0 - base)) + std::log(min_odds_ratio);
    return 1.0 / (1.0 + std::exp(-logit));
  };
  for (const auto& lf : lfs) {
    int covered = 0, correct = 0, vote_sign = 0;
    for (int i = 0; i < labeled.num_rows(); ++i) {
      int vote = lf(labeled.Row(i));
      if (vote == 0) continue;
      vote_sign = vote;
      ++covered;
      int implied = vote > 0 ? 1 : 0;
      if (implied == static_cast<int>(labeled.Label(i))) ++correct;
    }
    ASSERT_GT(covered, 0);
    // A useful labeling function mostly abstains.
    EXPECT_LE(covered, 0.6 * labeled.num_rows() + 1);
    double required = vote_sign > 0 ? bar(base_pos) : bar(1.0 - base_pos);
    EXPECT_GE(static_cast<double>(correct) / covered, required - 1e-9);
  }
}

TEST(GenerateStumpLfsTest, BothVoteSignsRepresented) {
  // The per-sign selection must keep minority-class functions alive on
  // imbalanced data.
  Dataset labeled = MakeLoans(300, 6);
  auto lfs = GenerateStumpLfs(labeled, 2, 2.0).ValueOrDie();
  bool has_pos = false, has_neg = false;
  for (const auto& lf : lfs) {
    for (int i = 0; i < labeled.num_rows(); ++i) {
      int vote = lf(labeled.Row(i));
      has_pos = has_pos || vote == +1;
      has_neg = has_neg || vote == -1;
    }
  }
  EXPECT_TRUE(has_pos);
  EXPECT_TRUE(has_neg);
}

TEST(GenerateStumpLfsTest, RejectsBadParameters) {
  Dataset labeled = MakeLoans(100, 6);
  EXPECT_FALSE(GenerateStumpLfs(labeled, 0, 3.0).ok());
  EXPECT_FALSE(GenerateStumpLfs(labeled, 2, 1.0).ok());  // Odds ratio <= 1.
  Dataset tiny = labeled.Subset({0, 1, 2});
  EXPECT_FALSE(GenerateStumpLfs(tiny, 2, 3.0).ok());
}

TEST(WeakSupervisionEndToEnd, SnorkelPipelineLabelsUnlabeledData) {
  // The Snuba/Snorkel story: synthesize LFs from a tiny labeled set, apply
  // them to a large unlabeled pool, fit the label model, and train a
  // *noise-aware* discriminative model on the probabilistic labels (each
  // row enters once per class, weighted by its posterior). Threshold
  // stumps are good labeling functions when individual features are
  // informative, so the workload is two overlapping Gaussian classes.
  Dataset pool = MakeBlobs(2500, 4, 2, 1.5, 7);
  auto [rest, tiny] = pool.TrainTestSplit(0.04, 8);  // 100 labeled rows.
  auto [unlabeled, test] = rest.TrainTestSplit(0.25, 9);

  auto lfs = GenerateStumpLfs(tiny, 2, 3.0).ValueOrDie();
  ASSERT_GE(lfs.size(), 4u);
  Matrix votes = ApplyLabelingFunctions(lfs, unlabeled);
  auto label_model = LabelModel::Fit(votes).ValueOrDie();
  Vector soft = label_model.PosteriorPositiveAll(votes);

  // Weak-label quality on rows where at least one LF voted.
  int covered = 0, agree = 0;
  for (int i = 0; i < unlabeled.num_rows(); ++i) {
    bool any = false;
    for (int j = 0; j < votes.cols(); ++j) any = any || votes(i, j) != 0;
    if (!any) continue;
    ++covered;
    if ((soft[i] >= 0.5 ? 1.0 : 0.0) == unlabeled.Label(i)) ++agree;
  }
  ASSERT_GT(covered, 1000);
  double agreement = static_cast<double>(agree) / covered;
  EXPECT_GT(agreement, 0.85);

  // Noise-aware training on the *confident* rows (standard practice:
  // abstain-heavy rows carry p ~ 0.5 and only add noise): each kept row
  // enters once per class, weighted by its posterior.
  int n = unlabeled.num_rows(), d = unlabeled.num_features();
  std::vector<int> confident;
  for (int i = 0; i < n; ++i)
    if (std::fabs(soft[i] - 0.5) >= 0.15) confident.push_back(i);
  ASSERT_GT(confident.size(), 500u);
  int c = static_cast<int>(confident.size());
  Matrix x2(2 * c, d);
  Vector y2(2 * c);
  LogisticRegressionConfig config;
  config.sample_weights.resize(2 * c);
  for (int k = 0; k < c; ++k) {
    int i = confident[k];
    x2.SetRow(k, unlabeled.Row(i));
    x2.SetRow(c + k, unlabeled.Row(i));
    y2[k] = 1.0;
    y2[c + k] = 0.0;
    config.sample_weights[k] = soft[i];
    config.sample_weights[c + k] = 1.0 - soft[i];
  }
  auto weak_model =
      LogisticRegressionModel::Train(x2, y2, config).ValueOrDie();
  double weak_acc = EvaluateAccuracy(weak_model, test);
  EXPECT_GT(weak_acc, 0.85);  // Far above the 0.5 no-label baseline.
}

}  // namespace
}  // namespace xai
