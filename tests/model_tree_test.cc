#include "xai/model/decision_tree.h"

#include <gtest/gtest.h>

#include <numeric>

#include "xai/data/synthetic.h"
#include "xai/model/metrics.h"

namespace xai {
namespace {

// A dataset with a perfect single split at x <= 0.5.
Dataset StepDataset() {
  Schema schema;
  schema.features = {FeatureSpec::Numeric("x"),
                     FeatureSpec::Numeric("noise")};
  Matrix x = {{0.1, 5}, {0.2, 3}, {0.3, 9}, {0.4, 1},
              {0.6, 2}, {0.7, 8}, {0.8, 4}, {0.9, 6}};
  Vector y = {0, 0, 0, 0, 1, 1, 1, 1};
  return Dataset(schema, x, y);
}

TEST(DecisionTreeTest, FindsThePerfectSplit) {
  auto model = DecisionTreeModel::Train(StepDataset()).ValueOrDie();
  const Tree& tree = model.tree();
  ASSERT_FALSE(tree.nodes()[0].IsLeaf());
  EXPECT_EQ(tree.nodes()[0].feature, 0);
  EXPECT_NEAR(tree.nodes()[0].threshold, 0.5, 0.11);
  EXPECT_DOUBLE_EQ(model.Predict({0.2, 7.0}), 0.0);
  EXPECT_DOUBLE_EQ(model.Predict({0.75, 7.0}), 1.0);
}

TEST(DecisionTreeTest, CoverCountsTrackSamples) {
  auto model = DecisionTreeModel::Train(StepDataset()).ValueOrDie();
  const Tree& tree = model.tree();
  EXPECT_DOUBLE_EQ(tree.nodes()[0].cover, 8.0);
  // Children covers sum to parent cover.
  const TreeNode& root = tree.nodes()[0];
  EXPECT_DOUBLE_EQ(tree.nodes()[root.left].cover +
                       tree.nodes()[root.right].cover,
                   root.cover);
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  Dataset d = MakeLoans(500, 1);
  CartConfig config;
  config.max_depth = 3;
  auto model = DecisionTreeModel::Train(d, config).ValueOrDie();
  EXPECT_LE(model.tree().Depth(), 3);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  Dataset d = MakeLoans(300, 2);
  CartConfig config;
  config.min_samples_leaf = 20;
  auto model = DecisionTreeModel::Train(d, config).ValueOrDie();
  for (const TreeNode& node : model.tree().nodes())
    if (node.IsLeaf()) {
      EXPECT_GE(node.cover, 20.0);
    }
}

TEST(DecisionTreeTest, PureDataGivesSingleLeaf) {
  Schema schema;
  schema.features = {FeatureSpec::Numeric("x")};
  Matrix x = {{1}, {2}, {3}};
  Dataset d(schema, x, {1, 1, 1});
  auto model = DecisionTreeModel::Train(d).ValueOrDie();
  EXPECT_EQ(model.tree().num_nodes(), 1);
  EXPECT_DOUBLE_EQ(model.Predict({5.0}), 1.0);
}

TEST(DecisionTreeTest, RegressionTreeFitsPiecewiseConstant) {
  Schema schema;
  schema.features = {FeatureSpec::Numeric("x")};
  schema.task = TaskType::kRegression;
  Matrix x(40, 1);
  Vector y(40);
  for (int i = 0; i < 40; ++i) {
    x(i, 0) = i;
    y[i] = i < 20 ? 3.0 : 7.0;
  }
  Dataset d(schema, x, y);
  auto model = DecisionTreeModel::Train(d).ValueOrDie();
  EXPECT_DOUBLE_EQ(model.Predict({5.0}), 3.0);
  EXPECT_DOUBLE_EQ(model.Predict({30.0}), 7.0);
}

TEST(DecisionTreeTest, RejectsNonBinaryClassificationLabels) {
  Schema schema;
  schema.features = {FeatureSpec::Numeric("x")};
  Matrix x = {{1}, {2}};
  EXPECT_FALSE(
      DecisionTreeModel::Train(x, {0.0, 2.0}, TaskType::kClassification)
          .ok());
}

TEST(DecisionTreeTest, AccuracyOnLoansReasonable) {
  Dataset d = MakeLoans(2000, 9);
  auto [train, test] = d.TrainTestSplit(0.3, 1);
  CartConfig config;
  config.max_depth = 6;
  auto model = DecisionTreeModel::Train(train, config).ValueOrDie();
  EXPECT_GT(EvaluateAccuracy(model, test), 0.7);
}

TEST(TreeStructureTest, LeafIndexRouting) {
  auto model = DecisionTreeModel::Train(StepDataset()).ValueOrDie();
  const Tree& tree = model.tree();
  int leaf_low = tree.LeafIndexOf({0.1, 0.0});
  int leaf_high = tree.LeafIndexOf({0.9, 0.0});
  EXPECT_NE(leaf_low, leaf_high);
  EXPECT_TRUE(tree.nodes()[leaf_low].IsLeaf());
  EXPECT_EQ(tree.NumLeaves(), 2);
}

TEST(CartBuilderTest, FeatureSubsamplingStillSplits) {
  Dataset d = MakeLoans(400, 4);
  CartConfig config;
  config.max_features = 2;
  Rng rng(3);
  std::vector<int> rows(d.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  Tree tree = BuildCartTree(d.x(), d.y(), rows, config, &rng);
  EXPECT_GT(tree.num_nodes(), 1);
}

TEST(CartBuilderTest, DuplicateRowsHandled) {
  // Bootstrap samples repeat rows; builder must not crash and cover counts
  // must count duplicates.
  Dataset d = StepDataset();
  std::vector<int> rows = {0, 0, 0, 4, 4, 4};
  CartConfig config;
  Rng rng(4);
  Tree tree = BuildCartTree(d.x(), d.y(), rows, config, &rng);
  EXPECT_DOUBLE_EQ(tree.nodes()[0].cover, 6.0);
}

}  // namespace
}  // namespace xai
