#include "xai/core/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "xai/core/parallel.h"
#include "xai/core/telemetry.h"
#include "xai/core/timer.h"

namespace xai {
namespace telemetry {
namespace {

// Whether span events exist at all in this build; most assertions about
// recorded events are gated on it so the suite also passes (vacuously for
// those parts) under -DXAI_TELEMETRY=0.
constexpr bool kCompiled = XAI_TELEMETRY != 0;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    SetTraceSampleRate(1.0);
    // Reset clears counters, histograms, and all trace buffers.
    Registry::Global().Reset();
  }

  void TearDown() override {
    SetTraceSampleRate(1.0);
    SetNumThreads(1);
  }

  static std::vector<TraceEvent> Collect() {
    std::vector<TraceEvent> events;
    internal::CollectTraceEvents(&events);
    return events;
  }
};

TEST_F(TraceTest, ContextInstallAndRestoreNests) {
  EXPECT_EQ(CurrentTraceContext().trace_id, 0u);
  {
    ScopedTraceContext outer(TraceContext{7, 70, true});
    EXPECT_EQ(CurrentTraceContext().trace_id, 7u);
    EXPECT_EQ(CurrentTraceContext().span_id, 70u);
    {
      ScopedTraceContext inner(TraceContext{8, 80, false});
      EXPECT_EQ(CurrentTraceContext().trace_id, 8u);
      EXPECT_FALSE(CurrentTraceContext().sampled);
    }
    EXPECT_EQ(CurrentTraceContext().trace_id, 7u);
    EXPECT_EQ(CurrentTraceContext().span_id, 70u);
  }
  EXPECT_EQ(CurrentTraceContext().trace_id, 0u);
}

TEST_F(TraceTest, BindTraceContextCarriesContextToAForeignThread) {
  std::function<void()> bound;
  uint64_t seen_on_thread = 1;
  {
    ScopedTraceContext scope(TraceContext{1234, 12, true});
    bound = BindTraceContext(
        [&] { seen_on_thread = CurrentTraceContext().trace_id; });
  }
  // The capturing scope is gone; run the bound task on a thread that never
  // had any context installed — the deferred-execution contract the async
  // serving layer depends on.
  std::thread runner([&] {
    EXPECT_EQ(CurrentTraceContext().trace_id, 0u);
    bound();
    // The wrapper restores the thread's previous (empty) context.
    EXPECT_EQ(CurrentTraceContext().trace_id, 0u);
  });
  runner.join();
  EXPECT_EQ(seen_on_thread, 1234u);

  // The explicit-context overload binds a context the caller never
  // installed (e.g. one riding in a job struct).
  uint64_t seen_explicit = 0;
  BindTraceContext(TraceContext{77, 7, false}, [&] {
    seen_explicit = CurrentTraceContext().trace_id;
  })();
  EXPECT_EQ(seen_explicit, 77u);
  EXPECT_EQ(CurrentTraceContext().trace_id, 0u);
}

TEST_F(TraceTest, NextSpanIdIsUniqueAndNonZero) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t id = NextSpanId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST_F(TraceTest, SpansInheritContextAndParentLink) {
  if (!kCompiled) GTEST_SKIP() << "built with XAI_TELEMETRY=0";
  {
    ScopedTraceContext ctx(TraceContext{42, 100, true});
    XAI_SPAN("test/outer");
    { XAI_SPAN("test/inner"); }
  }
  { XAI_SPAN("test/flat"); }  // Outside any context: zeroed ids.

  std::vector<TraceEvent> events = Collect();
  ASSERT_EQ(events.size(), 3u);
  // Destruction order: inner closes first.
  const TraceEvent* inner = nullptr;
  const TraceEvent* outer = nullptr;
  const TraceEvent* flat = nullptr;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "test/inner") inner = &e;
    if (std::string(e.name) == "test/outer") outer = &e;
    if (std::string(e.name) == "test/flat") flat = &e;
  }
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(flat, nullptr);

  EXPECT_EQ(outer->trace_id, 42u);
  EXPECT_EQ(outer->parent_span_id, 100u);  // The installed context's span.
  EXPECT_NE(outer->span_id, 0u);

  EXPECT_EQ(inner->trace_id, 42u);
  EXPECT_EQ(inner->parent_span_id, outer->span_id);
  EXPECT_NE(inner->span_id, outer->span_id);

  EXPECT_EQ(flat->trace_id, 0u);
  EXPECT_EQ(flat->span_id, 0u);
  EXPECT_EQ(flat->parent_span_id, 0u);
}

// Satellite: cross-thread propagation. Spans inside ParallelFor chunks at
// 1/4/8 threads all carry the parent request's trace_id, and the reduction
// result is bit-identical across thread counts.
TEST_F(TraceTest, ParallelForPropagatesContextAcrossThreadCounts) {
  constexpr int64_t kN = 64;
  constexpr int64_t kGrain = 4;
  double reference = 0.0;

  for (int threads : {1, 4, 8}) {
    SetNumThreads(threads);
    Registry::Global().Reset();

    double sum = 0.0;
    {
      ScopedTraceContext ctx(TraceContext{99, 990, true});
      sum = ParallelReduce(
          kN, kGrain, 0.0,
          [](int64_t begin, int64_t end, int64_t /*chunk*/) {
            XAI_SPAN("test/chunk");
            double s = 0.0;
            for (int64_t i = begin; i < end; ++i)
              s += static_cast<double>(i) * 1.25;
            return s;
          },
          [](double acc, const double& p) { return acc + p; });
    }

    if (threads == 1)
      reference = sum;
    else
      EXPECT_EQ(sum, reference) << "thread count changed the result";

    if (kCompiled) {
      // Spans nest request -> parallel/drain (one per participating
      // worker) -> test/chunk: chunk spans parent to their worker's drain
      // span, and every drain span parents to the installed context.
      std::vector<TraceEvent> events = Collect();
      std::set<uint64_t> drain_ids;
      for (const TraceEvent& e : events) {
        if (std::string(e.name) != "parallel/drain") continue;
        EXPECT_EQ(e.trace_id, 99u);
        EXPECT_EQ(e.parent_span_id, 990u);
        drain_ids.insert(e.span_id);
      }
      int chunk_spans = 0;
      for (const TraceEvent& e : events) {
        if (std::string(e.name) != "test/chunk") continue;
        ++chunk_spans;
        EXPECT_EQ(e.trace_id, 99u)
            << "chunk span lost the request context at " << threads
            << " threads";
        // Inline execution (1 thread / nested) has no drain span; chunks
        // then parent straight to the installed context.
        EXPECT_TRUE(drain_ids.count(e.parent_span_id) ||
                    e.parent_span_id == 990u)
            << "chunk span not linked under the request at " << threads
            << " threads";
      }
      EXPECT_EQ(chunk_spans, kN / kGrain) << "at " << threads << " threads";
    }
  }
}

TEST_F(TraceTest, WorkerContextDoesNotLeakAcrossRegions) {
  if (!kCompiled) GTEST_SKIP() << "built with XAI_TELEMETRY=0";
  SetNumThreads(4);
  {
    ScopedTraceContext ctx(TraceContext{5, 50, true});
    ParallelFor(16, 1, [](int64_t, int64_t, int64_t) {
      XAI_SPAN("test/traced_region");
    });
  }
  // A later region with no installed context must record zeroed ids: the
  // workers' adopted context is scoped to the region, not sticky.
  ParallelFor(16, 1, [](int64_t, int64_t, int64_t) {
    XAI_SPAN("test/untraced_region");
  });

  for (const TraceEvent& e : Collect()) {
    if (std::string(e.name) == "test/traced_region") {
      EXPECT_EQ(e.trace_id, 5u);
    }
    if (std::string(e.name) == "test/untraced_region") {
      EXPECT_EQ(e.trace_id, 0u);
    }
  }
}

TEST_F(TraceTest, SampleTraceIsDeterministicAndRateRespecting) {
  SetTraceSampleRate(0.5);
  int sampled = 0;
  for (uint64_t id = 1; id <= 2000; ++id) {
    const bool first = SampleTrace(id);
    EXPECT_EQ(first, SampleTrace(id)) << "non-deterministic for id " << id;
    if (first) ++sampled;
  }
  // Hash-based thinning at rate 0.5 over 2000 ids: comfortably wide bounds.
  EXPECT_GT(sampled, 800);
  EXPECT_LT(sampled, 1200);

  SetTraceSampleRate(0.0);
  EXPECT_FALSE(SampleTrace(123));
  SetTraceSampleRate(1.0);
  EXPECT_TRUE(SampleTrace(123));
}

TEST_F(TraceTest, UnsampledContextSkipsBufferButFeedsHistogram) {
  if (!kCompiled) GTEST_SKIP() << "built with XAI_TELEMETRY=0";
  {
    ScopedTraceContext ctx(TraceContext{11, 110, /*sampled=*/false});
    XAI_SPAN("test/unsampled");
  }
  // One sampled span so the collection below is legitimately non-empty
  // (an empty collect right after a clearing Reset trips the double-export
  // guard by design).
  { XAI_SPAN("test/armed"); }
  for (const TraceEvent& e : Collect())
    EXPECT_STRNE(e.name, "test/unsampled");
  // Sampling thins the event stream, never the metrics.
  EXPECT_EQ(Registry::Global().GetHistogram("test/unsampled")->Count(), 1);
}

TEST_F(TraceTest, RecordRequestSpanTailRetention) {
  if (!kCompiled) GTEST_SKIP() << "built with XAI_TELEMETRY=0";
  const TraceContext unsampled{21, 210, /*sampled=*/false};

  // Not retained: unsampled and not forced.
  RecordRequestSpan("test/request_fast", unsampled, 210, 0, 0, 1000,
                    /*force_retain=*/false);
  // Retained: unsampled but slow/degraded — the tail-sampling contract.
  RecordRequestSpan("test/request_slow", unsampled, 211, 0, 0, 2000,
                    /*force_retain=*/true);
  // Sampled: lands in the normal thread buffer.
  RecordRequestSpan("test/request_sampled", TraceContext{22, 220, true},
                    220, 0, 0, 3000, /*force_retain=*/false);

  std::vector<TraceEvent> events = Collect();
  auto has = [&](const char* name) {
    return std::any_of(events.begin(), events.end(), [&](const TraceEvent& e) {
      return std::string(e.name) == name;
    });
  };
  EXPECT_FALSE(has("test/request_fast"));
  EXPECT_TRUE(has("test/request_slow"));
  EXPECT_TRUE(has("test/request_sampled"));
  // Histograms saw all three either way.
  EXPECT_EQ(Registry::Global().GetHistogram("test/request_fast")->Count(), 1);
}

TEST_F(TraceTest, DroppedEventsAreCountedAndExported) {
  if (!kCompiled) GTEST_SKIP() << "built with XAI_TELEMETRY=0";
  const TraceStats before = internal::GetTraceStats();
  ASSERT_GT(before.buffer_capacity, 0u);
  // Overflow this thread's buffer deliberately.
  const int64_t to_record = before.buffer_capacity + 100;
  for (int64_t i = 0; i < to_record; ++i) {
    XAI_SPAN("test/flood");
  }
  const TraceStats after = internal::GetTraceStats();
  EXPECT_GE(after.dropped_events, 100);
  // Every span still reached the histogram.
  EXPECT_EQ(Registry::Global().GetHistogram("test/flood")->Count(),
            to_record);
  // The export header surfaces the drop count and capacity.
  std::ostringstream os;
  Registry::Global().WriteChromeTrace(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"dropped_events\":"), std::string::npos);
  EXPECT_NE(trace.find("\"buffer_capacity_per_thread\":"),
            std::string::npos);
  // And the human-readable summary mentions it.
  EXPECT_NE(SummaryLine().find("dropped_events="), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceCarriesCausalIds) {
  if (!kCompiled) GTEST_SKIP() << "built with XAI_TELEMETRY=0";
  {
    ScopedTraceContext ctx(TraceContext{1234, 10, true});
    XAI_SPAN("test/linked");
  }
  std::ostringstream os;
  Registry::Global().WriteChromeTrace(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"trace_id\":\"1234\""), std::string::npos);
  EXPECT_NE(trace.find("\"parent_span_id\":\"10\""), std::string::npos);
}

TEST_F(TraceTest, ClearResetsDropCounters) {
  if (!kCompiled) GTEST_SKIP() << "built with XAI_TELEMETRY=0";
  const TraceStats stats = internal::GetTraceStats();
  for (int64_t i = 0; i < stats.buffer_capacity + 10; ++i) {
    XAI_SPAN("test/flood2");
  }
  EXPECT_GT(internal::GetTraceStats().dropped_events, 0);
  Registry::Global().Reset();
  { XAI_SPAN("test/after_reset"); }  // Re-arm: collecting needs an event.
  EXPECT_EQ(internal::GetTraceStats().dropped_events, 0);
}

// Satellite: double export dies instead of silently writing empty output.
using TraceDeathTest = TraceTest;

TEST_F(TraceDeathTest, CollectAfterClearDies) {
  if (!kCompiled) GTEST_SKIP() << "built with XAI_TELEMETRY=0";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  { XAI_SPAN("test/one_span"); }
  EXPECT_DEATH(
      {
        internal::ClearTraceEvents();  // Discards the recorded span...
        std::vector<TraceEvent> out;
        internal::CollectTraceEvents(&out);  // ...double export: dies.
      },
      "double export");
  // Collecting while events exist, or clearing an already-empty trace,
  // stays legal (the Reset-then-record-then-export flow of every bench).
  internal::ClearTraceEvents();
  { XAI_SPAN("test/recorded_again"); }
  std::vector<TraceEvent> out;
  internal::CollectTraceEvents(&out);
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace telemetry
}  // namespace xai
