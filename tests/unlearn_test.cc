#include <gtest/gtest.h>

#include <cmath>

#include "xai/data/synthetic.h"
#include "xai/model/metrics.h"
#include "xai/unlearn/dare_tree.h"
#include "xai/unlearn/incremental_linear.h"
#include "xai/unlearn/incremental_logistic.h"

namespace xai {
namespace {

TEST(MaintainedLinearTest, MatchesBatchFitInitially) {
  auto [d, gt] = MakeLinearData(100, 3, 0.2, 1);
  (void)gt;
  auto maintained =
      MaintainedLinearRegression::Fit(d.x(), d.y(), 1e-6).ValueOrDie();
  LinearRegressionModel::Config config;
  config.l2 = 1e-6;
  auto batch = LinearRegressionModel::Train(d, config).ValueOrDie();
  for (int j = 0; j < 3; ++j)
    EXPECT_NEAR(maintained.weights()[j], batch.weights()[j], 1e-6);
  EXPECT_NEAR(maintained.bias(), batch.bias(), 1e-6);
}

TEST(MaintainedLinearTest, RemovalEqualsRetrain) {
  auto [d, gt] = MakeLinearData(120, 4, 0.3, 2);
  (void)gt;
  auto maintained =
      MaintainedLinearRegression::Fit(d.x(), d.y(), 1e-6).ValueOrDie();
  std::vector<int> removed = {5, 17, 40, 99};
  ASSERT_TRUE(maintained.RemoveRows(removed).ok());

  LinearRegressionModel::Config config;
  config.l2 = 1e-6;
  auto retrained =
      LinearRegressionModel::Train(d.Without(removed), config).ValueOrDie();
  for (int j = 0; j < 4; ++j)
    EXPECT_NEAR(maintained.weights()[j], retrained.weights()[j], 1e-5);
  EXPECT_NEAR(maintained.bias(), retrained.bias(), 1e-5);
  EXPECT_EQ(maintained.active_rows(), 116);
}

TEST(MaintainedLinearTest, ManySequentialRemovalsStayExact) {
  auto [d, gt] = MakeLinearData(200, 3, 0.5, 3);
  (void)gt;
  auto maintained =
      MaintainedLinearRegression::Fit(d.x(), d.y(), 1e-6).ValueOrDie();
  std::vector<int> removed;
  for (int i = 0; i < 80; ++i) {
    removed.push_back(i * 2);
    ASSERT_TRUE(maintained.RemoveRow(i * 2).ok());
  }
  LinearRegressionModel::Config config;
  config.l2 = 1e-6;
  auto retrained =
      LinearRegressionModel::Train(d.Without(removed), config).ValueOrDie();
  for (int j = 0; j < 3; ++j)
    EXPECT_NEAR(maintained.weights()[j], retrained.weights()[j], 1e-4);
}

TEST(MaintainedLinearTest, AddRowEqualsRetrain) {
  auto [d, gt] = MakeLinearData(80, 2, 0.3, 4);
  (void)gt;
  auto maintained =
      MaintainedLinearRegression::Fit(d.x(), d.y(), 1e-6).ValueOrDie();
  Vector new_row = {0.5, -1.0};
  ASSERT_TRUE(maintained.AddRow(new_row, 2.5).ok());

  Dataset extended = d;
  extended.AppendRow(new_row, 2.5);
  LinearRegressionModel::Config config;
  config.l2 = 1e-6;
  auto retrained =
      LinearRegressionModel::Train(extended, config).ValueOrDie();
  for (int j = 0; j < 2; ++j)
    EXPECT_NEAR(maintained.weights()[j], retrained.weights()[j], 1e-5);
}

TEST(MaintainedLinearTest, AddedRowCanBeRemoved) {
  auto [d, gt] = MakeLinearData(60, 2, 0.2, 5);
  (void)gt;
  auto maintained =
      MaintainedLinearRegression::Fit(d.x(), d.y(), 1e-6).ValueOrDie();
  Vector before_w = maintained.weights();
  ASSERT_TRUE(maintained.AddRow({3.0, 3.0}, -10.0).ok());
  ASSERT_TRUE(maintained.RemoveRow(60).ok());  // The appended row.
  for (int j = 0; j < 2; ++j)
    EXPECT_NEAR(maintained.weights()[j], before_w[j], 1e-6);
}

TEST(MaintainedLinearTest, GuardsAgainstBadRemovals) {
  auto [d, gt] = MakeLinearData(30, 2, 0.2, 6);
  (void)gt;
  auto maintained =
      MaintainedLinearRegression::Fit(d.x(), d.y(), 1e-6).ValueOrDie();
  EXPECT_FALSE(maintained.RemoveRow(500).ok());
  ASSERT_TRUE(maintained.RemoveRow(3).ok());
  EXPECT_FALSE(maintained.RemoveRow(3).ok());  // Already removed.
}

TEST(MaintainedLogisticTest, OneStepCorrectionApproximatesRetrain) {
  auto [d, gt] = MakeLogisticData(400, 3, 7);
  (void)gt;
  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  auto maintained =
      MaintainedLogisticRegression::Fit(d.x(), d.y(), config).ValueOrDie();
  std::vector<int> removed;
  for (int i = 0; i < 20; ++i) removed.push_back(i * 7);
  ASSERT_TRUE(maintained.RemoveRows(removed).ok());

  auto retrained =
      LogisticRegressionModel::Train(d.Without(removed), config)
          .ValueOrDie();
  for (int j = 0; j < 3; ++j)
    EXPECT_NEAR(maintained.weights()[j], retrained.weights()[j], 0.02);
}

TEST(MaintainedLogisticTest, RefinementTightensTheGap) {
  auto [d, gt] = MakeLogisticData(300, 3, 8);
  (void)gt;
  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  std::vector<int> removed;
  for (int i = 0; i < 60; ++i) removed.push_back(i * 3);
  auto retrained =
      LogisticRegressionModel::Train(d.Without(removed), config)
          .ValueOrDie();

  auto fast = MaintainedLogisticRegression::Fit(d.x(), d.y(), config)
                  .ValueOrDie();
  ASSERT_TRUE(fast.RemoveRows(removed, /*refine_full_iters=*/0).ok());
  auto refined = MaintainedLogisticRegression::Fit(d.x(), d.y(), config)
                     .ValueOrDie();
  ASSERT_TRUE(refined.RemoveRows(removed, /*refine_full_iters=*/5).ok());

  double err_fast = 0, err_refined = 0;
  for (int j = 0; j < 3; ++j) {
    err_fast += std::fabs(fast.weights()[j] - retrained.weights()[j]);
    err_refined +=
        std::fabs(refined.weights()[j] - retrained.weights()[j]);
  }
  EXPECT_LE(err_refined, err_fast + 1e-12);
  EXPECT_LT(err_refined, 1e-4);
}

TEST(MaintainedLogisticTest, SequentialBatchesStayAccurate) {
  auto [d, gt] = MakeLogisticData(500, 4, 9);
  (void)gt;
  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  auto maintained =
      MaintainedLogisticRegression::Fit(d.x(), d.y(), config).ValueOrDie();
  std::vector<int> all_removed;
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<int> rows;
    for (int i = 0; i < 10; ++i) rows.push_back(batch * 10 + i);
    ASSERT_TRUE(maintained.RemoveRows(rows).ok());
    all_removed.insert(all_removed.end(), rows.begin(), rows.end());
  }
  auto retrained =
      LogisticRegressionModel::Train(d.Without(all_removed), config)
          .ValueOrDie();
  for (int j = 0; j < 4; ++j)
    EXPECT_NEAR(maintained.weights()[j], retrained.weights()[j], 0.03);
}

TEST(MaintainedLogisticTest, AddRowsApproximatesRetrain) {
  auto [d, gt] = MakeLogisticData(500, 3, 21);
  (void)gt;
  auto [base, extra] = d.TrainTestSplit(0.2, 22);
  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  auto maintained =
      MaintainedLogisticRegression::Fit(base.x(), base.y(), config)
          .ValueOrDie();
  ASSERT_TRUE(maintained.AddRows(extra.x(), extra.y(), 2).ok());
  EXPECT_EQ(maintained.active_rows(), 500);

  auto retrained = LogisticRegressionModel::Train(d.x(), d.y(), config)
                       .ValueOrDie();
  // Note d's rows are a permutation of base+extra; logistic regression is
  // permutation invariant, so compare against a model on base+extra.
  Matrix all_x(500, 3);
  Vector all_y(500);
  for (int i = 0; i < base.num_rows(); ++i) {
    all_x.SetRow(i, base.Row(i));
    all_y[i] = base.Label(i);
  }
  for (int i = 0; i < extra.num_rows(); ++i) {
    all_x.SetRow(base.num_rows() + i, extra.Row(i));
    all_y[base.num_rows() + i] = extra.Label(i);
  }
  auto exact =
      LogisticRegressionModel::Train(all_x, all_y, config).ValueOrDie();
  for (int j = 0; j < 3; ++j)
    EXPECT_NEAR(maintained.weights()[j], exact.weights()[j], 1e-4);
  (void)retrained;
}

TEST(MaintainedLogisticTest, AddedRowsCanBeRemoved) {
  auto [d, gt] = MakeLogisticData(300, 2, 23);
  (void)gt;
  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  auto maintained =
      MaintainedLogisticRegression::Fit(d.x(), d.y(), config).ValueOrDie();
  Vector before = maintained.weights();
  Matrix extra(2, 2);
  extra.SetRow(0, {3.0, -1.0});
  extra.SetRow(1, {-2.0, 2.0});
  ASSERT_TRUE(maintained.AddRows(extra, {1.0, 0.0}, 3).ok());
  ASSERT_TRUE(maintained.RemoveRows({300, 301}, 3).ok());
  for (int j = 0; j < 2; ++j)
    EXPECT_NEAR(maintained.weights()[j], before[j], 1e-4);
}

TEST(MaintainedLogisticTest, AddRowsRejectsBadShapes) {
  auto [d, gt] = MakeLogisticData(100, 3, 24);
  (void)gt;
  auto maintained =
      MaintainedLogisticRegression::Fit(d.x(), d.y(), {}).ValueOrDie();
  EXPECT_FALSE(maintained.AddRows(Matrix(2, 5), {0.0, 1.0}, 0).ok());
  EXPECT_FALSE(maintained.AddRows(Matrix(2, 3), {0.0}, 0).ok());
}

TEST(DareTreeTest, TrainsAccurately) {
  Dataset d = MakeLoans(1000, 10);
  auto [train, test] = d.TrainTestSplit(0.3, 11);
  auto tree = DareTree::Train(train).ValueOrDie();
  int correct = 0;
  for (int i = 0; i < test.num_rows(); ++i) {
    int pred = tree.Predict(test.Row(i)) >= 0.5 ? 1 : 0;
    if (pred == static_cast<int>(test.Label(i))) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / test.num_rows(), 0.7);
}

TEST(DareTreeTest, DeletionUpdatesBookkeeping) {
  Dataset d = MakeLoans(400, 12);
  auto tree = DareTree::Train(d).ValueOrDie();
  EXPECT_EQ(tree.active_rows(), 400);
  ASSERT_TRUE(tree.Delete(5).ok());
  ASSERT_TRUE(tree.Delete(6).ok());
  EXPECT_EQ(tree.active_rows(), 398);
  EXPECT_EQ(tree.num_deletions(), 2);
  EXPECT_FALSE(tree.Delete(5).ok());  // Already deleted.
  EXPECT_FALSE(tree.Delete(9999).ok());
}

TEST(DareTreeTest, ManyDeletionsKeepAccuracy) {
  Dataset d = MakeLoans(1200, 13);
  auto [train, test] = d.TrainTestSplit(0.25, 14);
  auto tree = DareTree::Train(train).ValueOrDie();
  Rng rng(15);
  std::vector<int> order = rng.Permutation(train.num_rows());
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(tree.Delete(order[i]).ok());

  int correct = 0;
  for (int i = 0; i < test.num_rows(); ++i) {
    int pred = tree.Predict(test.Row(i)) >= 0.5 ? 1 : 0;
    if (pred == static_cast<int>(test.Label(i))) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / test.num_rows(), 0.65);
}

TEST(DareTreeTest, MostDeletionsAvoidRebuilds) {
  // The HedgeCut/DaRE claim: structural changes are rare, so deletions are
  // cheap. After many random deletions, rebuilds per deletion stay low.
  Dataset d = MakeLoans(1500, 16);
  auto tree = DareTree::Train(d).ValueOrDie();
  Rng rng(17);
  std::vector<int> order = rng.Permutation(d.num_rows());
  int deletions = 400;
  for (int i = 0; i < deletions; ++i)
    ASSERT_TRUE(tree.Delete(order[i]).ok());
  EXPECT_LT(tree.num_rebuilds(), deletions / 4);
}

TEST(DareTreeTest, DeletingNoiseImprovesFit) {
  Dataset d = MakeBlobs(400, 2, 2, 0.5, 18);
  auto [train, test] = d.TrainTestSplit(0.3, 19);
  std::vector<int> flipped = FlipBinaryLabels(&train, 0.15, 20);
  auto tree = DareTree::Train(train).ValueOrDie();
  double acc_before = 0;
  for (int i = 0; i < test.num_rows(); ++i) {
    int pred = tree.Predict(test.Row(i)) >= 0.5 ? 1 : 0;
    acc_before += pred == static_cast<int>(test.Label(i));
  }
  for (int r : flipped) ASSERT_TRUE(tree.Delete(r).ok());
  double acc_after = 0;
  for (int i = 0; i < test.num_rows(); ++i) {
    int pred = tree.Predict(test.Row(i)) >= 0.5 ? 1 : 0;
    acc_after += pred == static_cast<int>(test.Label(i));
  }
  EXPECT_GE(acc_after, acc_before);
}

TEST(DareForestTest, AveragesTreesAndDeletes) {
  Dataset d = MakeLoans(600, 21);
  DareForest::Config config;
  config.n_trees = 5;
  auto forest = DareForest::Train(d, config).ValueOrDie();
  double p = forest.Predict(d.Row(0));
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  ASSERT_TRUE(forest.Delete(10).ok());
  for (const DareTree& tree : forest.trees())
    EXPECT_EQ(tree.active_rows(), 599);
}

TEST(DareTreeTest, RejectsNonBinaryLabels) {
  Dataset d = MakeBlobs(100, 2, 3, 0.4, 22);
  EXPECT_FALSE(DareTree::Train(d).ok());
}

}  // namespace
}  // namespace xai
