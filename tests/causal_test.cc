#include <gtest/gtest.h>

#include <cmath>

#include "xai/causal/dag.h"
#include "xai/causal/scm.h"
#include "xai/core/stats.h"

namespace xai {
namespace {

TEST(DagTest, AddEdgeAndLookup) {
  Dag dag({"a", "b", "c"});
  EXPECT_TRUE(dag.AddEdge("a", "b").ok());
  EXPECT_TRUE(dag.AddEdge(1, 2).ok());
  EXPECT_TRUE(dag.HasEdge(0, 1));
  EXPECT_FALSE(dag.HasEdge(1, 0));
  EXPECT_EQ(dag.NodeIndex("c"), 2);
  EXPECT_EQ(dag.NodeIndex("zzz"), -1);
}

TEST(DagTest, RejectsDuplicatesSelfLoopsCycles) {
  Dag dag({"a", "b", "c"});
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  EXPECT_EQ(dag.AddEdge(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(dag.AddEdge(1, 1).ok());
  ASSERT_TRUE(dag.AddEdge(1, 2).ok());
  EXPECT_FALSE(dag.AddEdge(2, 0).ok());  // Would close a cycle.
}

TEST(DagTest, TopologicalOrderRespectsEdges) {
  Dag dag({"a", "b", "c", "d"});
  ASSERT_TRUE(dag.AddEdge(3, 1).ok());
  ASSERT_TRUE(dag.AddEdge(1, 0).ok());
  ASSERT_TRUE(dag.AddEdge(3, 2).ok());
  std::vector<int> order = dag.TopologicalOrder();
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[order[i]] = i;
  EXPECT_LT(pos[3], pos[1]);
  EXPECT_LT(pos[1], pos[0]);
  EXPECT_LT(pos[3], pos[2]);
}

TEST(DagTest, AncestorsAndDescendants) {
  Dag dag({"a", "b", "c", "d"});
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(1, 2).ok());
  EXPECT_TRUE(dag.IsAncestor(0, 2));
  EXPECT_FALSE(dag.IsAncestor(2, 0));
  EXPECT_FALSE(dag.IsAncestor(0, 3));
  EXPECT_EQ(dag.Descendants(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(dag.Roots(), (std::vector<int>{0, 3}));
}

TEST(ScmTest, WeightsSetAndRead) {
  LinearScm scm = MakeChainScm(2.0, 3.0);
  EXPECT_DOUBLE_EQ(scm.Weight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(scm.Weight(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(scm.Weight(0, 2), 0.0);
  EXPECT_FALSE(scm.SetWeight(2, 0, 1.0).ok());
}

TEST(ScmTest, ObservationalMomentsOfChain) {
  // x0 ~ N(0,1); x1 = 2 x0 + N(0,1); x2 = 3 x1 + N(0,1).
  LinearScm scm = MakeChainScm(2.0, 3.0);
  Rng rng(1);
  Matrix s = scm.Sample(20000, &rng);
  std::vector<double> x1 = s.Col(1), x2 = s.Col(2);
  EXPECT_NEAR(Mean(x1), 0.0, 0.05);
  // var(x1) = 4 + 1 = 5 ; var(x2) = 9*5 + 1 = 46.
  EXPECT_NEAR(Variance(x1), 5.0, 0.3);
  EXPECT_NEAR(Variance(x2), 46.0, 3.0);
}

TEST(ScmTest, InterventionCutsParents) {
  LinearScm scm = MakeChainScm(2.0, 3.0);
  Rng rng(2);
  Matrix s = scm.SampleInterventional({{1, 10.0}}, 5000, &rng);
  // x1 pinned to 10 regardless of x0; x2 mean = 30.
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(s(i, 1), 10.0);
  EXPECT_NEAR(Mean(s.Col(2)), 30.0, 0.2);
  // x0 unaffected (no back-propagation of interventions).
  EXPECT_NEAR(Mean(s.Col(0)), 0.0, 0.05);
}

TEST(ScmTest, InterventionalMeanClosedForm) {
  LinearScm scm = MakeChainScm(2.0, 3.0);
  Vector mean = scm.InterventionalMean({{0, 1.5}});
  EXPECT_DOUBLE_EQ(mean[0], 1.5);
  EXPECT_DOUBLE_EQ(mean[1], 3.0);
  EXPECT_DOUBLE_EQ(mean[2], 9.0);
}

TEST(ScmTest, AbductionRecoversNoise) {
  LinearScm scm = MakeChainScm(1.0, -2.0);
  Rng rng(3);
  Matrix s = scm.Sample(10, &rng);
  for (int i = 0; i < 10; ++i) {
    Vector world = s.Row(i);
    // Counterfactual with no intervention reproduces the world exactly.
    Vector cf = scm.Counterfactual(world, {});
    for (int j = 0; j < 3; ++j) EXPECT_NEAR(cf[j], world[j], 1e-9);
  }
}

TEST(ScmTest, CounterfactualPropagatesDownstreamOnly) {
  LinearScm scm = MakeChainScm(2.0, 3.0);
  Rng rng(4);
  Vector world = scm.Sample(1, &rng).Row(0);
  Vector cf = scm.Counterfactual(world, {{1, world[1] + 1.0}});
  EXPECT_DOUBLE_EQ(cf[0], world[0]);          // Upstream unchanged.
  EXPECT_DOUBLE_EQ(cf[1], world[1] + 1.0);    // Intervened.
  EXPECT_NEAR(cf[2], world[2] + 3.0, 1e-9);   // Downstream shifts by w12.
}

TEST(ScmTest, TotalEffectChainIsProductOfWeights) {
  LinearScm scm = MakeChainScm(2.0, 3.0);
  EXPECT_DOUBLE_EQ(scm.TotalEffect(0, 2), 6.0);
  EXPECT_DOUBLE_EQ(scm.TotalEffect(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(scm.TotalEffect(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(scm.TotalEffect(1, 1), 1.0);
}

TEST(ScmTest, TotalEffectSumsOverPaths) {
  // Diamond: 0 -> 1 -> 3, 0 -> 2 -> 3.
  Dag dag({"a", "b", "c", "d"});
  ASSERT_TRUE(dag.AddEdge(0, 1).ok());
  ASSERT_TRUE(dag.AddEdge(0, 2).ok());
  ASSERT_TRUE(dag.AddEdge(1, 3).ok());
  ASSERT_TRUE(dag.AddEdge(2, 3).ok());
  LinearScm scm(dag);
  ASSERT_TRUE(scm.SetWeight(0, 1, 2.0).ok());
  ASSERT_TRUE(scm.SetWeight(0, 2, 3.0).ok());
  ASSERT_TRUE(scm.SetWeight(1, 3, 5.0).ok());
  ASSERT_TRUE(scm.SetWeight(2, 3, 7.0).ok());
  EXPECT_DOUBLE_EQ(scm.TotalEffect(0, 3), 2 * 5 + 3 * 7);
}

TEST(ScmTest, ForkAndColliderBuilders) {
  LinearScm fork = MakeForkScm(1.0, 1.0);
  EXPECT_EQ(fork.dag().Roots(), (std::vector<int>{0}));
  LinearScm collider = MakeColliderScm(1.0, 1.0);
  EXPECT_EQ(collider.dag().Roots(), (std::vector<int>{0, 1}));
}

TEST(ScmTest, SampleDatasetBuildsSchemaAndLabels) {
  LinearScm scm = MakeChainScm(1.0, 1.0);
  Rng rng(5);
  Dataset d = scm.SampleDataset(
      100, &rng, [](const Vector& row) { return row[2] > 0 ? 1.0 : 0.0; });
  EXPECT_EQ(d.num_rows(), 100);
  EXPECT_EQ(d.schema().features[1].name, "x1");
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(d.Label(i), d.At(i, 2) > 0 ? 1.0 : 0.0);
}

TEST(ScmTest, NoiseStdDevScalesVariance) {
  LinearScm scm = MakeChainScm(0.0, 0.0);
  scm.SetNoiseStdDev(0, 3.0);
  Rng rng(6);
  Matrix s = scm.Sample(20000, &rng);
  EXPECT_NEAR(Variance(s.Col(0)), 9.0, 0.5);
}

TEST(ScmTest, BiasShiftsMean) {
  LinearScm scm = MakeChainScm(1.0, 1.0);
  scm.SetBias(1, 5.0);
  Vector mean = scm.InterventionalMean({});
  EXPECT_DOUBLE_EQ(mean[1], 5.0);
  EXPECT_DOUBLE_EQ(mean[2], 5.0);
}

}  // namespace
}  // namespace xai
