#include "xai/model/logistic_regression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "xai/data/synthetic.h"
#include "xai/model/metrics.h"

namespace xai {
namespace {

TEST(SigmoidTest, KnownValuesAndStability) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-15);
  EXPECT_NEAR(Sigmoid(800.0), 1.0, 1e-12);   // No overflow.
  EXPECT_NEAR(Sigmoid(-800.0), 0.0, 1e-12);  // No underflow to NaN.
  EXPECT_TRUE(std::isfinite(Sigmoid(-1e308)));
}

TEST(LogisticTest, RecoversGeneratingWeights) {
  auto [d, gt] = MakeLogisticData(20000, 3, 1);
  LogisticRegressionConfig config;
  config.l2 = 1e-6;
  auto model = LogisticRegressionModel::Train(d, config).ValueOrDie();
  for (int j = 0; j < 3; ++j)
    EXPECT_NEAR(model.weights()[j], gt.weights[j], 0.15);
  EXPECT_NEAR(model.bias(), gt.bias, 0.15);
}

TEST(LogisticTest, GradientNearZeroAtOptimum) {
  auto [d, gt] = MakeLogisticData(500, 4, 2);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  // Mean gradient of the regularized objective should be ~0.
  int n = d.num_rows(), dd = d.num_features();
  Vector g(dd + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    Vector gi = model.ExampleLossGradient(d.Row(i), d.Label(i));
    for (int j = 0; j <= dd; ++j) g[j] += gi[j] / n;
  }
  for (int j = 0; j < dd; ++j) g[j] += model.config().l2 * model.weights()[j];
  EXPECT_LT(Norm2(g), 1e-6);
}

TEST(LogisticTest, AccuracyBeatsMajority) {
  Dataset d = MakeLoans(3000, 3);
  auto [train, test] = d.TrainTestSplit(0.3, 7);
  auto model = LogisticRegressionModel::Train(train).ValueOrDie();
  double pos = 0;
  for (double y : test.y()) pos += y;
  double majority = std::max(pos, test.num_rows() - pos) / test.num_rows();
  EXPECT_GT(EvaluateAccuracy(model, test), majority);
}

TEST(LogisticTest, PredictIsSigmoidOfMargin) {
  auto model = LogisticRegressionModel::FromCoefficients({1.0, -2.0}, 0.3);
  Vector row = {0.5, 0.25};
  EXPECT_DOUBLE_EQ(model.Margin(row), 0.5 - 0.5 + 0.3);
  EXPECT_DOUBLE_EQ(model.Predict(row), Sigmoid(model.Margin(row)));
  EXPECT_EQ(model.PredictClass(row), 1);
}

TEST(LogisticTest, ExampleLossMatchesDefinition) {
  auto model = LogisticRegressionModel::FromCoefficients({1.0}, 0.0);
  Vector row = {2.0};
  double p = Sigmoid(2.0);
  EXPECT_NEAR(model.ExampleLoss(row, 1.0), -std::log(p), 1e-12);
  EXPECT_NEAR(model.ExampleLoss(row, 0.0), -std::log(1 - p), 1e-12);
}

TEST(LogisticTest, ExampleGradientMatchesFiniteDifference) {
  auto model = LogisticRegressionModel::FromCoefficients({0.7, -0.3}, 0.1);
  Vector row = {1.5, -2.5};
  double label = 1.0;
  Vector g = model.ExampleLossGradient(row, label);
  double eps = 1e-6;
  for (int j = 0; j < 2; ++j) {
    Vector w_plus = model.weights();
    w_plus[j] += eps;
    auto shifted =
        LogisticRegressionModel::FromCoefficients(w_plus, model.bias());
    double fd =
        (shifted.ExampleLoss(row, label) - model.ExampleLoss(row, label)) /
        eps;
    EXPECT_NEAR(g[j], fd, 1e-4);
  }
  auto shifted_bias = LogisticRegressionModel::FromCoefficients(
      model.weights(), model.bias() + eps);
  double fd_bias = (shifted_bias.ExampleLoss(row, label) -
                    model.ExampleLoss(row, label)) /
                   eps;
  EXPECT_NEAR(g[2], fd_bias, 1e-4);
}

TEST(LogisticTest, HessianIsPsdAndMatchesFiniteDifference) {
  auto [d, gt] = MakeLogisticData(200, 3, 4);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  Matrix h = model.LossHessian(d.x());
  // PSD: Cholesky succeeds after tiny jitter.
  Matrix hj = h;
  hj.AddScaledIdentity(1e-12);
  EXPECT_TRUE(CholeskyFactor(hj).ok());
  EXPECT_EQ(h.rows(), 4);
  // Symmetry.
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 4; ++b) EXPECT_NEAR(h(a, b), h(b, a), 1e-12);
}

TEST(LogisticTest, SampleWeightsZeroExcludesPoints) {
  // Two datasets: one without outlier block, one with outliers weighted 0.
  auto [base, gt] = MakeLogisticData(400, 2, 5);
  (void)gt;
  Dataset with_noise = base;
  for (int i = 0; i < 50; ++i)
    with_noise.AppendRow({10.0, 10.0}, 0.0);  // Contradictory block.
  LogisticRegressionConfig config;
  config.sample_weights.assign(450, 1.0);
  for (int i = 400; i < 450; ++i) config.sample_weights[i] = 0.0;
  auto weighted =
      LogisticRegressionModel::Train(with_noise, config).ValueOrDie();
  auto clean = LogisticRegressionModel::Train(base).ValueOrDie();
  for (int j = 0; j < 2; ++j)
    EXPECT_NEAR(weighted.weights()[j], clean.weights()[j], 1e-4);
}

TEST(LogisticTest, WarmStartConverges) {
  auto [d, gt] = MakeLogisticData(300, 3, 6);
  (void)gt;
  auto cold = LogisticRegressionModel::Train(d).ValueOrDie();
  LogisticRegressionConfig one_iter;
  one_iter.max_iter = 1;
  auto warm = LogisticRegressionModel::TrainWarmStart(
                  d.x(), d.y(), cold.weights(), cold.bias(), one_iter)
                  .ValueOrDie();
  for (int j = 0; j < 3; ++j)
    EXPECT_NEAR(warm.weights()[j], cold.weights()[j], 1e-6);
}

TEST(LogisticTest, RejectsBadInput) {
  EXPECT_FALSE(LogisticRegressionModel::Train(Matrix(0, 2), {}).ok());
  LogisticRegressionConfig config;
  config.sample_weights = {1.0};  // Wrong size.
  EXPECT_FALSE(
      LogisticRegressionModel::Train(Matrix(3, 1), {0, 1, 0}, config).ok());
}

}  // namespace
}  // namespace xai
