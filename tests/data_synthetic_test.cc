#include "xai/data/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "xai/model/logistic_regression.h"
#include "xai/model/metrics.h"

namespace xai {
namespace {

TEST(SyntheticTest, LoansShapeAndSchema) {
  Dataset d = MakeLoans(200, 1);
  EXPECT_EQ(d.num_rows(), 200);
  EXPECT_EQ(d.num_features(), 8);
  EXPECT_EQ(d.schema().FeatureIndex("credit_score"), 2);
  EXPECT_TRUE(d.schema().features[6].is_categorical());
  for (int i = 0; i < d.num_rows(); ++i) {
    double y = d.Label(i);
    EXPECT_TRUE(y == 0.0 || y == 1.0);
  }
}

TEST(SyntheticTest, LoansDeterministicBySeed) {
  Dataset a = MakeLoans(50, 7);
  Dataset b = MakeLoans(50, 7);
  Dataset c = MakeLoans(50, 8);
  EXPECT_EQ(a.Row(10), b.Row(10));
  EXPECT_NE(a.Row(10), c.Row(10));
}

TEST(SyntheticTest, LoansHaveBothClasses) {
  Dataset d = MakeLoans(500, 3);
  std::set<double> labels(d.y().begin(), d.y().end());
  EXPECT_EQ(labels.size(), 2u);
}

TEST(SyntheticTest, LoansMechanismIsLearnable) {
  Dataset d = MakeLoans(2000, 5);
  auto [train, test] = d.TrainTestSplit(0.3, 1);
  auto model = LogisticRegressionModel::Train(train).ValueOrDie();
  EXPECT_GT(EvaluateAccuracy(model, test), 0.75);
}

TEST(SyntheticTest, LoansGenderIrrelevant) {
  // gender does not enter the mechanism: a logistic fit should give it a
  // near-zero weight relative to credit_score's standardized effect.
  Dataset d = MakeLoans(4000, 11);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  int gender = d.schema().FeatureIndex("gender");
  int has_default = d.schema().FeatureIndex("has_default");
  EXPECT_LT(std::fabs(model.weights()[gender]),
            0.25 * std::fabs(model.weights()[has_default]));
}

TEST(SyntheticTest, IncomeShape) {
  Dataset d = MakeIncome(300, 2);
  EXPECT_EQ(d.num_features(), 7);
  EXPECT_EQ(d.schema().target_name, "high_income");
}

TEST(SyntheticTest, RecidivismProxyBias) {
  // race group b has systematically more priors (the proxy construction).
  Dataset d = MakeRecidivism(3000, 3);
  int race = d.schema().FeatureIndex("race");
  int priors = d.schema().FeatureIndex("priors_count");
  double sum_a = 0, n_a = 0, sum_b = 0, n_b = 0;
  for (int i = 0; i < d.num_rows(); ++i) {
    if (d.At(i, race) == 0) {
      sum_a += d.At(i, priors);
      n_a += 1;
    } else {
      sum_b += d.At(i, priors);
      n_b += 1;
    }
  }
  EXPECT_GT(sum_b / n_b, sum_a / n_a + 0.5);
}

TEST(SyntheticTest, BlobsSeparableByLabel) {
  Dataset d = MakeBlobs(300, 2, 3, 0.3, 4);
  EXPECT_EQ(d.DistinctLabels().size(), 3u);
}

TEST(SyntheticTest, LinearDataMatchesGroundTruth) {
  auto [d, gt] = MakeLinearData(100, 3, 0.0, 6);
  for (int i = 0; i < d.num_rows(); ++i) {
    double pred = gt.bias;
    for (int j = 0; j < 3; ++j) pred += gt.weights[j] * d.At(i, j);
    EXPECT_NEAR(d.Label(i), pred, 1e-9);
  }
}

TEST(SyntheticTest, LogisticDataHasBalancedNoise) {
  auto [d, gt] = MakeLogisticData(2000, 4, 8);
  (void)gt;
  double pos = 0;
  for (double y : d.y()) pos += y;
  EXPECT_GT(pos, 200);
  EXPECT_LT(pos, 1800);
}

TEST(SyntheticTest, TransactionsRespectItemUniverse) {
  auto txns = MakeTransactions(200, 50, 8, 5, 4, 10);
  EXPECT_EQ(txns.size(), 200u);
  for (const auto& t : txns) {
    for (size_t i = 0; i < t.size(); ++i) {
      EXPECT_GE(t[i], 0);
      EXPECT_LT(t[i], 50);
      if (i > 0) {
        EXPECT_LT(t[i - 1], t[i]);  // Sorted, distinct.
      }
    }
  }
}

TEST(SyntheticTest, TransactionsContainPlantedPatterns) {
  // With planted patterns, some itemset of size >= 2 must be much more
  // frequent than under independence.
  auto txns = MakeTransactions(500, 100, 6, 3, 3, 12);
  // Count pair frequencies.
  int max_pair = 0;
  for (int a = 0; a < 100; ++a) {
    for (int b = a + 1; b < 100; ++b) {
      int count = 0;
      for (const auto& t : txns) {
        bool has_a = std::find(t.begin(), t.end(), a) != t.end();
        bool has_b = std::find(t.begin(), t.end(), b) != t.end();
        if (has_a && has_b) ++count;
      }
      max_pair = std::max(max_pair, count);
    }
  }
  EXPECT_GT(max_pair, 50);  // Planted pairs co-occur in >10% of txns.
}

}  // namespace
}  // namespace xai
