#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "xai/core/parallel.h"
#include "xai/core/rng.h"
#include "xai/dbx/shared_scan.h"
#include "xai/dbx/tuple_shapley.h"
#include "xai/relational/columnar.h"
#include "xai/relational/columnar_ops.h"
#include "xai/relational/operators.h"

namespace xai::rel {
namespace {

uint64_t Bits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// Exact equality: same names, same value *types and bits* per cell, same
// provenance structure. Stricter than Value::operator== (which merges
// INT 2 with DOUBLE 2.0 and never distinguishes double bit patterns).
void ExpectSameRelation(const Relation& a, const Relation& b) {
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.columns(), b.columns());
  ASSERT_EQ(a.num_tuples(), b.num_tuples());
  for (int i = 0; i < a.num_tuples(); ++i) {
    for (int c = 0; c < a.num_columns(); ++c) {
      const Value& va = a.tuple(i)[c];
      const Value& vb = b.tuple(i)[c];
      ASSERT_EQ(static_cast<int>(va.type()), static_cast<int>(vb.type()))
          << "row " << i << " col " << c;
      switch (va.type()) {
        case Value::Type::kNull:
          break;
        case Value::Type::kInt:
          ASSERT_EQ(va.AsInt(), vb.AsInt()) << "row " << i << " col " << c;
          break;
        case Value::Type::kDouble:
          ASSERT_EQ(Bits(va.AsDouble()), Bits(vb.AsDouble()))
              << "row " << i << " col " << c;
          break;
        case Value::Type::kString:
          ASSERT_EQ(va.AsString(), vb.AsString())
              << "row " << i << " col " << c;
          break;
      }
    }
    ASSERT_EQ(a.annotation(i)->ToString(), b.annotation(i)->ToString())
        << "row " << i;
  }
}

// Mixed-type relation with NULLs in every column and plenty of duplicate
// keys: k (int64, ~10% NULL), v (double, ~10% NULL), cat (string,
// ~10% NULL), d (double, never NULL — exercises the branch-free kernels).
Relation RandomRelation(int n, uint64_t seed, const std::string& name = "t") {
  Relation r(name, {"k", "v", "cat", "d"});
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    Tuple t;
    t.push_back(rng.Uniform() < 0.1 ? Value::Null()
                                    : Value::Int(rng.UniformInt(8)));
    t.push_back(rng.Uniform() < 0.1 ? Value::Null()
                                    : Value::Double(rng.Uniform(-2.0, 2.0)));
    t.push_back(rng.Uniform() < 0.1
                    ? Value::Null()
                    : Value::Str("c" + std::to_string(rng.UniformInt(3))));
    t.push_back(Value::Double(rng.Uniform(-1.0, 1.0)));
    EXPECT_TRUE(r.AppendBase(std::move(t), i).ok());
  }
  return r;
}

ColumnarRelation Columnar(const Relation& rows) {
  auto result = ColumnarRelation::FromRows(rows);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

TEST(ColumnarRelationTest, RoundTripIsExact) {
  Relation rows = RandomRelation(500, 11);
  ExpectSameRelation(Columnar(rows).ToRows(), rows);
}

TEST(ColumnarRelationTest, RoundTripPreservesIntOriginInDoubleColumn) {
  Relation r("m", {"x"});
  ASSERT_TRUE(r.AppendBase({Value::Int(2)}, 0).ok());
  ASSERT_TRUE(r.AppendBase({Value::Double(2.5)}, 1).ok());
  ASSERT_TRUE(r.AppendBase({Value::Null()}, 2).ok());
  Relation back = Columnar(r).ToRows();
  EXPECT_EQ(back.tuple(0)[0].type(), Value::Type::kInt);
  EXPECT_EQ(back.tuple(1)[0].type(), Value::Type::kDouble);
  EXPECT_TRUE(back.tuple(2)[0].is_null());
}

TEST(ColumnarRelationTest, RejectsStringNumberMix) {
  Relation r("m", {"x"});
  ASSERT_TRUE(r.AppendBase({Value::Int(1)}, 0).ok());
  ASSERT_TRUE(r.AppendBase({Value::Str("one")}, 1).ok());
  EXPECT_FALSE(ColumnarRelation::FromRows(r).ok());
}

// Runs `op` on both engines at 1, 4 and 8 threads and requires every
// columnar result to be exactly the row result (hence bit-identical
// across thread counts).
template <typename RowOp, typename ColOp>
void ExpectEngineAgreement(const Relation& rows, const RowOp& row_op,
                           const ColOp& col_op) {
  auto row_result = row_op(rows);
  ASSERT_TRUE(row_result.ok()) << row_result.status().ToString();
  ColumnarRelation cols = Columnar(rows);
  const int saved = GetNumThreads();
  for (int threads : {1, 4, 8}) {
    SetNumThreads(threads);
    auto col_result = col_op(cols);
    ASSERT_TRUE(col_result.ok()) << col_result.status().ToString();
    ExpectSameRelation(col_result.ValueOrDie().ToRows(),
                       row_result.ValueOrDie());
  }
  SetNumThreads(saved);
}

TEST(ColumnarOpsTest, SelectNumericPredicateMatchesRowEngine) {
  Relation rows = RandomRelation(5000, 23);
  // d > 0.25 AND NOT k == 3 — branch-free double kernel plus a nullable
  // int64 column (NULL == 3 is false, so NOT yields true: NULLs pass).
  ExprPtr pred = Expr::And(
      Expr::Gt(Expr::Column(3), Expr::Const(Value::Double(0.25))),
      Expr::Not(Expr::Eq(Expr::Column(0), Expr::Const(Value::Int(3)))));
  ExpectEngineAgreement(
      rows, [&](const Relation& r) { return Select(r, pred); },
      [&](const ColumnarRelation& c) { return Select(c, pred); });
}

TEST(ColumnarOpsTest, SelectStringAndArithmeticPredicateMatchesRowEngine) {
  Relation rows = RandomRelation(3000, 29);
  // cat == "c1" OR (v + d) * 2 >= 1.5 — string equality against a
  // dictionary column plus arithmetic over a NULL-able double column
  // (NULL coerces to 0.0 inside arithmetic, like Value::AsDouble).
  ExprPtr pred = Expr::Or(
      Expr::Eq(Expr::Column(2), Expr::Const(Value::Str("c1"))),
      Expr::Ge(Expr::Mul(Expr::Add(Expr::Column(1), Expr::Column(3)),
                         Expr::Const(Value::Double(2.0))),
               Expr::Const(Value::Double(1.5))));
  ExpectEngineAgreement(
      rows, [&](const Relation& r) { return Select(r, pred); },
      [&](const ColumnarRelation& c) { return Select(c, pred); });
}

TEST(ColumnarOpsTest, SelectNullComparisonSemanticsMatchRowEngine) {
  Relation rows = RandomRelation(2000, 31);
  // NULL < non-NULL and numeric-sorts-before-string edges: k < v, and
  // cat > "c1" (NULL cat is less than any string).
  for (ExprPtr pred :
       {Expr::Lt(Expr::Column(0), Expr::Column(1)),
        Expr::Gt(Expr::Column(2), Expr::Const(Value::Str("c1"))),
        Expr::Le(Expr::Column(1), Expr::Column(0)),
        Expr::Ne(Expr::Column(0), Expr::Column(0))}) {
    ExpectEngineAgreement(
        rows, [&](const Relation& r) { return Select(r, pred); },
        [&](const ColumnarRelation& c) { return Select(c, pred); });
  }
}

TEST(ColumnarOpsTest, ProjectBagAndDistinctMatchRowEngine) {
  Relation rows = RandomRelation(2000, 37);
  for (bool distinct : {false, true}) {
    ExpectEngineAgreement(
        rows,
        [&](const Relation& r) { return Project(r, {2, 0}, distinct); },
        [&](const ColumnarRelation& c) {
          return Project(c, {2, 0}, distinct);
        });
  }
}

TEST(ColumnarOpsTest, EquiJoinIntKeysMatchesRowEngine) {
  Relation a = RandomRelation(800, 41, "a");
  Relation b = RandomRelation(600, 43, "b");
  ExpectEngineAgreement(
      a, [&](const Relation& r) { return EquiJoin(r, b, 0, 0); },
      [&](const ColumnarRelation& c) {
        return EquiJoin(c, Columnar(b), 0, 0);
      });
}

TEST(ColumnarOpsTest, EquiJoinStringKeysMatchesRowEngine) {
  Relation a = RandomRelation(500, 47, "a");
  Relation b = RandomRelation(400, 53, "b");
  ExpectEngineAgreement(
      a, [&](const Relation& r) { return EquiJoin(r, b, 2, 2); },
      [&](const ColumnarRelation& c) {
        return EquiJoin(c, Columnar(b), 2, 2);
      });
}

TEST(ColumnarOpsTest, EquiJoinMixedIntDoubleKeysMatchesRowEngine) {
  // Int keys on one side, int-valued doubles on the other: the row engine
  // joins only where the *renderings* collide, and the columnar engine
  // must reproduce exactly that (including any misses).
  Relation a("a", {"k"});
  Relation b("b", {"k"});
  int id = 0;
  for (int64_t k : {1, 2, 1000000, 3}) {
    ASSERT_TRUE(a.AppendBase({Value::Int(k)}, id++).ok());
  }
  for (double k : {1.0, 1e6, 2.0, 2.0}) {
    ASSERT_TRUE(b.AppendBase({Value::Double(k)}, id++).ok());
  }
  ExpectEngineAgreement(
      a, [&](const Relation& r) { return EquiJoin(r, b, 0, 0); },
      [&](const ColumnarRelation& c) {
        return EquiJoin(c, Columnar(b), 0, 0);
      });
}

TEST(ColumnarOpsTest, UnionMatchesRowEngine) {
  Relation a = RandomRelation(700, 59, "a");
  Relation b = RandomRelation(300, 61, "b");
  ExpectEngineAgreement(
      a, [&](const Relation& r) { return Union(r, b); },
      [&](const ColumnarRelation& c) { return Union(c, Columnar(b)); });
}

TEST(ColumnarOpsTest, GroupByAllFunctionsMatchRowEngine) {
  Relation rows = RandomRelation(4000, 67);
  for (AggFn fn : {AggFn::kCount, AggFn::kSum, AggFn::kAvg, AggFn::kMin,
                   AggFn::kMax}) {
    for (const std::vector<int>& group : {std::vector<int>{0},
                                          std::vector<int>{2, 0},
                                          std::vector<int>{}}) {
      ExpectEngineAgreement(
          rows,
          [&](const Relation& r) {
            return GroupByAggregate(r, group, fn, 1, "agg");
          },
          [&](const ColumnarRelation& c) {
            return GroupByAggregate(c, group, fn, 1, "agg");
          });
    }
  }
}

TEST(ColumnarOpsTest, GroupByDoubleKeysMergeOnRenderings) {
  // Int 2 and Double 2.0 land in one kDouble column and must merge into
  // one group, exactly like the row path's ToString keys.
  Relation r("m", {"g", "v"});
  ASSERT_TRUE(r.AppendBase({Value::Int(2), Value::Double(1.5)}, 0).ok());
  ASSERT_TRUE(r.AppendBase({Value::Double(2.0), Value::Double(2.5)}, 1).ok());
  ASSERT_TRUE(r.AppendBase({Value::Null(), Value::Double(4.0)}, 2).ok());
  ExpectEngineAgreement(
      r,
      [&](const Relation& rows) {
        return GroupByAggregate(rows, {0}, AggFn::kSum, 1, "s");
      },
      [&](const ColumnarRelation& c) {
        return GroupByAggregate(c, {0}, AggFn::kSum, 1, "s");
      });
}

TEST(ColumnarOpsTest, ComposedPipelineMatchesRowEngine) {
  // join -> select -> distinct project, provenance polynomials included.
  Relation a = RandomRelation(400, 71, "a");
  Relation b = RandomRelation(300, 73, "b");
  auto row_final = [&]() {
    auto j = EquiJoin(a, b, 0, 0).ValueOrDie();
    auto s =
        Select(j, Expr::Gt(Expr::Column(3), Expr::Const(Value::Double(0.0))))
            .ValueOrDie();
    return Project(s, {2, 4}, /*distinct=*/true).ValueOrDie();
  }();
  ColumnarRelation ca = Columnar(a), cb = Columnar(b);
  for (int threads : {1, 4, 8}) {
    SetNumThreads(threads);
    auto j = EquiJoin(ca, cb, 0, 0).ValueOrDie();
    auto s =
        Select(j, Expr::Gt(Expr::Column(3), Expr::Const(Value::Double(0.0))))
            .ValueOrDie();
    auto p = Project(s, {2, 4}, /*distinct=*/true).ValueOrDie();
    ExpectSameRelation(p.ToRows(), row_final);
  }
  SetNumThreads(1);
}

TEST(CompiledLineageTest, MatchesEvalBoolOnAllMasks) {
  // t2*t5 + t7*(t2 + t11) + t99, endogenous {2, 5, 7, 11}; t99 is
  // exogenous so the whole lineage folds to constant-true... except it
  // participates in a Plus, which is exactly the point: the partial
  // evaluator must fold it to TRUE and short-circuit the OR.
  auto lineage = ProvExpr::Plus(
      ProvExpr::Plus(
          ProvExpr::Times(ProvExpr::Base(2), ProvExpr::Base(5)),
          ProvExpr::Times(ProvExpr::Base(7),
                          ProvExpr::Plus(ProvExpr::Base(2),
                                         ProvExpr::Base(11)))),
      ProvExpr::Base(99));
  std::vector<int> endo = {2, 5, 7, 11};
  CompiledLineage compiled = CompiledLineage::Compile(lineage, endo);
  bool cval = false;
  EXPECT_TRUE(compiled.IsConst(&cval));
  EXPECT_TRUE(cval);

  // Without the exogenous escape hatch the program is nontrivial; check
  // every coalition against the interpreted evaluation.
  auto hard = ProvExpr::Plus(
      ProvExpr::Times(ProvExpr::Base(2), ProvExpr::Base(5)),
      ProvExpr::Times(ProvExpr::Base(7),
                      ProvExpr::Plus(ProvExpr::Base(2), ProvExpr::Base(11))));
  CompiledLineage hard_compiled = CompiledLineage::Compile(hard, endo);
  CompiledLineage::Scratch scratch;
  std::set<int> endo_set(endo.begin(), endo.end());
  for (uint64_t mask = 0; mask < 16; ++mask) {
    bool expected = hard->EvalBool([&](int id) {
      if (!endo_set.count(id)) return true;
      for (size_t i = 0; i < endo.size(); ++i)
        if (endo[i] == id) return ((mask >> i) & 1) != 0;
      return false;
    });
    EXPECT_EQ(hard_compiled.Eval(mask, &scratch), expected) << mask;
  }
}

TEST(CompiledLineageTest, Eval64LanesMatchScalarEval) {
  // Eight endogenous variables so the block evaluator exercises both lane
  // kinds: fixed patterns for mask bits 0-5 and per-block broadcasts for
  // bits 6-7. Lineage mixes AND/OR depth with a shared subterm.
  std::vector<int> endo = {10, 11, 12, 13, 14, 15, 16, 17};
  auto shared = ProvExpr::Plus(ProvExpr::Base(12), ProvExpr::Base(16));
  std::vector<rel::ProvExprPtr> terms;
  terms.push_back(ProvExpr::Times(ProvExpr::Base(10), ProvExpr::Base(11)));
  terms.push_back(ProvExpr::Times(ProvExpr::Base(13), shared));
  terms.push_back(ProvExpr::Times(
      ProvExpr::Base(17), ProvExpr::Times(ProvExpr::Base(14), shared)));
  terms.push_back(ProvExpr::Times(ProvExpr::Base(15), ProvExpr::Base(200)));
  auto lineage = ProvExpr::PlusAll(std::move(terms));
  CompiledLineage compiled = CompiledLineage::Compile(lineage, endo);
  CompiledLineage::Scratch scratch;
  for (uint64_t base = 0; base < 256; base += 64) {
    const uint64_t lanes = compiled.Eval64(base, &scratch);
    for (uint64_t j = 0; j < 64; ++j) {
      EXPECT_EQ((lanes >> j) & 1,
                compiled.Eval(base + j, &scratch) ? 1u : 0u)
          << "mask " << base + j;
    }
  }

  // Degenerate programs: constants broadcast, single vars follow the bit.
  CompiledLineage zero = CompiledLineage::Compile(ProvExpr::Zero(), endo);
  CompiledLineage one = CompiledLineage::Compile(ProvExpr::Base(99), endo);
  EXPECT_EQ(zero.Eval64(0, &scratch), 0u);
  EXPECT_EQ(one.Eval64(0, &scratch), ~uint64_t{0});
  CompiledLineage var =
      CompiledLineage::Compile(ProvExpr::Base(12), endo);  // bit 2
  EXPECT_EQ(var.Eval64(0, &scratch), 0xF0F0F0F0F0F0F0F0ULL);
  CompiledLineage hi =
      CompiledLineage::Compile(ProvExpr::Base(17), endo);  // bit 7
  EXPECT_EQ(hi.Eval64(0, &scratch), 0u);
  EXPECT_EQ(hi.Eval64(1ULL << 7, &scratch), ~uint64_t{0});
}

TEST(CompiledLineageTest, SingleVarAndConstantClassification) {
  std::vector<int> endo = {4, 6};
  int bit = -1;
  bool cval = true;
  CompiledLineage var = CompiledLineage::Compile(
      ProvExpr::Times(ProvExpr::Base(4), ProvExpr::Base(80)), endo);
  EXPECT_TRUE(var.IsSingleVar(&bit));
  EXPECT_EQ(bit, 0);
  CompiledLineage zero = CompiledLineage::Compile(ProvExpr::Zero(), endo);
  EXPECT_TRUE(zero.IsConst(&cval));
  EXPECT_FALSE(cval);
}

TEST(SharedScanAggregateTest, MatchesRebuildPerCoalitionBitwise) {
  // Four endogenous rows with non-trivially-summing double salaries: the
  // shared-scan value must equal re-running select+aggregate on each
  // sub-instance, bit for bit.
  Relation emp("emp", {"name", "salary"});
  const double salaries[] = {80.33, 120.1, 95.7, 100.25};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(emp.AppendBase({Value::Str("e" + std::to_string(i)),
                                Value::Double(salaries[i])},
                               i)
                    .ok());
  }
  ExprPtr pred =
      Expr::Gt(Expr::Column(1), Expr::Const(Value::Double(85.0)));
  std::vector<int> endo = {0, 1, 2, 3};
  auto all_rows = Select(emp, pred).ValueOrDie();

  for (AggFn fn : {AggFn::kCount, AggFn::kSum, AggFn::kAvg, AggFn::kMin,
                   AggFn::kMax}) {
    auto shared = SharedScanAggregate::Build(all_rows, fn, 1, endo);
    ASSERT_TRUE(shared.ok());
    for (uint64_t mask = 0; mask < 16; ++mask) {
      Relation sub("emp", emp.columns());
      for (int i = 0; i < emp.num_tuples(); ++i) {
        if ((mask >> i) & 1) {
          ASSERT_TRUE(sub.Append(emp.tuple(i), emp.annotation(i)).ok());
        }
      }
      auto rows = Select(sub, pred).ValueOrDie();
      auto agg = GroupByAggregate(rows, {}, fn, 1, "a").ValueOrDie();
      double naive =
          agg.num_tuples() ? agg.tuple(0)[0].AsDouble() : 0.0;
      EXPECT_EQ(Bits(shared->Eval(mask)), Bits(naive))
          << "fn " << static_cast<int>(fn) << " mask " << mask;
    }
  }
}

TEST(SharedScanAggregateTest, DrivesNumericShapleyViaAdapter) {
  Relation emp("emp", {"name", "salary"});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(emp.AppendBase({Value::Str("e" + std::to_string(i)),
                                Value::Double(90.0 + 7.3 * i)},
                               i)
                    .ok());
  }
  ExprPtr pred =
      Expr::Gt(Expr::Column(1), Expr::Const(Value::Double(95.0)));
  std::vector<int> endo = {0, 1, 2, 3, 4};
  auto rows = Select(emp, pred).ValueOrDie();
  auto shared =
      SharedScanAggregate::Build(rows, AggFn::kSum, 1, endo).ValueOrDie();

  auto naive_value = [&](const std::vector<int>& present) {
    std::set<int> p(present.begin(), present.end());
    Relation sub("emp", emp.columns());
    for (int i = 0; i < emp.num_tuples(); ++i) {
      if (p.count(i)) {
        EXPECT_TRUE(sub.Append(emp.tuple(i), emp.annotation(i)).ok());
      }
    }
    auto selected = Select(sub, pred).ValueOrDie();
    auto agg =
        GroupByAggregate(selected, {}, AggFn::kSum, 1, "a").ValueOrDie();
    return agg.num_tuples() ? agg.tuple(0)[0].AsDouble() : 0.0;
  };

  auto fast =
      NumericQueryTupleShapley(shared.AsQueryValue(), endo).ValueOrDie();
  auto slow = NumericQueryTupleShapley(naive_value, endo).ValueOrDie();
  EXPECT_EQ(fast.exact, slow.exact);
  EXPECT_EQ(fast.game_evaluations, slow.game_evaluations);
  ASSERT_EQ(fast.values.size(), slow.values.size());
  for (const auto& [id, value] : fast.values)
    EXPECT_EQ(Bits(value), Bits(slow.values.at(id))) << "tuple " << id;
}

}  // namespace
}  // namespace xai::rel
