#include "xai/explain/global_importance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "xai/core/stats.h"
#include "xai/data/synthetic.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/interaction.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/gbdt.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/metrics.h"

namespace xai {
namespace {

struct TrainedGbdt {
  Dataset train;
  GbdtModel model;
};

TrainedGbdt MakeTrained(uint64_t seed) {
  Dataset train = MakeLoans(800, seed);
  GbdtModel::Config config;
  config.n_trees = 40;
  auto model = GbdtModel::Train(train, config).ValueOrDie();
  return {std::move(train), std::move(model)};
}

TEST(GlobalShapTest, IrrelevantFeatureRanksLowRelevantHigh) {
  TrainedGbdt t = MakeTrained(1);
  TreeEnsembleView view = TreeEnsembleView::Of(t.model);
  Vector importance = GlobalShapImportance(view, t.train, 100);
  int gender = t.train.schema().FeatureIndex("gender");
  int dti = t.train.schema().FeatureIndex("debt_to_income");
  // gender never enters the loans label mechanism.
  EXPECT_LT(importance[gender], 0.3 * importance[dti]);
}

TEST(GlobalShapTest, NonNegativeAndDeterministic) {
  TrainedGbdt t = MakeTrained(2);
  TreeEnsembleView view = TreeEnsembleView::Of(t.model);
  Vector a = GlobalShapImportance(view, t.train, 50);
  Vector b = GlobalShapImportance(view, t.train, 50);
  for (size_t j = 0; j < a.size(); ++j) {
    EXPECT_GE(a[j], 0.0);
    EXPECT_DOUBLE_EQ(a[j], b[j]);
  }
}

TEST(SplitFrequencyTest, SumsToOneAndSkipsUnusedFeatures) {
  TrainedGbdt t = MakeTrained(3);
  TreeEnsembleView view = TreeEnsembleView::Of(t.model);
  Vector importance =
      SplitFrequencyImportance(view, t.train.num_features());
  double sum = 0;
  for (double v : importance) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(SplitFrequencyTest, AgreesWithShapOnTopFeature) {
  TrainedGbdt t = MakeTrained(4);
  TreeEnsembleView view = TreeEnsembleView::Of(t.model);
  Vector shap = GlobalShapImportance(view, t.train, 100);
  Vector freq = SplitFrequencyImportance(view, t.train.num_features());
  // Both should broadly agree on ordering (rank correlation positive).
  EXPECT_GT(SpearmanCorrelation(shap, freq), 0.4);
}

TEST(PermutationImportanceTest, RelevantFeatureHasPositiveDrop) {
  TrainedGbdt t = MakeTrained(5);
  Rng rng(6);
  Vector importance =
      PermutationImportance(AsPredictFn(t.model), t.train, Auc, 2, &rng)
          .ValueOrDie();
  int dti = t.train.schema().FeatureIndex("debt_to_income");
  int gender = t.train.schema().FeatureIndex("gender");
  EXPECT_GT(importance[dti], 0.02);
  EXPECT_LT(std::fabs(importance[gender]), 0.02);
}

TEST(PermutationImportanceTest, RejectsBadInput) {
  TrainedGbdt t = MakeTrained(7);
  Rng rng(8);
  Dataset tiny = t.train.Subset({0});
  EXPECT_FALSE(
      PermutationImportance(AsPredictFn(t.model), tiny, Auc, 2, &rng).ok());
  EXPECT_FALSE(
      PermutationImportance(AsPredictFn(t.model), t.train, Auc, 0, &rng)
          .ok());
}

TEST(ImportanceToStringTest, SortedOutput) {
  Schema schema;
  schema.features = {FeatureSpec::Numeric("low"),
                     FeatureSpec::Numeric("high")};
  std::string text = ImportanceToString({0.1, 0.9}, schema);
  EXPECT_LT(text.find("high"), text.find("low"));
}

// ---- Shapley interaction values ----

class FunctionGame : public CoalitionGame {
 public:
  FunctionGame(int n, std::function<double(uint64_t)> fn)
      : n_(n), fn_(std::move(fn)) {}
  int num_players() const override { return n_; }
  double Value(uint64_t mask) const override { return fn_(mask); }

 private:
  int n_;
  std::function<double(uint64_t)> fn_;
};

TEST(InteractionTest, AdditiveGameHasZeroOffDiagonals) {
  FunctionGame game(4, [](uint64_t mask) {
    double vals[] = {1.0, -2.0, 0.5, 3.0};
    double acc = 0;
    for (int i = 0; i < 4; ++i)
      if (mask & (1ULL << i)) acc += vals[i];
    return acc;
  });
  Matrix phi = ExactShapleyInteractions(game).ValueOrDie();
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_NEAR(phi(i, j), 0.0, 1e-12);
      }
    }
  }
  EXPECT_NEAR(phi(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(phi(3, 3), 3.0, 1e-12);
}

TEST(InteractionTest, PureProductGameConcentratesOnThePair) {
  // v(S) = 1 iff both 0 and 1 in S: the whole value is interaction.
  FunctionGame game(3, [](uint64_t mask) {
    return (mask & 1) && (mask & 2) ? 1.0 : 0.0;
  });
  Matrix phi = ExactShapleyInteractions(game).ValueOrDie();
  EXPECT_GT(phi(0, 1), 0.2);
  EXPECT_NEAR(phi(0, 1), phi(1, 0), 1e-12);  // Symmetry.
  EXPECT_NEAR(phi(0, 2), 0.0, 1e-12);
  EXPECT_NEAR(phi(2, 2), 0.0, 1e-12);
}

TEST(InteractionTest, RowSumsEqualShapleyValues) {
  auto [d, gt] = MakeLogisticData(60, 5, 9);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  MarginalFeatureGame game(AsPredictFn(model), d.Row(2), d.x(), 12);
  Matrix phi = ExactShapleyInteractions(game).ValueOrDie();
  Vector shapley = ExactShapley(game).ValueOrDie();
  for (int i = 0; i < 5; ++i) {
    double row_sum = 0;
    for (int j = 0; j < 5; ++j) row_sum += phi(i, j);
    EXPECT_NEAR(row_sum, shapley[i], 1e-9);
  }
}

TEST(InteractionTest, TotalSumIsEfficiency) {
  auto [d, gt] = MakeLogisticData(40, 4, 10);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  MarginalFeatureGame game(AsPredictFn(model), d.Row(0), d.x(), 10);
  Matrix phi = ExactShapleyInteractions(game).ValueOrDie();
  double total = 0;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) total += phi(i, j);
  EXPECT_NEAR(total, game.Value((1ULL << 4) - 1) - game.Value(0), 1e-9);
}

TEST(InteractionTest, RefusesLargeGames) {
  FunctionGame game(17, [](uint64_t) { return 0.0; });
  EXPECT_FALSE(ExactShapleyInteractions(game).ok());
}

}  // namespace
}  // namespace xai
