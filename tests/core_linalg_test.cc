#include "xai/core/linalg.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "xai/core/rng.h"

namespace xai {
namespace {

// Generates y = X w + b exactly (no noise).
void MakeExactLinear(int n, int d, uint64_t seed, Matrix* x, Vector* y,
                     Vector* w, double* b) {
  Rng rng(seed);
  *x = Matrix(n, d);
  w->resize(d);
  for (int j = 0; j < d; ++j) (*w)[j] = rng.Uniform(-2, 2);
  *b = rng.Uniform(-1, 1);
  y->resize(n);
  for (int i = 0; i < n; ++i) {
    double acc = *b;
    for (int j = 0; j < d; ++j) {
      (*x)(i, j) = rng.Normal();
      acc += (*w)[j] * (*x)(i, j);
    }
    (*y)[i] = acc;
  }
}

TEST(RidgeTest, RecoversExactCoefficientsWithIntercept) {
  Matrix x;
  Vector y, w;
  double b;
  MakeExactLinear(200, 4, 3, &x, &y, &w, &b);
  Vector coef = RidgeRegression(x, y, 1e-10, true).ValueOrDie();
  ASSERT_EQ(coef.size(), 5u);
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(coef[j], w[j], 1e-6);
  EXPECT_NEAR(coef[4], b, 1e-6);
}

TEST(RidgeTest, NoInterceptFitsThroughOrigin) {
  Matrix x = {{1}, {2}, {3}};
  Vector y = {2, 4, 6};
  Vector coef = RidgeRegression(x, y, 1e-12, false).ValueOrDie();
  ASSERT_EQ(coef.size(), 1u);
  EXPECT_NEAR(coef[0], 2.0, 1e-8);
}

TEST(RidgeTest, PenaltyShrinksCoefficients) {
  Matrix x;
  Vector y, w;
  double b;
  MakeExactLinear(100, 3, 5, &x, &y, &w, &b);
  Vector small = RidgeRegression(x, y, 1e-8, true).ValueOrDie();
  Vector large = RidgeRegression(x, y, 1e4, true).ValueOrDie();
  double norm_small = 0, norm_large = 0;
  for (int j = 0; j < 3; ++j) {
    norm_small += small[j] * small[j];
    norm_large += large[j] * large[j];
  }
  EXPECT_LT(norm_large, norm_small * 0.1);
}

TEST(RidgeTest, DimensionMismatchRejected) {
  Matrix x(3, 2);
  EXPECT_FALSE(RidgeRegression(x, {1, 2}, 0.1).ok());
}

TEST(WeightedRidgeTest, ZeroWeightIgnoresRow) {
  // Two clean points plus an outlier with weight 0.
  Matrix x = {{1}, {2}, {3}};
  Vector y = {2, 4, 100};
  Vector w = {1, 1, 0};
  Vector coef = WeightedRidgeRegression(x, y, w, 1e-10, false).ValueOrDie();
  EXPECT_NEAR(coef[0], 2.0, 1e-6);
}

TEST(WeightedRidgeTest, MatchesUnweightedWhenUniform) {
  Matrix x;
  Vector y, w;
  double b;
  MakeExactLinear(60, 3, 9, &x, &y, &w, &b);
  Vector ones(60, 1.0);
  Vector a = RidgeRegression(x, y, 0.5, true).ValueOrDie();
  Vector c = WeightedRidgeRegression(x, y, ones, 0.5, true).ValueOrDie();
  for (size_t j = 0; j < a.size(); ++j) EXPECT_NEAR(a[j], c[j], 1e-10);
}

TEST(ConstrainedWlsTest, ConstraintHolds) {
  Rng rng(17);
  Matrix x(40, 4);
  Vector y(40), w(40, 1.0);
  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < 4; ++j) x(i, j) = rng.Normal();
    y[i] = rng.Normal();
  }
  Vector c = {1, 1, 1, 1};
  double d = 3.7;
  Vector sol = ConstrainedWeightedLeastSquares(x, y, w, c, d).ValueOrDie();
  EXPECT_NEAR(Dot(c, sol), d, 1e-8);
}

TEST(ConstrainedWlsTest, MatchesUnconstrainedWhenConstraintInactive) {
  // If the unconstrained optimum already satisfies c.w = d, the constrained
  // solution equals it.
  Matrix x;
  Vector y, w_true;
  double b;
  MakeExactLinear(300, 3, 21, &x, &y, &w_true, &b);
  // Remove intercept effect so the optimum is w_true exactly.
  for (int i = 0; i < x.rows(); ++i) y[i] -= b;
  Vector ones(x.rows(), 1.0);
  Vector c = {1, 1, 1};
  double d = w_true[0] + w_true[1] + w_true[2];
  Vector sol =
      ConstrainedWeightedLeastSquares(x, y, ones, c, d).ValueOrDie();
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(sol[j], w_true[j], 1e-6);
}

TEST(ConstrainedWlsTest, AllZeroSampleWeightsStillSatisfiesConstraint) {
  // With every sample weight zero the data term vanishes; the reduced ridge
  // problem returns the zero vector and the eliminated coefficient absorbs
  // the whole constraint: w = (0, d / c_k).
  Matrix x = {{1, 2}, {3, 4}, {5, 6}};
  Vector y = {1, 2, 3};
  Vector w(3, 0.0);
  Vector sol =
      ConstrainedWeightedLeastSquares(x, y, w, {1, 1}, 2.0).ValueOrDie();
  ASSERT_EQ(sol.size(), 2u);
  EXPECT_NEAR(sol[0], 0.0, 1e-9);
  EXPECT_NEAR(sol[1], 2.0, 1e-9);
}

TEST(ConstrainedWlsTest, RankDeficientDuplicateColumns) {
  // Duplicate columns with the constraint w0 - w1 = 0 pin the split: the
  // model (w0 + w1) x = y with y = x has the unique constrained solution
  // w0 = w1 = 0.5 even though X^T X is singular.
  Rng rng(31);
  Matrix x(50, 2);
  Vector y(50), sw(50, 1.0);
  for (int i = 0; i < 50; ++i) {
    double v = rng.Normal();
    x(i, 0) = x(i, 1) = v;
    y[i] = v;
  }
  Vector sol =
      ConstrainedWeightedLeastSquares(x, y, sw, {1, -1}, 0.0).ValueOrDie();
  ASSERT_EQ(sol.size(), 2u);
  EXPECT_NEAR(sol[0], 0.5, 1e-6);
  EXPECT_NEAR(sol[1], 0.5, 1e-6);
}

TEST(ConstrainedWlsTest, SingleColumnSolvesZeroDimensionalReduction) {
  // dim == 1 eliminates the only variable: the reduced design has zero
  // columns and the answer is exactly d / c_0 independent of the data.
  Matrix x = {{1}, {2}, {3}};
  Vector y = {5, -1, 4};
  Vector sw(3, 1.0);
  Vector sol =
      ConstrainedWeightedLeastSquares(x, y, sw, {2}, 3.0).ValueOrDie();
  ASSERT_EQ(sol.size(), 1u);
  EXPECT_DOUBLE_EQ(sol[0], 1.5);
}

TEST(ConstrainedWlsTest, RejectsZeroConstraint) {
  Matrix x(4, 2);
  Vector y(4), w(4, 1.0);
  EXPECT_FALSE(
      ConstrainedWeightedLeastSquares(x, y, w, {0, 0}, 1.0).ok());
}

TEST(ConjugateGradientTest, MatchesCholeskyOnSpd) {
  Rng rng(23);
  int n = 12;
  Matrix x(30, n);
  for (int i = 0; i < 30; ++i)
    for (int j = 0; j < n; ++j) x(i, j) = rng.Normal();
  Matrix a = x.Gram();
  a.AddScaledIdentity(1.0);
  Vector b(n);
  for (int j = 0; j < n; ++j) b[j] = rng.Normal();
  Vector direct = CholeskySolve(a, b).ValueOrDie();
  Vector cg =
      ConjugateGradient([&a](const Vector& v) { return a.MatVec(v); }, b)
          .ValueOrDie();
  for (int j = 0; j < n; ++j) EXPECT_NEAR(cg[j], direct[j], 1e-7);
}

TEST(ConjugateGradientTest, ZeroRhsGivesZero) {
  Matrix a = Matrix::Identity(3);
  Vector cg =
      ConjugateGradient([&a](const Vector& v) { return a.MatVec(v); },
                        {0, 0, 0})
          .ValueOrDie();
  EXPECT_EQ(cg, (Vector{0, 0, 0}));
}

TEST(ConjugateGradientTest, ZeroRhsNeverCallsOperator) {
  // Regression: with ||b|| == 0 the relative stopping rule degenerates; the
  // solver must fall back to the absolute residual, return x = 0 exactly,
  // and never touch the operator (which could otherwise divide by zero).
  int calls = 0;
  Vector cg = ConjugateGradient(
                  [&calls](const Vector& v) {
                    ++calls;
                    return v;
                  },
                  {0, 0, 0, 0})
                  .ValueOrDie();
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(cg, (Vector{0, 0, 0, 0}));
}

// --- Streaming accumulators: the fused-pipeline building blocks must be
// bit-identical to the materialized solvers they replace, for any split of
// the rows into blocks (chains concatenate in ascending row order). ---

::testing::AssertionResult BitEqualVec(const Vector& a, const Vector& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "size mismatch";
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

// Random weighted problem with a sprinkling of exactly-zero weights (the
// accumulator compacts those out of the Gram operands but must keep them in
// the rhs chain, exactly like the materialized path).
void MakeWeightedProblem(int n, int d, uint64_t seed, Matrix* x, Vector* y,
                         Vector* w) {
  Rng rng(seed);
  *x = Matrix(n, d);
  y->resize(n);
  w->resize(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) (*x)(i, j) = rng.Normal();
    (*y)[i] = rng.Normal();
    (*w)[i] = i % 7 == 0 ? 0.0 : rng.Uniform(0.0, 2.0);
  }
}

const std::vector<std::vector<int>> kBlockSplits = {
    {150}, {64, 64, 22}, {1, 149}, {37, 50, 37, 26}};

TEST(WlsAccumulatorTest, BitIdenticalToWeightedRidgeAcrossBlockSplits) {
  const int n = 150, d = 6;
  Matrix x;
  Vector y, w;
  MakeWeightedProblem(n, d, 101, &x, &y, &w);
  Vector ref = WeightedRidgeRegression(x, y, w, 0.5, true).ValueOrDie();

  // The accumulator takes caller-augmented rows; append the intercept
  // column exactly as AppendOnesColumn does.
  std::vector<double> aug(static_cast<size_t>(n) * (d + 1));
  for (int i = 0; i < n; ++i) {
    std::memcpy(&aug[static_cast<size_t>(i) * (d + 1)], x.RowPtr(i),
                sizeof(double) * d);
    aug[static_cast<size_t>(i) * (d + 1) + d] = 1.0;
  }
  for (const std::vector<int>& split : kBlockSplits) {
    WlsAccumulator acc(d + 1, /*fit_intercept=*/true);
    int base = 0;
    for (int bn : split) {
      acc.AddBlock(&aug[static_cast<size_t>(base) * (d + 1)], y.data() + base,
                   w.data() + base, bn);
      base += bn;
    }
    ASSERT_EQ(base, n);
    EXPECT_EQ(acc.rows_seen(), n);
    Vector got = acc.Solve(0.5).ValueOrDie();
    EXPECT_TRUE(BitEqualVec(ref, got)) << "split[0]=" << split[0];
  }
}

TEST(WlsAccumulatorTest, NoInterceptBitIdenticalToWeightedRidge) {
  const int n = 90, d = 4;
  Matrix x;
  Vector y, w;
  MakeWeightedProblem(n, d, 102, &x, &y, &w);
  Vector ref = WeightedRidgeRegression(x, y, w, 0.01, false).ValueOrDie();
  WlsAccumulator acc(d, /*fit_intercept=*/false);
  acc.AddBlock(x.RowPtr(0), y.data(), w.data(), n);
  Vector got = acc.Solve(0.01).ValueOrDie();
  EXPECT_TRUE(BitEqualVec(ref, got));
}

TEST(WlsAccumulatorTest, ResidualSumOfSquaresMatchesDirectEvaluation) {
  const int n = 120, d = 5;
  Matrix x;
  Vector y, w;
  MakeWeightedProblem(n, d, 103, &x, &y, &w);
  WlsAccumulator acc(d, /*fit_intercept=*/false);
  acc.AddBlock(x.RowPtr(0), y.data(), w.data(), n);
  Vector coef = acc.Solve(0.1).ValueOrDie();
  double direct = 0.0, wsum = 0.0, wysum = 0.0;
  for (int i = 0; i < n; ++i) {
    double pred = 0.0;
    for (int j = 0; j < d; ++j) pred += coef[j] * x(i, j);
    direct += w[i] * (y[i] - pred) * (y[i] - pred);
    wsum += w[i];
    wysum += w[i] * y[i];
  }
  double got = acc.ResidualSumOfSquares(coef);
  EXPECT_NEAR(got, direct, 1e-8 * std::max(1.0, direct));
  EXPECT_NEAR(acc.weight_sum(), wsum, 1e-12);
  EXPECT_NEAR(acc.weighted_y_sum(), wysum, 1e-10);
}

TEST(CwlsAccumulatorTest, BitIdenticalToConstrainedWlsAcrossBlockSplits) {
  const int n = 150, d = 5;
  Matrix x;
  Vector y, w;
  MakeWeightedProblem(n, d, 104, &x, &y, &w);
  // Mixed constraint with a zero coefficient: the pivot is the LAST
  // non-zero entry, matching the materialized elimination.
  Vector c = {2.0, 0.0, 1.0, -1.0, 3.0};
  const double dval = 2.5, l2 = 1e-9;
  Vector ref =
      ConstrainedWeightedLeastSquares(x, y, w, c, dval, l2).ValueOrDie();
  for (const std::vector<int>& split : kBlockSplits) {
    CwlsAccumulator acc(d, c, dval);
    int base = 0;
    for (int bn : split) {
      acc.AddBlock(x.RowPtr(base), y.data() + base, w.data() + base, bn);
      base += bn;
    }
    ASSERT_EQ(base, n);
    Vector got = acc.Solve(l2).ValueOrDie();
    EXPECT_TRUE(BitEqualVec(ref, got)) << "split[0]=" << split[0];
    EXPECT_NEAR(Dot(c, got), dval, 1e-8);
  }
}

TEST(CwlsAccumulatorTest, AllZeroWeightsMatchMaterialized) {
  Matrix x = {{1, 2}, {3, 4}, {5, 6}};
  Vector y = {1, 2, 3};
  Vector w(3, 0.0);
  Vector ones = {1.0, 1.0};
  Vector ref =
      ConstrainedWeightedLeastSquares(x, y, w, ones, 2.0).ValueOrDie();
  CwlsAccumulator acc(2, ones, 2.0);
  acc.AddBlock(x.RowPtr(0), y.data(), w.data(), 3);
  Vector got = acc.Solve(1e-9).ValueOrDie();
  EXPECT_TRUE(BitEqualVec(ref, got));
}

TEST(CwlsAccumulatorTest, RejectsZeroConstraint) {
  Vector zeros(3, 0.0);
  CwlsAccumulator acc(3, zeros, 1.0);
  EXPECT_FALSE(acc.Solve(1e-9).ok());
}

TEST(ConjugateGradientTest, RejectsIndefiniteOperator) {
  Matrix a = {{1, 0}, {0, -1}};
  auto result = ConjugateGradient(
      [&a](const Vector& v) { return a.MatVec(v); }, {1, 1});
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace xai
