#include "xai/core/linalg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "xai/core/rng.h"

namespace xai {
namespace {

// Generates y = X w + b exactly (no noise).
void MakeExactLinear(int n, int d, uint64_t seed, Matrix* x, Vector* y,
                     Vector* w, double* b) {
  Rng rng(seed);
  *x = Matrix(n, d);
  w->resize(d);
  for (int j = 0; j < d; ++j) (*w)[j] = rng.Uniform(-2, 2);
  *b = rng.Uniform(-1, 1);
  y->resize(n);
  for (int i = 0; i < n; ++i) {
    double acc = *b;
    for (int j = 0; j < d; ++j) {
      (*x)(i, j) = rng.Normal();
      acc += (*w)[j] * (*x)(i, j);
    }
    (*y)[i] = acc;
  }
}

TEST(RidgeTest, RecoversExactCoefficientsWithIntercept) {
  Matrix x;
  Vector y, w;
  double b;
  MakeExactLinear(200, 4, 3, &x, &y, &w, &b);
  Vector coef = RidgeRegression(x, y, 1e-10, true).ValueOrDie();
  ASSERT_EQ(coef.size(), 5u);
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(coef[j], w[j], 1e-6);
  EXPECT_NEAR(coef[4], b, 1e-6);
}

TEST(RidgeTest, NoInterceptFitsThroughOrigin) {
  Matrix x = {{1}, {2}, {3}};
  Vector y = {2, 4, 6};
  Vector coef = RidgeRegression(x, y, 1e-12, false).ValueOrDie();
  ASSERT_EQ(coef.size(), 1u);
  EXPECT_NEAR(coef[0], 2.0, 1e-8);
}

TEST(RidgeTest, PenaltyShrinksCoefficients) {
  Matrix x;
  Vector y, w;
  double b;
  MakeExactLinear(100, 3, 5, &x, &y, &w, &b);
  Vector small = RidgeRegression(x, y, 1e-8, true).ValueOrDie();
  Vector large = RidgeRegression(x, y, 1e4, true).ValueOrDie();
  double norm_small = 0, norm_large = 0;
  for (int j = 0; j < 3; ++j) {
    norm_small += small[j] * small[j];
    norm_large += large[j] * large[j];
  }
  EXPECT_LT(norm_large, norm_small * 0.1);
}

TEST(RidgeTest, DimensionMismatchRejected) {
  Matrix x(3, 2);
  EXPECT_FALSE(RidgeRegression(x, {1, 2}, 0.1).ok());
}

TEST(WeightedRidgeTest, ZeroWeightIgnoresRow) {
  // Two clean points plus an outlier with weight 0.
  Matrix x = {{1}, {2}, {3}};
  Vector y = {2, 4, 100};
  Vector w = {1, 1, 0};
  Vector coef = WeightedRidgeRegression(x, y, w, 1e-10, false).ValueOrDie();
  EXPECT_NEAR(coef[0], 2.0, 1e-6);
}

TEST(WeightedRidgeTest, MatchesUnweightedWhenUniform) {
  Matrix x;
  Vector y, w;
  double b;
  MakeExactLinear(60, 3, 9, &x, &y, &w, &b);
  Vector ones(60, 1.0);
  Vector a = RidgeRegression(x, y, 0.5, true).ValueOrDie();
  Vector c = WeightedRidgeRegression(x, y, ones, 0.5, true).ValueOrDie();
  for (size_t j = 0; j < a.size(); ++j) EXPECT_NEAR(a[j], c[j], 1e-10);
}

TEST(ConstrainedWlsTest, ConstraintHolds) {
  Rng rng(17);
  Matrix x(40, 4);
  Vector y(40), w(40, 1.0);
  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < 4; ++j) x(i, j) = rng.Normal();
    y[i] = rng.Normal();
  }
  Vector c = {1, 1, 1, 1};
  double d = 3.7;
  Vector sol = ConstrainedWeightedLeastSquares(x, y, w, c, d).ValueOrDie();
  EXPECT_NEAR(Dot(c, sol), d, 1e-8);
}

TEST(ConstrainedWlsTest, MatchesUnconstrainedWhenConstraintInactive) {
  // If the unconstrained optimum already satisfies c.w = d, the constrained
  // solution equals it.
  Matrix x;
  Vector y, w_true;
  double b;
  MakeExactLinear(300, 3, 21, &x, &y, &w_true, &b);
  // Remove intercept effect so the optimum is w_true exactly.
  for (int i = 0; i < x.rows(); ++i) y[i] -= b;
  Vector ones(x.rows(), 1.0);
  Vector c = {1, 1, 1};
  double d = w_true[0] + w_true[1] + w_true[2];
  Vector sol =
      ConstrainedWeightedLeastSquares(x, y, ones, c, d).ValueOrDie();
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(sol[j], w_true[j], 1e-6);
}

TEST(ConstrainedWlsTest, AllZeroSampleWeightsStillSatisfiesConstraint) {
  // With every sample weight zero the data term vanishes; the reduced ridge
  // problem returns the zero vector and the eliminated coefficient absorbs
  // the whole constraint: w = (0, d / c_k).
  Matrix x = {{1, 2}, {3, 4}, {5, 6}};
  Vector y = {1, 2, 3};
  Vector w(3, 0.0);
  Vector sol =
      ConstrainedWeightedLeastSquares(x, y, w, {1, 1}, 2.0).ValueOrDie();
  ASSERT_EQ(sol.size(), 2u);
  EXPECT_NEAR(sol[0], 0.0, 1e-9);
  EXPECT_NEAR(sol[1], 2.0, 1e-9);
}

TEST(ConstrainedWlsTest, RankDeficientDuplicateColumns) {
  // Duplicate columns with the constraint w0 - w1 = 0 pin the split: the
  // model (w0 + w1) x = y with y = x has the unique constrained solution
  // w0 = w1 = 0.5 even though X^T X is singular.
  Rng rng(31);
  Matrix x(50, 2);
  Vector y(50), sw(50, 1.0);
  for (int i = 0; i < 50; ++i) {
    double v = rng.Normal();
    x(i, 0) = x(i, 1) = v;
    y[i] = v;
  }
  Vector sol =
      ConstrainedWeightedLeastSquares(x, y, sw, {1, -1}, 0.0).ValueOrDie();
  ASSERT_EQ(sol.size(), 2u);
  EXPECT_NEAR(sol[0], 0.5, 1e-6);
  EXPECT_NEAR(sol[1], 0.5, 1e-6);
}

TEST(ConstrainedWlsTest, SingleColumnSolvesZeroDimensionalReduction) {
  // dim == 1 eliminates the only variable: the reduced design has zero
  // columns and the answer is exactly d / c_0 independent of the data.
  Matrix x = {{1}, {2}, {3}};
  Vector y = {5, -1, 4};
  Vector sw(3, 1.0);
  Vector sol =
      ConstrainedWeightedLeastSquares(x, y, sw, {2}, 3.0).ValueOrDie();
  ASSERT_EQ(sol.size(), 1u);
  EXPECT_DOUBLE_EQ(sol[0], 1.5);
}

TEST(ConstrainedWlsTest, RejectsZeroConstraint) {
  Matrix x(4, 2);
  Vector y(4), w(4, 1.0);
  EXPECT_FALSE(
      ConstrainedWeightedLeastSquares(x, y, w, {0, 0}, 1.0).ok());
}

TEST(ConjugateGradientTest, MatchesCholeskyOnSpd) {
  Rng rng(23);
  int n = 12;
  Matrix x(30, n);
  for (int i = 0; i < 30; ++i)
    for (int j = 0; j < n; ++j) x(i, j) = rng.Normal();
  Matrix a = x.Gram();
  a.AddScaledIdentity(1.0);
  Vector b(n);
  for (int j = 0; j < n; ++j) b[j] = rng.Normal();
  Vector direct = CholeskySolve(a, b).ValueOrDie();
  Vector cg =
      ConjugateGradient([&a](const Vector& v) { return a.MatVec(v); }, b)
          .ValueOrDie();
  for (int j = 0; j < n; ++j) EXPECT_NEAR(cg[j], direct[j], 1e-7);
}

TEST(ConjugateGradientTest, ZeroRhsGivesZero) {
  Matrix a = Matrix::Identity(3);
  Vector cg =
      ConjugateGradient([&a](const Vector& v) { return a.MatVec(v); },
                        {0, 0, 0})
          .ValueOrDie();
  EXPECT_EQ(cg, (Vector{0, 0, 0}));
}

TEST(ConjugateGradientTest, ZeroRhsNeverCallsOperator) {
  // Regression: with ||b|| == 0 the relative stopping rule degenerates; the
  // solver must fall back to the absolute residual, return x = 0 exactly,
  // and never touch the operator (which could otherwise divide by zero).
  int calls = 0;
  Vector cg = ConjugateGradient(
                  [&calls](const Vector& v) {
                    ++calls;
                    return v;
                  },
                  {0, 0, 0, 0})
                  .ValueOrDie();
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(cg, (Vector{0, 0, 0, 0}));
}

TEST(ConjugateGradientTest, RejectsIndefiniteOperator) {
  Matrix a = {{1, 0}, {0, -1}};
  auto result = ConjugateGradient(
      [&a](const Vector& v) { return a.MatVec(v); }, {1, 1});
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace xai
