#include "xai/core/combinatorics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xai {
namespace {

TEST(CombinatoricsTest, Factorial) {
  EXPECT_DOUBLE_EQ(Factorial(0), 1);
  EXPECT_DOUBLE_EQ(Factorial(5), 120);
  EXPECT_DOUBLE_EQ(Factorial(10), 3628800);
}

TEST(CombinatoricsTest, Binomial) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 0), 1);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 10), 1);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(4, 7), 0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(52, 5), 2598960);
}

TEST(CombinatoricsTest, ShapleyWeightsSumToOne) {
  // sum over subset sizes s of C(n-1, s) * w(n, s) = 1.
  for (int n = 1; n <= 12; ++n) {
    double total = 0.0;
    for (int s = 0; s < n; ++s)
      total += BinomialCoefficient(n - 1, s) * ShapleyWeight(n, s);
    EXPECT_NEAR(total, 1.0, 1e-12) << "n=" << n;
  }
}

TEST(CombinatoricsTest, ForEachSubsetVisitsAll) {
  int count = 0;
  uint64_t xor_acc = 0;
  ForEachSubset(4, [&](uint64_t mask) {
    ++count;
    xor_acc ^= mask;
  });
  EXPECT_EQ(count, 16);
  EXPECT_EQ(xor_acc, 0u);  // Every mask appears exactly once.
}

TEST(CombinatoricsTest, ForEachSubsetOfElements) {
  std::vector<uint64_t> masks;
  ForEachSubsetOf({1, 3}, [&](uint64_t m) { masks.push_back(m); });
  ASSERT_EQ(masks.size(), 4u);
  EXPECT_EQ(masks[0], 0u);
  EXPECT_EQ(masks[1], 1u << 1);
  EXPECT_EQ(masks[2], 1u << 3);
  EXPECT_EQ(masks[3], (1u << 1) | (1u << 3));
}

TEST(CombinatoricsTest, MaskConversions) {
  std::vector<int> idx = {0, 2, 5};
  uint64_t mask = IndicesToMask(idx);
  EXPECT_EQ(mask, 0b100101u);
  EXPECT_EQ(MaskToIndices(mask), idx);
  EXPECT_EQ(PopCount(mask), 3);
}

TEST(ShapleySetFunctionTest, AdditiveGameGivesIndividualValues) {
  // v(S) = sum of per-player values: Shapley = those values.
  std::vector<double> vals = {1.0, -2.0, 0.5, 3.0};
  auto v = [&](uint64_t mask) {
    double acc = 0.0;
    for (int i = 0; i < 4; ++i)
      if (mask & (1ULL << i)) acc += vals[i];
    return acc;
  };
  std::vector<double> phi = ShapleyOfSetFunction(4, v);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(phi[i], vals[i], 1e-12);
}

TEST(ShapleySetFunctionTest, GloveGame) {
  // Players 0,1 hold left gloves, player 2 the right glove;
  // v(S) = 1 iff S contains a left and the right glove.
  auto v = [](uint64_t mask) {
    bool left = (mask & 1) || (mask & 2);
    bool right = mask & 4;
    return left && right ? 1.0 : 0.0;
  };
  std::vector<double> phi = ShapleyOfSetFunction(3, v);
  EXPECT_NEAR(phi[0], 1.0 / 6, 1e-12);
  EXPECT_NEAR(phi[1], 1.0 / 6, 1e-12);
  EXPECT_NEAR(phi[2], 4.0 / 6, 1e-12);
}

TEST(ShapleySetFunctionTest, EfficiencyHoldsForRandomGame) {
  // Random game: Shapley values must sum to v(N) - v(empty).
  auto v = [](uint64_t mask) {
    // A fixed arbitrary but deterministic function.
    return std::sin(static_cast<double>(mask) * 1.7) +
           0.3 * PopCount(mask);
  };
  std::vector<double> phi = ShapleyOfSetFunction(6, v);
  double sum = 0.0;
  for (double p : phi) sum += p;
  EXPECT_NEAR(sum, v((1ULL << 6) - 1) - v(0), 1e-9);
}

TEST(ShapleySetFunctionTest, DummyPlayerGetsZero) {
  // Player 2 never changes the value.
  auto v = [](uint64_t mask) {
    return ((mask & 1) ? 2.0 : 0.0) + ((mask & 2) ? 1.0 : 0.0);
  };
  std::vector<double> phi = ShapleyOfSetFunction(3, v);
  EXPECT_NEAR(phi[2], 0.0, 1e-12);
}

TEST(ShapleySetFunctionTest, SymmetricPlayersGetEqualShares) {
  // v(S) = |S|^2: all players symmetric.
  auto v = [](uint64_t mask) {
    double s = PopCount(mask);
    return s * s;
  };
  std::vector<double> phi = ShapleyOfSetFunction(5, v);
  for (int i = 1; i < 5; ++i) EXPECT_NEAR(phi[i], phi[0], 1e-12);
  EXPECT_NEAR(phi[0], 5.0, 1e-12);  // Sum = 25, split 5 ways.
}

}  // namespace
}  // namespace xai
