#include "xai/model/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xai {
namespace {

TEST(MetricsTest, AccuracyThresholdsAtHalf) {
  EXPECT_DOUBLE_EQ(Accuracy({0.9, 0.2, 0.6, 0.4}, {1, 0, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({0.9, 0.2}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(Accuracy({0.5}, {1}), 1.0);  // 0.5 rounds up.
}

TEST(MetricsTest, AucPerfectRanking) {
  EXPECT_DOUBLE_EQ(Auc({0.1, 0.4, 0.35, 0.8}, {0, 0, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Auc({0.8, 0.1}, {0, 1}), 0.0);
}

TEST(MetricsTest, AucRandomIsHalf) {
  // All scores equal: AUC 0.5 by tie handling.
  EXPECT_DOUBLE_EQ(Auc({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);
}

TEST(MetricsTest, AucKnownMixedCase) {
  // scores: pos {0.9, 0.4}, neg {0.5, 0.1}:
  // pairs: (0.9>0.5),(0.9>0.1),(0.4<0.5),(0.4>0.1) => 3/4.
  EXPECT_DOUBLE_EQ(Auc({0.9, 0.4, 0.5, 0.1}, {1, 1, 0, 0}), 0.75);
}

TEST(MetricsTest, AucDegenerateClasses) {
  EXPECT_DOUBLE_EQ(Auc({0.2, 0.8}, {1, 1}), 0.5);
}

TEST(MetricsTest, LogLossKnownValue) {
  double ll = LogLoss({0.8, 0.3}, {1, 0});
  EXPECT_NEAR(ll, (-std::log(0.8) - std::log(0.7)) / 2, 1e-12);
}

TEST(MetricsTest, LogLossClipsExtremes) {
  EXPECT_TRUE(std::isfinite(LogLoss({0.0, 1.0}, {1, 0})));
}

TEST(MetricsTest, Mse) {
  EXPECT_DOUBLE_EQ(Mse({1, 2, 3}, {1, 2, 5}), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(Mse({}, {}), 0.0);
}

TEST(MetricsTest, PrecisionRecall) {
  // preds: 1,1,0,0 ; labels: 1,0,1,0 -> TP=1 FP=1 FN=1.
  Vector scores = {0.9, 0.8, 0.1, 0.2};
  Vector labels = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(Precision(scores, labels), 0.5);
  EXPECT_DOUBLE_EQ(Recall(scores, labels), 0.5);
}

TEST(MetricsTest, PrecisionNoPositivesPredicted) {
  EXPECT_DOUBLE_EQ(Precision({0.1, 0.2}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(Recall({0.1, 0.2}, {0, 0}), 0.0);
}

}  // namespace
}  // namespace xai
