#include "xai/core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace xai {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.NextU32() == b.NextU32()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.Uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double z = rng.Normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, UniformIntInRangeAndUnbiased) {
  Rng rng(19);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    int v = rng.UniformInt(7);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 7);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 7.0, 0.05 * n / 7.0);
}

TEST(RngTest, UniformIntTwoArg) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(10, 20);
    EXPECT_GE(v, 10);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.Bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(31);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalSkipsZeroWeight) {
  Rng rng(37);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Categorical(w), 1);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(41);
  std::vector<int> p = rng.Permutation(50);
  std::set<int> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, PermutationIsShuffled) {
  Rng rng(43);
  std::vector<int> identity(100);
  for (int i = 0; i < 100; ++i) identity[i] = i;
  EXPECT_NE(rng.Permutation(100), identity);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(47);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> s = rng.SampleWithoutReplacement(100, 10);
    std::set<int> seen(s.begin(), s.end());
    EXPECT_EQ(seen.size(), 10u);
    for (int v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 100);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(53);
  std::vector<int> s = rng.SampleWithoutReplacement(5, 5);
  std::set<int> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, SampleWithoutReplacementIsUniform) {
  Rng rng(59);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t)
    for (int v : rng.SampleWithoutReplacement(10, 3)) ++counts[v];
  for (int c : counts)
    EXPECT_NEAR(c, trials * 0.3, trials * 0.3 * 0.1);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(61);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.NextU32() == child.NextU32()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(67);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace xai
