// Failure-injection and scale robustness: malformed inputs must produce
// Status errors (never crashes), and data-dependent recursion must survive
// realistic scale.

#include <gtest/gtest.h>

#include <string>

#include "xai/core/rng.h"
#include "xai/data/csv.h"
#include "xai/relational/operators.h"
#include "xai/relational/provenance.h"
#include "xai/relational/relation.h"

namespace xai {
namespace {

TEST(CsvFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(1);
  const std::string alphabet = "abc,\"\n\r0123 .-\t;|";
  for (int trial = 0; trial < 300; ++trial) {
    int len = rng.UniformInt(0, 200);
    std::string text;
    for (int i = 0; i < len; ++i)
      text += alphabet[rng.UniformInt(static_cast<int>(alphabet.size()))];
    // Must either parse or fail cleanly — never crash.
    auto result = ReadCsvString(text);
    if (result.ok()) {
      EXPECT_GE(result->num_features(), 1);
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(CsvFuzzTest, StructuredMutationsNeverCrash) {
  // Mutate a valid CSV by deleting/duplicating random characters.
  std::string base =
      "age,city,label\n30,nyc,1\n40,\"sf, ca\",0\n50,boston,1\n";
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = base;
    int edits = rng.UniformInt(1, 6);
    for (int e = 0; e < edits && !text.empty(); ++e) {
      int pos = rng.UniformInt(static_cast<int>(text.size()));
      if (rng.Bernoulli(0.5)) {
        text.erase(pos, 1);
      } else {
        text.insert(pos, 1, text[pos]);
      }
    }
    auto result = ReadCsvString(text);  // Any Status is fine; no crash.
    (void)result;
  }
}

TEST(CsvTest, HugeFieldHandled) {
  std::string big(100000, 'x');
  std::string text = "a,b\n" + big + ",1\n";
  auto result = ReadCsvString(text);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schema().features[0].categories[0].size(), big.size());
}

TEST(ProvenanceScaleTest, MillionTupleAggregateDoesNotOverflowStack) {
  // A group-by over 1M tuples used to create a 1M-deep Plus chain; the
  // balanced PlusAll keeps the depth logarithmic, so evaluation recursion
  // is safe.
  std::vector<rel::ProvExprPtr> terms;
  const int kN = 1000000;
  terms.reserve(kN);
  for (int i = 0; i < kN; ++i) terms.push_back(rel::ProvExpr::Base(i));
  rel::ProvExprPtr sum = rel::ProvExpr::PlusAll(std::move(terms));
  // Counting semiring: 1M derivations.
  EXPECT_EQ(sum->EvalCount([](int) { return 1; }), kN);
  // Boolean: derivable iff any tuple present.
  EXPECT_TRUE(sum->EvalBool([](int id) { return id == 999999; }));
  EXPECT_FALSE(sum->EvalBool([](int) { return false; }));
}

TEST(ProvenanceScaleTest, GroupByOverLargeRelation) {
  rel::Relation r("big", {"k", "v"});
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(r.AppendBase({rel::Value::Int(i % 3),
                              rel::Value::Double(1.0)},
                             i)
                    .ok());
  }
  auto agg =
      rel::GroupByAggregate(r, {0}, rel::AggFn::kCount, -1, "cnt")
          .ValueOrDie();
  ASSERT_EQ(agg.num_tuples(), 3);
  // Evaluating the counting semiring over the ~67k-term annotation must
  // not overflow the stack.
  EXPECT_GT(agg.annotation(0)->EvalCount([](int) { return 1; }), 60000);
}

TEST(PlusAllTest, SmallCasesMatchPlus) {
  using rel::ProvExpr;
  EXPECT_EQ(ProvExpr::PlusAll({})->kind(), ProvExpr::Kind::kZero);
  auto single = ProvExpr::PlusAll({ProvExpr::Base(3)});
  EXPECT_EQ(single->base_id(), 3);
  auto pair = ProvExpr::PlusAll({ProvExpr::Base(1), ProvExpr::Base(2)});
  EXPECT_EQ(pair->EvalCount([](int) { return 1; }), 2);
}

// Random-expression property: ProbabilityExact with deterministic 0/1
// probabilities agrees with EvalBool under the corresponding world.
TEST(ProvenancePropertyTest, DegenerateProbabilityMatchesBool) {
  Rng rng(3);
  for (int trial = 0; trial < 60; ++trial) {
    // Random expression over 6 variables.
    std::function<rel::ProvExprPtr(int)> build = [&](int depth) {
      if (depth == 0 || rng.Bernoulli(0.35))
        return rel::ProvExpr::Base(rng.UniformInt(6));
      auto a = build(depth - 1);
      auto b = build(depth - 1);
      return rng.Bernoulli(0.5) ? rel::ProvExpr::Plus(a, b)
                                : rel::ProvExpr::Times(a, b);
    };
    rel::ProvExprPtr expr = build(4);
    // A random deterministic world.
    bool world[6];
    for (bool& w : world) w = rng.Bernoulli(0.5);
    double p = expr->ProbabilityExact(
        [&](int id) { return world[id] ? 1.0 : 0.0; });
    bool b = expr->EvalBool([&](int id) { return world[id]; });
    EXPECT_DOUBLE_EQ(p, b ? 1.0 : 0.0);
  }
}

// Random-expression property: Monte-Carlo probability converges to exact.
TEST(ProvenancePropertyTest, MonteCarloTracksExactOnRandomExpressions) {
  Rng rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    std::function<rel::ProvExprPtr(int)> build = [&](int depth) {
      if (depth == 0 || rng.Bernoulli(0.3))
        return rel::ProvExpr::Base(rng.UniformInt(5));
      auto a = build(depth - 1);
      auto b = build(depth - 1);
      return rng.Bernoulli(0.5) ? rel::ProvExpr::Plus(a, b)
                                : rel::ProvExpr::Times(a, b);
    };
    rel::ProvExprPtr expr = build(3);
    auto prob = [](int id) { return 0.2 + 0.1 * id; };
    double exact = expr->ProbabilityExact(prob);
    double mc = expr->ProbabilityMonteCarlo(prob, 60000, 99 + trial);
    EXPECT_NEAR(mc, exact, 0.02);
  }
}

}  // namespace
}  // namespace xai
