// Tests for the flat iterative TreeSHAP kernel
// (explain/shapley/flat_tree_shap.h): bitwise identity against the
// recursive AoS reference across model kinds and thread counts, the lazily
// built cover side-table, batch-vs-loop equality, and the structural edge
// cases (duplicate features on a path, NaN routing, constant / empty /
// deep-degenerate trees, >64-feature models).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "xai/core/combinatorics.h"
#include "xai/core/parallel.h"
#include "xai/data/synthetic.h"
#include "xai/explain/shapley/flat_tree_shap.h"
#include "xai/explain/shapley/tree_shap.h"
#include "xai/model/decision_tree.h"
#include "xai/model/gbdt.h"
#include "xai/model/random_forest.h"
#include "xai/model/tree_ensemble_view.h"

namespace xai {
namespace {

class ThreadsGuard {
 public:
  ThreadsGuard() : saved_(GetNumThreads()) {}
  ~ThreadsGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};

// EXPECT_EQ on doubles is deliberate throughout: the flat kernel's contract
// is BITWISE identity with the recursive reference, not closeness.
void ExpectBitIdentical(const AttributionExplanation& a,
                        const AttributionExplanation& b) {
  ASSERT_EQ(a.attributions.size(), b.attributions.size());
  for (size_t j = 0; j < a.attributions.size(); ++j)
    EXPECT_EQ(a.attributions[j], b.attributions[j]) << "feature " << j;
  EXPECT_EQ(a.base_value, b.base_value);
  EXPECT_EQ(a.prediction, b.prediction);
}

// Flat TreeShap vs the recursive reference on every row, at 1, 4 and 8
// threads (the reference parallelizes over trees, the flat kernel is
// serial per instance — both must be thread-count-invariant).
void CheckViewAgainstLegacy(const TreeEnsembleView& view, const Dataset& d,
                            int rows) {
  ThreadsGuard guard;
  for (int threads : {1, 4, 8}) {
    SetNumThreads(threads);
    for (int i = 0; i < rows; ++i) {
      Vector row = d.Row(i);
      ExpectBitIdentical(TreeShap(view, row), TreeShapLegacy(view, row));
    }
  }
}

TEST(FlatTreeShapTest, ForestBitIdenticalToLegacyAcrossThreadCounts) {
  Dataset d = MakeLoans(200, 21);
  RandomForestConfig config;
  config.n_trees = 12;
  auto model = RandomForestModel::Train(d, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  CheckViewAgainstLegacy(view, d, 40);
}

TEST(FlatTreeShapTest, GbdtBitIdenticalToLegacyAcrossThreadCounts) {
  Dataset d = MakeLoans(200, 22);
  GbdtConfig config;
  config.n_trees = 20;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  CheckViewAgainstLegacy(view, d, 40);
}

TEST(FlatTreeShapTest, SingleTreeBitIdenticalToLegacy) {
  Dataset d = MakeLoans(200, 23);
  auto model = DecisionTreeModel::Train(d).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  CheckViewAgainstLegacy(view, d, 40);
}

TEST(FlatTreeShapTest, BatchMatchesPerRowCallsAtAnyThreadCount) {
  Dataset d = MakeLoans(150, 24);
  GbdtConfig config;
  config.n_trees = 15;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);

  // Per-row references computed serially once.
  ThreadsGuard guard;
  SetNumThreads(1);
  std::vector<AttributionExplanation> per_row;
  for (int i = 0; i < d.num_rows(); ++i)
    per_row.push_back(TreeShap(view, d.Row(i)));

  for (int threads : {1, 4, 8}) {
    SetNumThreads(threads);
    TreeShapBatchResult batch = TreeShapBatch(view, d.x());
    ASSERT_EQ(batch.attributions.rows(), d.num_rows());
    ASSERT_EQ(batch.attributions.cols(), d.num_features());
    ASSERT_EQ(static_cast<int>(batch.predictions.size()), d.num_rows());
    for (int i = 0; i < d.num_rows(); ++i) {
      for (int j = 0; j < d.num_features(); ++j)
        EXPECT_EQ(batch.attributions(i, j), per_row[i].attributions[j])
            << "row " << i << " feature " << j << " threads " << threads;
      EXPECT_EQ(batch.predictions[i], per_row[i].prediction);
      EXPECT_EQ(batch.base_value, per_row[i].base_value);
    }
  }
}

// Root and a grandchild split the same feature: the walk must unwind the
// earlier occurrence (each feature appears on a path once). Checked both
// against the reference and against brute-force exact Shapley values.
TEST(FlatTreeShapTest, DuplicateFeatureAlongPath) {
  std::vector<TreeNode> nodes(7);
  nodes[0] = {0, 0.0, 1, 2, 0.0, 16.0};
  nodes[1] = {-1, 0.0, -1, -1, 1.0, 6.0};
  nodes[2] = {1, 3.0, 3, 4, 0.0, 10.0};
  nodes[3] = {0, -2.0, 5, 6, 0.0, 7.0};  // Splits feature 0 again.
  nodes[4] = {-1, 0.0, -1, -1, 9.0, 3.0};
  nodes[5] = {-1, 0.0, -1, -1, 4.0, 2.0};
  nodes[6] = {-1, 0.0, -1, -1, 6.0, 5.0};
  Tree tree(std::move(nodes));

  TreeEnsembleView view;
  view.trees.push_back(&tree);
  view.scales.push_back(1.0);

  for (Vector x : {Vector{1.0, 2.0}, Vector{1.0, 4.0}, Vector{-1.0, 0.0}}) {
    AttributionExplanation flat = TreeShap(view, x);
    ExpectBitIdentical(flat, TreeShapLegacy(view, x));
    std::vector<double> exact = ShapleyOfSetFunction(2, [&](uint64_t mask) {
      return TreeConditionalExpectation(tree, x, mask);
    });
    EXPECT_NEAR(flat.attributions[0], exact[0], 1e-9);
    EXPECT_NEAR(flat.attributions[1], exact[1], 1e-9);
  }
}

TEST(FlatTreeShapTest, NanRoutesRightLikeTheReference) {
  Dataset d = MakeLoans(100, 25);
  GbdtConfig config;
  config.n_trees = 8;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < 10; ++i) {
    Vector row = d.Row(i);
    row[i % d.num_features()] = nan;
    ExpectBitIdentical(TreeShap(view, row), TreeShapLegacy(view, row));
  }
}

TEST(FlatTreeShapTest, ConstantTreeGivesZeroAttributions) {
  std::vector<TreeNode> nodes(1);
  nodes[0] = {-1, 0.0, -1, -1, 4.2, 10.0};
  Tree tree(std::move(nodes));
  TreeEnsembleView view;
  view.trees.push_back(&tree);
  view.scales.push_back(2.0);

  Vector x = {1.0, 2.0};
  AttributionExplanation exp = TreeShap(view, x);
  ExpectBitIdentical(exp, TreeShapLegacy(view, x));
  EXPECT_EQ(exp.attributions[0], 0.0);
  EXPECT_EQ(exp.attributions[1], 0.0);
  EXPECT_EQ(exp.base_value, 2.0 * 4.2);
  EXPECT_EQ(exp.prediction, 2.0 * 4.2);
}

// The degenerate empty ensemble: a view over zero trees. Attributions are
// all zero, the base value and prediction collapse to view.base.
TEST(FlatTreeShapTest, EmptyEnsembleGivesBaseOnly) {
  TreeEnsembleView view;
  view.base = 0.75;

  Vector x = {1.0, -2.0};
  AttributionExplanation exp = TreeShap(view, x);
  ExpectBitIdentical(exp, TreeShapLegacy(view, x));
  EXPECT_EQ(exp.attributions[0], 0.0);
  EXPECT_EQ(exp.attributions[1], 0.0);
  EXPECT_EQ(exp.base_value, 0.75);
  EXPECT_EQ(exp.prediction, 0.75);

  Matrix rows(2, 2);
  TreeShapBatchResult batch = TreeShapBatch(view, rows);
  EXPECT_EQ(batch.base_value, 0.75);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(batch.attributions(i, 0), 0.0);
    EXPECT_EQ(batch.attributions(i, 1), 0.0);
    EXPECT_EQ(batch.predictions[i], 0.75);
  }
}

// Left-leaning chain 40 levels deep cycling through 3 features: stresses
// the arena's per-depth path buffers and the repeated-feature unwind far
// beyond trained-tree depths.
TEST(FlatTreeShapTest, DeepDegenerateChainTree) {
  const int kDepth = 40;
  // [split, right-leaf] pairs; each split's left child is the next split,
  // the last split's left child is the final leaf.
  std::vector<TreeNode> nodes;
  int index = 0;
  for (int level = 0; level < kDepth; ++level) {
    TreeNode split;
    split.feature = level % 3;
    split.threshold = static_cast<double>(level) - 20.0;
    split.left = index + 2;   // Next split (or the final leaf).
    split.right = index + 1;  // Leaf.
    split.cover = static_cast<double>(2 * (kDepth - level) + 2);
    nodes.push_back(split);
    TreeNode leaf;
    leaf.feature = -1;
    leaf.value = static_cast<double>(level % 7) - 3.0;
    leaf.cover = 2.0;
    nodes.push_back(leaf);
    index += 2;
  }
  TreeNode last;
  last.feature = -1;
  last.value = 11.0;
  last.cover = 2.0;
  nodes.push_back(last);
  Tree tree(std::move(nodes));
  ASSERT_EQ(tree.Depth(), kDepth);

  TreeEnsembleView view;
  view.trees.push_back(&tree);
  view.scales.push_back(1.0);
  for (Vector x : {Vector{-30.0, 0.0, 5.0}, Vector{25.0, -25.0, 0.0},
                   Vector{0.0, 0.0, 0.0}}) {
    ExpectBitIdentical(TreeShap(view, x), TreeShapLegacy(view, x));
  }
}

TEST(FlatTreeShapTest, MoreThanSixtyFourFeatures) {
  auto [d, truth] = MakeLinearData(200, 70, 0.1, 26);
  RandomForestConfig config;
  config.n_trees = 6;
  config.max_depth = 6;
  auto model = RandomForestModel::Train(d, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  for (int i = 0; i < 15; ++i) {
    Vector row = d.Row(i);
    ExpectBitIdentical(TreeShap(view, row), TreeShapLegacy(view, row));
  }
}

// The lazily built side-table caches per-tree expectations bit-identical
// to the per-call TreeExpectedValue scans, and building it twice returns
// the same snapshot.
TEST(FlatTreeShapTest, SideTableCachesExpectedValues) {
  Dataset d = MakeLoans(200, 27);
  RandomForestConfig config;
  config.n_trees = 7;
  auto model = RandomForestModel::Train(d, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);

  auto flat = view.flat();
  EXPECT_EQ(flat->tree_shap_data(), nullptr);  // Not built yet.
  const FlatEnsemble::TreeShapData& data =
      flat->EnsureTreeShapData(view.trees);
  EXPECT_EQ(&flat->EnsureTreeShapData(view.trees), &data);  // Idempotent.
  ASSERT_EQ(static_cast<int>(data.expected.size()), view.num_trees());
  for (int t = 0; t < view.num_trees(); ++t) {
    EXPECT_EQ(data.expected[t], TreeExpectedValue(*view.trees[t]));
    EXPECT_EQ(data.depth[t], view.trees[t]->Depth());
  }
  EXPECT_GT(data.max_depth, 0);
  ASSERT_EQ(static_cast<int>(data.cover.size()), flat->num_nodes());

  FlatTreeShap kernel = FlatTreeShap::Build(view);
  double base = view.base;
  for (int t = 0; t < view.num_trees(); ++t)
    base += view.scales[t] * data.expected[t];
  EXPECT_EQ(kernel.base_value(), base);
  EXPECT_EQ(kernel.max_depth(), data.max_depth);
}

}  // namespace
}  // namespace xai
