#include "xai/data/transform.h"

#include <gtest/gtest.h>

#include <cmath>

#include "xai/core/stats.h"
#include "xai/data/synthetic.h"

namespace xai {
namespace {

Dataset MixedDataset() {
  Schema schema;
  schema.features = {
      FeatureSpec::Numeric("a"),
      FeatureSpec::Categorical("c", {"x", "y"}),
  };
  Matrix x = {{1, 0}, {2, 1}, {3, 0}, {4, 1}, {5, 0}};
  Vector y = {0, 0, 1, 1, 1};
  return Dataset(schema, x, y);
}

TEST(StandardizerTest, TransformsToZeroMeanUnitVariance) {
  Dataset d = MixedDataset();
  Standardizer s = Standardizer::Fit(d);
  Dataset t = s.Transform(d);
  std::vector<double> col = t.x().Col(0);
  EXPECT_NEAR(Mean(col), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(col), 1.0, 1e-12);
}

TEST(StandardizerTest, CategoricalUntouched) {
  Dataset d = MixedDataset();
  Dataset t = Standardizer::Fit(d).Transform(d);
  for (int i = 0; i < d.num_rows(); ++i)
    EXPECT_DOUBLE_EQ(t.At(i, 1), d.At(i, 1));
}

TEST(StandardizerTest, RowRoundTrip) {
  Dataset d = MixedDataset();
  Standardizer s = Standardizer::Fit(d);
  Vector row = {3.5, 1.0};
  Vector copy = row;
  s.TransformRow(&copy);
  s.InverseTransformRow(&copy);
  EXPECT_NEAR(copy[0], row[0], 1e-12);
  EXPECT_DOUBLE_EQ(copy[1], row[1]);
}

TEST(StandardizerTest, ConstantFeatureSafe) {
  Schema schema;
  schema.features = {FeatureSpec::Numeric("const")};
  Matrix x = {{5}, {5}, {5}};
  Dataset d(schema, x, {0, 1, 0});
  Dataset t = Standardizer::Fit(d).Transform(d);
  EXPECT_TRUE(std::isfinite(t.At(0, 0)));
}

TEST(OneHotTest, LayoutAndNames) {
  Dataset d = MixedDataset();
  OneHotEncoder enc = OneHotEncoder::Fit(d.schema());
  EXPECT_EQ(enc.encoded_width(), 3);  // a + c=x + c=y.
  EXPECT_EQ(enc.encoded_names(),
            (std::vector<std::string>{"a", "c=x", "c=y"}));
  EXPECT_EQ(enc.source_feature(), (std::vector<int>{0, 1, 1}));
}

TEST(OneHotTest, EncodeRow) {
  Dataset d = MixedDataset();
  OneHotEncoder enc = OneHotEncoder::Fit(d.schema());
  EXPECT_EQ(enc.EncodeRow({2.5, 1.0}), (Vector{2.5, 0.0, 1.0}));
  EXPECT_EQ(enc.EncodeRow({7.0, 0.0}), (Vector{7.0, 1.0, 0.0}));
}

TEST(OneHotTest, EncodeMatrixMatchesRows) {
  Dataset d = MixedDataset();
  OneHotEncoder enc = OneHotEncoder::Fit(d.schema());
  Matrix m = enc.Encode(d);
  EXPECT_EQ(m.rows(), d.num_rows());
  for (int i = 0; i < d.num_rows(); ++i)
    EXPECT_EQ(m.Row(i), enc.EncodeRow(d.Row(i)));
}

TEST(DiscretizerTest, BinsCoverRange) {
  Dataset d = MakeLoans(500, 3);
  QuantileDiscretizer q = QuantileDiscretizer::Fit(d, 4);
  for (int j = 0; j < d.num_features(); ++j) {
    for (int i = 0; i < d.num_rows(); ++i) {
      int bin = q.BinOf(j, d.At(i, j));
      EXPECT_GE(bin, 0);
      EXPECT_LT(bin, q.NumBins(j));
    }
  }
}

TEST(DiscretizerTest, NumericBinsBalanced) {
  Dataset d = MakeLoans(1000, 5);
  QuantileDiscretizer q = QuantileDiscretizer::Fit(d, 4);
  int age = d.schema().FeatureIndex("age");
  std::vector<int> counts(q.NumBins(age), 0);
  for (int i = 0; i < d.num_rows(); ++i)
    ++counts[q.BinOf(age, d.At(i, age))];
  for (int c : counts) EXPECT_NEAR(c, 250, 60);
}

TEST(DiscretizerTest, CategoricalBinsAreCategories) {
  Dataset d = MixedDataset();
  QuantileDiscretizer q = QuantileDiscretizer::Fit(d, 4);
  EXPECT_EQ(q.NumBins(1), 2);
  EXPECT_EQ(q.BinOf(1, 1.0), 1);
  EXPECT_EQ(q.DescribeBin(1, 0), "c = x");
}

TEST(DiscretizerTest, DescriptionsAreOrderedPredicates) {
  Dataset d = MakeLoans(500, 7);
  QuantileDiscretizer q = QuantileDiscretizer::Fit(d, 4);
  int age = d.schema().FeatureIndex("age");
  std::string first = q.DescribeBin(age, 0);
  std::string last = q.DescribeBin(age, q.NumBins(age) - 1);
  EXPECT_NE(first.find("age <="), std::string::npos);
  EXPECT_NE(last.find("age >"), std::string::npos);
}

TEST(DiscretizerTest, DiscretizeRowMatchesPerFeature) {
  Dataset d = MakeLoans(300, 9);
  QuantileDiscretizer q = QuantileDiscretizer::Fit(d, 4);
  Vector row = d.Row(17);
  std::vector<int> bins = q.Discretize(row);
  for (int j = 0; j < d.num_features(); ++j)
    EXPECT_EQ(bins[j], q.BinOf(j, row[j]));
}

TEST(DiscretizerTest, SampleFromBinStaysInBin) {
  Dataset d = MakeLoans(400, 11);
  QuantileDiscretizer q = QuantileDiscretizer::Fit(d, 4);
  Rng rng(1);
  int credit = d.schema().FeatureIndex("credit_score");
  for (int bin = 0; bin < q.NumBins(credit); ++bin) {
    for (int t = 0; t < 20; ++t) {
      double v = q.SampleFromBin(credit, bin, &rng);
      EXPECT_EQ(q.BinOf(credit, v), bin);
    }
  }
}

// Property sweep over bin counts.
class DiscretizerBinsTest : public ::testing::TestWithParam<int> {};

TEST_P(DiscretizerBinsTest, NumBinsNeverExceedsRequested) {
  Dataset d = MakeIncome(400, 13);
  QuantileDiscretizer q = QuantileDiscretizer::Fit(d, GetParam());
  for (int j = 0; j < d.num_features(); ++j) {
    if (d.schema().features[j].is_categorical()) continue;
    EXPECT_LE(q.NumBins(j), GetParam());
    EXPECT_GE(q.NumBins(j), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Bins, DiscretizerBinsTest,
                         ::testing::Values(2, 3, 4, 8));

}  // namespace
}  // namespace xai
