#include "xai/dbx/query_explanations.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "xai/relational/relation.h"

namespace xai {
namespace {

using rel::Relation;
using rel::Value;

// Sales(region, product, amount): the "west" region dominates the total.
Relation SalesRelation() {
  Relation r("sales", {"region", "product", "amount"});
  struct Row {
    const char* region;
    const char* product;
    int64_t amount;
  };
  Row rows[] = {
      {"west", "widget", 100}, {"west", "widget", 120},
      {"west", "gadget", 80},  {"east", "widget", 10},
      {"east", "gadget", 15},  {"north", "widget", 5},
  };
  for (int i = 0; i < 6; ++i)
    EXPECT_TRUE(r.AppendBase({Value::Str(rows[i].region),
                              Value::Str(rows[i].product),
                              Value::Int(rows[i].amount)},
                             i)
                    .ok());
  return r;
}

double TotalAmount(const Relation& r) {
  double acc = 0;
  for (int i = 0; i < r.num_tuples(); ++i)
    acc += r.tuple(i)[2].AsDouble();
  return acc;
}

TEST(QueryExplanationTest, TopExplanationIsTheDominantRegion) {
  Relation sales = SalesRelation();
  auto explanations =
      ExplainAggregateAnswer(sales, TotalAmount, {0, 1}).ValueOrDie();
  ASSERT_FALSE(explanations.empty());
  const auto& top = explanations[0];
  ASSERT_EQ(top.predicate.size(), 1u);
  EXPECT_EQ(top.predicate[0].first, 0);
  EXPECT_EQ(top.predicate[0].second.AsString(), "west");
  EXPECT_DOUBLE_EQ(top.original, 330);
  EXPECT_DOUBLE_EQ(top.after_intervention, 30);
  EXPECT_DOUBLE_EQ(top.effect, 300);
  EXPECT_EQ(top.support, 3);
}

TEST(QueryExplanationTest, SortedByAbsoluteEffect) {
  Relation sales = SalesRelation();
  auto explanations =
      ExplainAggregateAnswer(sales, TotalAmount, {0, 1}).ValueOrDie();
  for (size_t i = 1; i < explanations.size(); ++i)
    EXPECT_GE(std::fabs(explanations[i - 1].effect),
              std::fabs(explanations[i].effect));
}

TEST(QueryExplanationTest, PairsFindConjunctions) {
  Relation sales = SalesRelation();
  QueryExplanationConfig config;
  config.include_pairs = true;
  config.top_k = 0;
  auto explanations =
      ExplainAggregateAnswer(sales, TotalAmount, {0, 1}, config)
          .ValueOrDie();
  bool found = false;
  for (const auto& exp : explanations) {
    if (exp.predicate.size() == 2 &&
        exp.predicate[0].second.AsString() == "west" &&
        exp.predicate[1].second.AsString() == "widget") {
      EXPECT_DOUBLE_EQ(exp.effect, 220);
      EXPECT_EQ(exp.support, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(QueryExplanationTest, MinSupportFilters) {
  Relation sales = SalesRelation();
  QueryExplanationConfig config;
  config.min_support = 2;
  auto explanations =
      ExplainAggregateAnswer(sales, TotalAmount, {0}, config).ValueOrDie();
  for (const auto& exp : explanations) EXPECT_GE(exp.support, 2);
  // "north" matches only one tuple: filtered out.
  for (const auto& exp : explanations)
    EXPECT_NE(exp.predicate[0].second.AsString(), "north");
}

TEST(QueryExplanationTest, WorksForNonMonotoneQueries) {
  // Query = MAX(amount): removing the west tuples drops the max to 15.
  Relation sales = SalesRelation();
  auto max_amount = [](const Relation& r) {
    double best = 0;
    for (int i = 0; i < r.num_tuples(); ++i)
      best = std::max(best, r.tuple(i)[2].AsDouble());
    return best;
  };
  auto explanations =
      ExplainAggregateAnswer(sales, max_amount, {0}).ValueOrDie();
  ASSERT_FALSE(explanations.empty());
  EXPECT_EQ(explanations[0].predicate[0].second.AsString(), "west");
  EXPECT_DOUBLE_EQ(explanations[0].effect, 120 - 15);
}

TEST(QueryExplanationTest, TopKLimitsOutput) {
  Relation sales = SalesRelation();
  QueryExplanationConfig config;
  config.top_k = 2;
  auto explanations =
      ExplainAggregateAnswer(sales, TotalAmount, {0, 1}, config)
          .ValueOrDie();
  EXPECT_EQ(explanations.size(), 2u);
}

TEST(QueryExplanationTest, ToStringReadable) {
  Relation sales = SalesRelation();
  auto explanations =
      ExplainAggregateAnswer(sales, TotalAmount, {0}).ValueOrDie();
  std::string text = explanations[0].ToString(sales);
  EXPECT_NE(text.find("region = west"), std::string::npos);
  EXPECT_NE(text.find("effect"), std::string::npos);
}

TEST(QueryExplanationTest, RejectsBadInput) {
  Relation sales = SalesRelation();
  Relation empty("empty", {"a"});
  EXPECT_FALSE(ExplainAggregateAnswer(empty, TotalAmount, {0}).ok());
  EXPECT_FALSE(ExplainAggregateAnswer(sales, TotalAmount, {}).ok());
  EXPECT_FALSE(ExplainAggregateAnswer(sales, TotalAmount, {9}).ok());
}

}  // namespace
}  // namespace xai
