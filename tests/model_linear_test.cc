#include "xai/model/linear_regression.h"

#include <gtest/gtest.h>

#include "xai/data/synthetic.h"
#include "xai/model/metrics.h"

namespace xai {
namespace {

TEST(LinearRegressionTest, RecoversNoiselessGroundTruth) {
  auto [d, gt] = MakeLinearData(200, 4, 0.0, 1);
  auto model = LinearRegressionModel::Train(d).ValueOrDie();
  for (int j = 0; j < 4; ++j)
    EXPECT_NEAR(model.weights()[j], gt.weights[j], 1e-5);
  EXPECT_NEAR(model.bias(), gt.bias, 1e-5);
}

TEST(LinearRegressionTest, NoisyFitIsClose) {
  auto [d, gt] = MakeLinearData(5000, 3, 0.5, 2);
  auto model = LinearRegressionModel::Train(d).ValueOrDie();
  for (int j = 0; j < 3; ++j)
    EXPECT_NEAR(model.weights()[j], gt.weights[j], 0.05);
}

TEST(LinearRegressionTest, PredictMatchesCoefficients) {
  auto model = LinearRegressionModel::FromCoefficients({2.0, -1.0}, 0.5);
  EXPECT_DOUBLE_EQ(model.Predict({1.0, 1.0}), 1.5);
  EXPECT_DOUBLE_EQ(model.Predict({0.0, 0.0}), 0.5);
}

TEST(LinearRegressionTest, RidgeShrinks) {
  auto [d, gt] = MakeLinearData(100, 3, 0.1, 3);
  (void)gt;
  auto loose = LinearRegressionModel::Train(d, {1e-8}).ValueOrDie();
  auto tight = LinearRegressionModel::Train(d, {1e5}).ValueOrDie();
  EXPECT_LT(Norm2(tight.weights()), Norm2(loose.weights()) * 0.1);
}

TEST(LinearRegressionTest, MseLowOnTrainingData) {
  auto [d, gt] = MakeLinearData(300, 5, 0.1, 4);
  (void)gt;
  auto model = LinearRegressionModel::Train(d).ValueOrDie();
  EXPECT_LT(EvaluateMse(model, d), 0.02);
}

TEST(LinearRegressionTest, RejectsDegenerateInput) {
  EXPECT_FALSE(LinearRegressionModel::Train(Matrix(0, 2), {}).ok());
  EXPECT_FALSE(LinearRegressionModel::Train(Matrix(3, 2), {1.0, 2.0}).ok());
}

TEST(LinearRegressionTest, BatchPredictionMatchesRowwise) {
  auto [d, gt] = MakeLinearData(50, 3, 0.2, 5);
  (void)gt;
  auto model = LinearRegressionModel::Train(d).ValueOrDie();
  Vector batch = model.PredictBatch(d.x());
  for (int i = 0; i < d.num_rows(); ++i)
    EXPECT_DOUBLE_EQ(batch[i], model.Predict(d.Row(i)));
}

}  // namespace
}  // namespace xai
