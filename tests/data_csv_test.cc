#include "xai/data/csv.h"

#include <gtest/gtest.h>

namespace xai {
namespace {

TEST(CsvTest, ParsesNumericAndCategorical) {
  std::string text =
      "age,color,label\n"
      "30,red,0\n"
      "40,green,1\n"
      "50,red,1\n";
  Dataset d = ReadCsvString(text).ValueOrDie();
  EXPECT_EQ(d.num_rows(), 3);
  EXPECT_EQ(d.num_features(), 2);
  EXPECT_FALSE(d.schema().features[0].is_categorical());
  EXPECT_TRUE(d.schema().features[1].is_categorical());
  EXPECT_EQ(d.schema().features[1].categories,
            (std::vector<std::string>{"red", "green"}));
  EXPECT_DOUBLE_EQ(d.At(1, 1), 1.0);  // green == index 1.
  EXPECT_DOUBLE_EQ(d.At(2, 1), 0.0);  // red == index 0.
  EXPECT_DOUBLE_EQ(d.Label(2), 1.0);
}

TEST(CsvTest, TargetColumnByName) {
  std::string text =
      "label,x\n"
      "1,10\n"
      "0,20\n";
  CsvOptions options;
  options.target_column = "label";
  Dataset d = ReadCsvString(text, options).ValueOrDie();
  EXPECT_EQ(d.num_features(), 1);
  EXPECT_EQ(d.schema().features[0].name, "x");
  EXPECT_DOUBLE_EQ(d.Label(0), 1.0);
}

TEST(CsvTest, MissingTargetColumnFails) {
  CsvOptions options;
  options.target_column = "nope";
  EXPECT_FALSE(ReadCsvString("a,b\n1,2\n", options).ok());
}

TEST(CsvTest, ForcedCategoricalColumn) {
  std::string text =
      "zip,label\n"
      "12345,0\n"
      "54321,1\n";
  CsvOptions options;
  options.categorical_columns = {"zip"};
  Dataset d = ReadCsvString(text, options).ValueOrDie();
  EXPECT_TRUE(d.schema().features[0].is_categorical());
  EXPECT_EQ(d.schema().features[0].num_categories(), 2);
}

TEST(CsvTest, StringTargetLabelEncoded) {
  std::string text =
      "x,decision\n"
      "1,deny\n"
      "2,approve\n"
      "3,deny\n";
  Dataset d = ReadCsvString(text).ValueOrDie();
  EXPECT_DOUBLE_EQ(d.Label(0), 0.0);
  EXPECT_DOUBLE_EQ(d.Label(1), 1.0);
  EXPECT_DOUBLE_EQ(d.Label(2), 0.0);
}

TEST(CsvTest, RegressionTargetMustBeNumeric) {
  CsvOptions options;
  options.task = TaskType::kRegression;
  EXPECT_FALSE(ReadCsvString("x,y\n1,abc\n", options).ok());
  Dataset d = ReadCsvString("x,y\n1,2.5\n", options).ValueOrDie();
  EXPECT_DOUBLE_EQ(d.Label(0), 2.5);
}

TEST(CsvTest, RejectsMalformedInput) {
  EXPECT_FALSE(ReadCsvString("").ok());
  EXPECT_FALSE(ReadCsvString("only_one_column\n1\n").ok());
  EXPECT_FALSE(ReadCsvString("a,b\n1,2,3\n").ok());  // Ragged row.
}

TEST(CsvTest, SkipsBlankLinesAndTrimsSpaces) {
  std::string text = "a , b \n 1 , 2 \n\n 3 , 4 \n";
  Dataset d = ReadCsvString(text).ValueOrDie();
  EXPECT_EQ(d.num_rows(), 2);
  EXPECT_EQ(d.schema().features[0].name, "a");
  EXPECT_DOUBLE_EQ(d.At(1, 0), 3);
}

TEST(CsvTest, RoundTripThroughString) {
  std::string text =
      "age,color,label\n"
      "30,red,0\n"
      "40,green,1\n";
  Dataset d = ReadCsvString(text).ValueOrDie();
  std::string out = WriteCsvString(d);
  Dataset d2 = ReadCsvString(out).ValueOrDie();
  EXPECT_EQ(d2.num_rows(), d.num_rows());
  EXPECT_EQ(d2.RenderCell(1, 1), "green");
  EXPECT_DOUBLE_EQ(d2.Label(1), d.Label(1));
}

TEST(CsvTest, QuotedFieldsWithDelimiters) {
  std::string text =
      "name,label\n"
      "\"doe, john\",1\n"
      "\"says \"\"hi\"\"\",0\n"
      "plain,1\n";
  Dataset d = ReadCsvString(text).ValueOrDie();
  ASSERT_EQ(d.num_rows(), 3);
  EXPECT_EQ(d.schema().features[0].categories[0], "doe, john");
  EXPECT_EQ(d.schema().features[0].categories[1], "says \"hi\"");
  EXPECT_EQ(d.schema().features[0].categories[2], "plain");
}

TEST(CsvTest, QuotedRoundTrip) {
  std::string text =
      "city,label\n"
      "\"springfield, il\",1\n"
      "boston,0\n";
  Dataset d = ReadCsvString(text).ValueOrDie();
  std::string out = WriteCsvString(d);
  Dataset d2 = ReadCsvString(out).ValueOrDie();
  EXPECT_EQ(d2.RenderCell(0, 0), "springfield, il");
  EXPECT_EQ(d2.num_rows(), 2);
}

TEST(CsvTest, FileIo) {
  std::string path = ::testing::TempDir() + "/xai_csv_test.csv";
  Dataset d = ReadCsvString("x,y\n1,0\n2,1\n").ValueOrDie();
  ASSERT_TRUE(WriteCsvFile(d, path).ok());
  Dataset d2 = ReadCsvFile(path).ValueOrDie();
  EXPECT_EQ(d2.num_rows(), 2);
  EXPECT_FALSE(ReadCsvFile("/nonexistent/nope.csv").ok());
}

}  // namespace
}  // namespace xai
