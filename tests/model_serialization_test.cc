#include "xai/model/serialization.h"

#include <gtest/gtest.h>

#include "xai/data/synthetic.h"

namespace xai {
namespace {

TEST(SerializationTest, LinearRoundTripIsExact) {
  auto [d, gt] = MakeLinearData(100, 3, 0.2, 1);
  (void)gt;
  auto model = LinearRegressionModel::Train(d).ValueOrDie();
  std::string text = SerializeModel(model);
  auto loaded = DeserializeLinearRegression(text).ValueOrDie();
  for (int i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(loaded.Predict(d.Row(i)), model.Predict(d.Row(i)));
  EXPECT_DOUBLE_EQ(loaded.config().l2, model.config().l2);
}

TEST(SerializationTest, LogisticRoundTripIsExact) {
  auto [d, gt] = MakeLogisticData(150, 4, 2);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  auto loaded =
      DeserializeLogisticRegression(SerializeModel(model)).ValueOrDie();
  for (int i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(loaded.Predict(d.Row(i)), model.Predict(d.Row(i)));
}

TEST(SerializationTest, DecisionTreeRoundTripIsExact) {
  Dataset d = MakeLoans(400, 3);
  auto model = DecisionTreeModel::Train(d).ValueOrDie();
  auto loaded =
      DeserializeDecisionTree(SerializeModel(model)).ValueOrDie();
  EXPECT_EQ(loaded.task(), model.task());
  EXPECT_EQ(loaded.tree().num_nodes(), model.tree().num_nodes());
  for (int i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(loaded.Predict(d.Row(i)), model.Predict(d.Row(i)));
}

TEST(SerializationTest, RandomForestRoundTripIsExact) {
  Dataset d = MakeLoans(400, 4);
  RandomForestModel::Config config;
  config.n_trees = 8;
  auto model = RandomForestModel::Train(d, config).ValueOrDie();
  auto loaded =
      DeserializeRandomForest(SerializeModel(model)).ValueOrDie();
  EXPECT_EQ(loaded.trees().size(), 8u);
  for (int i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(loaded.Predict(d.Row(i)), model.Predict(d.Row(i)));
}

TEST(SerializationTest, GbdtRoundTripIsExact) {
  Dataset d = MakeLoans(500, 5);
  GbdtModel::Config config;
  config.n_trees = 15;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  auto loaded = DeserializeGbdt(SerializeModel(model)).ValueOrDie();
  EXPECT_DOUBLE_EQ(loaded.base_score(), model.base_score());
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(loaded.Margin(d.Row(i)), model.Margin(d.Row(i)));
    EXPECT_DOUBLE_EQ(loaded.Predict(d.Row(i)), model.Predict(d.Row(i)));
  }
}

TEST(SerializationTest, GbdtRegressionTaskPreserved) {
  auto [d, gt] = MakeLinearData(300, 3, 0.3, 6);
  (void)gt;
  GbdtModel::Config config;
  config.n_trees = 10;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  auto loaded = DeserializeGbdt(SerializeModel(model)).ValueOrDie();
  EXPECT_EQ(loaded.task(), TaskType::kRegression);
  EXPECT_DOUBLE_EQ(loaded.Predict(d.Row(0)), model.Predict(d.Row(0)));
}

TEST(SerializationTest, PeekKindDispatch) {
  auto [d, gt] = MakeLogisticData(50, 2, 7);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  EXPECT_EQ(PeekModelKind(SerializeModel(model)).ValueOrDie(),
            "logistic_regression");
  EXPECT_FALSE(PeekModelKind("garbage").ok());
}

TEST(SerializationTest, RejectsWrongKindAndMalformedInput) {
  auto [d, gt] = MakeLogisticData(50, 2, 8);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  std::string text = SerializeModel(model);
  EXPECT_FALSE(DeserializeLinearRegression(text).ok());   // Wrong kind.
  EXPECT_FALSE(DeserializeLogisticRegression("junk").ok());
  EXPECT_FALSE(
      DeserializeLogisticRegression("xai_model v1 logistic_regression\n")
          .ok());  // Truncated.
}

TEST(SerializationTest, TreeChildIndexValidation) {
  std::string bad =
      "xai_model v1 decision_tree classification\n"
      "tree 1\n"
      "node 0 0.5 7 8 0 1\n";  // Children out of range.
  EXPECT_FALSE(DeserializeDecisionTree(bad).ok());
}

TEST(SerializationTest, FileRoundTrip) {
  auto [d, gt] = MakeLinearData(60, 2, 0.1, 9);
  (void)gt;
  auto model = LinearRegressionModel::Train(d).ValueOrDie();
  std::string path = ::testing::TempDir() + "/xai_model_test.txt";
  ASSERT_TRUE(SaveModelToFile(SerializeModel(model), path).ok());
  std::string text = LoadModelFile(path).ValueOrDie();
  auto loaded = DeserializeLinearRegression(text).ValueOrDie();
  EXPECT_DOUBLE_EQ(loaded.Predict(d.Row(0)), model.Predict(d.Row(0)));
  EXPECT_FALSE(LoadModelFile("/nonexistent/model.txt").ok());
}

}  // namespace
}  // namespace xai
