#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "xai/data/synthetic.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/metrics.h"
#include "xai/pipeline/operators.h"
#include "xai/pipeline/pipeline.h"
#include "xai/pipeline/stage_attribution.h"

namespace xai {
namespace {

Dataset WithMissing(uint64_t seed, double missing_value) {
  Dataset d = MakeLoans(300, seed);
  // Punch holes into the income column.
  Rng rng(seed + 1);
  int income = d.schema().FeatureIndex("income");
  for (int i = 0; i < d.num_rows(); ++i)
    if (rng.Bernoulli(0.1)) (*d.mutable_x())(i, income) = missing_value;
  return d;
}

TEST(PipelineTest, EmptyPipelineIsIdentity) {
  Dataset d = MakeLoans(100, 1);
  Pipeline pipeline;
  PipelineResult result = pipeline.Run(d).ValueOrDie();
  EXPECT_EQ(result.output.num_rows(), d.num_rows());
  EXPECT_EQ(result.provenance[5].input_row, 5);
  EXPECT_TRUE(result.provenance[5].modified_by.empty());
}

TEST(PipelineTest, FilterTracksDroppedRows) {
  Dataset d = MakeLoans(200, 2);
  int age = d.schema().FeatureIndex("age");
  Pipeline pipeline;
  pipeline.Add(std::make_shared<FilterRowsOp>(
      "adults_only",
      [age](const Vector& x, double) { return x[age] >= 40.0; }));
  PipelineResult result = pipeline.Run(d).ValueOrDie();
  EXPECT_LT(result.output.num_rows(), d.num_rows());
  for (int i = 0; i < result.output.num_rows(); ++i) {
    EXPECT_GE(result.output.At(i, age), 40.0);
    // Provenance points back at a matching original row.
    int src = result.provenance[i].input_row;
    EXPECT_DOUBLE_EQ(d.At(src, age), result.output.At(i, age));
  }
}

TEST(PipelineTest, ImputeMarksOnlyTouchedRows) {
  const double kMissing = -999.0;
  Dataset d = WithMissing(3, kMissing);
  int income = d.schema().FeatureIndex("income");
  Pipeline pipeline;
  pipeline.Add(std::make_shared<ImputeMeanOp>(income, kMissing));
  PipelineResult result = pipeline.Run(d).ValueOrDie();
  int marked = 0;
  for (int i = 0; i < result.output.num_rows(); ++i) {
    bool was_missing = d.At(i, income) == kMissing;
    bool is_marked = !result.provenance[i].modified_by.empty();
    EXPECT_EQ(was_missing, is_marked) << "row " << i;
    if (is_marked) ++marked;
    EXPECT_NE(result.output.At(i, income), kMissing);
  }
  EXPECT_GT(marked, 0);
}

TEST(PipelineTest, ImputedValueIsMeanOfObserved) {
  const double kMissing = std::nan("");
  Schema schema;
  schema.features = {FeatureSpec::Numeric("x")};
  Matrix x = {{1.0}, {3.0}, {kMissing}};
  Dataset d(schema, x, {0, 1, 0});
  Pipeline pipeline;
  pipeline.Add(std::make_shared<ImputeMeanOp>(0, -12345.0));
  PipelineResult result = pipeline.Run(d).ValueOrDie();
  EXPECT_DOUBLE_EQ(result.output.At(2, 0), 2.0);
}

TEST(PipelineTest, StandardizeMarksEveryRow) {
  Dataset d = MakeLoans(100, 4);
  Pipeline pipeline;
  pipeline.Add(std::make_shared<StandardizeOp>());
  PipelineResult result = pipeline.Run(d).ValueOrDie();
  for (int i = 0; i < result.output.num_rows(); ++i)
    EXPECT_EQ(result.provenance[i].modified_by,
              (std::vector<int>{0}));
}

TEST(PipelineTest, ClipOnlyTouchesOutliers) {
  Schema schema;
  schema.features = {FeatureSpec::Numeric("x")};
  Matrix x = {{5.0}, {50.0}, {-3.0}};
  Dataset d(schema, x, {0, 1, 0});
  Pipeline pipeline;
  pipeline.Add(std::make_shared<ClipOp>(0, 0.0, 10.0));
  PipelineResult result = pipeline.Run(d).ValueOrDie();
  EXPECT_DOUBLE_EQ(result.output.At(1, 0), 10.0);
  EXPECT_DOUBLE_EQ(result.output.At(2, 0), 0.0);
  EXPECT_TRUE(result.provenance[0].modified_by.empty());
  EXPECT_FALSE(result.provenance[1].modified_by.empty());
}

TEST(PipelineTest, TraceRowReadable) {
  Dataset d = MakeLoans(50, 5);
  Pipeline pipeline;
  pipeline.Add(std::make_shared<StandardizeOp>());
  PipelineResult result = pipeline.Run(d).ValueOrDie();
  std::string trace = result.TraceRow(7);
  EXPECT_NE(trace.find("input row 7"), std::string::npos);
  EXPECT_NE(trace.find("standardize"), std::string::npos);
}

TEST(PipelineTest, RunWithStagesAblation) {
  Dataset d = MakeLoans(100, 6);
  int age = d.schema().FeatureIndex("age");
  Pipeline pipeline;
  pipeline.Add(std::make_shared<FilterRowsOp>(
      "adults", [age](const Vector& x, double) { return x[age] >= 30; }));
  pipeline.Add(std::make_shared<StandardizeOp>());
  Dataset no_filter =
      pipeline.RunWithStages(d, {false, true}).ValueOrDie();
  EXPECT_EQ(no_filter.num_rows(), d.num_rows());
  Dataset no_standardize =
      pipeline.RunWithStages(d, {true, false}).ValueOrDie();
  EXPECT_LT(no_standardize.num_rows(), d.num_rows());
}

TEST(StageAttributionTest, FlagsTheCorruptingStage) {
  // A pipeline with three benign stages and one stage that flips labels of
  // high-income rows: stage Shapley must rank the corrupter most harmful.
  Dataset d = MakeLoans(800, 7);
  auto [input, valid] = d.TrainTestSplit(0.3, 8);
  int income = input.schema().FeatureIndex("income");

  // Benign stages must preserve the feature scale of the validation set;
  // otherwise they themselves degrade the quality function.
  Pipeline pipeline;
  pipeline.Add(std::make_shared<ClipOp>(income, 0.0, 500.0));
  pipeline.Add(std::make_shared<CorruptLabelsOp>(
      "buggy_label_fix", [income](const Vector& x, double) {
        return x[income] > 50.0;
      }));
  pipeline.Add(std::make_shared<ImputeMeanOp>(income, -999.0));

  // Quality = validation accuracy of a logistic model trained on the
  // prepared data.
  auto quality = [&](const Dataset& prepared) {
    auto model = LogisticRegressionModel::Train(prepared);
    if (!model.ok()) return 0.0;
    return EvaluateAccuracy(*model, valid);
  };
  StageAttribution attribution =
      StageShapley(pipeline, input, quality).ValueOrDie();
  EXPECT_EQ(attribution.MostHarmfulStage(), 1);
  EXPECT_LT(attribution.shapley[1], 0.0);
  EXPECT_EQ(attribution.pipeline_evaluations, 8);  // 2^3 coalitions.
}

TEST(StageAttributionTest, BenignPipelineHasNoHarmfulStage) {
  Dataset d = MakeLoans(500, 9);
  auto [input, valid] = d.TrainTestSplit(0.3, 10);
  int income = input.schema().FeatureIndex("income");
  Pipeline pipeline;
  pipeline.Add(std::make_shared<ClipOp>(income, 0.0, 1e6));
  pipeline.Add(std::make_shared<ImputeMeanOp>(income, -999.0));
  auto quality = [&](const Dataset& prepared) {
    auto model = LogisticRegressionModel::Train(prepared);
    return model.ok() ? EvaluateAccuracy(*model, valid) : 0.0;
  };
  StageAttribution attribution =
      StageShapley(pipeline, input, quality).ValueOrDie();
  for (double v : attribution.shapley) EXPECT_GT(v, -0.02);
}

TEST(StageAttributionTest, ToStringListsStages) {
  Dataset d = MakeLoans(200, 11);
  Pipeline pipeline;
  pipeline.Add(std::make_shared<StandardizeOp>());
  auto quality = [](const Dataset&) { return 0.5; };
  StageAttribution attribution =
      StageShapley(pipeline, d, quality).ValueOrDie();
  EXPECT_NE(attribution.ToString().find("standardize"), std::string::npos);
}

TEST(StageAttributionTest, RejectsEmptyPipeline) {
  Dataset d = MakeLoans(50, 12);
  Pipeline pipeline;
  EXPECT_FALSE(
      StageShapley(pipeline, d, [](const Dataset&) { return 0.0; }).ok());
}

}  // namespace
}  // namespace xai
