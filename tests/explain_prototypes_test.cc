#include "xai/explain/prototypes.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "xai/data/synthetic.h"

namespace xai {
namespace {

TEST(RbfKernelTest, BasicProperties) {
  Vector a = {0, 0}, b = {3, 4};
  EXPECT_DOUBLE_EQ(RbfKernel(a, a, 1.0), 1.0);
  EXPECT_NEAR(RbfKernel(a, b, 5.0), std::exp(-25.0 / 50.0), 1e-12);
  EXPECT_GT(RbfKernel(a, b, 10.0), RbfKernel(a, b, 1.0));
}

TEST(BandwidthTest, MedianHeuristicPositive) {
  Dataset d = MakeBlobs(100, 3, 2, 0.5, 1);
  double bw = MedianHeuristicBandwidth(d);
  EXPECT_GT(bw, 0.1);
}

TEST(PrototypesTest, OnePrototypePerWellSeparatedCluster) {
  // 3 tight well-separated blobs, 3 prototypes: each cluster should get
  // exactly one prototype.
  Dataset d = MakeBlobs(150, 2, 3, 0.25, 2);
  PrototypeConfig config;
  config.num_prototypes = 3;
  PrototypeResult result = SelectPrototypes(d, config).ValueOrDie();
  ASSERT_EQ(result.prototypes.size(), 3u);
  std::set<int> clusters;
  for (int p : result.prototypes)
    clusters.insert(static_cast<int>(d.Label(p)));
  EXPECT_EQ(clusters.size(), 3u);
}

TEST(PrototypesTest, MmdImprovesOverall) {
  // Greedy MMD selection is not guaranteed monotone per step (the 1/m
  // normalization changes), but more prototypes must represent the data
  // better overall.
  Dataset d = MakeBlobs(120, 3, 3, 0.5, 3);
  PrototypeConfig config;
  config.num_prototypes = 8;
  PrototypeResult result = SelectPrototypes(d, config).ValueOrDie();
  ASSERT_EQ(result.mmd_trace.size(), 8u);
  EXPECT_LT(result.mmd_trace.back(), result.mmd_trace.front());
  for (double mmd : result.mmd_trace) EXPECT_GE(mmd, -1e-9);
}

TEST(PrototypesTest, CriticismsAreNotPrototypes) {
  Dataset d = MakeBlobs(100, 2, 2, 0.5, 4);
  PrototypeConfig config;
  config.num_prototypes = 4;
  config.num_criticisms = 3;
  PrototypeResult result = SelectPrototypes(d, config).ValueOrDie();
  for (int c : result.criticisms) {
    EXPECT_EQ(std::find(result.prototypes.begin(),
                        result.prototypes.end(), c),
              result.prototypes.end());
  }
  EXPECT_EQ(result.criticisms.size(), 3u);
}

// Two big clusters plus a small far-away rare mode of 8 points.
Dataset WithRareCluster(uint64_t seed) {
  Dataset d = MakeBlobs(80, 2, 2, 0.4, seed);
  Rng rng(seed + 4);
  for (int i = 0; i < 8; ++i)
    d.AppendRow({20.0 + rng.Normal() * 0.4, 20.0 + rng.Normal() * 0.4},
                2.0);
  return d;
}

TEST(PrototypesTest, UncoveredRareModeSurfacesAsCriticism) {
  // With too few prototypes to cover the rare mode, its points are the
  // worst-represented and become the criticisms — the MMD-critic story.
  Dataset d = WithRareCluster(5);
  PrototypeConfig config;
  config.num_prototypes = 4;
  config.num_criticisms = 4;
  config.bandwidth = 3.0;
  PrototypeResult result = SelectPrototypes(d, config).ValueOrDie();
  for (int c : result.criticisms)
    EXPECT_DOUBLE_EQ(d.Label(c), 2.0) << "criticism " << c;
}

TEST(PrototypesTest, LargerBudgetCoversTheRareMode) {
  // Given enough prototypes, greedy MMD spends one on the rare mode.
  Dataset d = WithRareCluster(5);
  PrototypeConfig config;
  config.num_prototypes = 8;
  config.bandwidth = 3.0;
  PrototypeResult result = SelectPrototypes(d, config).ValueOrDie();
  bool rare_covered = false;
  for (int p : result.prototypes)
    rare_covered = rare_covered || d.Label(p) == 2.0;
  EXPECT_TRUE(rare_covered);
}

TEST(PrototypesTest, RejectsBadConfig) {
  Dataset d = MakeBlobs(20, 2, 2, 0.5, 6);
  PrototypeConfig config;
  config.num_prototypes = 0;
  EXPECT_FALSE(SelectPrototypes(d, config).ok());
  config.num_prototypes = 100;
  EXPECT_FALSE(SelectPrototypes(d, config).ok());
}

TEST(PrototypesTest, DeterministicResults) {
  Dataset d = MakeBlobs(90, 3, 3, 0.6, 7);
  PrototypeResult a = SelectPrototypes(d).ValueOrDie();
  PrototypeResult b = SelectPrototypes(d).ValueOrDie();
  EXPECT_EQ(a.prototypes, b.prototypes);
  EXPECT_EQ(a.criticisms, b.criticisms);
}

}  // namespace
}  // namespace xai
