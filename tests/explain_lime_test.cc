#include "xai/explain/lime.h"

#include <gtest/gtest.h>

#include <cmath>

#include "xai/data/synthetic.h"
#include "xai/model/gbdt.h"
#include "xai/model/linear_regression.h"
#include "xai/model/logistic_regression.h"

namespace xai {
namespace {

TEST(PerturberTest, GaussianKeepsFrozenFeatures) {
  Dataset d = MakeLoans(300, 1);
  Perturber p(d, Perturber::Strategy::kGaussian);
  Rng rng(2);
  Vector instance = d.Row(0);
  Matrix samples = p.Sample(instance, 50, &rng, {0, 2});
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(samples(i, 0), instance[0]);
    EXPECT_DOUBLE_EQ(samples(i, 2), instance[2]);
  }
}

TEST(PerturberTest, GaussianPerturbsNumerics) {
  Dataset d = MakeLoans(300, 2);
  Perturber p(d, Perturber::Strategy::kGaussian);
  Rng rng(3);
  Vector instance = d.Row(0);
  Matrix samples = p.Sample(instance, 50, &rng);
  int changed = 0;
  for (int i = 0; i < 50; ++i)
    if (samples(i, 0) != instance[0]) ++changed;
  EXPECT_GT(changed, 45);
}

TEST(PerturberTest, CategoricalSamplesValidCodes) {
  Dataset d = MakeLoans(300, 3);
  Perturber p(d, Perturber::Strategy::kDiscretized);
  Rng rng(4);
  int purpose = d.schema().FeatureIndex("purpose");
  Matrix samples = p.Sample(d.Row(0), 200, &rng);
  for (int i = 0; i < 200; ++i) {
    int c = static_cast<int>(samples(i, purpose));
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 4);
  }
}

TEST(PerturberTest, InterpretableSelfIsAllOnes) {
  Dataset d = MakeLoans(300, 5);
  Perturber p(d, Perturber::Strategy::kDiscretized);
  Vector instance = d.Row(7);
  std::vector<int> z = p.Interpretable(instance, instance);
  for (int v : z) EXPECT_EQ(v, 1);
}

TEST(PerturberTest, DistanceZeroToSelf) {
  Dataset d = MakeLoans(100, 6);
  Perturber p(d, Perturber::Strategy::kGaussian);
  EXPECT_DOUBLE_EQ(p.Distance(d.Row(3), d.Row(3)), 0.0);
  EXPECT_GT(p.Distance(d.Row(3), d.Row(4)), 0.0);
}

TEST(LimeTest, RecoversSignsOfLinearModel) {
  // Black box = logistic with known weights; LIME (gaussian mode, no
  // discretization) should produce attributions whose signs match w.
  auto [d, gt] = MakeLogisticData(800, 4, 7);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  LimeConfig config;
  config.strategy = Perturber::Strategy::kGaussian;
  config.num_samples = 2000;
  LimeExplainer lime(d, config);
  // An instance near the decision boundary, where the local slope matters.
  Vector instance(4, 0.1);
  LimeExplanation exp =
      lime.Explain(AsPredictFn(model), instance, 1).ValueOrDie();
  EXPECT_GT(exp.local_r2, 0.5);
  ASSERT_EQ(exp.attributions.size(), 4u);
  // Gaussian-mode attributions are local slopes on standardized features:
  // their signs must match the model weights.
  for (int j = 0; j < 4; ++j) {
    EXPECT_GT(exp.attributions[j] * model.weights()[j], 0.0)
        << "feature " << j;
  }
}

TEST(LimeTest, HighFidelityOnAlreadyLinearTarget) {
  // Explaining a *linear regression* black box: the surrogate can be
  // near-perfect locally.
  auto [d, gt] = MakeLinearData(500, 3, 0.0, 8);
  (void)gt;
  auto model = LinearRegressionModel::Train(d).ValueOrDie();
  LimeConfig config;
  config.strategy = Perturber::Strategy::kGaussian;
  config.num_samples = 1500;
  config.ridge = 1e-6;
  LimeExplainer lime(d, config);
  LimeExplanation exp =
      lime.Explain(AsPredictFn(model), d.Row(0), 3).ValueOrDie();
  EXPECT_GT(exp.local_r2, 0.5);
}

TEST(LimeTest, DeterministicForFixedSeed) {
  Dataset d = MakeLoans(400, 9);
  GbdtModel::Config mc;
  mc.n_trees = 20;
  auto model = GbdtModel::Train(d, mc).ValueOrDie();
  LimeExplainer lime(d);
  auto a = lime.Explain(AsPredictFn(model), d.Row(5), 42).ValueOrDie();
  auto b = lime.Explain(AsPredictFn(model), d.Row(5), 42).ValueOrDie();
  for (size_t j = 0; j < a.attributions.size(); ++j)
    EXPECT_DOUBLE_EQ(a.attributions[j], b.attributions[j]);
}

TEST(LimeTest, TopKSelectsRequestedCount) {
  Dataset d = MakeLoans(400, 10);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  LimeConfig config;
  config.top_k = 3;
  config.num_samples = 400;
  LimeExplainer lime(d, config);
  LimeExplanation exp =
      lime.Explain(AsPredictFn(model), d.Row(1), 5).ValueOrDie();
  int nonzero = 0;
  for (double a : exp.attributions)
    if (a != 0.0) ++nonzero;
  EXPECT_LE(nonzero, 3);
}

TEST(LimeTest, RejectsWrongWidthInstance) {
  Dataset d = MakeLoans(100, 11);
  LimeExplainer lime(d);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  EXPECT_FALSE(lime.Explain(AsPredictFn(model), Vector{1.0, 2.0}, 1).ok());
}

TEST(LimeStabilityTest, MoreSamplesMoreStable) {
  // The §2.1.1 claim: LIME's neighborhood sampling makes explanations
  // unstable; stability improves with the sample budget.
  Dataset d = MakeLoans(600, 12);
  GbdtModel::Config mc;
  mc.n_trees = 25;
  auto model = GbdtModel::Train(d, mc).ValueOrDie();
  LimeConfig small_cfg, large_cfg;
  small_cfg.num_samples = 60;
  large_cfg.num_samples = 3000;
  LimeExplainer small(d, small_cfg), large(d, large_cfg);
  Vector instance = d.Row(3);
  auto s =
      EvaluateLimeStability(small, AsPredictFn(model), instance, 8, 3, 1)
          .ValueOrDie();
  auto l =
      EvaluateLimeStability(large, AsPredictFn(model), instance, 8, 3, 1)
          .ValueOrDie();
  EXPECT_LT(l.coefficient_stddev, s.coefficient_stddev);
}

TEST(LimeStabilityTest, RejectsSingleRun) {
  Dataset d = MakeLoans(100, 13);
  LimeExplainer lime(d);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  EXPECT_FALSE(
      EvaluateLimeStability(lime, AsPredictFn(model), d.Row(0), 1, 3, 1)
          .ok());
}

TEST(MedianAbsoluteDeviationTest, KnownValues) {
  Matrix x = {{1}, {2}, {3}, {4}, {100}};
  Vector mad = MedianAbsoluteDeviation(x);
  // Median 3, deviations {2,1,0,1,97}, median deviation 1.
  EXPECT_DOUBLE_EQ(mad[0], 1.0);
}

TEST(MedianAbsoluteDeviationTest, ConstantColumnFallsBackToOne) {
  Matrix x = {{5}, {5}, {5}};
  EXPECT_DOUBLE_EQ(MedianAbsoluteDeviation(x)[0], 1.0);
}

}  // namespace
}  // namespace xai
