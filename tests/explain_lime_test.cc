#include "xai/explain/lime.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "xai/core/parallel.h"
#include "xai/core/simd.h"
#include "xai/data/synthetic.h"
#include "xai/model/gbdt.h"
#include "xai/model/linear_regression.h"
#include "xai/model/logistic_regression.h"

namespace xai {
namespace {

TEST(PerturberTest, GaussianKeepsFrozenFeatures) {
  Dataset d = MakeLoans(300, 1);
  Perturber p(d, Perturber::Strategy::kGaussian);
  Rng rng(2);
  Vector instance = d.Row(0);
  Matrix samples = p.Sample(instance, 50, &rng, {0, 2});
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(samples(i, 0), instance[0]);
    EXPECT_DOUBLE_EQ(samples(i, 2), instance[2]);
  }
}

TEST(PerturberTest, GaussianPerturbsNumerics) {
  Dataset d = MakeLoans(300, 2);
  Perturber p(d, Perturber::Strategy::kGaussian);
  Rng rng(3);
  Vector instance = d.Row(0);
  Matrix samples = p.Sample(instance, 50, &rng);
  int changed = 0;
  for (int i = 0; i < 50; ++i)
    if (samples(i, 0) != instance[0]) ++changed;
  EXPECT_GT(changed, 45);
}

TEST(PerturberTest, CategoricalSamplesValidCodes) {
  Dataset d = MakeLoans(300, 3);
  Perturber p(d, Perturber::Strategy::kDiscretized);
  Rng rng(4);
  int purpose = d.schema().FeatureIndex("purpose");
  Matrix samples = p.Sample(d.Row(0), 200, &rng);
  for (int i = 0; i < 200; ++i) {
    int c = static_cast<int>(samples(i, purpose));
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 4);
  }
}

TEST(PerturberTest, InterpretableSelfIsAllOnes) {
  Dataset d = MakeLoans(300, 5);
  Perturber p(d, Perturber::Strategy::kDiscretized);
  Vector instance = d.Row(7);
  std::vector<int> z = p.Interpretable(instance, instance);
  for (int v : z) EXPECT_EQ(v, 1);
}

TEST(PerturberTest, DistanceZeroToSelf) {
  Dataset d = MakeLoans(100, 6);
  Perturber p(d, Perturber::Strategy::kGaussian);
  EXPECT_DOUBLE_EQ(p.Distance(d.Row(3), d.Row(3)), 0.0);
  EXPECT_GT(p.Distance(d.Row(3), d.Row(4)), 0.0);
}

TEST(LimeTest, RecoversSignsOfLinearModel) {
  // Black box = logistic with known weights; LIME (gaussian mode, no
  // discretization) should produce attributions whose signs match w.
  auto [d, gt] = MakeLogisticData(800, 4, 7);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  LimeConfig config;
  config.strategy = Perturber::Strategy::kGaussian;
  config.num_samples = 2000;
  LimeExplainer lime(d, config);
  // An instance near the decision boundary, where the local slope matters.
  Vector instance(4, 0.1);
  LimeExplanation exp =
      lime.Explain(AsPredictFn(model), instance, 1).ValueOrDie();
  EXPECT_GT(exp.local_r2, 0.5);
  ASSERT_EQ(exp.attributions.size(), 4u);
  // Gaussian-mode attributions are local slopes on standardized features:
  // their signs must match the model weights.
  for (int j = 0; j < 4; ++j) {
    EXPECT_GT(exp.attributions[j] * model.weights()[j], 0.0)
        << "feature " << j;
  }
}

TEST(LimeTest, HighFidelityOnAlreadyLinearTarget) {
  // Explaining a *linear regression* black box: the surrogate can be
  // near-perfect locally.
  auto [d, gt] = MakeLinearData(500, 3, 0.0, 8);
  (void)gt;
  auto model = LinearRegressionModel::Train(d).ValueOrDie();
  LimeConfig config;
  config.strategy = Perturber::Strategy::kGaussian;
  config.num_samples = 1500;
  config.ridge = 1e-6;
  LimeExplainer lime(d, config);
  LimeExplanation exp =
      lime.Explain(AsPredictFn(model), d.Row(0), 3).ValueOrDie();
  EXPECT_GT(exp.local_r2, 0.5);
}

TEST(LimeTest, DeterministicForFixedSeed) {
  Dataset d = MakeLoans(400, 9);
  GbdtModel::Config mc;
  mc.n_trees = 20;
  auto model = GbdtModel::Train(d, mc).ValueOrDie();
  LimeExplainer lime(d);
  auto a = lime.Explain(AsPredictFn(model), d.Row(5), 42).ValueOrDie();
  auto b = lime.Explain(AsPredictFn(model), d.Row(5), 42).ValueOrDie();
  for (size_t j = 0; j < a.attributions.size(); ++j)
    EXPECT_DOUBLE_EQ(a.attributions[j], b.attributions[j]);
}

TEST(LimeTest, TopKSelectsRequestedCount) {
  Dataset d = MakeLoans(400, 10);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  LimeConfig config;
  config.top_k = 3;
  config.num_samples = 400;
  LimeExplainer lime(d, config);
  LimeExplanation exp =
      lime.Explain(AsPredictFn(model), d.Row(1), 5).ValueOrDie();
  int nonzero = 0;
  for (double a : exp.attributions)
    if (a != 0.0) ++nonzero;
  EXPECT_LE(nonzero, 3);
}

TEST(LimeTest, RejectsWrongWidthInstance) {
  Dataset d = MakeLoans(100, 11);
  LimeExplainer lime(d);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  EXPECT_FALSE(lime.Explain(AsPredictFn(model), Vector{1.0, 2.0}, 1).ok());
}

TEST(LimeStabilityTest, MoreSamplesMoreStable) {
  // The §2.1.1 claim: LIME's neighborhood sampling makes explanations
  // unstable; stability improves with the sample budget.
  Dataset d = MakeLoans(600, 12);
  GbdtModel::Config mc;
  mc.n_trees = 25;
  auto model = GbdtModel::Train(d, mc).ValueOrDie();
  LimeConfig small_cfg, large_cfg;
  small_cfg.num_samples = 60;
  large_cfg.num_samples = 3000;
  LimeExplainer small(d, small_cfg), large(d, large_cfg);
  Vector instance = d.Row(3);
  auto s =
      EvaluateLimeStability(small, AsPredictFn(model), instance, 8, 3, 1)
          .ValueOrDie();
  auto l =
      EvaluateLimeStability(large, AsPredictFn(model), instance, 8, 3, 1)
          .ValueOrDie();
  EXPECT_LT(l.coefficient_stddev, s.coefficient_stddev);
}

TEST(LimeStabilityTest, RejectsSingleRun) {
  Dataset d = MakeLoans(100, 13);
  LimeExplainer lime(d);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  EXPECT_FALSE(
      EvaluateLimeStability(lime, AsPredictFn(model), d.Row(0), 1, 3, 1)
          .ok());
}

// --- Fused pipeline: the streaming sample→predict→weight→accumulate path
// must reproduce the materialized design-matrix path bit-for-bit on the
// default SIMD tiers, at any thread count. ---

::testing::AssertionResult SameBits(const Vector& a, const Vector& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "size mismatch";
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

std::vector<simd::Backend> DefaultBackends() {
  std::vector<simd::Backend> out = {simd::Backend::kScalar};
  if (simd::MaxSupported() >= simd::Backend::kSse2)
    out.push_back(simd::Backend::kSse2);
  if (simd::MaxSupported() >= simd::Backend::kAvx2)
    out.push_back(simd::Backend::kAvx2);
  return out;
}

TEST(LimeFusedTest, BitIdenticalToMaterializedAcrossBackendsAndThreads) {
  for (auto strategy : {Perturber::Strategy::kDiscretized,
                        Perturber::Strategy::kGaussian}) {
    Dataset d = MakeLoans(400, 14);
    auto model = LogisticRegressionModel::Train(d).ValueOrDie();
    LimeConfig materialized_cfg;
    materialized_cfg.strategy = strategy;
    materialized_cfg.num_samples = 600;
    materialized_cfg.fused = false;
    LimeConfig fused_cfg = materialized_cfg;
    fused_cfg.fused = true;
    LimeExplainer materialized(d, materialized_cfg), fused(d, fused_cfg);
    Vector instance = d.Row(2);

    simd::Backend prev = simd::Active();
    int prev_threads = GetNumThreads();
    simd::SetBackend(simd::Backend::kScalar);
    SetNumThreads(1);
    LimeExplanation ref =
        materialized.Explain(AsPredictFn(model), instance, 7).ValueOrDie();
    for (simd::Backend be : DefaultBackends()) {
      for (int threads : {1, 4, 8}) {
        simd::SetBackend(be);
        SetNumThreads(threads);
        LimeExplanation got =
            fused.Explain(AsPredictFn(model), instance, 7).ValueOrDie();
        EXPECT_TRUE(SameBits(ref.attributions, got.attributions))
            << "backend=" << simd::BackendName(be) << " threads=" << threads;
        EXPECT_TRUE(SameBits({ref.intercept, ref.base_value, ref.prediction},
                             {got.intercept, got.base_value, got.prediction}))
            << "backend=" << simd::BackendName(be) << " threads=" << threads;
        // local_r2 is computed algebraically from the accumulated moments
        // in the fused path — tolerance, not bitwise.
        EXPECT_NEAR(got.local_r2, ref.local_r2, 1e-9);
      }
    }
    simd::SetBackend(prev);
    SetNumThreads(prev_threads);
  }
}

TEST(LimeFusedTest, TopKForwardSelectionFallsBackToMaterialized) {
  // top_k forward selection needs the full design; the fused flag must not
  // change its output.
  Dataset d = MakeLoans(300, 15);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  LimeConfig a_cfg;
  a_cfg.top_k = 3;
  a_cfg.num_samples = 300;
  a_cfg.fused = true;
  LimeConfig b_cfg = a_cfg;
  b_cfg.fused = false;
  LimeExplainer a(d, a_cfg), b(d, b_cfg);
  auto ea = a.Explain(AsPredictFn(model), d.Row(1), 5).ValueOrDie();
  auto eb = b.Explain(AsPredictFn(model), d.Row(1), 5).ValueOrDie();
  EXPECT_TRUE(SameBits(ea.attributions, eb.attributions));
}

TEST(MedianAbsoluteDeviationTest, KnownValues) {
  Matrix x = {{1}, {2}, {3}, {4}, {100}};
  Vector mad = MedianAbsoluteDeviation(x);
  // Median 3, deviations {2,1,0,1,97}, median deviation 1.
  EXPECT_DOUBLE_EQ(mad[0], 1.0);
}

TEST(MedianAbsoluteDeviationTest, ConstantColumnFallsBackToOne) {
  Matrix x = {{5}, {5}, {5}};
  EXPECT_DOUBLE_EQ(MedianAbsoluteDeviation(x)[0], 1.0);
}

}  // namespace
}  // namespace xai
