#include "xai/data/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace xai {
namespace {

Dataset TinyDataset() {
  Schema schema;
  schema.features = {
      FeatureSpec::Numeric("age"),
      FeatureSpec::Categorical("color", {"red", "green", "blue"}),
  };
  schema.target_name = "label";
  Matrix x = {{30, 0}, {40, 1}, {50, 2}, {60, 0}};
  Vector y = {0, 1, 1, 0};
  return Dataset(schema, x, y);
}

TEST(SchemaTest, FeatureIndexLookup) {
  Dataset d = TinyDataset();
  EXPECT_EQ(d.schema().FeatureIndex("age"), 0);
  EXPECT_EQ(d.schema().FeatureIndex("color"), 1);
  EXPECT_EQ(d.schema().FeatureIndex("missing"), -1);
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = TinyDataset();
  EXPECT_EQ(d.num_rows(), 4);
  EXPECT_EQ(d.num_features(), 2);
  EXPECT_DOUBLE_EQ(d.At(2, 0), 50);
  EXPECT_DOUBLE_EQ(d.Label(1), 1);
  EXPECT_EQ(d.Row(3), (Vector{60, 0}));
}

TEST(DatasetTest, RenderCellUsesCategories) {
  Dataset d = TinyDataset();
  EXPECT_EQ(d.RenderCell(1, 1), "green");
  EXPECT_EQ(d.RenderCell(0, 0), "30");
  EXPECT_EQ(d.RenderValue(1, 2.0), "blue");
}

TEST(DatasetTest, RenderBadCategory) {
  Dataset d = TinyDataset();
  EXPECT_NE(d.RenderValue(1, 9.0).find("bad category"), std::string::npos);
}

TEST(DatasetTest, AppendRow) {
  Dataset d = TinyDataset();
  d.AppendRow({70, 1}, 1.0);
  EXPECT_EQ(d.num_rows(), 5);
  EXPECT_DOUBLE_EQ(d.At(4, 0), 70);
  EXPECT_DOUBLE_EQ(d.Label(4), 1.0);
}

TEST(DatasetTest, SubsetPreservesOrder) {
  Dataset d = TinyDataset();
  Dataset s = d.Subset({2, 0});
  EXPECT_EQ(s.num_rows(), 2);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 50);
  EXPECT_DOUBLE_EQ(s.At(1, 0), 30);
  EXPECT_DOUBLE_EQ(s.Label(0), 1);
}

TEST(DatasetTest, WithoutExcludes) {
  Dataset d = TinyDataset();
  Dataset s = d.Without({1, 3});
  EXPECT_EQ(s.num_rows(), 2);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 30);
  EXPECT_DOUBLE_EQ(s.At(1, 0), 50);
}

TEST(DatasetTest, TrainTestSplitPartitions) {
  Dataset d = TinyDataset();
  auto [train, test] = d.TrainTestSplit(0.5, 99);
  EXPECT_EQ(train.num_rows(), 2);
  EXPECT_EQ(test.num_rows(), 2);
  // Together they hold all four age values.
  std::multiset<double> ages;
  for (int i = 0; i < 2; ++i) {
    ages.insert(train.At(i, 0));
    ages.insert(test.At(i, 0));
  }
  EXPECT_EQ(ages, (std::multiset<double>{30, 40, 50, 60}));
}

TEST(DatasetTest, TrainTestSplitDeterministic) {
  Dataset d = TinyDataset();
  auto [a1, b1] = d.TrainTestSplit(0.5, 7);
  auto [a2, b2] = d.TrainTestSplit(0.5, 7);
  EXPECT_EQ(a1.Row(0), a2.Row(0));
  EXPECT_EQ(b1.Row(0), b2.Row(0));
}

TEST(DatasetTest, DistinctLabels) {
  Dataset d = TinyDataset();
  EXPECT_EQ(d.DistinctLabels(), (std::vector<double>{0, 1}));
}

TEST(DatasetTest, FeatureRanges) {
  Dataset d = TinyDataset();
  auto ranges = d.FeatureRanges();
  EXPECT_DOUBLE_EQ(ranges[0].first, 30);
  EXPECT_DOUBLE_EQ(ranges[0].second, 60);
  EXPECT_DOUBLE_EQ(ranges[1].first, 0);
  EXPECT_DOUBLE_EQ(ranges[1].second, 2);
}

TEST(FlipBinaryLabelsTest, FlipsRequestedFraction) {
  Schema schema;
  schema.features = {FeatureSpec::Numeric("x")};
  Matrix x(100, 1);
  Vector y(100, 0.0);
  Dataset d(schema, x, y);
  std::vector<int> flipped = FlipBinaryLabels(&d, 0.2, 5);
  EXPECT_EQ(flipped.size(), 20u);
  EXPECT_TRUE(std::is_sorted(flipped.begin(), flipped.end()));
  int ones = 0;
  for (int i = 0; i < 100; ++i) ones += d.Label(i) == 1.0;
  EXPECT_EQ(ones, 20);
  for (int r : flipped) EXPECT_DOUBLE_EQ(d.Label(r), 1.0);
}

TEST(FlipBinaryLabelsTest, DeterministicBySeed) {
  Schema schema;
  schema.features = {FeatureSpec::Numeric("x")};
  Dataset d1(schema, Matrix(50, 1), Vector(50, 0.0));
  Dataset d2(schema, Matrix(50, 1), Vector(50, 0.0));
  EXPECT_EQ(FlipBinaryLabels(&d1, 0.3, 11), FlipBinaryLabels(&d2, 0.3, 11));
}

}  // namespace
}  // namespace xai
