// End-to-end integration across subsystems: a realistic debugging session
// that exercises pipeline provenance -> model training -> stage attribution
// -> complaint-driven influence -> incremental unlearning -> explanation of
// the repaired model, all on one dataset with an injected fault.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "xai/core/stats.h"
#include "xai/data/synthetic.h"
#include "xai/explain/global_importance.h"
#include "xai/explain/lime.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/tree_shap.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/influence/complaint.h"
#include "xai/influence/influence_function.h"
#include "xai/model/gbdt.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/metrics.h"
#include "xai/model/serialization.h"
#include "xai/pipeline/operators.h"
#include "xai/pipeline/pipeline.h"
#include "xai/pipeline/stage_attribution.h"
#include "xai/unlearn/incremental_logistic.h"

namespace xai {
namespace {

TEST(IntegrationTest, DebuggingSessionEndToEnd) {
  // ---- 1. Raw data and a prep pipeline with a corrupting stage.
  Dataset raw = MakeLoans(1600, 99);
  auto [input, valid] = raw.TrainTestSplit(0.25, 100);
  int income = input.schema().FeatureIndex("income");

  Pipeline pipeline;
  pipeline.Add(std::make_shared<ClipOp>(income, 0.0, 400.0));
  pipeline.Add(std::make_shared<CorruptLabelsOp>(
      "buggy_join", [income](const Vector& x, double) {
        return x[income] > 110.0;
      }));
  pipeline.Add(std::make_shared<ImputeMeanOp>(income, -999.0));

  PipelineResult prep = pipeline.Run(input).ValueOrDie();
  ASSERT_EQ(prep.output.num_rows(), input.num_rows());

  // ---- 2. Train; quality is visibly degraded.
  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  auto model =
      LogisticRegressionModel::Train(prep.output, config).ValueOrDie();
  double corrupted_acc = EvaluateAccuracy(model, valid);

  // ---- 3. Stage attribution blames the corrupting stage.
  auto quality = [&valid](const Dataset& prepared) {
    auto m = LogisticRegressionModel::Train(prepared);
    return m.ok() ? EvaluateAccuracy(*m, valid) : 0.0;
  };
  StageAttribution attribution =
      StageShapley(pipeline, input, quality).ValueOrDie();
  EXPECT_EQ(attribution.MostHarmfulStage(), 1);

  // ---- 4. Complaint: the corrupting stage flips high-income approvals
  //         to rejections, so approvals among high-income applicants are
  //         too LOW; influence ranking surfaces corrupted training rows.
  auto influence =
      LogisticInfluence::Make(model, prep.output.x(), prep.output.y())
          .ValueOrDie();
  Complaint complaint;
  complaint.direction = -1;
  for (int r = 0; r < valid.num_rows(); ++r)
    if (valid.At(r, income) > 110.0) complaint.query_rows.push_back(r);
  ASSERT_GT(complaint.query_rows.size(), 10u);
  ComplaintResult diagnosis =
      ExplainComplaint(influence, valid.x(), complaint).ValueOrDie();

  // Ground truth: which prep-output rows the buggy stage touched.
  std::vector<bool> touched(prep.output.num_rows(), false);
  int touched_count = 0;
  for (int i = 0; i < prep.output.num_rows(); ++i) {
    for (int s : prep.provenance[i].modified_by) {
      if (prep.stage_names[s] == "buggy_join") {
        touched[i] = true;
        ++touched_count;
      }
    }
  }
  ASSERT_GT(touched_count, 30);
  int k = touched_count;
  int hits = 0;
  for (int rank = 0; rank < k; ++rank)
    if (touched[diagnosis.ranking[rank]]) ++hits;
  double precision = static_cast<double>(hits) / k;
  double base_rate =
      static_cast<double>(touched_count) / prep.output.num_rows();
  EXPECT_GT(precision, 2.0 * base_rate);

  // ---- 5. Fix: unlearn the top suspects incrementally. The success
  //         criterion of a complaint fix is that the complained-about
  //         aggregate moves toward its clean-pipeline value (global
  //         accuracy can even dip while doing so, since good rows are
  //         removed alongside corrupted ones).
  auto aggregate_of = [&](const LogisticRegressionModel& m) {
    double acc = 0;
    for (int r : complaint.query_rows)
      acc += Sigmoid(m.Margin(valid.Row(r)));
    return acc;
  };
  Dataset clean_prep =
      pipeline.RunWithStages(input, {true, false, true}).ValueOrDie();
  auto clean_model =
      LogisticRegressionModel::Train(clean_prep, config).ValueOrDie();
  double clean_agg = aggregate_of(clean_model);
  double corrupted_agg = aggregate_of(model);

  // Rain's protocol: walk the influence ranking, unlearning in small
  // batches until the aggregate meets the complainant's expected value
  // (here: the clean-pipeline aggregate), with a hard budget.
  auto maintained = MaintainedLogisticRegression::Fit(
                        prep.output.x(), prep.output.y(), config)
                        .ValueOrDie();
  double repaired_agg = corrupted_agg;
  int removed = 0;
  const int kBatch = 5, kBudget = 60;
  while (repaired_agg < clean_agg && removed < kBudget) {
    std::vector<int> batch(diagnosis.ranking.begin() + removed,
                           diagnosis.ranking.begin() + removed + kBatch);
    ASSERT_TRUE(maintained.RemoveRows(batch, 1).ok());
    removed += kBatch;
    repaired_agg = aggregate_of(maintained.CurrentModel());
  }
  EXPECT_LT(removed, kBudget);  // The complaint cleared within budget.
  EXPECT_LT(std::fabs(repaired_agg - clean_agg),
            std::fabs(corrupted_agg - clean_agg));
  auto repaired = maintained.CurrentModel();
  (void)corrupted_acc;

  // ---- 6. Explain the repaired model: LIME and exact SHAP agree that the
  //         mechanism features dominate and gender stays negligible.
  int gender = input.schema().FeatureIndex("gender");
  int dti = input.schema().FeatureIndex("debt_to_income");
  LimeConfig lime_config;
  lime_config.strategy = Perturber::Strategy::kGaussian;
  lime_config.num_samples = 1500;
  LimeExplainer lime(prep.output, lime_config);
  auto lime_exp =
      lime.Explain(AsPredictFn(repaired), prep.output.Row(3), 5)
          .ValueOrDie();
  MarginalFeatureGame game(AsPredictFn(repaired), prep.output.Row(3),
                           prep.output.x(), 32);
  Vector shap = ExactShapley(game).ValueOrDie();
  EXPECT_LT(std::fabs(shap[gender]), std::fabs(shap[dti]));
  EXPECT_LT(std::fabs(lime_exp.attributions[gender]),
            std::fabs(lime_exp.attributions[dti]));

  // ---- 7. Ship it: serialize, reload, identical predictions.
  auto reloaded =
      DeserializeLogisticRegression(SerializeModel(repaired)).ValueOrDie();
  for (int i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(reloaded.Predict(valid.Row(i)),
                     repaired.Predict(valid.Row(i)));
}

TEST(IntegrationTest, TreeModelExplanationStack) {
  // GBDT + TreeSHAP + global importance + permutation importance agree on
  // the irrelevant feature across three different explanation mechanisms.
  Dataset train = MakeLoans(1200, 101);
  GbdtModel::Config mc;
  mc.n_trees = 50;
  auto model = GbdtModel::Train(train, mc).ValueOrDie();
  int gender = train.schema().FeatureIndex("gender");

  TreeEnsembleView view = TreeEnsembleView::Of(model);
  Vector global = GlobalShapImportance(view, train, 120);
  Rng rng(6);
  Vector permutation =
      PermutationImportance(AsPredictFn(model), train, Auc, 2, &rng)
          .ValueOrDie();
  Vector split = SplitFrequencyImportance(view, train.num_features());

  auto rank_of = [&](const Vector& importance) {
    std::vector<int> order = ArgSortDescending(importance);
    for (size_t r = 0; r < order.size(); ++r)
      if (order[r] == gender) return static_cast<int>(r);
    return -1;
  };
  // gender must rank in the bottom half for every mechanism.
  int d = train.num_features();
  EXPECT_GE(rank_of(global), d / 2);
  EXPECT_GE(rank_of(permutation), d / 2);
  EXPECT_GE(rank_of(split), d / 2);
}

}  // namespace
}  // namespace xai
