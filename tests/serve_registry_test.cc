#include "xai/serve/model_registry.h"

#include <gtest/gtest.h>

#include <string>

#include "xai/data/synthetic.h"
#include "xai/model/gbdt.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/serialization.h"

namespace xai {
namespace serve {
namespace {

TEST(ContentHashTest, MatchesFnv1aReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(ContentHash64(std::string("")), 0xcbf29ce484222325ULL);
  EXPECT_EQ(ContentHash64(std::string("a")), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(ContentHash64(std::string("foobar")), 0x85944171f73967e8ULL);
}

TEST(ContentHashTest, VectorHashCoversEveryByte) {
  Vector a = {1.0, 2.0, 3.0};
  Vector b = {1.0, 2.0, 3.0};
  Vector c = {1.0, 2.0, 3.0000000001};
  EXPECT_EQ(ContentHash64(a), ContentHash64(b));
  EXPECT_NE(ContentHash64(a), ContentHash64(c));
}

class ModelRegistryTest : public ::testing::Test {
 protected:
  ModelRegistryTest()
      : train_(MakeLoans(300, 3)), background_(MakeLoans(64, 4)) {}

  std::string SerializedGbdt() {
    GbdtModel::Config config;
    config.n_trees = 10;
    auto model = GbdtModel::Train(train_, config).ValueOrDie();
    return SerializeModel(model);
  }

  Dataset train_;
  Dataset background_;
};

TEST_F(ModelRegistryTest, RegisterExposesSnapshotAndFingerprint) {
  ModelRegistry registry;
  const std::string text = SerializedGbdt();
  uint64_t fp = registry.Register("loans", text, background_).ValueOrDie();
  EXPECT_EQ(fp, Fingerprint(text));

  auto entry = registry.Find("loans");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->name, "loans");
  EXPECT_EQ(entry->kind, "gbdt");
  EXPECT_EQ(entry->fingerprint, fp);
  EXPECT_NE(entry->background_fingerprint, 0u);
  EXPECT_NE(entry->model, nullptr);
  EXPECT_NE(entry->tree_view, nullptr) << "gbdt must expose a tree view";
  EXPECT_EQ(entry->num_features(), background_.num_features());
}

TEST_F(ModelRegistryTest, ReloadOfIdenticalSnapshotKeepsFingerprint) {
  ModelRegistry registry;
  const std::string text = SerializedGbdt();
  uint64_t fp1 = registry.Register("loans", text, background_).ValueOrDie();
  uint64_t fp2 = registry.Register("loans", text, background_).ValueOrDie();
  EXPECT_EQ(fp1, fp2);

  // A second registry (fresh process, conceptually) agrees.
  ModelRegistry other;
  EXPECT_EQ(other.Register("loans", text, background_).ValueOrDie(), fp1);

  // Deserialize/re-serialize round trip is canonical, so a snapshot that
  // travels through a model store re-fingerprints identically.
  auto loaded = DeserializeGbdt(text).ValueOrDie();
  EXPECT_EQ(Fingerprint(SerializeModel(loaded)), fp1);
}

TEST_F(ModelRegistryTest, DifferentSnapshotsGetDifferentFingerprints) {
  GbdtModel::Config small;
  small.n_trees = 5;
  GbdtModel::Config large;
  large.n_trees = 12;
  auto a = GbdtModel::Train(train_, small).ValueOrDie();
  auto b = GbdtModel::Train(train_, large).ValueOrDie();
  EXPECT_NE(Fingerprint(a), Fingerprint(b));
}

TEST_F(ModelRegistryTest, ReRegisterSwapsWhileOldEntrySurvives) {
  ModelRegistry registry;
  const std::string text = SerializedGbdt();
  registry.Register("m", text, background_).ValueOrDie();
  auto old_entry = registry.Find("m");

  auto logistic = LogisticRegressionModel::Train(train_).ValueOrDie();
  registry.Register("m", SerializeModel(logistic), background_).ValueOrDie();
  auto new_entry = registry.Find("m");

  EXPECT_EQ(new_entry->kind, "logistic_regression");
  EXPECT_EQ(new_entry->tree_view, nullptr);
  // In-flight requests holding the old snapshot still work.
  EXPECT_EQ(old_entry->kind, "gbdt");
  EXPECT_NE(old_entry->model, nullptr);
  EXPECT_EQ(registry.size(), 1);
}

TEST_F(ModelRegistryTest, UnregisterAndNames) {
  ModelRegistry registry;
  const std::string text = SerializedGbdt();
  registry.Register("b", text, background_).ValueOrDie();
  registry.Register("a", text, background_).ValueOrDie();
  EXPECT_EQ(registry.Names(), (std::vector<std::string>{"a", "b"}));

  EXPECT_TRUE(registry.Unregister("a").ok());
  EXPECT_EQ(registry.Unregister("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Find("a"), nullptr);
  EXPECT_EQ(registry.size(), 1);
}

TEST_F(ModelRegistryTest, RejectsBadInput) {
  ModelRegistry registry;
  const std::string text = SerializedGbdt();
  EXPECT_EQ(registry.Register("", text, background_).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      registry.Register("m", "not a model", background_).status().code(),
      StatusCode::kInvalidArgument);

  Dataset empty(background_.schema(), Matrix(0, background_.num_features()),
                Vector{});
  EXPECT_EQ(registry.Register("m", text, empty).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace serve
}  // namespace xai
