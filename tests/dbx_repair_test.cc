#include "xai/dbx/repair_shapley.h"

#include <gtest/gtest.h>

#include "xai/core/combinatorics.h"

namespace xai {
namespace {

using rel::Relation;
using rel::Value;

// zip -> city with conflicts: tuples 0,1,2 share zip 10001 but tuple 2 says
// a different city; tuples 3,4 agree on zip 20002.
Relation AddressRelation() {
  Relation r("addresses", {"zip", "city"});
  auto add = [&](int64_t zip, const char* city) {
    ASSERT_TRUE(
        r.AppendBase({Value::Int(zip), Value::Str(city)}, r.num_tuples())
            .ok());
  };
  add(10001, "nyc");
  add(10001, "nyc");
  add(10001, "boston");
  add(20002, "dc");
  add(20002, "dc");
  return r;
}

TEST(FdViolationTest, FindsExactlyTheConflictingPairs) {
  Relation r = AddressRelation();
  auto violations = FindFdViolations(r, {0}, {1}).ValueOrDie();
  ASSERT_EQ(violations.size(), 2u);
  // (0,2) and (1,2): the boston tuple conflicts with both nyc tuples.
  EXPECT_EQ(violations[0].tuple_a, 0);
  EXPECT_EQ(violations[0].tuple_b, 2);
  EXPECT_EQ(violations[1].tuple_a, 1);
  EXPECT_EQ(violations[1].tuple_b, 2);
}

TEST(FdViolationTest, CleanRelationHasNone) {
  Relation r("r", {"a", "b"});
  ASSERT_TRUE(r.AppendBase({Value::Int(1), Value::Int(2)}, 0).ok());
  ASSERT_TRUE(r.AppendBase({Value::Int(1), Value::Int(2)}, 1).ok());
  EXPECT_TRUE(FindFdViolations(r, {0}, {1}).ValueOrDie().empty());
}

TEST(FdViolationTest, RejectsBadColumns) {
  Relation r = AddressRelation();
  EXPECT_FALSE(FindFdViolations(r, {}, {1}).ok());
  EXPECT_FALSE(FindFdViolations(r, {0}, {9}).ok());
}

TEST(RepairShapleyTest, ConflictingTupleGetsTheLargestShare) {
  Relation r = AddressRelation();
  auto values = RepairShapley(r, {0}, {1}).ValueOrDie();
  // Tuple 2 participates in both violations: 2 * 0.5 = 1.0.
  EXPECT_DOUBLE_EQ(values[2], 1.0);
  EXPECT_DOUBLE_EQ(values[0], 0.5);
  EXPECT_DOUBLE_EQ(values[1], 0.5);
  EXPECT_DOUBLE_EQ(values[3], 0.0);
  EXPECT_DOUBLE_EQ(values[4], 0.0);
}

TEST(RepairShapleyTest, ClosedFormMatchesGenericExactShapley) {
  Relation r = AddressRelation();
  auto closed = RepairShapley(r, {0}, {1}).ValueOrDie();
  auto violations = FindFdViolations(r, {0}, {1}).ValueOrDie();
  int n = r.num_tuples();
  std::vector<double> exact =
      ShapleyOfSetFunction(n, [&](uint64_t mask) {
        double count = 0;
        for (const auto& v : violations) {
          if ((mask & (1ULL << v.tuple_a)) && (mask & (1ULL << v.tuple_b)))
            count += 1.0;
        }
        return count;
      });
  for (int t = 0; t < n; ++t) EXPECT_NEAR(closed[t], exact[t], 1e-12);
}

TEST(RepairShapleyTest, ValuesSumToViolationCount) {
  Relation r = AddressRelation();
  auto values = RepairShapley(r, {0}, {1}).ValueOrDie();
  double sum = 0;
  for (const auto& [t, v] : values) sum += v;
  EXPECT_DOUBLE_EQ(sum, 2.0);  // Two violating pairs.
}

TEST(GreedyRepairTest, RemovesTheMinimalCulprit) {
  Relation r = AddressRelation();
  auto removed = GreedyRepair(r, {0}, {1}).ValueOrDie();
  // Deleting the single boston tuple resolves everything.
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], 2);
}

TEST(GreedyRepairTest, ResolvesAllViolations) {
  // A messier relation: three different cities for one zip.
  Relation r("r", {"zip", "city"});
  const char* cities[] = {"a", "b", "c", "a"};
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(
        r.AppendBase({Value::Int(1), Value::Str(cities[i])}, i).ok());
  auto removed = GreedyRepair(r, {0}, {1}).ValueOrDie();
  // Verify: after removing, no violations remain.
  std::set<int> gone(removed.begin(), removed.end());
  auto violations = FindFdViolations(r, {0}, {1}).ValueOrDie();
  for (const auto& v : violations)
    EXPECT_TRUE(gone.count(v.tuple_a) || gone.count(v.tuple_b));
  // Optimal repair keeps the majority city "a" (2 tuples): removes 2.
  EXPECT_EQ(removed.size(), 2u);
}

TEST(GreedyRepairTest, CleanRelationNeedsNoRepair) {
  Relation r("r", {"a", "b"});
  ASSERT_TRUE(r.AppendBase({Value::Int(1), Value::Int(1)}, 0).ok());
  EXPECT_TRUE(GreedyRepair(r, {0}, {1}).ValueOrDie().empty());
}

}  // namespace
}  // namespace xai
