#include "xai/rules/sufficient_reason.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "xai/core/combinatorics.h"
#include "xai/data/synthetic.h"
#include "xai/model/decision_tree.h"

namespace xai {
namespace {

// Tree computing (f0 > 0) OR (f1 > 0) with all-leaf classes:
//   root: f0 <= 0 ? check f1 : leaf 1
Tree OrTree() {
  std::vector<TreeNode> nodes(5);
  nodes[0] = {0, 0.0, 1, 2, 0.0, 8.0};   // f0 <= 0 -> node1 else leaf 1.
  nodes[1] = {1, 0.0, 3, 4, 0.0, 4.0};   // f1 <= 0 -> leaf 0 else leaf 1.
  nodes[2] = {-1, 0.0, -1, -1, 1.0, 4.0};
  nodes[3] = {-1, 0.0, -1, -1, 0.0, 2.0};
  nodes[4] = {-1, 0.0, -1, -1, 1.0, 2.0};
  return Tree(std::move(nodes));
}

TEST(SufficiencyTest, FullMaskAlwaysSufficient) {
  Tree tree = OrTree();
  EXPECT_TRUE(IsSufficientReason(tree, {1.0, -1.0}, 0b11));
  EXPECT_TRUE(IsSufficientReason(tree, {-1.0, -1.0}, 0b11));
}

TEST(SufficiencyTest, OrSemantics) {
  Tree tree = OrTree();
  // Instance (1, -1): prediction 1 via f0. {f0} alone is sufficient.
  EXPECT_TRUE(IsSufficientReason(tree, {1.0, -1.0}, 0b01));
  // {f1} alone is NOT: f1 = -1 leaves the outcome to f0.
  EXPECT_FALSE(IsSufficientReason(tree, {1.0, -1.0}, 0b10));
  // Empty set insufficient.
  EXPECT_FALSE(IsSufficientReason(tree, {1.0, -1.0}, 0));
}

TEST(SufficiencyTest, NegativeCaseNeedsBothFeatures) {
  Tree tree = OrTree();
  // Instance (-1, -1): prediction 0; both features must be fixed.
  EXPECT_FALSE(IsSufficientReason(tree, {-1.0, -1.0}, 0b01));
  EXPECT_FALSE(IsSufficientReason(tree, {-1.0, -1.0}, 0b10));
  EXPECT_TRUE(IsSufficientReason(tree, {-1.0, -1.0}, 0b11));
}

TEST(MinimumSufficientReasonTest, OrPositiveCase) {
  Tree tree = OrTree();
  auto reason = MinimumSufficientReason(tree, {1.0, -1.0}, 2).ValueOrDie();
  EXPECT_EQ(reason.features, (std::vector<int>{0}));
  EXPECT_TRUE(reason.minimal);
}

TEST(MinimumSufficientReasonTest, OrNegativeCaseNeedsBoth) {
  Tree tree = OrTree();
  auto reason = MinimumSufficientReason(tree, {-1.0, -1.0}, 2).ValueOrDie();
  EXPECT_EQ(reason.features, (std::vector<int>{0, 1}));
}

TEST(MinimumSufficientReasonTest, BothPositiveEitherSuffices) {
  Tree tree = OrTree();
  auto reason = MinimumSufficientReason(tree, {1.0, 1.0}, 2).ValueOrDie();
  EXPECT_EQ(reason.features.size(), 1u);
}

TEST(NecessaryFeaturesTest, OrSemantics) {
  Tree tree = OrTree();
  // (1, -1): f0 necessary (dropping it from {f0,f1} loses sufficiency).
  EXPECT_EQ(NecessaryFeatures(tree, {1.0, -1.0}, 2),
            (std::vector<int>{0}));
  // (1, 1): neither necessary (either alone suffices).
  EXPECT_TRUE(NecessaryFeatures(tree, {1.0, 1.0}, 2).empty());
  // (-1, -1): both necessary.
  EXPECT_EQ(NecessaryFeatures(tree, {-1.0, -1.0}, 2),
            (std::vector<int>{0, 1}));
}

TEST(TestedFeaturesTest, OnlySplitFeatures) {
  Tree tree = OrTree();
  EXPECT_EQ(TestedFeatures(tree), (std::vector<int>{0, 1}));
}

// Property suite on trained trees: the returned reason is verified
// sufficient and dropping any single feature breaks sufficiency.
class SufficientReasonPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SufficientReasonPropertyTest, MinimalAndSufficientOnTrainedTrees) {
  Dataset d = MakeLoans(400, GetParam());
  CartConfig config;
  config.max_depth = 5;
  auto model = DecisionTreeModel::Train(d, config).ValueOrDie();
  const Tree& tree = model.tree();
  for (int row : {0, 11, 42}) {
    Vector x = d.Row(row);
    auto reason =
        MinimumSufficientReason(tree, x, d.num_features()).ValueOrDie();
    uint64_t mask = IndicesToMask(reason.features);
    EXPECT_TRUE(IsSufficientReason(tree, x, mask));
    for (int f : reason.features) {
      EXPECT_FALSE(IsSufficientReason(tree, x, mask & ~(1ULL << f)))
          << "dropping feature " << f << " should break sufficiency";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SufficientReasonPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(MinimumSufficientReasonTest, GreedyFallbackStillMinimal) {
  Dataset d = MakeLoans(500, 9);
  CartConfig config;
  config.max_depth = 7;
  auto model = DecisionTreeModel::Train(d, config).ValueOrDie();
  Vector x = d.Row(3);
  // Force the greedy path by setting exact_limit = 0.
  auto reason =
      MinimumSufficientReason(model.tree(), x, d.num_features(), 0)
          .ValueOrDie();
  uint64_t mask = IndicesToMask(reason.features);
  EXPECT_TRUE(IsSufficientReason(model.tree(), x, mask));
  for (int f : reason.features)
    EXPECT_FALSE(IsSufficientReason(model.tree(), x, mask & ~(1ULL << f)));
}

TEST(MinimumSufficientReasonTest, CountsChecks) {
  Tree tree = OrTree();
  auto reason = MinimumSufficientReason(tree, {1.0, -1.0}, 2).ValueOrDie();
  EXPECT_GT(reason.checks, 0);
}

}  // namespace
}  // namespace xai
