#include "xai/core/simd.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "xai/core/linalg.h"
#include "xai/core/matrix.h"
#include "xai/core/parallel.h"
#include "xai/core/rng.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/mlp.h"

namespace xai {
namespace {

// The kernel determinism contract (simd.h): every kernel produces
// bit-identical results on every compiled backend and at every thread
// count. These tests pin that contract for all kernels, odd sizes
// included, and for the solver / batch-predict paths built on top.

std::vector<simd::Backend> AvailableBackends() {
  std::vector<simd::Backend> out = {simd::Backend::kScalar};
  if (simd::MaxSupported() >= simd::Backend::kSse2)
    out.push_back(simd::Backend::kSse2);
  if (simd::MaxSupported() >= simd::Backend::kAvx2)
    out.push_back(simd::Backend::kAvx2);
  return out;
}

class BackendGuard {
 public:
  explicit BackendGuard(simd::Backend b) : prev_(simd::Active()) {
    simd::SetBackend(b);
  }
  ~BackendGuard() { simd::SetBackend(prev_); }

 private:
  simd::Backend prev_;
};

class ThreadsGuard {
 public:
  explicit ThreadsGuard(int n) : saved_(GetNumThreads()) {
    SetNumThreads(n);
  }
  ~ThreadsGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};

// Exact bit comparison (EXPECT_EQ on doubles would conflate +0.0/-0.0).
::testing::AssertionResult BitEqual(const double* a, const double* b,
                                    size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult BitEqual(const Vector& a, const Vector& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "size mismatch";
  return BitEqual(a.data(), b.data(), a.size());
}

Vector RandomVector(size_t n, Rng* rng) {
  Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng->Uniform(-3.0, 3.0);
  return v;
}

const std::vector<size_t> kSizes = {0, 1, 2, 3, 4, 5, 7, 8, 13, 31, 100};

// The CI `XAI_SIMD=scalar` job relies on the env var actually steering the
// dispatch point. Every BackendGuard in this file restores the env-resolved
// backend on destruction, so Active() outside a guard reflects XAI_SIMD no
// matter where gtest schedules this test.
TEST(SimdKernelTest, EnvVariableSteersDispatch) {
  const char* env = std::getenv("XAI_SIMD");
  if (env == nullptr) GTEST_SKIP() << "XAI_SIMD not set";
  std::string want(env);
  if (want == "scalar") EXPECT_EQ(simd::Active(), simd::Backend::kScalar);
  if (want == "sse2" && simd::MaxSupported() >= simd::Backend::kSse2)
    EXPECT_EQ(simd::Active(), simd::Backend::kSse2);
  if (want == "avx2" && simd::MaxSupported() >= simd::Backend::kAvx2)
    EXPECT_EQ(simd::Active(), simd::Backend::kAvx2);
}

TEST(SimdKernelTest, DotBitIdenticalAcrossBackends) {
  Rng rng(11);
  for (size_t n : kSizes) {
    Vector a = RandomVector(n, &rng), b = RandomVector(n, &rng);
    BackendGuard scalar(simd::Backend::kScalar);
    double ref = simd::Dot(a.data(), b.data(), n);
    for (simd::Backend be : AvailableBackends()) {
      BackendGuard g(be);
      double got = simd::Dot(a.data(), b.data(), n);
      EXPECT_TRUE(BitEqual(&ref, &got, 1))
          << "n=" << n << " backend=" << simd::BackendName(be);
    }
  }
}

TEST(SimdKernelTest, DotMatchesLongDoubleReference) {
  Rng rng(12);
  Vector a = RandomVector(257, &rng), b = RandomVector(257, &rng);
  long double acc = 0.0L;
  for (size_t i = 0; i < a.size(); ++i)
    acc += static_cast<long double>(a[i]) * b[i];
  double got = simd::Dot(a.data(), b.data(), a.size());
  EXPECT_NEAR(got, static_cast<double>(acc), 1e-10);
}

TEST(SimdKernelTest, AxpyBitIdenticalAcrossBackends) {
  Rng rng(13);
  for (size_t n : kSizes) {
    Vector x = RandomVector(n, &rng), y0 = RandomVector(n, &rng);
    Vector ref = y0;
    {
      BackendGuard scalar(simd::Backend::kScalar);
      simd::Axpy(0.7, x.data(), ref.data(), n);
    }
    for (simd::Backend be : AvailableBackends()) {
      BackendGuard g(be);
      Vector y = y0;
      simd::Axpy(0.7, x.data(), y.data(), n);
      EXPECT_TRUE(BitEqual(ref, y))
          << "n=" << n << " backend=" << simd::BackendName(be);
    }
  }
}

TEST(SimdKernelTest, ScaledSquaredDistanceBitIdenticalAcrossBackends) {
  Rng rng(14);
  for (size_t n : kSizes) {
    Vector a = RandomVector(n, &rng), b = RandomVector(n, &rng);
    Vector w(n);
    for (size_t i = 0; i < n; ++i) w[i] = rng.Uniform(0.0, 2.0);
    for (const double* wp :
         {static_cast<const double*>(nullptr),
          static_cast<const double*>(w.data())}) {
      BackendGuard scalar(simd::Backend::kScalar);
      double ref = simd::ScaledSquaredDistance(a.data(), b.data(), n, wp);
      for (simd::Backend be : AvailableBackends()) {
        BackendGuard g(be);
        double got = simd::ScaledSquaredDistance(a.data(), b.data(), n, wp);
        EXPECT_TRUE(BitEqual(&ref, &got, 1))
            << "n=" << n << " weighted=" << (wp != nullptr)
            << " backend=" << simd::BackendName(be);
      }
    }
  }
}

TEST(SimdKernelTest, WeightedOuterAccumulateBitIdenticalAcrossBackends) {
  Rng rng(15);
  for (int d : {1, 2, 3, 5, 8, 17}) {
    int stride = d + 2;  // Sub-block update, like the Hessian bias column.
    Vector row = RandomVector(d, &rng);
    Vector g0 = RandomVector(static_cast<size_t>(d) * stride, &rng);
    Vector ref = g0;
    {
      BackendGuard scalar(simd::Backend::kScalar);
      simd::WeightedOuterAccumulate(1.3, row.data(), d, ref.data(), stride);
    }
    for (simd::Backend be : AvailableBackends()) {
      BackendGuard bg(be);
      Vector g = g0;
      simd::WeightedOuterAccumulate(1.3, row.data(), d, g.data(), stride);
      EXPECT_TRUE(BitEqual(ref, g))
          << "d=" << d << " backend=" << simd::BackendName(be);
    }
  }
}

struct GemmShape {
  int m, n, k;
};

const std::vector<GemmShape> kGemmShapes = {
    {1, 1, 1}, {2, 8, 4},  {3, 9, 5},   {1, 17, 3},
    {7, 5, 13}, {8, 16, 8}, {13, 31, 7}, {16, 24, 32}};

TEST(SimdKernelTest, GemmBitIdenticalAcrossBackends) {
  Rng rng(16);
  for (const GemmShape& s : kGemmShapes) {
    int lda = s.k + 1, ldb = s.n + 2, ldc = s.n + 1;  // Padded strides.
    Vector a = RandomVector(static_cast<size_t>(s.m) * lda, &rng);
    Vector b = RandomVector(static_cast<size_t>(s.k) * ldb, &rng);
    Vector c0 = RandomVector(static_cast<size_t>(s.m) * ldc, &rng);
    Vector ref = c0;
    {
      BackendGuard scalar(simd::Backend::kScalar);
      simd::Gemm(s.m, s.n, s.k, a.data(), lda, b.data(), ldb, ref.data(),
                 ldc);
    }
    for (simd::Backend be : AvailableBackends()) {
      BackendGuard g(be);
      Vector c = c0;
      simd::Gemm(s.m, s.n, s.k, a.data(), lda, b.data(), ldb, c.data(), ldc);
      EXPECT_TRUE(BitEqual(ref, c))
          << "m=" << s.m << " n=" << s.n << " k=" << s.k
          << " backend=" << simd::BackendName(be);
    }
  }
}

TEST(SimdKernelTest, GemmTNBitIdenticalAcrossBackends) {
  Rng rng(17);
  for (const GemmShape& s : kGemmShapes) {
    int lda = s.m + 1, ldb = s.n + 2, ldc = s.n + 1;  // A is k x m here.
    Vector a = RandomVector(static_cast<size_t>(s.k) * lda, &rng);
    Vector b = RandomVector(static_cast<size_t>(s.k) * ldb, &rng);
    Vector c0 = RandomVector(static_cast<size_t>(s.m) * ldc, &rng);
    Vector ref = c0;
    {
      BackendGuard scalar(simd::Backend::kScalar);
      simd::GemmTN(s.m, s.n, s.k, a.data(), lda, b.data(), ldb, ref.data(),
                   ldc);
    }
    for (simd::Backend be : AvailableBackends()) {
      BackendGuard g(be);
      Vector c = c0;
      simd::GemmTN(s.m, s.n, s.k, a.data(), lda, b.data(), ldb, c.data(),
                   ldc);
      EXPECT_TRUE(BitEqual(ref, c))
          << "m=" << s.m << " n=" << s.n << " k=" << s.k
          << " backend=" << simd::BackendName(be);
    }
  }
}

TEST(SimdKernelTest, GemmMatchesNaiveTripleLoop) {
  Rng rng(18);
  int m = 9, n = 14, k = 11;
  Matrix a(m, k), b(k, n);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < k; ++j) a(i, j) = rng.Normal();
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < n; ++j) b(i, j) = rng.Normal();
  Matrix c(m, n);
  simd::Gemm(m, n, k, a.RowPtr(0), k, b.RowPtr(0), n, c.RowPtr(0), n);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += a(i, p) * b(p, j);
      EXPECT_NEAR(c(i, j), acc, 1e-12) << i << "," << j;
    }
}

TEST(SimdKernelTest, SetBackendClampsToMaxSupported) {
  BackendGuard g(simd::Active());
  simd::Backend applied = simd::SetBackend(simd::Backend::kAvx2);
  EXPECT_LE(applied, simd::MaxSupported());
  EXPECT_EQ(applied, simd::Active());
  EXPECT_EQ(simd::SetBackend(simd::Backend::kScalar),
            simd::Backend::kScalar);
}

// --- Composite paths: solver and batch prediction built on the kernels. ---

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j) m(i, j) = rng->Normal();
  return m;
}

TEST(SimdCompositeTest, WlsSolveBitIdenticalAcrossBackendsAndThreads) {
  Rng rng(21);
  Matrix x = RandomMatrix(120, 7, &rng);
  Vector y = RandomVector(120, &rng);
  Vector w(120);
  for (int i = 0; i < 120; ++i) w[i] = rng.Uniform(0.1, 2.0);

  Vector ref;
  {
    BackendGuard g(simd::Backend::kScalar);
    ThreadsGuard t(1);
    ref = WeightedRidgeRegression(x, y, w, 0.01, true).ValueOrDie();
  }
  for (simd::Backend be : AvailableBackends()) {
    for (int threads : {1, 4, 8}) {
      BackendGuard g(be);
      ThreadsGuard t(threads);
      Vector got = WeightedRidgeRegression(x, y, w, 0.01, true).ValueOrDie();
      EXPECT_TRUE(BitEqual(ref, got))
          << "backend=" << simd::BackendName(be) << " threads=" << threads;
    }
  }
}

TEST(SimdCompositeTest, LogisticBatchBitIdenticalAcrossBackendsAndThreads) {
  Rng rng(22);
  Matrix x = RandomMatrix(300, 6, &rng);
  Vector y(300);
  for (int i = 0; i < 300; ++i) y[i] = x(i, 0) + x(i, 1) > 0 ? 1.0 : 0.0;
  LogisticRegressionModel model =
      LogisticRegressionModel::Train(x, y, {}).ValueOrDie();

  Vector ref;
  {
    BackendGuard g(simd::Backend::kScalar);
    ThreadsGuard t(1);
    ref = model.PredictBatch(x);
  }
  // Batch must equal row-wise Predict bitwise.
  for (int i = 0; i < x.rows(); ++i) {
    double p = model.Predict(x.Row(i));
    ASSERT_TRUE(BitEqual(&ref[i], &p, 1)) << "row " << i;
  }
  for (simd::Backend be : AvailableBackends()) {
    for (int threads : {1, 4, 8}) {
      BackendGuard g(be);
      ThreadsGuard t(threads);
      Vector got = model.PredictBatch(x);
      EXPECT_TRUE(BitEqual(ref, got))
          << "backend=" << simd::BackendName(be) << " threads=" << threads;
    }
  }
}

TEST(SimdCompositeTest, MlpBatchBitIdenticalToForwardAcrossBackends) {
  Rng rng(23);
  Matrix x = RandomMatrix(90, 5, &rng);
  Vector y(90);
  for (int i = 0; i < 90; ++i) y[i] = x(i, 0) - x(i, 2) > 0 ? 1.0 : 0.0;
  MlpConfig cfg;
  cfg.hidden = {9, 4};
  cfg.epochs = 5;
  MlpModel model =
      MlpModel::Train(x, y, TaskType::kClassification, cfg).ValueOrDie();

  Vector ref(x.rows());
  for (int i = 0; i < x.rows(); ++i) ref[i] = model.Predict(x.Row(i));
  for (simd::Backend be : AvailableBackends()) {
    for (int threads : {1, 4, 8}) {
      BackendGuard g(be);
      ThreadsGuard t(threads);
      Vector got = model.PredictBatch(x);
      EXPECT_TRUE(BitEqual(ref, got))
          << "backend=" << simd::BackendName(be) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace xai
