#include "xai/core/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "xai/core/linalg.h"
#include "xai/core/matrix.h"
#include "xai/core/parallel.h"
#include "xai/core/rng.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/mlp.h"

namespace xai {
namespace {

// The kernel determinism contract (simd.h): every kernel produces
// bit-identical results on every compiled backend and at every thread
// count. These tests pin that contract for all kernels, odd sizes
// included, and for the solver / batch-predict paths built on top.

std::vector<simd::Backend> AvailableBackends() {
  std::vector<simd::Backend> out = {simd::Backend::kScalar};
  if (simd::MaxSupported() >= simd::Backend::kSse2)
    out.push_back(simd::Backend::kSse2);
  if (simd::MaxSupported() >= simd::Backend::kAvx2)
    out.push_back(simd::Backend::kAvx2);
  return out;
}

class BackendGuard {
 public:
  explicit BackendGuard(simd::Backend b) : prev_(simd::Active()) {
    simd::SetBackend(b);
  }
  ~BackendGuard() { simd::SetBackend(prev_); }

 private:
  simd::Backend prev_;
};

class ThreadsGuard {
 public:
  explicit ThreadsGuard(int n) : saved_(GetNumThreads()) {
    SetNumThreads(n);
  }
  ~ThreadsGuard() { SetNumThreads(saved_); }

 private:
  int saved_;
};

// Exact bit comparison (EXPECT_EQ on doubles would conflate +0.0/-0.0).
::testing::AssertionResult BitEqual(const double* a, const double* b,
                                    size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult BitEqual(const Vector& a, const Vector& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "size mismatch";
  return BitEqual(a.data(), b.data(), a.size());
}

Vector RandomVector(size_t n, Rng* rng) {
  Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng->Uniform(-3.0, 3.0);
  return v;
}

const std::vector<size_t> kSizes = {0, 1, 2, 3, 4, 5, 7, 8, 13, 31, 100};

// The CI `XAI_SIMD=scalar` job relies on the env var actually steering the
// dispatch point. Every BackendGuard in this file restores the env-resolved
// backend on destruction, so Active() outside a guard reflects XAI_SIMD no
// matter where gtest schedules this test.
TEST(SimdKernelTest, EnvVariableSteersDispatch) {
  const char* env = std::getenv("XAI_SIMD");
  if (env == nullptr) GTEST_SKIP() << "XAI_SIMD not set";
  std::string want(env);
  if (want == "scalar") EXPECT_EQ(simd::Active(), simd::Backend::kScalar);
  if (want == "sse2" && simd::MaxSupported() >= simd::Backend::kSse2)
    EXPECT_EQ(simd::Active(), simd::Backend::kSse2);
  if (want == "avx2" && simd::MaxSupported() >= simd::Backend::kAvx2)
    EXPECT_EQ(simd::Active(), simd::Backend::kAvx2);
  if (want == "fma" && simd::FmaSupported())
    EXPECT_EQ(simd::Active(), simd::Backend::kFma);
}

TEST(SimdKernelTest, ParseBackendNameRoundTrips) {
  EXPECT_EQ(simd::ParseBackendName("scalar"), simd::Backend::kScalar);
  EXPECT_EQ(simd::ParseBackendName("sse2"), simd::Backend::kSse2);
  EXPECT_EQ(simd::ParseBackendName("avx2"), simd::Backend::kAvx2);
  EXPECT_EQ(simd::ParseBackendName("fma"), simd::Backend::kFma);
  for (simd::Backend be :
       {simd::Backend::kScalar, simd::Backend::kSse2, simd::Backend::kAvx2,
        simd::Backend::kFma}) {
    EXPECT_EQ(simd::ParseBackendName(simd::BackendName(be)), be);
  }
}

TEST(SimdKernelDeathTest, UnknownBackendNameAborts) {
  // A typo'd XAI_SIMD value must abort rather than silently fall back to
  // auto-detection (it would invalidate the A/B run the variable was set
  // for). The env parsing itself runs once per process inside a function-
  // local static, so the death test exercises the parse function directly.
  EXPECT_DEATH(simd::ParseBackendName("turbo"), "XAI_CHECK failed");
  EXPECT_DEATH(simd::ParseBackendName(""), "XAI_CHECK failed");
  EXPECT_DEATH(simd::ParseBackendName(nullptr), "XAI_CHECK failed");
}

TEST(SimdKernelTest, DotBitIdenticalAcrossBackends) {
  Rng rng(11);
  for (size_t n : kSizes) {
    Vector a = RandomVector(n, &rng), b = RandomVector(n, &rng);
    BackendGuard scalar(simd::Backend::kScalar);
    double ref = simd::Dot(a.data(), b.data(), n);
    for (simd::Backend be : AvailableBackends()) {
      BackendGuard g(be);
      double got = simd::Dot(a.data(), b.data(), n);
      EXPECT_TRUE(BitEqual(&ref, &got, 1))
          << "n=" << n << " backend=" << simd::BackendName(be);
    }
  }
}

TEST(SimdKernelTest, DotMatchesLongDoubleReference) {
  Rng rng(12);
  Vector a = RandomVector(257, &rng), b = RandomVector(257, &rng);
  long double acc = 0.0L;
  for (size_t i = 0; i < a.size(); ++i)
    acc += static_cast<long double>(a[i]) * b[i];
  double got = simd::Dot(a.data(), b.data(), a.size());
  EXPECT_NEAR(got, static_cast<double>(acc), 1e-10);
}

TEST(SimdKernelTest, AxpyBitIdenticalAcrossBackends) {
  Rng rng(13);
  for (size_t n : kSizes) {
    Vector x = RandomVector(n, &rng), y0 = RandomVector(n, &rng);
    Vector ref = y0;
    {
      BackendGuard scalar(simd::Backend::kScalar);
      simd::Axpy(0.7, x.data(), ref.data(), n);
    }
    for (simd::Backend be : AvailableBackends()) {
      BackendGuard g(be);
      Vector y = y0;
      simd::Axpy(0.7, x.data(), y.data(), n);
      EXPECT_TRUE(BitEqual(ref, y))
          << "n=" << n << " backend=" << simd::BackendName(be);
    }
  }
}

TEST(SimdKernelTest, ScaledSquaredDistanceBitIdenticalAcrossBackends) {
  Rng rng(14);
  for (size_t n : kSizes) {
    Vector a = RandomVector(n, &rng), b = RandomVector(n, &rng);
    Vector w(n);
    for (size_t i = 0; i < n; ++i) w[i] = rng.Uniform(0.0, 2.0);
    for (const double* wp :
         {static_cast<const double*>(nullptr),
          static_cast<const double*>(w.data())}) {
      BackendGuard scalar(simd::Backend::kScalar);
      double ref = simd::ScaledSquaredDistance(a.data(), b.data(), n, wp);
      for (simd::Backend be : AvailableBackends()) {
        BackendGuard g(be);
        double got = simd::ScaledSquaredDistance(a.data(), b.data(), n, wp);
        EXPECT_TRUE(BitEqual(&ref, &got, 1))
            << "n=" << n << " weighted=" << (wp != nullptr)
            << " backend=" << simd::BackendName(be);
      }
    }
  }
}

TEST(SimdKernelTest, WeightedOuterAccumulateBitIdenticalAcrossBackends) {
  Rng rng(15);
  for (int d : {1, 2, 3, 5, 8, 17}) {
    int stride = d + 2;  // Sub-block update, like the Hessian bias column.
    Vector row = RandomVector(d, &rng);
    Vector g0 = RandomVector(static_cast<size_t>(d) * stride, &rng);
    Vector ref = g0;
    {
      BackendGuard scalar(simd::Backend::kScalar);
      simd::WeightedOuterAccumulate(1.3, row.data(), d, ref.data(), stride);
    }
    for (simd::Backend be : AvailableBackends()) {
      BackendGuard bg(be);
      Vector g = g0;
      simd::WeightedOuterAccumulate(1.3, row.data(), d, g.data(), stride);
      EXPECT_TRUE(BitEqual(ref, g))
          << "d=" << d << " backend=" << simd::BackendName(be);
    }
  }
}

struct GemmShape {
  int m, n, k;
};

const std::vector<GemmShape> kGemmShapes = {
    {1, 1, 1}, {2, 8, 4},  {3, 9, 5},   {1, 17, 3},
    {7, 5, 13}, {8, 16, 8}, {13, 31, 7}, {16, 24, 32}};

TEST(SimdKernelTest, GemmBitIdenticalAcrossBackends) {
  Rng rng(16);
  for (const GemmShape& s : kGemmShapes) {
    int lda = s.k + 1, ldb = s.n + 2, ldc = s.n + 1;  // Padded strides.
    Vector a = RandomVector(static_cast<size_t>(s.m) * lda, &rng);
    Vector b = RandomVector(static_cast<size_t>(s.k) * ldb, &rng);
    Vector c0 = RandomVector(static_cast<size_t>(s.m) * ldc, &rng);
    Vector ref = c0;
    {
      BackendGuard scalar(simd::Backend::kScalar);
      simd::Gemm(s.m, s.n, s.k, a.data(), lda, b.data(), ldb, ref.data(),
                 ldc);
    }
    for (simd::Backend be : AvailableBackends()) {
      BackendGuard g(be);
      Vector c = c0;
      simd::Gemm(s.m, s.n, s.k, a.data(), lda, b.data(), ldb, c.data(), ldc);
      EXPECT_TRUE(BitEqual(ref, c))
          << "m=" << s.m << " n=" << s.n << " k=" << s.k
          << " backend=" << simd::BackendName(be);
    }
  }
}

TEST(SimdKernelTest, GemmTNBitIdenticalAcrossBackends) {
  Rng rng(17);
  for (const GemmShape& s : kGemmShapes) {
    int lda = s.m + 1, ldb = s.n + 2, ldc = s.n + 1;  // A is k x m here.
    Vector a = RandomVector(static_cast<size_t>(s.k) * lda, &rng);
    Vector b = RandomVector(static_cast<size_t>(s.k) * ldb, &rng);
    Vector c0 = RandomVector(static_cast<size_t>(s.m) * ldc, &rng);
    Vector ref = c0;
    {
      BackendGuard scalar(simd::Backend::kScalar);
      simd::GemmTN(s.m, s.n, s.k, a.data(), lda, b.data(), ldb, ref.data(),
                   ldc);
    }
    for (simd::Backend be : AvailableBackends()) {
      BackendGuard g(be);
      Vector c = c0;
      simd::GemmTN(s.m, s.n, s.k, a.data(), lda, b.data(), ldb, c.data(),
                   ldc);
      EXPECT_TRUE(BitEqual(ref, c))
          << "m=" << s.m << " n=" << s.n << " k=" << s.k
          << " backend=" << simd::BackendName(be);
    }
  }
}

TEST(SimdKernelTest, GemmMatchesNaiveTripleLoop) {
  Rng rng(18);
  int m = 9, n = 14, k = 11;
  Matrix a(m, k), b(k, n);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < k; ++j) a(i, j) = rng.Normal();
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < n; ++j) b(i, j) = rng.Normal();
  Matrix c(m, n);
  simd::Gemm(m, n, k, a.RowPtr(0), k, b.RowPtr(0), n, c.RowPtr(0), n);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += a(i, p) * b(p, j);
      EXPECT_NEAR(c(i, j), acc, 1e-12) << i << "," << j;
    }
}

TEST(SimdKernelTest, SetBackendClampsToMaxSupported) {
  BackendGuard g(simd::Active());
  simd::Backend applied = simd::SetBackend(simd::Backend::kAvx2);
  EXPECT_LE(applied, simd::MaxSupported());
  EXPECT_EQ(applied, simd::Active());
  EXPECT_EQ(simd::SetBackend(simd::Backend::kScalar),
            simd::Backend::kScalar);
}

// --- Packed GEMM: the blocked/tiled path must be bit-identical to the
// direct path (same single accumulation chain per output, ascending k) on
// every backend and thread count, including every edge-tile shape. ---

TEST(SimdKernelTest, PackedGemmEdgeShapesBitIdenticalToDirect) {
  Rng rng(31);
  // Sweep shapes straddling the micro-tile (kGemmMR x kGemmNR = 4x8):
  // partial row panels, partial column panels, and the k=0 no-op.
  for (int m : {1, 3, 4, 5, 8, 9}) {
    for (int n : {1, 7, 8, 9, 16, 17}) {
      for (int k : {0, 1, 3, 5, 32, 257}) {
        int lda = k + 1, ldb = n + 2, ldc = n + 1;
        Vector a = RandomVector(static_cast<size_t>(m) * lda, &rng);
        Vector b =
            RandomVector(static_cast<size_t>(std::max(k, 1)) * ldb, &rng);
        Vector c0 = RandomVector(static_cast<size_t>(m) * ldc, &rng);
        for (simd::Backend be : AvailableBackends()) {
          BackendGuard g(be);
          Vector direct = c0, packed = c0;
          simd::GemmDirect(m, n, k, a.data(), lda, b.data(), ldb,
                           direct.data(), ldc);
          simd::GemmPacked(m, n, k, a.data(), lda, b.data(), ldb,
                           packed.data(), ldc);
          EXPECT_TRUE(BitEqual(direct, packed))
              << "m=" << m << " n=" << n << " k=" << k
              << " backend=" << simd::BackendName(be);
          if (k == 0) {  // Degenerate contraction: C must be untouched.
            EXPECT_TRUE(BitEqual(c0, packed));
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, PackedGemmTNEdgeShapesBitIdenticalToDirect) {
  Rng rng(32);
  for (int m : {1, 4, 5, 9}) {
    for (int n : {1, 8, 9, 17}) {
      for (int k : {0, 1, 5, 257}) {
        int lda = m + 1, ldb = n + 2, ldc = n + 1;  // A is k x m.
        Vector a =
            RandomVector(static_cast<size_t>(std::max(k, 1)) * lda, &rng);
        Vector b =
            RandomVector(static_cast<size_t>(std::max(k, 1)) * ldb, &rng);
        Vector c0 = RandomVector(static_cast<size_t>(m) * ldc, &rng);
        for (simd::Backend be : AvailableBackends()) {
          BackendGuard g(be);
          Vector direct = c0, packed = c0;
          simd::GemmTNDirect(m, n, k, a.data(), lda, b.data(), ldb,
                             direct.data(), ldc);
          simd::GemmTNPacked(m, n, k, a.data(), lda, b.data(), ldb,
                             packed.data(), ldc);
          EXPECT_TRUE(BitEqual(direct, packed))
              << "m=" << m << " n=" << n << " k=" << k
              << " backend=" << simd::BackendName(be);
        }
      }
    }
  }
}

TEST(SimdKernelTest, PackedGemmBitIdenticalAcrossBackendsAndThreads) {
  Rng rng(33);
  // Crosses the KC (256) and MC (128) block boundaries so multiple packed
  // panels, multiple k-blocks, and the ParallelFor row partition all engage.
  const int m = 200, n = 96, k = 300;
  Vector a = RandomVector(static_cast<size_t>(m) * k, &rng);
  Vector b = RandomVector(static_cast<size_t>(k) * n, &rng);
  Vector c0 = RandomVector(static_cast<size_t>(m) * n, &rng);
  Vector ref = c0;
  {
    BackendGuard g(simd::Backend::kScalar);
    ThreadsGuard t(1);
    simd::GemmDirect(m, n, k, a.data(), k, b.data(), n, ref.data(), n);
  }
  for (simd::Backend be : AvailableBackends()) {
    for (int threads : {1, 4, 8}) {
      BackendGuard g(be);
      ThreadsGuard t(threads);
      Vector c = c0;
      simd::GemmPacked(m, n, k, a.data(), k, b.data(), n, c.data(), n);
      EXPECT_TRUE(BitEqual(ref, c))
          << "backend=" << simd::BackendName(be) << " threads=" << threads;
    }
  }
}

TEST(SimdKernelTest, PackedGemmTNBitIdenticalAcrossBackendsAndThreads) {
  Rng rng(34);
  const int m = 140, n = 72, k = 300;  // A is k x m.
  Vector a = RandomVector(static_cast<size_t>(k) * m, &rng);
  Vector b = RandomVector(static_cast<size_t>(k) * n, &rng);
  Vector c0 = RandomVector(static_cast<size_t>(m) * n, &rng);
  Vector ref = c0;
  {
    BackendGuard g(simd::Backend::kScalar);
    ThreadsGuard t(1);
    simd::GemmTNDirect(m, n, k, a.data(), m, b.data(), n, ref.data(), n);
  }
  for (simd::Backend be : AvailableBackends()) {
    for (int threads : {1, 4, 8}) {
      BackendGuard g(be);
      ThreadsGuard t(threads);
      Vector c = c0;
      simd::GemmTNPacked(m, n, k, a.data(), m, b.data(), n, c.data(), n);
      EXPECT_TRUE(BitEqual(ref, c))
          << "backend=" << simd::BackendName(be) << " threads=" << threads;
    }
  }
}

// --- FMA tier: opt-in only, outside the bit-identity contract, validated
// against a long-double reference by tolerance instead. ---

TEST(SimdFmaTest, FmaIsOptInOnly) {
  // Auto-detection must never pick fma — it rounds once per multiply-add
  // and so breaks cross-tier bit identity.
  EXPECT_LT(simd::MaxSupported(), simd::Backend::kFma);
  for (simd::Backend be : AvailableBackends())
    EXPECT_NE(be, simd::Backend::kFma);
  if (!simd::FmaSupported()) GTEST_SKIP() << "fma not supported";
  BackendGuard g(simd::Active());
  EXPECT_EQ(simd::SetBackend(simd::Backend::kFma), simd::Backend::kFma);
  EXPECT_EQ(simd::Active(), simd::Backend::kFma);
}

TEST(SimdFmaTest, FmaDotWithinToleranceOfLongDouble) {
  if (!simd::FmaSupported()) GTEST_SKIP() << "fma not supported";
  Rng rng(41);
  BackendGuard g(simd::Backend::kFma);
  for (size_t n : kSizes) {
    Vector a = RandomVector(n, &rng), b = RandomVector(n, &rng);
    long double acc = 0.0L;
    for (size_t i = 0; i < n; ++i)
      acc += static_cast<long double>(a[i]) * b[i];
    double got = simd::Dot(a.data(), b.data(), n);
    double ref = static_cast<double>(acc);
    double scale = std::max(1.0, std::abs(ref));
    EXPECT_NEAR(got, ref, 1e-10 * scale) << "n=" << n;
  }
}

TEST(SimdFmaTest, FmaGemmWithinToleranceOfLongDouble) {
  if (!simd::FmaSupported()) GTEST_SKIP() << "fma not supported";
  Rng rng(42);
  BackendGuard g(simd::Backend::kFma);
  const int m = 33, n = 29, k = 77;
  Vector a = RandomVector(static_cast<size_t>(m) * k, &rng);
  Vector b = RandomVector(static_cast<size_t>(k) * n, &rng);
  Vector c(static_cast<size_t>(m) * n, 0.0);
  simd::Gemm(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      long double acc = 0.0L;
      for (int p = 0; p < k; ++p)
        acc += static_cast<long double>(a[i * k + p]) * b[p * n + j];
      double ref = static_cast<double>(acc);
      double scale = std::max(1.0, std::abs(ref));
      EXPECT_NEAR(c[i * n + j], ref, 1e-10 * scale) << i << "," << j;
    }
}

TEST(SimdFmaTest, FmaPackedGemmBitIdenticalToFmaDirectOnFullTiles) {
  if (!simd::FmaSupported()) GTEST_SKIP() << "fma not supported";
  // On full register tiles (m % MR == 0, n % NR == 0) packing reorders
  // memory, not arithmetic: packed and direct run the same fused chain per
  // element and must agree bitwise even on the fma tier. (Edge rows and
  // columns are only tolerance-equal — the two paths draw their
  // fused/scalar boundaries at different granularities; see simd.h.)
  Rng rng(43);
  BackendGuard g(simd::Backend::kFma);
  const int m = 152, n = 80, k = 280;  // Crosses KC; m % 4 == n % 8 == 0.
  ASSERT_EQ(m % simd::kGemmMR, 0);
  ASSERT_EQ(n % simd::kGemmNR, 0);
  Vector a = RandomVector(static_cast<size_t>(m) * k, &rng);
  Vector b = RandomVector(static_cast<size_t>(k) * n, &rng);
  Vector c0 = RandomVector(static_cast<size_t>(m) * n, &rng);
  Vector direct = c0, packed = c0;
  simd::GemmDirect(m, n, k, a.data(), k, b.data(), n, direct.data(), n);
  simd::GemmPacked(m, n, k, a.data(), k, b.data(), n, packed.data(), n);
  EXPECT_TRUE(BitEqual(direct, packed));
}

TEST(SimdFmaTest, FmaPackedGemmEdgeShapesWithinToleranceOfLongDouble) {
  if (!simd::FmaSupported()) GTEST_SKIP() << "fma not supported";
  Rng rng(44);
  BackendGuard g(simd::Backend::kFma);
  const int m = 150, n = 77, k = 280;  // Partial tiles on both axes.
  Vector a = RandomVector(static_cast<size_t>(m) * k, &rng);
  Vector b = RandomVector(static_cast<size_t>(k) * n, &rng);
  Vector c(static_cast<size_t>(m) * n, 0.0);
  simd::GemmPacked(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  for (int i = 0; i < m; i += 29)  // Spot-check a grid incl. edge lanes.
    for (int j = 0; j < n; ++j) {
      long double acc = 0.0L;
      for (int p = 0; p < k; ++p)
        acc += static_cast<long double>(a[i * k + p]) * b[p * n + j];
      double ref = static_cast<double>(acc);
      double scale = std::max(1.0, std::abs(ref));
      ASSERT_NEAR(c[i * n + j], ref, 1e-10 * scale) << i << "," << j;
    }
}

// --- Composite paths: solver and batch prediction built on the kernels. ---

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j) m(i, j) = rng->Normal();
  return m;
}

TEST(SimdCompositeTest, WlsSolveBitIdenticalAcrossBackendsAndThreads) {
  Rng rng(21);
  Matrix x = RandomMatrix(120, 7, &rng);
  Vector y = RandomVector(120, &rng);
  Vector w(120);
  for (int i = 0; i < 120; ++i) w[i] = rng.Uniform(0.1, 2.0);

  Vector ref;
  {
    BackendGuard g(simd::Backend::kScalar);
    ThreadsGuard t(1);
    ref = WeightedRidgeRegression(x, y, w, 0.01, true).ValueOrDie();
  }
  for (simd::Backend be : AvailableBackends()) {
    for (int threads : {1, 4, 8}) {
      BackendGuard g(be);
      ThreadsGuard t(threads);
      Vector got = WeightedRidgeRegression(x, y, w, 0.01, true).ValueOrDie();
      EXPECT_TRUE(BitEqual(ref, got))
          << "backend=" << simd::BackendName(be) << " threads=" << threads;
    }
  }
}

TEST(SimdCompositeTest, LogisticBatchBitIdenticalAcrossBackendsAndThreads) {
  Rng rng(22);
  Matrix x = RandomMatrix(300, 6, &rng);
  Vector y(300);
  for (int i = 0; i < 300; ++i) y[i] = x(i, 0) + x(i, 1) > 0 ? 1.0 : 0.0;
  LogisticRegressionModel model =
      LogisticRegressionModel::Train(x, y, {}).ValueOrDie();

  Vector ref;
  {
    BackendGuard g(simd::Backend::kScalar);
    ThreadsGuard t(1);
    ref = model.PredictBatch(x);
  }
  // Batch must equal row-wise Predict bitwise (pinned to the scalar tier:
  // under XAI_SIMD=fma the ambient backend is outside the bit contract).
  {
    BackendGuard g(simd::Backend::kScalar);
    ThreadsGuard t(1);
    for (int i = 0; i < x.rows(); ++i) {
      double p = model.Predict(x.Row(i));
      ASSERT_TRUE(BitEqual(&ref[i], &p, 1)) << "row " << i;
    }
  }
  for (simd::Backend be : AvailableBackends()) {
    for (int threads : {1, 4, 8}) {
      BackendGuard g(be);
      ThreadsGuard t(threads);
      Vector got = model.PredictBatch(x);
      EXPECT_TRUE(BitEqual(ref, got))
          << "backend=" << simd::BackendName(be) << " threads=" << threads;
    }
  }
}

TEST(SimdCompositeTest, MlpBatchBitIdenticalToForwardAcrossBackends) {
  Rng rng(23);
  Matrix x = RandomMatrix(90, 5, &rng);
  Vector y(90);
  for (int i = 0; i < 90; ++i) y[i] = x(i, 0) - x(i, 2) > 0 ? 1.0 : 0.0;
  MlpConfig cfg;
  cfg.hidden = {9, 4};
  cfg.epochs = 5;
  MlpModel model =
      MlpModel::Train(x, y, TaskType::kClassification, cfg).ValueOrDie();

  Vector ref(x.rows());
  {
    BackendGuard g(simd::Backend::kScalar);
    ThreadsGuard t(1);
    for (int i = 0; i < x.rows(); ++i) ref[i] = model.Predict(x.Row(i));
  }
  for (simd::Backend be : AvailableBackends()) {
    for (int threads : {1, 4, 8}) {
      BackendGuard g(be);
      ThreadsGuard t(threads);
      Vector got = model.PredictBatch(x);
      EXPECT_TRUE(BitEqual(ref, got))
          << "backend=" << simd::BackendName(be) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace xai
