#include "xai/rules/decision_set.h"

#include <gtest/gtest.h>

#include "xai/data/synthetic.h"
#include "xai/model/gbdt.h"
#include "xai/model/metrics.h"

namespace xai {
namespace {

TEST(DecisionSetTest, LearnsAccurateRules) {
  Dataset d = MakeLoans(1500, 1);
  auto [train, test] = d.TrainTestSplit(0.3, 2);
  auto model = DecisionSetModel::Train(train).ValueOrDie();
  EXPECT_GT(EvaluateAccuracy(model, test), 0.65);
  EXPECT_FALSE(model.rules().empty());
}

TEST(DecisionSetTest, RespectsRuleBudget) {
  Dataset d = MakeLoans(800, 3);
  DecisionSetConfig config;
  config.max_rules = 4;
  config.max_rule_length = 2;
  auto model = DecisionSetModel::Train(d, config).ValueOrDie();
  EXPECT_LE(model.rules().size(), 4u);
  for (const auto& rule : model.rules())
    EXPECT_LE(rule.conditions.size(), 2u);
}

TEST(DecisionSetTest, RulesCoverTheirSupport) {
  Dataset d = MakeLoans(600, 4);
  auto model = DecisionSetModel::Train(d).ValueOrDie();
  for (const auto& rule : model.rules()) {
    int covered = 0;
    for (int i = 0; i < d.num_rows(); ++i) {
      std::vector<int> bins = model.discretizer().Discretize(d.Row(i));
      if (rule.Covers(bins)) ++covered;
    }
    EXPECT_EQ(covered, rule.support);
  }
}

TEST(DecisionSetTest, PrecisionMatchesEmpirical) {
  Dataset d = MakeLoans(600, 5);
  auto model = DecisionSetModel::Train(d).ValueOrDie();
  for (const auto& rule : model.rules()) {
    int covered = 0, correct = 0;
    for (int i = 0; i < d.num_rows(); ++i) {
      std::vector<int> bins = model.discretizer().Discretize(d.Row(i));
      if (rule.Covers(bins)) {
        ++covered;
        if (static_cast<int>(d.Label(i)) == rule.predicted_class) ++correct;
      }
    }
    ASSERT_GT(covered, 0);
    EXPECT_NEAR(rule.precision, static_cast<double>(correct) / covered,
                1e-9);
  }
}

TEST(DecisionSetTest, AsGlobalSurrogateOfBlackBox) {
  // Train the decision set on a GBDT's *predictions* — a global rule-based
  // surrogate — and measure agreement with the black box.
  Dataset d = MakeLoans(1200, 6);
  GbdtModel::Config mc;
  mc.n_trees = 40;
  auto blackbox = GbdtModel::Train(d, mc).ValueOrDie();
  Vector pseudo_labels(d.num_rows());
  for (int i = 0; i < d.num_rows(); ++i)
    pseudo_labels[i] = blackbox.PredictClass(d.Row(i));
  Dataset surrogate_data(d.schema(), d.x(), pseudo_labels);
  auto surrogate = DecisionSetModel::Train(surrogate_data).ValueOrDie();
  int agree = 0;
  for (int i = 0; i < d.num_rows(); ++i)
    if (surrogate.PredictClass(d.Row(i)) == blackbox.PredictClass(d.Row(i)))
      ++agree;
  EXPECT_GT(static_cast<double>(agree) / d.num_rows(), 0.7);
}

TEST(DecisionSetTest, ToStringListsRulesAndDefault) {
  Dataset d = MakeLoans(500, 7);
  auto model = DecisionSetModel::Train(d).ValueOrDie();
  std::string text = model.ToString();
  EXPECT_NE(text.find("IF "), std::string::npos);
  EXPECT_NE(text.find("ELSE class="), std::string::npos);
}

TEST(DecisionSetTest, RejectsNonBinaryLabels) {
  Dataset d = MakeBlobs(100, 2, 3, 0.5, 8);
  EXPECT_FALSE(DecisionSetModel::Train(d).ok());
}

TEST(DecisionRuleTest, CoversSemantics) {
  DecisionRule rule;
  rule.conditions = {{0, 2}, {3, 1}};
  EXPECT_TRUE(rule.Covers({2, 9, 9, 1}));
  EXPECT_FALSE(rule.Covers({2, 9, 9, 0}));
  EXPECT_FALSE(rule.Covers({1, 9, 9, 1}));
}

}  // namespace
}  // namespace xai
