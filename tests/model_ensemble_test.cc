#include <gtest/gtest.h>

#include <cmath>

#include "xai/data/synthetic.h"
#include "xai/model/decision_tree.h"
#include "xai/model/gbdt.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/metrics.h"
#include "xai/model/random_forest.h"
#include "xai/model/tree_ensemble_view.h"

namespace xai {
namespace {

TEST(RandomForestTest, BeatsMajorityOnLoans) {
  Dataset d = MakeLoans(2000, 1);
  auto [train, test] = d.TrainTestSplit(0.3, 2);
  RandomForestModel::Config config;
  config.n_trees = 30;
  auto model = RandomForestModel::Train(train, config).ValueOrDie();
  EXPECT_GT(EvaluateAccuracy(model, test), 0.75);
}

TEST(RandomForestTest, PredictionIsAverageOfTrees) {
  Dataset d = MakeLoans(300, 3);
  RandomForestModel::Config config;
  config.n_trees = 7;
  auto model = RandomForestModel::Train(d, config).ValueOrDie();
  Vector row = d.Row(0);
  double acc = 0;
  for (const Tree& t : model.trees()) acc += t.PredictRow(row);
  EXPECT_NEAR(model.Predict(row), acc / 7, 1e-12);
}

TEST(RandomForestTest, DeterministicBySeed) {
  Dataset d = MakeLoans(300, 4);
  RandomForestModel::Config config;
  config.n_trees = 5;
  config.seed = 77;
  auto a = RandomForestModel::Train(d, config).ValueOrDie();
  auto b = RandomForestModel::Train(d, config).ValueOrDie();
  for (int i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(a.Predict(d.Row(i)), b.Predict(d.Row(i)));
}

TEST(RandomForestTest, ProbabilitiesInUnitInterval) {
  Dataset d = MakeLoans(400, 5);
  auto model = RandomForestModel::Train(d).ValueOrDie();
  for (int i = 0; i < 50; ++i) {
    double p = model.Predict(d.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(GbdtTest, ClassificationAccuracy) {
  Dataset d = MakeLoans(2000, 6);
  auto [train, test] = d.TrainTestSplit(0.3, 3);
  GbdtModel::Config config;
  config.n_trees = 80;
  auto model = GbdtModel::Train(train, config).ValueOrDie();
  EXPECT_GT(EvaluateAccuracy(model, test), 0.8);
}

TEST(GbdtTest, MarginDecomposesAdditively) {
  Dataset d = MakeLoans(300, 7);
  GbdtModel::Config config;
  config.n_trees = 10;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  Vector row = d.Row(5);
  double margin = model.base_score();
  for (const Tree& t : model.trees()) margin += t.PredictRow(row);
  EXPECT_NEAR(model.Margin(row), margin, 1e-12);
  EXPECT_NEAR(model.Predict(row), Sigmoid(margin), 1e-12);
}

TEST(GbdtTest, RegressionFitsLinearTarget) {
  auto [d, gt] = MakeLinearData(1000, 3, 0.1, 4);
  (void)gt;
  GbdtModel::Config config;
  config.n_trees = 150;
  config.max_depth = 4;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  EXPECT_LT(EvaluateMse(model, d), 0.5);
}

TEST(GbdtTest, MoreTreesImproveTrainingFit) {
  Dataset d = MakeLoans(800, 8);
  GbdtModel::Config small, large;
  small.n_trees = 5;
  large.n_trees = 100;
  auto a = GbdtModel::Train(d, small).ValueOrDie();
  auto b = GbdtModel::Train(d, large).ValueOrDie();
  EXPECT_GT(EvaluateAuc(b, d), EvaluateAuc(a, d));
}

TEST(GbdtTest, SubsamplingStillLearns) {
  Dataset d = MakeLoans(1000, 9);
  GbdtModel::Config config;
  config.subsample = 0.5;
  config.n_trees = 60;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  EXPECT_GT(EvaluateAccuracy(model, d), 0.8);
}

TEST(TreeEnsembleViewTest, SingleTreeView) {
  Dataset d = MakeLoans(300, 10);
  auto model = DecisionTreeModel::Train(d).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  EXPECT_EQ(view.num_trees(), 1);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(view.Margin(d.Row(i)), model.Predict(d.Row(i)));
}

TEST(TreeEnsembleViewTest, ForestViewAverages) {
  Dataset d = MakeLoans(300, 11);
  RandomForestModel::Config config;
  config.n_trees = 9;
  auto model = RandomForestModel::Train(d, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  for (int i = 0; i < 10; ++i)
    EXPECT_NEAR(view.Margin(d.Row(i)), model.Predict(d.Row(i)), 1e-12);
}

TEST(TreeEnsembleViewTest, GbdtViewIsMargin) {
  Dataset d = MakeLoans(300, 12);
  GbdtModel::Config config;
  config.n_trees = 15;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  for (int i = 0; i < 10; ++i)
    EXPECT_NEAR(view.Margin(d.Row(i)), model.Margin(d.Row(i)), 1e-12);
}

}  // namespace
}  // namespace xai
