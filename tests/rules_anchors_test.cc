#include "xai/rules/anchors.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "xai/data/synthetic.h"
#include "xai/model/random_forest.h"

namespace xai {
namespace {

TEST(KlBoundsTest, KlDivergenceBasics) {
  EXPECT_NEAR(BernoulliKl(0.5, 0.5), 0.0, 1e-12);
  EXPECT_GT(BernoulliKl(0.9, 0.5), 0.0);
  EXPECT_GT(BernoulliKl(0.9, 0.1), BernoulliKl(0.9, 0.5));
}

TEST(KlBoundsTest, BoundsBracketTheMean) {
  double p = 0.7;
  int n = 100;
  double level = 3.0;
  double ub = KlUpperBound(p, n, level);
  double lb = KlLowerBound(p, n, level);
  EXPECT_GT(ub, p);
  EXPECT_LT(lb, p);
  EXPECT_LE(ub, 1.0);
  EXPECT_GE(lb, 0.0);
}

TEST(KlBoundsTest, BoundsTightenWithSamples) {
  double p = 0.8;
  double level = 3.0;
  EXPECT_LT(KlUpperBound(p, 1000, level) - KlLowerBound(p, 1000, level),
            KlUpperBound(p, 50, level) - KlLowerBound(p, 50, level));
}

TEST(KlBoundsTest, ZeroSamplesAreVacuous) {
  EXPECT_DOUBLE_EQ(KlUpperBound(0.5, 0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(KlLowerBound(0.5, 0, 3.0), 0.0);
}

TEST(AnchorsTest, FindsTheDecidingFeatureOfASingleRuleModel) {
  // Model depends only on credit_score: the anchor must include it.
  Dataset d = MakeLoans(600, 1);
  int credit = d.schema().FeatureIndex("credit_score");
  PredictFn f = [credit](const Vector& x) {
    return x[credit] > 650.0 ? 1.0 : 0.0;
  };
  AnchorsConfig config;
  config.precision_target = 0.9;
  AnchorsExplainer anchors(d, config);
  // Pick an instance deep in the positive region.
  int idx = 0;
  while (d.At(idx, credit) < 780.0) ++idx;
  AnchorRule rule = anchors.Explain(f, d.Row(idx), 3).ValueOrDie();
  EXPECT_NE(std::find(rule.features.begin(), rule.features.end(), credit),
            rule.features.end());
  EXPECT_GE(rule.precision, 0.9);
  EXPECT_GT(rule.samples_used, 0);
}

TEST(AnchorsTest, RuleIsShort) {
  Dataset d = MakeLoans(500, 2);
  RandomForestModel::Config mc;
  mc.n_trees = 20;
  auto model = RandomForestModel::Train(d, mc).ValueOrDie();
  AnchorsConfig config;
  config.max_anchor_size = 3;
  AnchorsExplainer anchors(d, config);
  AnchorRule rule =
      anchors.Explain(AsPredictFn(model), d.Row(4), 5).ValueOrDie();
  EXPECT_LE(rule.features.size(), 3u);
  EXPECT_EQ(rule.description.size(), rule.features.size());
}

TEST(AnchorsTest, CoverageInUnitInterval) {
  Dataset d = MakeLoans(400, 3);
  auto model = RandomForestModel::Train(d).ValueOrDie();
  AnchorsExplainer anchors(d);
  AnchorRule rule =
      anchors.Explain(AsPredictFn(model), d.Row(10), 7).ValueOrDie();
  EXPECT_GE(rule.coverage, 0.0);
  EXPECT_LE(rule.coverage, 1.0);
}

TEST(AnchorsTest, ConstantModelAnchorsTrivially) {
  Dataset d = MakeLoans(300, 4);
  PredictFn constant = [](const Vector&) { return 1.0; };
  AnchorsConfig config;
  config.precision_target = 0.95;
  AnchorsExplainer anchors(d, config);
  AnchorRule rule = anchors.Explain(constant, d.Row(0), 9).ValueOrDie();
  // Any single predicate certifies precision 1 for a constant model.
  EXPECT_LE(rule.features.size(), 1u);
  EXPECT_GE(rule.precision, 0.99);
}

TEST(AnchorsTest, DescriptionMentionsBins) {
  Dataset d = MakeLoans(400, 5);
  int credit = d.schema().FeatureIndex("credit_score");
  PredictFn f = [credit](const Vector& x) {
    return x[credit] > 650.0 ? 1.0 : 0.0;
  };
  AnchorsExplainer anchors(d);
  int idx = 0;
  while (d.At(idx, credit) < 780.0) ++idx;
  AnchorRule rule = anchors.Explain(f, d.Row(idx), 11).ValueOrDie();
  ASSERT_FALSE(rule.description.empty());
  std::string text = rule.ToString();
  EXPECT_NE(text.find("credit_score"), std::string::npos);
}

TEST(AnchorsTest, RejectsWrongWidth) {
  Dataset d = MakeLoans(100, 6);
  AnchorsExplainer anchors(d);
  PredictFn f = [](const Vector&) { return 1.0; };
  EXPECT_FALSE(anchors.Explain(f, Vector{1.0}, 1).ok());
}

}  // namespace
}  // namespace xai
