#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "xai/core/combinatorics.h"
#include "xai/core/stats.h"
#include "xai/data/synthetic.h"
#include "xai/model/metrics.h"
#include "xai/valuation/data_shapley.h"
#include "xai/valuation/distributional_shapley.h"
#include "xai/valuation/knn_shapley.h"
#include "xai/valuation/loo.h"

namespace xai {
namespace {

TEST(UtilityTest, LogisticUtilityRangesAndFallback) {
  Dataset d = MakeLoans(200, 1);
  auto [train, valid] = d.TrainTestSplit(0.3, 2);
  UtilityFn u = MakeLogisticAccuracyUtility(train, valid);
  std::vector<int> all(train.num_rows());
  std::iota(all.begin(), all.end(), 0);
  double full = u(all);
  EXPECT_GT(full, 0.5);
  EXPECT_LE(full, 1.0);
  // Degenerate subsets fall back to majority accuracy.
  double empty = u({});
  EXPECT_GT(empty, 0.4);
  EXPECT_LE(empty, 1.0);
  double single = u({0});
  EXPECT_GT(single, 0.0);
}

TEST(UtilityTest, KnnUtilityComputes) {
  Dataset d = MakeBlobs(100, 2, 2, 0.5, 3);
  auto [train, valid] = d.TrainTestSplit(0.3, 4);
  UtilityFn u = MakeKnnAccuracyUtility(train, valid, 3);
  std::vector<int> all(train.num_rows());
  std::iota(all.begin(), all.end(), 0);
  EXPECT_GT(u(all), 0.85);
}

TEST(LooTest, FlippedLabelPointsGetLowValues) {
  Dataset d = MakeBlobs(60, 2, 2, 0.6, 5);
  auto [train, valid] = d.TrainTestSplit(0.4, 6);
  std::vector<int> flipped = FlipBinaryLabels(&train, 0.15, 7);
  UtilityFn u = MakeKnnAccuracyUtility(train, valid, 3);
  Vector values = LeaveOneOutValues(train.num_rows(), u);
  double mean_flipped = 0, mean_clean = 0;
  int n_clean = 0;
  for (int i = 0; i < train.num_rows(); ++i) {
    bool is_flipped =
        std::find(flipped.begin(), flipped.end(), i) != flipped.end();
    if (is_flipped)
      mean_flipped += values[i] / flipped.size();
    else {
      mean_clean += values[i];
      ++n_clean;
    }
  }
  mean_clean /= n_clean;
  EXPECT_LT(mean_flipped, mean_clean);
}

TEST(TmcTest, ValuesSumNearFullMinusEmptyUtility) {
  // Exact Data Shapley satisfies efficiency; TMC approximates it.
  Dataset d = MakeBlobs(24, 2, 2, 0.5, 8);
  auto [train, valid] = d.TrainTestSplit(0.4, 9);
  UtilityFn u = MakeKnnAccuracyUtility(train, valid, 1);
  TmcConfig config;
  config.max_permutations = 150;
  config.truncation_tolerance = 0.0;  // No truncation: unbiased.
  TmcResult result = TmcDataShapley(train.num_rows(), u, config);
  std::vector<int> all(train.num_rows());
  std::iota(all.begin(), all.end(), 0);
  double sum = std::accumulate(result.values.begin(), result.values.end(),
                               0.0);
  EXPECT_NEAR(sum, u(all) - u({}), 0.08);
}

TEST(TmcTest, TruncationSavesUtilityCalls) {
  Dataset d = MakeBlobs(40, 2, 2, 0.4, 10);
  auto [train, valid] = d.TrainTestSplit(0.4, 11);
  UtilityFn u = MakeKnnAccuracyUtility(train, valid, 3);
  TmcConfig no_trunc, trunc;
  no_trunc.max_permutations = trunc.max_permutations = 20;
  no_trunc.truncation_tolerance = 0.0;
  trunc.truncation_tolerance = 0.05;
  TmcResult full = TmcDataShapley(train.num_rows(), u, no_trunc);
  TmcResult truncated = TmcDataShapley(train.num_rows(), u, trunc);
  EXPECT_LT(truncated.utility_calls, full.utility_calls);
  EXPECT_GT(truncated.truncation_fraction, 0.0);
}

TEST(TmcTest, MatchesExactShapleyOnTinyGame) {
  // 8 points: exact Shapley over the kNN utility is computable; TMC with
  // many permutations converges to it.
  Dataset d = MakeBlobs(14, 2, 2, 0.5, 12);
  auto [valid, train] = d.TrainTestSplit(8.0 / 14, 13);
  ASSERT_EQ(train.num_rows(), 8);
  UtilityFn u = MakeKnnAccuracyUtility(train, valid, 1);
  std::vector<double> exact =
      ShapleyOfSetFunction(train.num_rows(), [&](uint64_t mask) {
        std::vector<int> rows;
        for (int i = 0; i < train.num_rows(); ++i)
          if (mask & (1ULL << i)) rows.push_back(i);
        return u(rows);
      });
  TmcConfig config;
  config.max_permutations = 3000;
  config.truncation_tolerance = 0.0;
  TmcResult result = TmcDataShapley(train.num_rows(), u, config);
  for (int i = 0; i < train.num_rows(); ++i)
    EXPECT_NEAR(result.values[i], exact[i], 0.03);
}

// The exact game Jia et al.'s recursion solves: the soft kNN utility
//   v(S) = mean over valid points of
//          (1/k) * sum_{j in the min(k,|S|) nearest of S} 1[y_j = y_test],
// with v(empty) = 0.
double SoftKnnUtility(const Dataset& train, const Dataset& valid, int k,
                      const std::vector<int>& rows) {
  if (rows.empty()) return 0.0;
  double total = 0.0;
  for (int v = 0; v < valid.num_rows(); ++v) {
    Vector z = valid.Row(v);
    std::vector<std::pair<double, int>> by_dist;
    for (int r : rows) {
      double acc = 0;
      for (int j = 0; j < train.num_features(); ++j) {
        double d = train.At(r, j) - z[j];
        acc += d * d;
      }
      by_dist.emplace_back(acc, r);
    }
    std::sort(by_dist.begin(), by_dist.end());
    int take = std::min<int>(k, static_cast<int>(by_dist.size()));
    double agree = 0;
    for (int t = 0; t < take; ++t)
      if (train.Label(by_dist[t].second) == valid.Label(v)) agree += 1.0;
    total += agree / k;
  }
  return total / valid.num_rows();
}

TEST(KnnShapleyTest, MatchesBruteForceExactShapley) {
  Dataset pool = MakeBlobs(18, 2, 2, 0.8, 14);
  auto [valid, train] = pool.TrainTestSplit(10.0 / 18, 15);
  ASSERT_EQ(train.num_rows(), 10);
  int k = 3;
  Vector knn_shap = KnnShapley(train, valid, k).ValueOrDie();

  std::vector<double> exact =
      ShapleyOfSetFunction(train.num_rows(), [&](uint64_t mask) {
        std::vector<int> rows;
        for (int i = 0; i < train.num_rows(); ++i)
          if (mask & (1ULL << i)) rows.push_back(i);
        return SoftKnnUtility(train, valid, k, rows);
      });
  for (int i = 0; i < train.num_rows(); ++i)
    EXPECT_NEAR(knn_shap[i], exact[i], 1e-9) << "point " << i;
}

TEST(KnnShapleyTest, EfficiencyProperty) {
  // The recursion's values sum exactly to v(N) - v(empty) = v(N) of the
  // soft kNN utility game.
  Dataset d = MakeBlobs(100, 2, 2, 0.4, 16);
  auto [train, valid] = d.TrainTestSplit(0.3, 17);
  int k = 5;
  Vector values = KnnShapley(train, valid, k).ValueOrDie();
  double sum = std::accumulate(values.begin(), values.end(), 0.0);
  std::vector<int> all(train.num_rows());
  std::iota(all.begin(), all.end(), 0);
  EXPECT_NEAR(sum, SoftKnnUtility(train, valid, k, all), 1e-9);
}

TEST(KnnShapleyTest, FlippedPointsRankLast) {
  Dataset d = MakeBlobs(200, 2, 2, 0.5, 18);
  auto [train, valid] = d.TrainTestSplit(0.3, 19);
  std::vector<int> flipped = FlipBinaryLabels(&train, 0.1, 20);
  Vector values = KnnShapley(train, valid, 5).ValueOrDie();
  // Mean rank of flipped points should be clearly below average.
  std::vector<int> order = ArgSortAscending(values);
  double mean_pos = 0;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    if (std::find(flipped.begin(), flipped.end(), order[rank]) !=
        flipped.end())
      mean_pos += static_cast<double>(rank) / flipped.size();
  }
  EXPECT_LT(mean_pos, 0.35 * train.num_rows());
}

TEST(KnnShapleyTest, RejectsBadInput) {
  Dataset d = MakeBlobs(20, 2, 2, 0.5, 21);
  EXPECT_FALSE(KnnShapley(d, d, 0).ok());
  Dataset empty(d.schema(), Matrix(0, 2), {});
  EXPECT_FALSE(KnnShapley(empty, d, 3).ok());
}

TEST(DistributionalShapleyTest, NoisyPointsGetLowerValues) {
  Dataset d = MakeBlobs(50, 2, 2, 0.5, 22);
  auto [train, valid] = d.TrainTestSplit(0.4, 23);
  std::vector<int> flipped = FlipBinaryLabels(&train, 0.2, 24);
  UtilityFn u = MakeKnnAccuracyUtility(train, valid, 3);
  DistributionalShapleyConfig config;
  config.iterations = 40;
  config.max_cardinality = 16;
  Vector values = DistributionalShapley(train.num_rows(), u, config);
  double mean_flipped = 0, mean_clean = 0;
  int n_clean = 0;
  for (int i = 0; i < train.num_rows(); ++i) {
    if (std::find(flipped.begin(), flipped.end(), i) != flipped.end())
      mean_flipped += values[i] / flipped.size();
    else {
      mean_clean += values[i];
      ++n_clean;
    }
  }
  EXPECT_LT(mean_flipped, mean_clean / n_clean);
}

}  // namespace
}  // namespace xai
