#include "xai/explain/shapley/tree_shap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "xai/core/combinatorics.h"
#include "xai/data/synthetic.h"
#include "xai/model/decision_tree.h"
#include "xai/model/gbdt.h"
#include "xai/model/random_forest.h"

namespace xai {
namespace {

// Hand-built tree: root splits f0 <= 0, left leaf 1.0 (cover 3),
// right child splits f1 <= 0 into leaves 5.0 (cover 2) / 9.0 (cover 5).
Tree HandTree() {
  std::vector<TreeNode> nodes(5);
  nodes[0] = {0, 0.0, 1, 2, 0.0, 10.0};
  nodes[1] = {-1, 0.0, -1, -1, 1.0, 3.0};
  nodes[2] = {1, 0.0, 3, 4, 0.0, 7.0};
  nodes[3] = {-1, 0.0, -1, -1, 5.0, 2.0};
  nodes[4] = {-1, 0.0, -1, -1, 9.0, 5.0};
  return Tree(std::move(nodes));
}

TEST(TreeExpectedValueTest, CoverWeightedLeafMean) {
  Tree tree = HandTree();
  // (3*1 + 2*5 + 5*9) / 10 = 5.8.
  EXPECT_NEAR(TreeExpectedValue(tree), 5.8, 1e-12);
}

TEST(TreeConditionalExpectationTest, FullMaskFollowsPath) {
  Tree tree = HandTree();
  Vector x = {1.0, -1.0};  // Right then left: leaf 5.0.
  EXPECT_DOUBLE_EQ(TreeConditionalExpectation(tree, x, 0b11), 5.0);
}

TEST(TreeConditionalExpectationTest, EmptyMaskIsExpectedValue) {
  Tree tree = HandTree();
  Vector x = {1.0, -1.0};
  EXPECT_NEAR(TreeConditionalExpectation(tree, x, 0),
              TreeExpectedValue(tree), 1e-12);
}

TEST(TreeConditionalExpectationTest, PartialMaskAveragesUnknowns) {
  Tree tree = HandTree();
  Vector x = {1.0, -1.0};
  // Knowing only f0 (right subtree): (2*5 + 5*9)/7.
  EXPECT_NEAR(TreeConditionalExpectation(tree, x, 0b01), 55.0 / 7.0, 1e-12);
}

TEST(TreeShapTest, MatchesExactShapleyOnHandTree) {
  Tree tree = HandTree();
  Vector x = {1.0, -1.0};
  Vector phi = TreeShapValues(tree, x, 2);
  std::vector<double> exact = ShapleyOfSetFunction(2, [&](uint64_t mask) {
    return TreeConditionalExpectation(tree, x, mask);
  });
  EXPECT_NEAR(phi[0], exact[0], 1e-9);
  EXPECT_NEAR(phi[1], exact[1], 1e-9);
}

TEST(TreeShapTest, LocalAccuracyOnHandTree) {
  Tree tree = HandTree();
  Vector x = {-1.0, 3.0};
  Vector phi = TreeShapValues(tree, x, 2);
  EXPECT_NEAR(phi[0] + phi[1], tree.PredictRow(x) - TreeExpectedValue(tree),
              1e-9);
}

TEST(TreeShapTest, ConstantTreeGivesZeros) {
  std::vector<TreeNode> nodes(1);
  nodes[0] = {-1, 0.0, -1, -1, 4.2, 10.0};
  Tree tree(std::move(nodes));
  Vector phi = TreeShapValues(tree, {1.0, 2.0}, 2);
  EXPECT_DOUBLE_EQ(phi[0], 0.0);
  EXPECT_DOUBLE_EQ(phi[1], 0.0);
}

// The heavyweight property: TreeSHAP on real CART trees equals brute-force
// exact Shapley values of the path-conditional game, across instances.
class TreeShapExactnessTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeShapExactnessTest, MatchesBruteForceOnTrainedTree) {
  uint64_t seed = GetParam();
  Dataset d = MakeLoans(300, seed);
  CartConfig config;
  config.max_depth = 4;
  auto model = DecisionTreeModel::Train(d, config).ValueOrDie();
  const Tree& tree = model.tree();
  int dim = d.num_features();
  for (int row : {0, 17, 55}) {
    Vector x = d.Row(row);
    Vector phi = TreeShapValues(tree, x, dim);
    std::vector<double> exact =
        ShapleyOfSetFunction(dim, [&](uint64_t mask) {
          return TreeConditionalExpectation(tree, x, mask);
        });
    for (int j = 0; j < dim; ++j)
      EXPECT_NEAR(phi[j], exact[j], 1e-8)
          << "seed=" << seed << " row=" << row << " feature=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeShapExactnessTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(TreeShapEnsembleTest, GbdtAttributionsSumToMargin) {
  Dataset d = MakeLoans(500, 21);
  GbdtModel::Config config;
  config.n_trees = 30;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  for (int row : {1, 9, 33}) {
    Vector x = d.Row(row);
    AttributionExplanation exp = TreeShap(view, x);
    EXPECT_NEAR(exp.AttributionSum(), model.Margin(x), 1e-7);
    EXPECT_NEAR(exp.prediction, model.Margin(x), 1e-12);
  }
}

TEST(TreeShapEnsembleTest, ForestAttributionsSumToProbability) {
  Dataset d = MakeLoans(400, 22);
  RandomForestModel::Config config;
  config.n_trees = 12;
  auto model = RandomForestModel::Train(d, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  Vector x = d.Row(13);
  AttributionExplanation exp = TreeShap(view, x);
  EXPECT_NEAR(exp.AttributionSum(), model.Predict(x), 1e-7);
}

TEST(TreeShapEnsembleTest, EnsembleIsSumOfPerTreeShap) {
  Dataset d = MakeLoans(300, 23);
  GbdtModel::Config config;
  config.n_trees = 5;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  Vector x = d.Row(2);
  AttributionExplanation exp = TreeShap(view, x);
  Vector manual(d.num_features(), 0.0);
  for (const Tree& tree : model.trees()) {
    Vector phi = TreeShapValues(tree, x, d.num_features());
    for (int j = 0; j < d.num_features(); ++j) manual[j] += phi[j];
  }
  for (int j = 0; j < d.num_features(); ++j)
    EXPECT_NEAR(exp.attributions[j], manual[j], 1e-10);
}

TEST(TreeShapTest, UnusedFeatureGetsZeroAttribution) {
  Tree tree = HandTree();  // Only uses features 0 and 1.
  Vector x = {1.0, 1.0, 99.0};
  Vector phi = TreeShapValues(tree, x, 3);
  EXPECT_DOUBLE_EQ(phi[2], 0.0);
}

}  // namespace
}  // namespace xai
