#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "xai/core/parallel.h"
#include "xai/core/telemetry.h"
#include "xai/core/trace.h"
#include "xai/data/synthetic.h"
#include "xai/explain/shapley/kernel_shap.h"
#include "xai/explain/shapley/sampling_shapley.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/logistic_regression.h"

namespace xai {
namespace {

using telemetry::Histogram;
using telemetry::Registry;

// Under -DXAI_TELEMETRY=0 the macros compile away; every expectation that
// depends on recording collapses to "stays zero".
constexpr bool kCompiled = XAI_TELEMETRY != 0;

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::SetEnabled(true);
    Registry::Global().Reset();
  }
  void TearDown() override { telemetry::SetEnabled(true); }
};

TEST_F(TelemetryTest, CounterIsAtomicUnderParallelFor) {
  SetNumThreads(4);
  const int64_t kN = 20000;
  ParallelFor(kN, /*grain=*/7, [&](int64_t begin, int64_t end, int64_t) {
    for (int64_t i = begin; i < end; ++i)
      XAI_COUNTER_ADD("test/atomicity", 1);
  });
  auto counters = Registry::Global().CounterSnapshot();
  EXPECT_EQ(counters["test/atomicity"], kCompiled ? kN : 0);
  SetNumThreads(1);
}

TEST_F(TelemetryTest, RuntimeDisableStopsRecording) {
  telemetry::SetEnabled(false);
  XAI_COUNTER_ADD("test/disabled", 5);
  { XAI_SPAN("test/disabled_span"); }
  telemetry::SetEnabled(true);
  auto counters = Registry::Global().CounterSnapshot();
  EXPECT_EQ(counters["test/disabled"], 0);
  auto histograms = Registry::Global().HistogramSnapshot();
  auto it = histograms.find("test/disabled_span");
  if (it != histograms.end()) {
    EXPECT_EQ(it->second.count, 0);
  }
}

TEST(HistogramTest, SmallValuesAreExactAndBucketsMonotonic) {
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 1);
  EXPECT_EQ(Histogram::BucketFor(3), 3);
  int prev = -1;
  for (int64_t v : std::vector<int64_t>{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100,
                                        1000, 1 << 20, int64_t{1} << 40}) {
    int b = Histogram::BucketFor(v);
    EXPECT_GE(b, prev) << "bucket index must be monotone in the value";
    EXPECT_LE(Histogram::BucketLowerBound(b), v);
    prev = b;
  }
  // Lower bounds invert the bucket mapping on bucket boundaries.
  for (int b = 0; b < Histogram::kNumBuckets; ++b)
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketLowerBound(b)), b);
}

TEST(HistogramTest, QuantilesWithinBucketResolution) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(1000);
  EXPECT_EQ(h.Count(), 1000);
  EXPECT_EQ(h.Sum(), 1000 * 1000);
  // Log-bucketing with 4 sub-buckets per octave: <= ~25% relative error.
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_GE(h.Quantile(q), 1000.0 * 0.75);
    EXPECT_LE(h.Quantile(q), 1000.0 * 1.25);
  }
}

TEST(HistogramTest, MergeAddsCountsAndSums) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 900; ++i) b.Record(100000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 1000);
  EXPECT_EQ(a.Sum(), 100 * 10 + 900 * int64_t{100000});
  // p50 and p99 both land in the dominant (large) population; p5-ish mass
  // is the only part in the small population.
  EXPECT_GE(a.Quantile(0.5), 100000.0 * 0.75);
  EXPECT_LE(a.Quantile(0.05), 13.0);
}

TEST_F(TelemetryTest, SpanNestingRecordsBothLevels) {
  {
    XAI_SPAN("test/outer");
    XAI_SPAN("test/inner");
  }
  auto histograms = Registry::Global().HistogramSnapshot();
  if (!kCompiled) {
    EXPECT_EQ(histograms.count("test/outer"), 0u);
    return;
  }
  ASSERT_EQ(histograms.count("test/outer"), 1u);
  ASSERT_EQ(histograms.count("test/inner"), 1u);
  EXPECT_EQ(histograms["test/outer"].count, 1);
  EXPECT_EQ(histograms["test/inner"].count, 1);
  // Inner is destroyed first, so its total time fits inside the outer's.
  EXPECT_LE(histograms["test/inner"].sum, histograms["test/outer"].sum);

  std::ostringstream trace;
  Registry::Global().WriteChromeTrace(trace);
  EXPECT_NE(trace.str().find("test/outer"), std::string::npos);
  EXPECT_NE(trace.str().find("test/inner"), std::string::npos);
}

// Structural JSON check without a parser: quotes and braces/brackets
// balance, and the expected keys appear. CI additionally json.load()s the
// bench reports via tools/validate_bench_report.py.
void ExpectBalancedJson(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(TelemetryTest, JsonExportRoundTrips) {
  XAI_COUNTER_ADD("test/json_counter", 42);
  { XAI_SPAN("test/json_span"); }

  std::ostringstream jsonl;
  Registry::Global().WriteJson(jsonl);
  std::ostringstream object;
  Registry::Global().WriteJsonObject(object);
  std::ostringstream trace;
  Registry::Global().WriteChromeTrace(trace);

  ExpectBalancedJson(object.str());
  ExpectBalancedJson(trace.str());
  for (const std::string& line : {jsonl.str()}) ExpectBalancedJson(line);
  EXPECT_NE(trace.str().find("traceEvents"), std::string::npos);
  if (kCompiled) {
    EXPECT_NE(jsonl.str().find("\"test/json_counter\",\"value\":42"),
              std::string::npos);
    EXPECT_NE(object.str().find("\"test/json_span\""), std::string::npos);
    // Snapshot values survive the dump (the "round-trip": what the
    // registry holds is what the JSON carries).
    auto counters = Registry::Global().CounterSnapshot();
    EXPECT_EQ(counters["test/json_counter"], 42);
  }
}

TEST_F(TelemetryTest, ParallelChunkAccountingMatchesChunkLayout) {
  SetNumThreads(3);
  Registry::Global().Reset();
  const int64_t kN = 1000, kGrain = 32;
  ParallelFor(kN, kGrain, [&](int64_t, int64_t, int64_t) {});
  auto counters = Registry::Global().CounterSnapshot();
  const int64_t expected_chunks = (kN + kGrain - 1) / kGrain;
  EXPECT_EQ(counters["parallel/chunks"], kCompiled ? expected_chunks : 0);
  SetNumThreads(1);
}

// The determinism guard: telemetry on/off must not change explainer output
// at any thread count. KernelSHAP + sampling Shapley exercise the games,
// the parallel runtime, and the span/counter call sites.
TEST_F(TelemetryTest, OnOffDoesNotChangeExplainerOutputs) {
  auto [data, gt] = MakeLogisticData(120, 8, 3);
  (void)gt;
  auto model = LogisticRegressionModel::Train(data).ValueOrDie();
  Vector instance = data.Row(3);

  auto run_once = [&](bool enabled, int threads) {
    telemetry::SetEnabled(enabled);
    SetNumThreads(threads);
    MarginalFeatureGame game(AsPredictFn(model), instance, data.x(), 16);
    Rng rng(7);
    KernelShapConfig config;
    config.coalition_budget = 128;
    Vector kernel = KernelShap(game, config, &rng).ValueOrDie().attributions;
    Rng rng2(9);
    Vector sampled = SamplingShapley(game, 50, &rng2).values;
    telemetry::SetEnabled(true);
    return std::pair<Vector, Vector>(kernel, sampled);
  };

  auto reference = run_once(/*enabled=*/true, /*threads=*/1);
  for (bool enabled : {true, false}) {
    for (int threads : {1, 4}) {
      auto got = run_once(enabled, threads);
      EXPECT_EQ(got.first, reference.first)
          << "KernelSHAP changed with telemetry=" << enabled
          << " threads=" << threads;
      EXPECT_EQ(got.second, reference.second)
          << "SamplingShapley changed with telemetry=" << enabled
          << " threads=" << threads;
    }
  }
  SetNumThreads(1);
}

TEST_F(TelemetryTest, CoalitionCacheCountersAreExact) {
  auto [data, gt] = MakeLogisticData(80, 6, 3);
  (void)gt;
  auto model = LogisticRegressionModel::Train(data).ValueOrDie();
  MarginalFeatureGame game(AsPredictFn(model), data.Row(0), data.x(), 8);

  Registry::Global().Reset();
  game.Value(0b101);
  game.Value(0b101);  // Cached.
  game.Value(0b011);
  EXPECT_EQ(game.num_evaluations(), 2);
  auto counters = Registry::Global().CounterSnapshot();
  if (kCompiled) {
    EXPECT_EQ(counters["shap/cache_hits"], 1);
    EXPECT_EQ(counters["shap/cache_misses"], 2);
    EXPECT_EQ(counters["shap/cache_entries"], 2);
    EXPECT_EQ(counters["model/evals"], 2 * 8);  // 8 background rows/miss.
  } else {
    EXPECT_EQ(counters["shap/cache_hits"], 0);
  }
}

}  // namespace
}  // namespace xai
