#include <gtest/gtest.h>

#include "xai/data/synthetic.h"
#include "xai/model/knn.h"
#include "xai/model/metrics.h"
#include "xai/model/mlp.h"
#include "xai/model/naive_bayes.h"

namespace xai {
namespace {

TEST(KnnTest, MulticlassBlobs) {
  Dataset d = MakeBlobs(600, 3, 4, 0.5, 1);
  auto [train, test] = d.TrainTestSplit(0.3, 2);
  auto model = KnnModel::Train(train, {5}).ValueOrDie();
  int correct = 0;
  for (int i = 0; i < test.num_rows(); ++i)
    if (model.PredictClass(test.Row(i)) ==
        static_cast<int>(test.Label(i)))
      ++correct;
  EXPECT_GT(static_cast<double>(correct) / test.num_rows(), 0.9);
}

TEST(KnnTest, NeighborsSortedByDistance) {
  Schema schema;
  schema.features = {FeatureSpec::Numeric("x")};
  Matrix x = {{0.0}, {10.0}, {1.0}, {5.0}};
  Dataset d(schema, x, {0, 1, 0, 1});
  auto model = KnnModel::Train(d, {2}).ValueOrDie();
  std::vector<int> order = model.NeighborsSortedByDistance({0.4});
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 1}));
}

TEST(KnnTest, BinaryPredictIsNeighborFraction) {
  Schema schema;
  schema.features = {FeatureSpec::Numeric("x")};
  Matrix x = {{0.0}, {0.1}, {0.2}, {10.0}};
  Dataset d(schema, x, {1, 1, 0, 0});
  auto model = KnnModel::Train(d, {3}).ValueOrDie();
  EXPECT_NEAR(model.Predict({0.05}), 2.0 / 3.0, 1e-12);
}

TEST(KnnTest, RegressionAveragesNeighbors) {
  Schema schema;
  schema.features = {FeatureSpec::Numeric("x")};
  schema.task = TaskType::kRegression;
  Matrix x = {{0.0}, {1.0}, {2.0}, {100.0}};
  Dataset d(schema, x, {10, 20, 30, 500});
  auto model =
      KnnModel::Train(x, d.y(), TaskType::kRegression, {3}).ValueOrDie();
  EXPECT_NEAR(model.Predict({1.0}), 20.0, 1e-12);
}

TEST(KnnTest, RejectsBadConfig) {
  EXPECT_FALSE(
      KnnModel::Train(Matrix(2, 1), {0.0, 1.0}, TaskType::kClassification,
                      {0})
          .ok());
}

TEST(NaiveBayesTest, SeparatesGaussianClasses) {
  Dataset d = MakeBlobs(500, 2, 2, 0.6, 3);
  auto [train, test] = d.TrainTestSplit(0.3, 4);
  auto model = NaiveBayesModel::Train(train).ValueOrDie();
  EXPECT_GT(EvaluateAccuracy(model, test), 0.9);
}

TEST(NaiveBayesTest, ProbabilitiesAreCalibratedDirectionally) {
  Schema schema;
  schema.features = {FeatureSpec::Numeric("x")};
  Matrix x = {{-2}, {-1.8}, {-2.2}, {2}, {1.8}, {2.2}};
  Dataset d(schema, x, {0, 0, 0, 1, 1, 1});
  auto model = NaiveBayesModel::Train(d).ValueOrDie();
  EXPECT_GT(model.Predict({2.0}), 0.95);
  EXPECT_LT(model.Predict({-2.0}), 0.05);
  EXPECT_NEAR(model.Predict({0.0}), 0.5, 0.1);
}

TEST(NaiveBayesTest, RequiresBothClasses) {
  Matrix x = {{1}, {2}};
  EXPECT_FALSE(NaiveBayesModel::Train(x, {1.0, 1.0}).ok());
}

TEST(MlpTest, LearnsXor) {
  // XOR is not linearly separable: a working MLP proves the hidden layer.
  Schema schema;
  schema.features = {FeatureSpec::Numeric("a"), FeatureSpec::Numeric("b")};
  Matrix x(200, 2);
  Vector y(200);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    int a = rng.Bernoulli(0.5), b = rng.Bernoulli(0.5);
    x(i, 0) = a + rng.Normal(0, 0.05);
    x(i, 1) = b + rng.Normal(0, 0.05);
    y[i] = a ^ b;
  }
  Dataset d(schema, x, y);
  MlpModel::Config config;
  config.hidden = {8};
  config.epochs = 400;
  config.seed = 3;
  auto model = MlpModel::Train(d, config).ValueOrDie();
  EXPECT_GT(EvaluateAccuracy(model, d), 0.95);
}

TEST(MlpTest, RegressionFitsSmoothFunction) {
  Schema schema;
  schema.features = {FeatureSpec::Numeric("x")};
  schema.task = TaskType::kRegression;
  Matrix x(100, 1);
  Vector y(100);
  for (int i = 0; i < 100; ++i) {
    x(i, 0) = -2.0 + 4.0 * i / 99.0;
    y[i] = x(i, 0) * x(i, 0);
  }
  Dataset d(schema, x, y);
  MlpModel::Config config;
  config.hidden = {16};
  config.epochs = 800;
  config.learning_rate = 0.02;
  auto model = MlpModel::Train(d, config).ValueOrDie();
  EXPECT_LT(EvaluateMse(model, d), 0.15);
}

TEST(MlpTest, DeterministicBySeed) {
  Dataset d = MakeLoans(200, 6);
  MlpModel::Config config;
  config.epochs = 20;
  auto a = MlpModel::Train(d, config).ValueOrDie();
  auto b = MlpModel::Train(d, config).ValueOrDie();
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(a.Predict(d.Row(i)), b.Predict(d.Row(i)));
}

}  // namespace
}  // namespace xai
