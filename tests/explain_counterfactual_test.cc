#include <gtest/gtest.h>

#include <cmath>

#include "xai/causal/scm.h"
#include "xai/data/synthetic.h"
#include "xai/explain/counterfactual/counterfactual.h"
#include "xai/explain/counterfactual/dice.h"
#include "xai/explain/counterfactual/geco.h"
#include "xai/explain/counterfactual/lewis.h"
#include "xai/explain/counterfactual/recourse.h"
#include "xai/explain/explanation.h"
#include "xai/model/logistic_regression.h"

namespace xai {
namespace {

// A rejected loan applicant under a trained model.
struct RejectedCase {
  Dataset train;
  LogisticRegressionModel model;
  Vector instance;
};

RejectedCase MakeRejectedCase(uint64_t seed) {
  Dataset d = MakeLoans(800, seed);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  for (int i = 0; i < d.num_rows(); ++i) {
    if (model.Predict(d.Row(i)) < 0.35) {
      return {d, model, d.Row(i)};
    }
  }
  ADD_FAILURE() << "no rejected instance found";
  return {d, model, d.Row(0)};
}

TEST(ActionabilityTest, AllFreeAllowsInRangeMoves) {
  Dataset d = MakeLoans(100, 1);
  ActionabilitySpec spec = ActionabilitySpec::AllFree(d);
  EXPECT_TRUE(spec.Allows(0, 30.0, 40.0));
  EXPECT_FALSE(spec.Allows(0, 30.0, 1e9));  // Outside observed range.
}

TEST(ActionabilityTest, ImmutableBlocksChange) {
  Dataset d = MakeLoans(100, 2);
  ActionabilitySpec spec = ActionabilitySpec::AllFree(d);
  int gender = d.schema().FeatureIndex("gender");
  spec.immutable[gender] = true;
  EXPECT_FALSE(spec.Allows(gender, 0.0, 1.0));
  EXPECT_TRUE(spec.Allows(gender, 0.0, 0.0));  // No-op allowed.
}

TEST(ActionabilityTest, MonotonicityEnforced) {
  Dataset d = MakeLoans(100, 3);
  ActionabilitySpec spec = ActionabilitySpec::AllFree(d);
  int age = d.schema().FeatureIndex("age");
  spec.monotonicity[age] = +1;
  EXPECT_TRUE(spec.Allows(age, 30.0, 35.0));
  EXPECT_FALSE(spec.Allows(age, 30.0, 25.0));
}

TEST(EvaluatorTest, ProximityAndSparsity) {
  Dataset d = MakeLoans(200, 4);
  CounterfactualEvaluator eval(d);
  Vector a = d.Row(0);
  Vector b = a;
  EXPECT_DOUBLE_EQ(eval.Proximity(a, b), 0.0);
  EXPECT_EQ(eval.Sparsity(a, b), 0);
  b[0] += 10.0;
  b[6] = b[6] == 0 ? 1 : 0;  // Categorical flip.
  EXPECT_EQ(eval.Sparsity(a, b), 2);
  EXPECT_GT(eval.Proximity(a, b), 1.0);  // 10/mad + 1 for the flip.
}

TEST(EvaluatorTest, PlausibilityZeroForTrainingRow) {
  Dataset d = MakeLoans(200, 5);
  CounterfactualEvaluator eval(d);
  EXPECT_NEAR(eval.PlausibilityDistance(d.Row(10)), 0.0, 1e-9);
  Vector far = d.Row(10);
  far[1] += 1e4;
  EXPECT_GT(eval.PlausibilityDistance(far), 10.0);
}

TEST(EvaluatorTest, EvaluateSetsValidity) {
  RejectedCase c = MakeRejectedCase(6);
  CounterfactualEvaluator eval(c.train);
  Counterfactual same = eval.Evaluate(AsPredictFn(c.model), c.instance,
                                      c.instance, /*desired_class=*/1);
  EXPECT_FALSE(same.valid);
  EXPECT_EQ(same.sparsity, 0);
}

TEST(DiceTest, FindsValidDiverseCounterfactuals) {
  RejectedCase c = MakeRejectedCase(7);
  CounterfactualEvaluator eval(c.train);
  ActionabilitySpec spec = ActionabilitySpec::AllFree(c.train);
  Rng rng(8);
  DiceConfig config;
  config.k = 3;
  DiceResult result = DiceCounterfactuals(AsPredictFn(c.model), c.instance,
                                          1, eval, spec, config, &rng)
                          .ValueOrDie();
  ASSERT_GE(result.counterfactuals.size(), 2u);
  for (const auto& cf : result.counterfactuals) {
    EXPECT_TRUE(cf.valid);
    EXPECT_GE(c.model.Predict(cf.x), 0.5);
    EXPECT_GT(cf.sparsity, 0);
  }
  EXPECT_GT(result.diversity, 0.0);
}

TEST(DiceTest, RespectsImmutableFeatures) {
  RejectedCase c = MakeRejectedCase(9);
  CounterfactualEvaluator eval(c.train);
  ActionabilitySpec spec = ActionabilitySpec::AllFree(c.train);
  int gender = c.train.schema().FeatureIndex("gender");
  int age = c.train.schema().FeatureIndex("age");
  spec.immutable[gender] = true;
  spec.immutable[age] = true;
  Rng rng(10);
  DiceResult result = DiceCounterfactuals(AsPredictFn(c.model), c.instance,
                                          1, eval, spec, {}, &rng)
                          .ValueOrDie();
  for (const auto& cf : result.counterfactuals) {
    EXPECT_DOUBLE_EQ(cf.x[gender], c.instance[gender]);
    EXPECT_DOUBLE_EQ(cf.x[age], c.instance[age]);
  }
}

TEST(GecoTest, FindsValidCounterfactual) {
  RejectedCase c = MakeRejectedCase(11);
  CounterfactualEvaluator eval(c.train);
  ActionabilitySpec spec = ActionabilitySpec::AllFree(c.train);
  GecoResult result = GecoCounterfactual(AsPredictFn(c.model), c.instance,
                                         1, eval, spec, {}, {})
                          .ValueOrDie();
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.best.valid);
  EXPECT_GE(c.model.Predict(result.best.x), 0.5);
  EXPECT_GT(result.generations, 0);
}

TEST(GecoTest, PrefersSparseChanges) {
  RejectedCase c = MakeRejectedCase(12);
  CounterfactualEvaluator eval(c.train);
  ActionabilitySpec spec = ActionabilitySpec::AllFree(c.train);
  GecoResult result = GecoCounterfactual(AsPredictFn(c.model), c.instance,
                                         1, eval, spec, {}, {})
                          .ValueOrDie();
  ASSERT_TRUE(result.found);
  EXPECT_LE(result.best.sparsity, 3);
}

TEST(GecoTest, CandidateValuesComeFromData) {
  // Plausibility-by-construction: every changed categorical value must be a
  // code seen in training data (trivially true), and every changed numeric
  // value must be a value observed in that column.
  RejectedCase c = MakeRejectedCase(13);
  CounterfactualEvaluator eval(c.train);
  ActionabilitySpec spec = ActionabilitySpec::AllFree(c.train);
  GecoResult result = GecoCounterfactual(AsPredictFn(c.model), c.instance,
                                         1, eval, spec, {}, {})
                          .ValueOrDie();
  ASSERT_TRUE(result.found);
  for (int j = 0; j < c.train.num_features(); ++j) {
    if (result.best.x[j] == c.instance[j]) continue;
    bool seen = false;
    for (int i = 0; i < c.train.num_rows() && !seen; ++i)
      seen = c.train.At(i, j) == result.best.x[j];
    EXPECT_TRUE(seen) << "feature " << j << " value not from data";
  }
}

TEST(GecoTest, PlafConstraintRespected) {
  RejectedCase c = MakeRejectedCase(14);
  CounterfactualEvaluator eval(c.train);
  ActionabilitySpec spec = ActionabilitySpec::AllFree(c.train);
  int income = c.train.schema().FeatureIndex("income");
  // PLAF: income may only increase.
  std::vector<PlafConstraint> plaf = {
      [income](const Vector& original, const Vector& candidate) {
        return candidate[income] >= original[income];
      }};
  GecoResult result = GecoCounterfactual(AsPredictFn(c.model), c.instance,
                                         1, eval, spec, plaf, {})
                          .ValueOrDie();
  if (result.found) {
    EXPECT_GE(result.best.x[income], c.instance[income]);
  }
}

TEST(RecourseTest, EmptyFlipsetWhenAlreadyPositive) {
  auto model = LogisticRegressionModel::FromCoefficients({1.0}, 0.0);
  Dataset d = MakeLoans(50, 15);
  ActionabilitySpec spec;
  spec.immutable = {false};
  spec.ranges = {{-5.0, 5.0}};
  spec.monotonicity = {0};
  Flipset flipset =
      LinearRecourse(model, {2.0}, spec, {1.0}).ValueOrDie();
  EXPECT_TRUE(flipset.feasible);
  EXPECT_TRUE(flipset.items.empty());
}

TEST(RecourseTest, FindsMinimalSingleFeatureAction) {
  // margin = x0 + 0.1*x1 - 1; from (0,0) cheapest fix is x0 (per unit).
  auto model = LogisticRegressionModel::FromCoefficients({1.0, 0.1}, -1.0);
  ActionabilitySpec spec;
  spec.immutable = {false, false};
  spec.ranges = {{-10.0, 10.0}, {-10.0, 10.0}};
  spec.monotonicity = {0, 0};
  RecourseConfig config;
  config.grid_steps = 20;
  Flipset flipset =
      LinearRecourse(model, {0.0, 0.0}, spec, {1.0, 1.0}, config)
          .ValueOrDie();
  ASSERT_TRUE(flipset.feasible);
  ASSERT_EQ(flipset.items.size(), 1u);
  EXPECT_EQ(flipset.items[0].feature, 0);
  EXPECT_GT(flipset.new_score, 0.5);
  // Needs to move x0 by ~1; the 0.5-wide grid lands on 1.5.
  EXPECT_LT(flipset.total_cost, 1.6);
}

TEST(RecourseTest, ImmutableFeatureNeverUsed) {
  auto model = LogisticRegressionModel::FromCoefficients({5.0, 0.5}, -1.0);
  ActionabilitySpec spec;
  spec.immutable = {true, false};
  spec.ranges = {{-10.0, 10.0}, {-10.0, 10.0}};
  spec.monotonicity = {0, 0};
  Flipset flipset =
      LinearRecourse(model, {0.0, 0.0}, spec, {1.0, 1.0}).ValueOrDie();
  ASSERT_TRUE(flipset.feasible);
  for (const auto& item : flipset.items) EXPECT_NE(item.feature, 0);
}

TEST(RecourseTest, InfeasibleWhenNothingActionable) {
  auto model = LogisticRegressionModel::FromCoefficients({1.0}, -100.0);
  ActionabilitySpec spec;
  spec.immutable = {false};
  spec.ranges = {{-1.0, 1.0}};  // Cannot move far enough.
  spec.monotonicity = {0};
  Flipset flipset =
      LinearRecourse(model, {0.0}, spec, {1.0}).ValueOrDie();
  EXPECT_FALSE(flipset.feasible);
}

TEST(LewisTest, ScoresForStrongCause) {
  // x0 -> x2 with weight 3, model = 1[x2 > 0]: intervening on x0 controls
  // the outcome strongly.
  LinearScm scm = MakeChainScm(0.0, 0.0);
  Dag dag({"x0", "x1", "x2"});
  ASSERT_TRUE(dag.AddEdge(0, 2).ok());
  LinearScm strong(dag);
  ASSERT_TRUE(strong.SetWeight(0, 2, 3.0).ok());
  strong.SetNoiseStdDev(2, 0.2);
  PredictFn f = [](const Vector& x) { return x[2] > 0 ? 1.0 : 0.0; };
  LewisExplainer lewis(&strong, f);
  Rng rng(16);
  auto scores = lewis.AttributeScores(0, 1.0, -1.0, 4000, &rng).ValueOrDie();
  EXPECT_GT(scores.necessity, 0.9);
  EXPECT_GT(scores.sufficiency, 0.9);
  EXPECT_GT(scores.nesuf, 0.9);
}

TEST(LewisTest, ScoresForIrrelevantAttribute) {
  Dag dag({"x0", "x1", "x2"});
  ASSERT_TRUE(dag.AddEdge(0, 2).ok());
  LinearScm scm(dag);
  ASSERT_TRUE(scm.SetWeight(0, 2, 3.0).ok());
  PredictFn f = [](const Vector& x) { return x[2] > 0 ? 1.0 : 0.0; };
  LewisExplainer lewis(&scm, f);
  Rng rng(17);
  // x1 is disconnected: intervening on it never changes the outcome.
  auto scores = lewis.AttributeScores(1, 1.0, -1.0, 2000, &rng).ValueOrDie();
  EXPECT_NEAR(scores.necessity, 0.0, 0.01);
  EXPECT_NEAR(scores.sufficiency, 0.0, 0.01);
  EXPECT_NEAR(scores.nesuf, 0.0, 0.01);
}

TEST(LewisTest, CounterfactualRecourseFindsCheapestFlip) {
  Dag dag({"x0", "x1", "x2"});
  ASSERT_TRUE(dag.AddEdge(0, 2).ok());
  ASSERT_TRUE(dag.AddEdge(1, 2).ok());
  LinearScm scm(dag);
  ASSERT_TRUE(scm.SetWeight(0, 2, 1.0).ok());
  ASSERT_TRUE(scm.SetWeight(1, 2, 1.0).ok());
  PredictFn f = [](const Vector& x) { return x[2] > 0 ? 1.0 : 0.0; };
  LewisExplainer lewis(&scm, f);
  Vector instance = {-1.0, -1.0, -2.5};  // Negative outcome world.
  std::vector<std::pair<int, std::vector<double>>> candidates = {
      {0, {1.0, 3.0}}, {1, {2.0}}};
  Vector mad = {1.0, 1.0, 1.0};
  auto actions =
      lewis.CounterfactualRecourse(instance, candidates, 2, mad)
          .ValueOrDie();
  ASSERT_FALSE(actions.empty());
  // Sorted by cost; the first action's counterfactual world is positive.
  EXPECT_GT(actions[0].counterfactual_world[2], 0.0);
  for (size_t i = 1; i < actions.size(); ++i)
    EXPECT_GE(actions[i].cost, actions[i - 1].cost);
}

}  // namespace
}  // namespace xai
