#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "xai/core/parallel.h"
#include "xai/core/simd.h"

#include "xai/causal/scm.h"
#include "xai/data/synthetic.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/kernel_shap.h"
#include "xai/explain/shapley/qii.h"
#include "xai/explain/shapley/sampling_shapley.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/logistic_regression.h"

namespace xai {
namespace {

// A deterministic synthetic game for estimator tests.
class FunctionGame : public CoalitionGame {
 public:
  FunctionGame(int n, std::function<double(uint64_t)> fn)
      : n_(n), fn_(std::move(fn)) {}
  int num_players() const override { return n_; }
  double Value(uint64_t mask) const override { return fn_(mask); }

 private:
  int n_;
  std::function<double(uint64_t)> fn_;
};

TEST(ExactShapleyTest, AdditiveGame) {
  FunctionGame game(4, [](uint64_t mask) {
    double vals[] = {1.0, -2.0, 0.5, 3.0};
    double acc = 0;
    for (int i = 0; i < 4; ++i)
      if (mask & (1ULL << i)) acc += vals[i];
    return acc;
  });
  Vector phi = ExactShapley(game).ValueOrDie();
  EXPECT_NEAR(phi[0], 1.0, 1e-12);
  EXPECT_NEAR(phi[1], -2.0, 1e-12);
  EXPECT_NEAR(phi[2], 0.5, 1e-12);
  EXPECT_NEAR(phi[3], 3.0, 1e-12);
}

TEST(ExactShapleyTest, RefusesLargeGames) {
  FunctionGame game(25, [](uint64_t) { return 0.0; });
  EXPECT_FALSE(ExactShapley(game).ok());
}

TEST(ExactBanzhafTest, MatchesShapleyOnAdditiveGames) {
  FunctionGame game(3, [](uint64_t mask) {
    return (mask & 1 ? 2.0 : 0.0) + (mask & 2 ? -1.0 : 0.0) +
           (mask & 4 ? 0.5 : 0.0);
  });
  Vector shapley = ExactShapley(game).ValueOrDie();
  Vector banzhaf = ExactBanzhaf(game).ValueOrDie();
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(shapley[i], banzhaf[i], 1e-12);
}

TEST(MarginalGameTest, EmptyCoalitionIsMeanPrediction) {
  auto [d, gt] = MakeLogisticData(50, 3, 1);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  MarginalFeatureGame game(AsPredictFn(model), d.Row(0), d.x());
  double mean = 0;
  for (int i = 0; i < d.num_rows(); ++i)
    mean += model.Predict(d.Row(i)) / d.num_rows();
  EXPECT_NEAR(game.Value(0), mean, 1e-12);
}

TEST(MarginalGameTest, FullCoalitionIsInstancePrediction) {
  auto [d, gt] = MakeLogisticData(50, 3, 2);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  Vector instance = d.Row(7);
  MarginalFeatureGame game(AsPredictFn(model), instance, d.x());
  EXPECT_NEAR(game.Value((1ULL << 3) - 1), model.Predict(instance), 1e-12);
}

TEST(MarginalGameTest, CachesEvaluations) {
  auto [d, gt] = MakeLogisticData(30, 3, 3);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  MarginalFeatureGame game(AsPredictFn(model), d.Row(0), d.x());
  game.Value(0b101);
  game.Value(0b101);
  game.Value(0b101);
  EXPECT_EQ(game.num_evaluations(), 1);
}

TEST(MarginalGameTest, MaxBackgroundTruncates) {
  auto [d, gt] = MakeLogisticData(100, 2, 4);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  MarginalFeatureGame truncated(AsPredictFn(model), d.Row(0), d.x(), 10);
  Matrix small(10, 2);
  for (int i = 0; i < 10; ++i) small.SetRow(i, d.Row(i));
  MarginalFeatureGame manual(AsPredictFn(model), d.Row(0), small);
  EXPECT_NEAR(truncated.Value(0b01), manual.Value(0b01), 1e-12);
}

TEST(ShapleyEfficiencyTest, ExactSumsToFullMinusEmpty) {
  auto [d, gt] = MakeLogisticData(80, 5, 5);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  MarginalFeatureGame game(AsPredictFn(model), d.Row(3), d.x(), 20);
  Vector phi = ExactShapley(game).ValueOrDie();
  double sum = 0;
  for (double p : phi) sum += p;
  uint64_t full = (1ULL << 5) - 1;
  EXPECT_NEAR(sum, game.Value(full) - game.Value(0), 1e-9);
}

TEST(SamplingShapleyTest, ConvergesToExact) {
  auto [d, gt] = MakeLogisticData(60, 4, 6);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  MarginalFeatureGame game(AsPredictFn(model), d.Row(1), d.x(), 16);
  Vector exact = ExactShapley(game).ValueOrDie();
  Rng rng(7);
  SamplingShapleyResult approx = SamplingShapley(game, 3000, &rng);
  for (int j = 0; j < 4; ++j)
    EXPECT_NEAR(approx.values[j], exact[j], 0.02);
}

TEST(SamplingShapleyTest, StdErrorsShrinkWithSamples) {
  auto [d, gt] = MakeLogisticData(60, 4, 8);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  MarginalFeatureGame game(AsPredictFn(model), d.Row(2), d.x(), 16);
  Rng rng1(1), rng2(1);
  auto small = SamplingShapley(game, 50, &rng1);
  auto large = SamplingShapley(game, 2000, &rng2);
  double se_small = 0, se_large = 0;
  for (int j = 0; j < 4; ++j) {
    se_small += small.std_errors[j];
    se_large += large.std_errors[j];
  }
  EXPECT_LT(se_large, se_small);
}

TEST(KernelShapTest, ExactWhenBudgetCoversAllCoalitions) {
  // Kernel SHAP with full enumeration solves the exact Shapley values.
  auto [d, gt] = MakeLogisticData(60, 5, 9);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  MarginalFeatureGame game(AsPredictFn(model), d.Row(4), d.x(), 16);
  Vector exact = ExactShapley(game).ValueOrDie();
  Rng rng(10);
  KernelShapConfig config;
  config.coalition_budget = 1 << 10;
  AttributionExplanation ks = KernelShap(game, config, &rng).ValueOrDie();
  for (int j = 0; j < 5; ++j)
    EXPECT_NEAR(ks.attributions[j], exact[j], 1e-6);
}

TEST(KernelShapTest, EfficiencyConstraintAlwaysHolds) {
  auto [d, gt] = MakeLogisticData(60, 8, 11);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  MarginalFeatureGame game(AsPredictFn(model), d.Row(0), d.x(), 8);
  Rng rng(12);
  KernelShapConfig config;
  config.coalition_budget = 64;  // Forces sampling.
  AttributionExplanation ks = KernelShap(game, config, &rng).ValueOrDie();
  EXPECT_NEAR(ks.AttributionSum(), ks.prediction, 1e-8);
}

TEST(KernelShapTest, SampledCloseToExact) {
  auto [d, gt] = MakeLogisticData(60, 10, 13);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  MarginalFeatureGame game(AsPredictFn(model), d.Row(6), d.x(), 8);
  Vector exact = ExactShapley(game).ValueOrDie();
  Rng rng(14);
  KernelShapConfig config;
  config.coalition_budget = 700;
  AttributionExplanation ks = KernelShap(game, config, &rng).ValueOrDie();
  for (int j = 0; j < 10; ++j)
    EXPECT_NEAR(ks.attributions[j], exact[j], 0.05);
}

TEST(KernelShapTest, FusedBitIdenticalToMaterializedAcrossBackendsAndThreads) {
  // A game with pairwise interactions so the regression is non-trivial.
  auto value_fn = [](uint64_t mask) {
    double vals[] = {1.0, -2.0, 0.5, 3.0, -0.7, 1.3, 0.2, -1.1, 2.4, -0.3,
                     0.9};
    double acc = 0;
    for (int i = 0; i < 11; ++i)
      if (mask & (1ULL << i)) acc += vals[i];
    if ((mask & 3ULL) == 3ULL) acc += 1.7;
    if ((mask & 12ULL) == 12ULL) acc -= 0.9;
    return acc;
  };
  // Exercise both the fully-enumerated regime and the sampled regime
  // (2^11 - 2 = 2046 coalitions vs a budget of 700).
  for (int budget : {2048, 700}) {
    FunctionGame game(11, value_fn);
    KernelShapConfig materialized_cfg;
    materialized_cfg.coalition_budget = budget;
    materialized_cfg.fused = false;
    KernelShapConfig fused_cfg = materialized_cfg;
    fused_cfg.fused = true;

    simd::Backend prev = simd::Active();
    int prev_threads = GetNumThreads();
    simd::SetBackend(simd::Backend::kScalar);
    SetNumThreads(1);
    Rng ref_rng(77);
    auto ref = KernelShap(game, materialized_cfg, &ref_rng).ValueOrDie();
    std::vector<simd::Backend> backends = {simd::Backend::kScalar};
    if (simd::MaxSupported() >= simd::Backend::kSse2)
      backends.push_back(simd::Backend::kSse2);
    if (simd::MaxSupported() >= simd::Backend::kAvx2)
      backends.push_back(simd::Backend::kAvx2);
    for (simd::Backend be : backends) {
      for (int threads : {1, 4, 8}) {
        simd::SetBackend(be);
        SetNumThreads(threads);
        Rng rng(77);  // Coalition sampling precedes the solve branch.
        auto got = KernelShap(game, fused_cfg, &rng).ValueOrDie();
        ASSERT_EQ(got.attributions.size(), ref.attributions.size());
        for (size_t j = 0; j < ref.attributions.size(); ++j) {
          EXPECT_EQ(std::memcmp(&ref.attributions[j], &got.attributions[j],
                                sizeof(double)),
                    0)
              << "budget=" << budget << " phi[" << j
              << "] backend=" << simd::BackendName(be)
              << " threads=" << threads;
        }
        EXPECT_DOUBLE_EQ(got.base_value, ref.base_value);
        EXPECT_DOUBLE_EQ(got.prediction, ref.prediction);
      }
    }
    simd::SetBackend(prev);
    SetNumThreads(prev_threads);
  }
}

TEST(KernelShapTest, SinglePlayerGame) {
  FunctionGame game(1, [](uint64_t mask) { return mask ? 5.0 : 2.0; });
  Rng rng(15);
  AttributionExplanation ks = KernelShap(game, {}, &rng).ValueOrDie();
  EXPECT_NEAR(ks.attributions[0], 3.0, 1e-12);
}

TEST(QiiTest, UnaryQiiZeroForDummyFeature) {
  FunctionGame game(3, [](uint64_t mask) {
    return (mask & 1 ? 1.0 : 0.0) + (mask & 2 ? 2.0 : 0.0);
  });
  Vector iota = UnaryQii(game);
  EXPECT_NEAR(iota[0], 1.0, 1e-12);
  EXPECT_NEAR(iota[1], 2.0, 1e-12);
  EXPECT_NEAR(iota[2], 0.0, 1e-12);
}

TEST(QiiTest, BanzhafMatchesExactOnAdditive) {
  FunctionGame game(3, [](uint64_t mask) {
    return (mask & 1 ? 1.5 : 0.0) - (mask & 4 ? 0.7 : 0.0);
  });
  Rng rng(16);
  Vector banzhaf = BanzhafQii(game, 400, &rng);
  EXPECT_NEAR(banzhaf[0], 1.5, 0.05);
  EXPECT_NEAR(banzhaf[1], 0.0, 0.05);
  EXPECT_NEAR(banzhaf[2], -0.7, 0.05);
}

TEST(QiiTest, ShapleyQiiMatchesExact) {
  auto [d, gt] = MakeLogisticData(60, 4, 17);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  MarginalFeatureGame game(AsPredictFn(model), d.Row(9), d.x(), 16);
  Vector exact = ExactShapley(game).ValueOrDie();
  Rng rng(18);
  Vector qii = ShapleyQii(game, 2000, &rng);
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(qii[j], exact[j], 0.02);
}

TEST(ConditionalGameTest, FullCoalitionIsInstancePrediction) {
  auto [d, gt] = MakeLogisticData(100, 3, 30);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  Vector instance = d.Row(4);
  ConditionalFeatureGame game(AsPredictFn(model), instance, d.x(), 10);
  EXPECT_NEAR(game.Value(0b111), model.Predict(instance), 1e-12);
}

TEST(ConditionalGameTest, EmptyCoalitionWithFullKIsMeanPrediction) {
  auto [d, gt] = MakeLogisticData(60, 2, 31);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  ConditionalFeatureGame game(AsPredictFn(model), d.Row(0), d.x(),
                              /*k_neighbors=*/60);
  double mean = 0;
  for (int i = 0; i < 60; ++i) mean += model.Predict(d.Row(i)) / 60;
  EXPECT_NEAR(game.Value(0), mean, 1e-12);
}

TEST(ConditionalGameTest, CapturesIndirectInfluenceThroughCorrelation) {
  // The §2.1.2 criticism: marginal Shapley values cannot "capture the
  // indirect influences of features". Build data where x0 drives x1 and
  // the model reads only x1: the conditional game credits x0, the marginal
  // game does not.
  LinearScm scm = MakeChainScm(1.0, 1.0);  // x0 -> x1 -> x2.
  Rng rng(32);
  Matrix background = scm.Sample(400, &rng);
  PredictFn f = [](const Vector& x) { return x[1]; };
  Vector instance = {2.0, 2.0, 2.0};

  MarginalFeatureGame marginal(f, instance, background, 200);
  Vector phi_marginal = ExactShapley(marginal).ValueOrDie();
  ConditionalFeatureGame conditional(f, instance, background, 25);
  Vector phi_conditional = ExactShapley(conditional).ValueOrDie();

  EXPECT_NEAR(phi_marginal[0], 0.0, 1e-9);      // Marginal: x0 invisible.
  EXPECT_GT(phi_conditional[0], 0.3);           // Conditional: x0 credited.
  EXPECT_GT(phi_conditional[1], phi_conditional[0]);  // x1 still dominant.
}

TEST(ConditionalGameTest, OnManifoldEvaluationResistsOodGating) {
  // Rows fed to the model are splices of the instance with *similar* real
  // rows, so for singleton coalitions they stay close to the manifold:
  // much closer than marginal-game splices of arbitrary rows.
  auto [d, gt] = MakeLogisticData(300, 3, 33);
  (void)gt;
  // Record every row the game evaluates and measure its distance to the
  // nearest training row.
  Matrix x = d.x();
  auto nearest_dist = [&](const Vector& row) {
    double best = 1e300;
    for (int i = 0; i < x.rows(); ++i) {
      double acc = 0;
      for (int j = 0; j < 3; ++j) {
        double diff = row[j] - x(i, j);
        acc += diff * diff;
      }
      best = std::min(best, acc);
    }
    return std::sqrt(best);
  };
  double conditional_dist = 0, marginal_dist = 0;
  int evals_cond = 0, evals_marg = 0;
  PredictFn probe_cond = [&](const Vector& row) {
    conditional_dist += nearest_dist(row);
    ++evals_cond;
    return 0.0;
  };
  PredictFn probe_marg = [&](const Vector& row) {
    marginal_dist += nearest_dist(row);
    ++evals_marg;
    return 0.0;
  };
  Vector instance = d.Row(0);
  ConditionalFeatureGame cond(probe_cond, instance, d.x(), 20);
  MarginalFeatureGame marg(probe_marg, instance, d.x(), 20);
  for (uint64_t mask : {1ULL, 2ULL, 4ULL, 3ULL, 5ULL}) {
    cond.Value(mask);
    marg.Value(mask);
  }
  EXPECT_LT(conditional_dist / evals_cond, marginal_dist / evals_marg);
}

// Property sweep: efficiency across instances.
class EfficiencyTest : public ::testing::TestWithParam<int> {};

TEST_P(EfficiencyTest, KernelShapEfficiencyPerInstance) {
  auto [d, gt] = MakeLogisticData(50, 6, 19);
  (void)gt;
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  MarginalFeatureGame game(AsPredictFn(model), d.Row(GetParam()), d.x(), 10);
  Rng rng(20 + GetParam());
  AttributionExplanation ks = KernelShap(game, {}, &rng).ValueOrDie();
  EXPECT_NEAR(ks.AttributionSum(), ks.prediction, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Instances, EfficiencyTest,
                         ::testing::Values(0, 5, 10, 15, 20, 25));

}  // namespace
}  // namespace xai
