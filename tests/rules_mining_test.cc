#include <gtest/gtest.h>

#include "xai/data/synthetic.h"
#include "xai/rules/apriori.h"
#include "xai/rules/fpgrowth.h"

namespace xai {
namespace {

// The classic textbook database.
TransactionDb TextbookDb() {
  return {
      {1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
      {2, 3},    {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
  };
}

TEST(AprioriTest, KnownSupportCounts) {
  auto frequent = Apriori(TextbookDb(), 2).ValueOrDie();
  auto find = [&](const Itemset& items) -> int {
    for (const auto& fi : frequent)
      if (fi.items == items) return fi.support;
    return -1;
  };
  EXPECT_EQ(find({1}), 6);
  EXPECT_EQ(find({2}), 7);
  EXPECT_EQ(find({1, 2}), 4);
  EXPECT_EQ(find({1, 2, 3}), 2);
  EXPECT_EQ(find({1, 2, 5}), 2);
  EXPECT_EQ(find({4}), 2);
  EXPECT_EQ(find({1, 4}), -1);  // Support 1 < 2: not frequent.
}

TEST(AprioriTest, MinSupportFiltersEverything) {
  auto frequent = Apriori(TextbookDb(), 100).ValueOrDie();
  EXPECT_TRUE(frequent.empty());
}

TEST(AprioriTest, RejectsBadSupport) {
  EXPECT_FALSE(Apriori(TextbookDb(), 0).ok());
}

TEST(FpGrowthTest, KnownSupportCounts) {
  auto frequent = FpGrowth(TextbookDb(), 2).ValueOrDie();
  auto find = [&](const Itemset& items) -> int {
    for (const auto& fi : frequent)
      if (fi.items == items) return fi.support;
    return -1;
  };
  EXPECT_EQ(find({2}), 7);
  EXPECT_EQ(find({1, 2}), 4);
  EXPECT_EQ(find({1, 2, 3}), 2);
  EXPECT_EQ(find({2, 5}), 2);
}

// The central cross-check: the two miners emit identical itemset sets on
// random databases, across support thresholds.
class MinerAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MinerAgreementTest, AprioriEqualsFpGrowth) {
  auto [seed, min_support] = GetParam();
  TransactionDb db = MakeTransactions(150, 30, 6, 4, 3, seed);
  auto apriori = Apriori(db, min_support).ValueOrDie();
  auto fpgrowth = FpGrowth(db, min_support).ValueOrDie();
  ASSERT_EQ(apriori.size(), fpgrowth.size());
  for (size_t i = 0; i < apriori.size(); ++i) {
    EXPECT_EQ(apriori[i].items, fpgrowth[i].items);
    EXPECT_EQ(apriori[i].support, fpgrowth[i].support);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, MinerAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(3, 8, 20)));

TEST(SupportCountTest, LinearScanMatchesMiners) {
  TransactionDb db = TextbookDb();
  EXPECT_EQ(CountSupport(db, {1, 2}), 4);
  EXPECT_EQ(CountSupport(db, {}), 9);  // Empty set in every transaction.
  EXPECT_EQ(CountSupport(db, {9}), 0);
}

TEST(IsSubsetTest, Basics) {
  EXPECT_TRUE(IsSubsetOf({1, 3}, {1, 2, 3}));
  EXPECT_FALSE(IsSubsetOf({1, 4}, {1, 2, 3}));
  EXPECT_TRUE(IsSubsetOf({}, {1}));
}

TEST(RuleGenerationTest, ConfidenceComputedCorrectly) {
  auto frequent = Apriori(TextbookDb(), 2).ValueOrDie();
  auto rules = GenerateRules(frequent, 9, 0.0);
  // Find rule {5} => {1,2}: support({1,2,5}) = 2, support({5}) = 2: conf 1.
  bool found = false;
  for (const auto& rule : rules) {
    if (rule.antecedent == Itemset{5} && rule.consequent == Itemset{1, 2}) {
      EXPECT_EQ(rule.support, 2);
      EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RuleGenerationTest, MinConfidenceFilters) {
  auto frequent = Apriori(TextbookDb(), 2).ValueOrDie();
  auto strict = GenerateRules(frequent, 9, 0.99);
  for (const auto& rule : strict) EXPECT_GE(rule.confidence, 0.99);
  auto loose = GenerateRules(frequent, 9, 0.1);
  EXPECT_GT(loose.size(), strict.size());
}

TEST(RuleGenerationTest, LiftAboveOneForAssociatedItems) {
  auto frequent = Apriori(TextbookDb(), 2).ValueOrDie();
  auto rules = GenerateRules(frequent, 9, 0.5);
  for (const auto& rule : rules) {
    if (rule.antecedent == Itemset{5} && rule.consequent == Itemset{2}) {
      // 5 always occurs with 2: lift = 1.0 / (7/9) > 1.
      EXPECT_GT(rule.lift, 1.0);
    }
  }
}

TEST(SortItemsetsTest, CanonicalOrder) {
  std::vector<FrequentItemset> sets = {
      {{2, 3}, 1}, {{1}, 5}, {{1, 2}, 2}, {{3}, 4}};
  SortItemsets(&sets);
  EXPECT_EQ(sets[0].items, (Itemset{1}));
  EXPECT_EQ(sets[1].items, (Itemset{3}));
  EXPECT_EQ(sets[2].items, (Itemset{1, 2}));
  EXPECT_EQ(sets[3].items, (Itemset{2, 3}));
}

}  // namespace
}  // namespace xai
