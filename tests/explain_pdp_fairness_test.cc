#include <gtest/gtest.h>

#include <cmath>

#include "xai/data/synthetic.h"
#include "xai/explain/fairness.h"
#include "xai/explain/partial_dependence.h"
#include "xai/model/gbdt.h"
#include "xai/model/linear_regression.h"
#include "xai/model/logistic_regression.h"

namespace xai {
namespace {

TEST(PartialDependenceTest, LinearModelGivesLinearCurve) {
  auto [d, gt] = MakeLinearData(300, 3, 0.1, 1);
  auto model = LinearRegressionModel::Train(d).ValueOrDie();
  auto pd =
      ComputePartialDependence(AsPredictFn(model), d, 0).ValueOrDie();
  ASSERT_GE(pd.grid.size(), 3u);
  // Slope between consecutive grid points equals the model weight.
  for (size_t k = 1; k < pd.grid.size(); ++k) {
    double slope =
        (pd.mean[k] - pd.mean[k - 1]) / (pd.grid[k] - pd.grid[k - 1]);
    EXPECT_NEAR(slope, model.weights()[0], 1e-6);
  }
}

TEST(PartialDependenceTest, IceFlatForAdditiveModel) {
  // Additive model: ICE curves are parallel, so per-grid stddev of the
  // *centered* curves is the same everywhere; raw sd equals spread of other
  // features' contributions.
  auto [d, gt] = MakeLinearData(200, 2, 0.0, 2);
  (void)gt;
  auto model = LinearRegressionModel::Train(d).ValueOrDie();
  auto pd =
      ComputePartialDependence(AsPredictFn(model), d, 0).ValueOrDie();
  Vector sd = pd.IceStdDev();
  for (size_t k = 1; k < sd.size(); ++k)
    EXPECT_NEAR(sd[k], sd[0], 1e-9);  // Parallel curves: constant sd.
}

TEST(PartialDependenceTest, MonotoneFeatureGivesMonotoneCurve) {
  Dataset d = MakeLoans(1200, 3);
  GbdtModel::Config mc;
  mc.n_trees = 60;
  auto model = GbdtModel::Train(d, mc).ValueOrDie();
  int credit = d.schema().FeatureIndex("credit_score");
  auto pd =
      ComputePartialDependence(AsPredictFn(model), d, credit).ValueOrDie();
  // Higher credit score should never substantially hurt approval.
  EXPECT_GT(pd.mean.back(), pd.mean.front());
}

TEST(PartialDependenceTest, CategoricalEnumeratesCategories) {
  Dataset d = MakeLoans(300, 4);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  int purpose = d.schema().FeatureIndex("purpose");
  auto pd =
      ComputePartialDependence(AsPredictFn(model), d, purpose).ValueOrDie();
  EXPECT_EQ(pd.grid.size(), 4u);
}

TEST(PartialDependenceTest, RejectsBadInput) {
  Dataset d = MakeLoans(50, 5);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  EXPECT_FALSE(
      ComputePartialDependence(AsPredictFn(model), d, 99).ok());
  PartialDependenceConfig config;
  config.grid_points = 1;
  EXPECT_FALSE(
      ComputePartialDependence(AsPredictFn(model), d, 0, config).ok());
}

TEST(FairnessTest, UnbiasedModelHasSmallGap) {
  Dataset d = MakeLoans(2000, 6);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  int gender = d.schema().FeatureIndex("gender");
  auto report =
      EvaluateGroupFairness(AsPredictFn(model), d, gender).ValueOrDie();
  // gender does not enter the loans mechanism: gap should be small.
  EXPECT_LT(report.demographic_parity_gap, 0.05);
  EXPECT_GT(report.count_group0, 0);
  EXPECT_GT(report.count_group1, 0);
}

TEST(FairnessTest, ExplicitlyBiasedModelHasGapOne) {
  Dataset d = MakeRecidivism(500, 7);
  int race = d.schema().FeatureIndex("race");
  PredictFn biased = [race](const Vector& x) {
    return x[race] == 1.0 ? 1.0 : 0.0;
  };
  auto report = EvaluateGroupFairness(biased, d, race).ValueOrDie();
  EXPECT_NEAR(report.demographic_parity_gap, 1.0, 1e-12);
}

TEST(FairnessTest, ProxyBiasShowsUpWithoutUsingTheGroupFeature) {
  // Recidivism: priors_count is correlated with race; a model trained
  // WITHOUT race still shows a parity gap through the proxy.
  Dataset d = MakeRecidivism(4000, 8);
  int race = d.schema().FeatureIndex("race");
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  // Zero out the race weight to simulate "fairness through unawareness".
  Vector w = model.weights();
  w[race] = 0.0;
  auto unaware =
      LogisticRegressionModel::FromCoefficients(w, model.bias());
  auto report =
      EvaluateGroupFairness(AsPredictFn(unaware), d, race).ValueOrDie();
  EXPECT_GT(report.demographic_parity_gap, 0.05);
}

TEST(FairnessTest, ToStringMentionsGaps) {
  Dataset d = MakeRecidivism(300, 9);
  int race = d.schema().FeatureIndex("race");
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  auto report =
      EvaluateGroupFairness(AsPredictFn(model), d, race).ValueOrDie();
  EXPECT_NE(report.ToString().find("parity gap"), std::string::npos);
}

TEST(FairnessTest, RejectsNonBinaryGroup) {
  Dataset d = MakeLoans(100, 10);
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  int purpose = d.schema().FeatureIndex("purpose");  // 4 categories.
  EXPECT_FALSE(
      EvaluateGroupFairness(AsPredictFn(model), d, purpose).ok());
}

TEST(DisparityQiiTest, ProxyFeatureCarriesTheDisparity) {
  Dataset d = MakeRecidivism(1200, 11);
  int race = d.schema().FeatureIndex("race");
  int priors = d.schema().FeatureIndex("priors_count");
  auto model = LogisticRegressionModel::Train(d).ValueOrDie();
  Rng rng(12);
  Vector influence =
      DisparityQii(AsPredictFn(model), d, race, 3, &rng).ValueOrDie();
  // Randomizing priors_count (the proxy) should close most of the gap;
  // randomizing an irrelevant feature (gender) should not.
  int gender = d.schema().FeatureIndex("gender");
  EXPECT_GT(influence[priors], 3.0 * std::fabs(influence[gender]) - 1e-9);
  EXPECT_GT(influence[priors], 0.01);
}

TEST(DisparityQiiTest, DirectUseOfGroupFeatureDetected) {
  Dataset d = MakeRecidivism(800, 13);
  int race = d.schema().FeatureIndex("race");
  PredictFn biased = [race](const Vector& x) {
    return x[race] == 1.0 ? 0.9 : 0.1;
  };
  Rng rng(14);
  Vector influence = DisparityQii(biased, d, race, 3, &rng).ValueOrDie();
  for (int j = 0; j < d.num_features(); ++j) {
    if (j == race) continue;
    EXPECT_GT(influence[race], influence[j]);
  }
  EXPECT_GT(influence[race], 0.3);
}

}  // namespace
}  // namespace xai
