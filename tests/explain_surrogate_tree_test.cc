#include "xai/explain/surrogate_tree.h"

#include <gtest/gtest.h>

#include "xai/data/synthetic.h"
#include "xai/model/gbdt.h"
#include "xai/model/logistic_regression.h"

namespace xai {
namespace {

TEST(SurrogateTreeTest, HighFidelityOnAxisAlignedBlackBox) {
  // Black box is itself a single threshold rule: a depth-3 surrogate should
  // capture it almost perfectly and the path should test the right feature.
  Dataset train = MakeLoans(800, 1);
  int credit = train.schema().FeatureIndex("credit_score");
  PredictFn f = [credit](const Vector& x) {
    return x[credit] > 650.0 ? 1.0 : 0.0;
  };
  SurrogateTreeExplainer explainer(train);
  auto exp = explainer.Explain(f, train.Row(0), 2).ValueOrDie();
  EXPECT_GT(exp.fidelity, 0.85);
  ASSERT_FALSE(exp.path.empty());
  bool mentions_credit = false;
  for (const std::string& predicate : exp.path)
    if (predicate.find("credit_score") != std::string::npos)
      mentions_credit = true;
  EXPECT_TRUE(mentions_credit);
}

TEST(SurrogateTreeTest, PathLengthBoundedByDepth) {
  Dataset train = MakeLoans(600, 2);
  GbdtModel::Config mc;
  mc.n_trees = 30;
  auto model = GbdtModel::Train(train, mc).ValueOrDie();
  SurrogateTreeConfig config;
  config.max_depth = 2;
  SurrogateTreeExplainer explainer(train, config);
  auto exp =
      explainer.Explain(AsPredictFn(model), train.Row(4), 3).ValueOrDie();
  EXPECT_LE(exp.path.size(), 2u);
}

TEST(SurrogateTreeTest, SurrogateAgreesAtTheInstance) {
  Dataset train = MakeLoans(700, 3);
  auto model = LogisticRegressionModel::Train(train).ValueOrDie();
  SurrogateTreeExplainer explainer(train);
  auto exp =
      explainer.Explain(AsPredictFn(model), train.Row(10), 4).ValueOrDie();
  // The surrogate should locally agree with the black box within a coarse
  // tolerance (it is a depth-3 step function).
  EXPECT_NEAR(exp.surrogate_prediction, exp.prediction, 0.35);
}

TEST(SurrogateTreeTest, PathIsConsistentWithInstanceRouting) {
  Dataset train = MakeLoans(500, 4);
  auto model = LogisticRegressionModel::Train(train).ValueOrDie();
  SurrogateTreeExplainer explainer(train);
  Vector instance = train.Row(7);
  auto exp =
      explainer.Explain(AsPredictFn(model), instance, 5).ValueOrDie();
  EXPECT_DOUBLE_EQ(exp.surrogate.Predict(instance),
                   exp.surrogate_prediction);
}

TEST(SurrogateTreeTest, ToStringRendersPath) {
  Dataset train = MakeLoans(400, 5);
  auto model = LogisticRegressionModel::Train(train).ValueOrDie();
  SurrogateTreeExplainer explainer(train);
  auto exp =
      explainer.Explain(AsPredictFn(model), train.Row(0), 6).ValueOrDie();
  std::string text = exp.ToString();
  EXPECT_NE(text.find("fidelity"), std::string::npos);
  EXPECT_NE(text.find("=>"), std::string::npos);
}

TEST(SurrogateTreeTest, RejectsWrongWidth) {
  Dataset train = MakeLoans(200, 6);
  SurrogateTreeExplainer explainer(train);
  PredictFn f = [](const Vector&) { return 0.5; };
  EXPECT_FALSE(explainer.Explain(f, Vector{1.0}, 1).ok());
}

}  // namespace
}  // namespace xai
