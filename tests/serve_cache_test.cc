#include "xai/serve/explanation_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

namespace xai {
namespace serve {
namespace {

std::shared_ptr<const ExplainResponse> MakeResponse(int num_attributions,
                                                    double fill = 1.0) {
  auto response = std::make_shared<ExplainResponse>();
  response->attribution.attributions.assign(num_attributions, fill);
  return response;
}

CacheKey Key(uint64_t model, uint64_t instance, uint64_t config = 7) {
  return CacheKey{model, instance, config};
}

TEST(CacheKeyTest, MixIsDeterministicAndSeparatesComponents) {
  EXPECT_EQ(Key(1, 2, 3).Mix(), Key(1, 2, 3).Mix());
  std::set<uint64_t> mixes;
  mixes.insert(Key(1, 2, 3).Mix());
  mixes.insert(Key(3, 2, 1).Mix());
  mixes.insert(Key(2, 1, 3).Mix());
  mixes.insert(Key(1, 2, 4).Mix());
  EXPECT_EQ(mixes.size(), 4u) << "component order must matter";
}

TEST(ExplanationCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  ExplanationCache::Config config;
  config.num_shards = 5;
  ExplanationCache cache(config);
  EXPECT_EQ(cache.num_shards(), 8);

  config.num_shards = 0;
  ExplanationCache zero(config);
  EXPECT_EQ(zero.num_shards(), 1);
}

TEST(ExplanationCacheTest, HitRefreshesRecencyAndEvictionIsLru) {
  auto entry = MakeResponse(100);
  const size_t entry_bytes = ApproxResponseBytes(*entry);

  ExplanationCache::Config config;
  config.num_shards = 1;  // Exact global LRU order.
  config.max_bytes = 3 * entry_bytes;
  ExplanationCache cache(config);

  cache.Put(Key(1, 1), MakeResponse(100));
  cache.Put(Key(1, 2), MakeResponse(100));
  cache.Put(Key(1, 3), MakeResponse(100));
  // Touch key 1: key 2 becomes the coldest.
  EXPECT_NE(cache.Get(Key(1, 1)), nullptr);
  cache.Put(Key(1, 4), MakeResponse(100));

  EXPECT_EQ(cache.Get(Key(1, 2)), nullptr) << "coldest entry must go first";
  EXPECT_NE(cache.Get(Key(1, 1)), nullptr);
  EXPECT_NE(cache.Get(Key(1, 3)), nullptr);
  EXPECT_NE(cache.Get(Key(1, 4)), nullptr);

  auto stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 3);
}

TEST(ExplanationCacheTest, ByteBudgetIsNeverExceeded) {
  auto probe = MakeResponse(50);
  const size_t entry_bytes = ApproxResponseBytes(*probe);

  ExplanationCache::Config config;
  config.num_shards = 4;
  config.max_bytes = 10 * entry_bytes;
  ExplanationCache cache(config);

  for (uint64_t i = 0; i < 200; ++i)
    cache.Put(Key(1, i), MakeResponse(50));

  auto stats = cache.GetStats();
  EXPECT_LE(stats.bytes, config.max_bytes);
  EXPECT_GT(stats.evictions, 0);
  EXPECT_EQ(stats.entries + stats.evictions, 200);
}

TEST(ExplanationCacheTest, OversizedEntryIsNotCached) {
  ExplanationCache::Config config;
  config.num_shards = 1;
  config.max_bytes = ApproxResponseBytes(*MakeResponse(10));
  ExplanationCache cache(config);

  cache.Put(Key(1, 1), MakeResponse(10000));
  EXPECT_EQ(cache.Get(Key(1, 1)), nullptr);
  EXPECT_EQ(cache.GetStats().entries, 0);
}

TEST(ExplanationCacheTest, PutReplacesExistingKey) {
  ExplanationCache::Config config;
  config.num_shards = 1;
  ExplanationCache cache(config);

  cache.Put(Key(1, 1), MakeResponse(10, /*fill=*/1.0));
  cache.Put(Key(1, 1), MakeResponse(10, /*fill=*/2.0));
  auto hit = cache.Get(Key(1, 1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->attribution.attributions[0], 2.0);
  EXPECT_EQ(cache.GetStats().entries, 1);
}

TEST(ExplanationCacheTest, StatsCountHitsAndMisses) {
  ExplanationCache cache(ExplanationCache::Config{});
  EXPECT_EQ(cache.Get(Key(1, 1)), nullptr);
  cache.Put(Key(1, 1), MakeResponse(5));
  EXPECT_NE(cache.Get(Key(1, 1)), nullptr);
  EXPECT_NE(cache.Get(Key(1, 1)), nullptr);
  EXPECT_EQ(cache.Get(Key(1, 2)), nullptr);

  auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 2);
}

TEST(ExplanationCacheTest, ClearEmptiesEveryShard) {
  ExplanationCache cache(ExplanationCache::Config{});
  for (uint64_t i = 0; i < 32; ++i) cache.Put(Key(i, i), MakeResponse(5));
  EXPECT_GT(cache.GetStats().entries, 0);
  cache.Clear();
  auto stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(ExplanationCacheTest, SharedPtrSurvivesEviction) {
  auto entry = MakeResponse(100, /*fill=*/42.0);
  const size_t entry_bytes = ApproxResponseBytes(*entry);

  ExplanationCache::Config config;
  config.num_shards = 1;
  config.max_bytes = entry_bytes;  // Room for exactly one entry.
  ExplanationCache cache(config);

  cache.Put(Key(1, 1), entry);
  auto held = cache.Get(Key(1, 1));
  cache.Put(Key(1, 2), MakeResponse(100));  // Evicts key (1, 1).
  EXPECT_EQ(cache.Get(Key(1, 1)), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->attribution.attributions[0], 42.0);
}

}  // namespace
}  // namespace serve
}  // namespace xai
