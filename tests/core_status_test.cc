#include "xai/core/status.h"

#include <gtest/gtest.h>

namespace xai {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueUnsafe();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  XAI_ASSIGN_OR_RETURN(int half, Half(v));
  XAI_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

Status CheckEven(int v) {
  XAI_RETURN_NOT_OK(Half(v).status());
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).ValueOrDie(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(CheckEven(4).ok());
  EXPECT_FALSE(CheckEven(3).ok());
}

}  // namespace
}  // namespace xai
