#include "xai/serve/async/frontend.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "xai/core/parallel.h"
#include "xai/core/trace.h"
#include "xai/data/synthetic.h"
#include "xai/model/gbdt.h"
#include "xai/model/serialization.h"
#include "xai/serve/async/event_loop.h"
#include "xai/serve/async/future.h"
#include "xai/serve/async/wire.h"

namespace xai {
namespace serve {
namespace async {
namespace {

// ---- Event loop ----------------------------------------------------------

TEST(EventLoopTest, RunsPostedTasksInFifoOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(loop.Post([&order, i] { order.push_back(i); }).ok());
  }
  loop.Drain();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoopTest, PostPropagatesTraceContextAcrossTheHop) {
  EventLoop loop;
  uint64_t seen_inside = 0;
  uint64_t seen_after = 1;  // Anything non-zero.
  {
    telemetry::ScopedTraceContext scope(
        telemetry::TraceContext{424242, 7, true});
    ASSERT_TRUE(loop.Post([&] {
                      seen_inside = telemetry::CurrentTraceContext().trace_id;
                    })
                    .ok());
  }
  // The submitter's context is gone by the time the task runs; the loop
  // must have captured it at Post time.
  ASSERT_TRUE(
      loop.Post([&] { seen_after = telemetry::CurrentTraceContext().trace_id; })
          .ok());
  loop.Drain();
  EXPECT_EQ(seen_inside, 424242u);
  EXPECT_EQ(seen_after, 0u);
}

TEST(EventLoopTest, VirtualClockTimersFireInDeadlineOrderUnderDrain) {
  VirtualClock clock;
  EventLoop loop(&clock);
  std::vector<std::pair<int, int64_t>> fired;  // (label, loop time).
  ASSERT_TRUE(loop.PostAt(300, [&] { fired.push_back({3, loop.Now()}); }).ok());
  ASSERT_TRUE(loop.PostAt(100, [&] { fired.push_back({1, loop.Now()}); }).ok());
  // Ties run in registration order.
  ASSERT_TRUE(loop.PostAt(200, [&] { fired.push_back({20, loop.Now()}); }).ok());
  ASSERT_TRUE(loop.PostAt(200, [&] { fired.push_back({21, loop.Now()}); }).ok());
  // Drain auto-advances the virtual clock through every deadline — no
  // wall-clock waiting.
  loop.Drain();
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0].first, 1);
  EXPECT_EQ(fired[1].first, 20);
  EXPECT_EQ(fired[2].first, 21);
  EXPECT_EQ(fired[3].first, 3);
  EXPECT_GE(fired[0].second, 100);
  EXPECT_GE(fired[3].second, 300);
  EXPECT_GE(loop.Now(), 300);
}

TEST(EventLoopTest, PostAfterShutdownIsRefused) {
  EventLoop loop;
  loop.Shutdown();
  EXPECT_FALSE(loop.Post([] {}).ok());
  EXPECT_FALSE(loop.PostAfter(10, [] {}).ok());
}

// ---- Futures -------------------------------------------------------------

TEST(FutureTest, ThenRunsAfterFulfillmentAndInlineWhenReady) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  int seen = 0;
  future.Then([&](const int& v) { seen = v; });
  EXPECT_EQ(seen, 0);
  promise.Set(41);
  EXPECT_EQ(seen, 41);

  // Registration after completion runs inline.
  int late = 0;
  future.Then([&](const int& v) { late = v + 1; });
  EXPECT_EQ(late, 42);

  Future<int> ready = Future<int>::Ready(7);
  EXPECT_TRUE(ready.Ready());
  EXPECT_EQ(ready.Get(), 7);
}

TEST(FutureTest, ThenCarriesTheRegistrantsTraceContext) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  uint64_t seen = 0;
  {
    telemetry::ScopedTraceContext scope(telemetry::TraceContext{99, 1, true});
    future.Then(
        [&](const int&) { seen = telemetry::CurrentTraceContext().trace_id; });
  }
  // Fulfilled outside any trace context: the continuation still runs under
  // the context captured at registration.
  promise.Set(1);
  EXPECT_EQ(seen, 99u);
}

TEST(FutureDeathTest, DoubleFulfillAborts) {
  Promise<int> promise;
  promise.Set(1);
  EXPECT_DEATH(promise.Set(2), "fulfilled twice");
}

// ---- Front end against a real server -------------------------------------

class AsyncFrontEndTest : public ::testing::Test {
 protected:
  AsyncFrontEndTest()
      : train_(MakeLoans(160, 3)), background_(MakeLoans(24, 4)) {
    GbdtModel::Config config;
    config.n_trees = 5;
    gbdt_text_ = SerializeModel(GbdtModel::Train(train_, config).ValueOrDie());
    instance_ = train_.Row(0);
  }

  void TearDown() override { SetNumThreads(1); }

  void RegisterLoans(ExplainServer* server) {
    server->registry().Register("loans", gbdt_text_, background_).ValueOrDie();
  }

  ExplainRequest Request(ExplainerKind kind) const {
    ExplainRequest request;
    request.model = "loans";
    request.instance = instance_;
    request.kind = kind;
    request.seed = 17;
    request.tenant = "acme";
    return request;
  }

  Dataset train_;
  Dataset background_;
  std::string gbdt_text_;
  Vector instance_;
};

TEST_F(AsyncFrontEndTest, WireRoundTripMatchesSynchronousExplain) {
  ExplainServer server;
  RegisterLoans(&server);
  AsyncFrontEnd frontend(&server);
  for (ExplainerKind kind :
       {ExplainerKind::kTreeShap, ExplainerKind::kKernelShap,
        ExplainerKind::kLime}) {
    const ExplainRequest request = Request(kind);
    const ExplainResponse expected = server.Explain(request).ValueOrDie();

    FrameFuture future = frontend.SubmitWire(EncodeRequest(request));
    const std::string& frame = future.Get();
    ASSERT_EQ(PeekFrameType(frame).ValueOrDie(), FrameType::kResponse)
        << ExplainerKindName(kind);
    const WireResponse wire = DecodeResponse(frame).ValueOrDie();
    // Un-torn: embedded hash matches a recomputation over the decoded
    // payload, and the payload matches the synchronous pipeline's.
    EXPECT_EQ(PayloadHash(wire.response), wire.payload_hash);
    EXPECT_EQ(PayloadHash(wire.response), PayloadHash(expected));
  }
  frontend.Drain();
  // Every admitted request released its slot on delivery.
  for (const auto& [tenant, stats] : frontend.admission().Snapshot()) {
    EXPECT_EQ(stats.pending, 0) << tenant;
  }
}

TEST_F(AsyncFrontEndTest, CacheHitIsServedWithoutDecodingTheInstance) {
  ExplainServer server;
  RegisterLoans(&server);
  AsyncFrontEnd frontend(&server);
  const ExplainRequest request = Request(ExplainerKind::kKernelShap);

  // Warm the cache through the wire path.
  const std::string warm = frontend.SubmitWire(EncodeRequest(request)).Get();
  const WireResponse first = DecodeResponse(warm).ValueOrDie();

  // Same request again, but with the instance payload corrupted after the
  // header (header + carried hash intact). On a cache hit the payload is
  // never deserialized, so the corruption must be invisible.
  std::string frame = EncodeRequest(request);
  const WireRequestHeader header = DecodeRequestHeader(frame).ValueOrDie();
  frame[header.instance_offset + 1] ^= 0x7F;
  const std::string hit_frame = frontend.SubmitWire(frame).Get();
  ASSERT_EQ(PeekFrameType(hit_frame).ValueOrDie(), FrameType::kResponse);
  const WireResponse hit = DecodeResponse(hit_frame).ValueOrDie();
  EXPECT_TRUE(hit.response.cache_hit);
  EXPECT_EQ(PayloadHash(hit.response), PayloadHash(first.response));

  // Against a cold server the same corrupt frame must be refused at
  // materialization: the carried hash no longer matches the bytes — the
  // integrity gate that keeps a corrupt payload out of the cache.
  ExplainServer cold;
  RegisterLoans(&cold);
  AsyncFrontEnd cold_frontend(&cold);
  const std::string rejected = cold_frontend.SubmitWire(frame).Get();
  ASSERT_EQ(PeekFrameType(rejected).ValueOrDie(), FrameType::kError);
  const WireError error = DecodeError(rejected).ValueOrDie();
  EXPECT_EQ(error.code, StatusCode::kInvalidArgument);
}

TEST_F(AsyncFrontEndTest, AdmissionShedsAreTypedRecordedAndCharged) {
  ExplainServer server;
  RegisterLoans(&server);
  AsyncFrontEnd::Config config;
  config.admission.tokens_per_sec = 1e-9;  // Effectively no refill.
  config.admission.burst = 1.0;
  VirtualClock clock;  // Frozen at zero: decisions are a pure function.
  config.clock = &clock;
  AsyncFrontEnd frontend(&server, config);

  const ExplainRequest request = Request(ExplainerKind::kTreeShap);
  FrameFuture admitted = frontend.SubmitWire(EncodeRequest(request));
  FrameFuture shed = frontend.SubmitWire(EncodeRequest(request));

  // The shed resolves immediately on the submitting thread, with a typed
  // Overloaded error frame.
  ASSERT_TRUE(shed.Ready());
  const WireError error = DecodeError(shed.Get()).ValueOrDie();
  EXPECT_EQ(error.code, StatusCode::kOverloaded);
  EXPECT_NE(error.message.find("rate_limited"), std::string::npos);

  EXPECT_EQ(PeekFrameType(admitted.Get()).ValueOrDie(), FrameType::kResponse);
  frontend.Drain();

  // Shed provenance: shed=true, complete=false, tenant attributed.
  const auto records = frontend.DrainShedRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].shed);
  EXPECT_FALSE(records[0].complete);
  EXPECT_EQ(records[0].tenant, "acme");
  EXPECT_EQ(records[0].model, "loans");
  EXPECT_TRUE(frontend.DrainShedRecords().empty());

  // Charged to the tenant's SLO standing and visible in the metrics
  // surface the front end attached.
  EXPECT_EQ(frontend.admission().TotalShed(), 1);
  const std::string jsonl =
      server.MetricsSnapshot(ExplainServer::MetricsFormat::kJsonl);
  EXPECT_NE(jsonl.find("\"shed\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"admission\""), std::string::npos);
}

TEST_F(AsyncFrontEndTest, AdmissionErrorsDoNotLeakPendingSlots) {
  ExplainServer server;
  RegisterLoans(&server);
  AsyncFrontEnd frontend(&server);
  ExplainRequest request = Request(ExplainerKind::kTreeShap);
  request.model = "nonexistent";
  Result<ExplainResponse> result = frontend.Submit(request).Get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  frontend.Drain();
  for (const auto& [tenant, stats] : frontend.admission().Snapshot()) {
    EXPECT_EQ(stats.pending, 0) << tenant;
  }
}

TEST_F(AsyncFrontEndTest, SessionFollowUpsReuseCoalitionsBitIdentically) {
  ExplainServer server;
  RegisterLoans(&server);
  AsyncFrontEnd frontend(&server);
  const uint64_t session = frontend.OpenSession().ValueOrDie();

  ExplainRequest first = Request(ExplainerKind::kKernelShap);
  const ExplainResponse cold =
      frontend.Submit(first, session).Get().ValueOrDie();
  EXPECT_EQ(PayloadHash(cold),
            PayloadHash(server.Explain(first).ValueOrDie()));
  const auto after_first = frontend.sessions().GetStats();
  EXPECT_GT(after_first.memo_misses, 0);

  // What-if follow-up: one feature changes. Coalitions excluding that
  // feature replay from the memo; the answer must be bit-identical to a
  // from-scratch stateless run (the memo trades cost, never content).
  ExplainRequest what_if = first;
  what_if.instance[0] += 1.0;
  const ExplainResponse warm =
      frontend.Submit(what_if, session).Get().ValueOrDie();
  // Fetch the stateless baseline exactly once: a second server.Explain of
  // the same request would hit the server's explanation cache and report
  // zero evaluations.
  const ExplainResponse stateless = server.Explain(what_if).ValueOrDie();
  EXPECT_EQ(PayloadHash(warm), PayloadHash(stateless));

  const auto after_second = frontend.sessions().GetStats();
  EXPECT_GT(after_second.memo_hits, 0);
  // The follow-up touched the model strictly less than the stateless run.
  EXPECT_LT(warm.provenance.used_evals, stateless.provenance.used_evals);
  EXPECT_GT(warm.provenance.used_evals, 0);

  // An exact repeat is answered from the session's response memo.
  const ExplainResponse repeat =
      frontend.Submit(what_if, session).Get().ValueOrDie();
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_EQ(PayloadHash(repeat), PayloadHash(warm));
  EXPECT_GT(frontend.sessions().GetStats().reuse_answers, 0);

  ASSERT_TRUE(frontend.CloseSession(session).ok());
  EXPECT_EQ(frontend.Submit(what_if, session).Get().status().code(),
            StatusCode::kNotFound);
}

TEST_F(AsyncFrontEndTest, SessionCounterfactualPoolAnswersFollowUps) {
  ExplainServer server;
  RegisterLoans(&server);
  AsyncFrontEnd frontend(&server);
  const uint64_t session = frontend.OpenSession().ValueOrDie();

  ExplainRequest request = Request(ExplainerKind::kCounterfactual);
  request.use_cache = false;  // Force past the response memo: exercise the
                              // candidate pool itself.
  // Ask for the class the instance does NOT currently have — otherwise the
  // search returns k copies of the trivial zero-mutation point, which
  // dedup collapses to a single pooled candidate.
  request.desired_class = 0;
  const ExplainResponse first =
      frontend.Submit(request, session).Get().ValueOrDie();
  // Pool reuse can only fund k follow-up candidates if the first search
  // produced at least k DISTINCT valid points (the pool dedups by content).
  std::set<uint64_t> distinct;
  for (const auto& cf : first.counterfactuals) {
    if (cf.valid) distinct.insert(ContentHash64(cf.x));
  }
  const int valid = static_cast<int>(distinct.size());

  const auto before = frontend.sessions().GetStats();
  const ExplainResponse second =
      frontend.Submit(request, session).Get().ValueOrDie();
  const auto after = frontend.sessions().GetStats();

  const TierPlan plan = server.policy().Choose(
      ExplainerKind::kCounterfactual, request.fidelity,
      static_cast<int>(instance_.size()), background_.num_rows(),
      request.deadline_ms);
  if (valid >= plan.dice_config.k) {
    // The pool could fund the follow-up: answered by re-validation, far
    // cheaper than a fresh search.
    EXPECT_GT(after.reuse_answers, before.reuse_answers);
    EXPECT_LT(second.provenance.used_evals, first.provenance.used_evals);
    for (const auto& cf : second.counterfactuals) EXPECT_TRUE(cf.valid);
  } else {
    EXPECT_FALSE(second.counterfactuals.empty());
  }
}

TEST_F(AsyncFrontEndTest, SessionTableBoundsAndExpiry) {
  ExplainServer server;
  RegisterLoans(&server);
  AsyncFrontEnd::Config config;
  config.sessions.max_sessions = 2;
  config.sessions.session_ttl_ns = 1000;
  VirtualClock clock;
  config.clock = &clock;
  AsyncFrontEnd frontend(&server, config);

  const uint64_t a = frontend.OpenSession().ValueOrDie();
  const uint64_t b = frontend.OpenSession().ValueOrDie();
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(frontend.OpenSession().status().code(), StatusCode::kOverloaded);

  // Past the TTL both sessions expire, making room again.
  clock.Advance(2000);
  const uint64_t c = frontend.OpenSession().ValueOrDie();
  EXPECT_EQ(c, 3u);
  const auto stats = frontend.sessions().GetStats();
  EXPECT_EQ(stats.expired, 2);
  EXPECT_EQ(stats.active_sessions, 1);
}

TEST_F(AsyncFrontEndTest, CloseDuringInFlightTurnIsSafe) {
  // CloseSession arrives from the caller thread while turns run on the
  // session lane. The session is shared_ptr-held for the duration of a
  // turn, so the close must never free it mid-use: every submitted turn
  // resolves (with the explanation or NotFound, depending on ordering)
  // and nothing crashes or races (TSan covers the latter).
  ExplainServer server;
  RegisterLoans(&server);
  AsyncFrontEnd frontend(&server);
  const uint64_t session = frontend.OpenSession().ValueOrDie();

  std::vector<ResponseFuture> futures;
  for (int i = 0; i < 4; ++i)
    futures.push_back(
        frontend.Submit(Request(ExplainerKind::kKernelShap), session));
  ASSERT_TRUE(frontend.CloseSession(session).ok());

  for (auto& future : futures) {
    const Result<ExplainResponse> result = future.Get();
    if (!result.ok())
      EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  }
  frontend.Drain();
  for (const auto& [tenant, stats] : frontend.admission().Snapshot()) {
    EXPECT_EQ(stats.pending, 0) << tenant;
  }
}

TEST_F(AsyncFrontEndTest, WirePayloadsAreBitIdenticalAcrossThreadCounts) {
  const ExplainerKind kinds[] = {ExplainerKind::kTreeShap,
                                 ExplainerKind::kKernelShap,
                                 ExplainerKind::kSamplingShapley,
                                 ExplainerKind::kLime};
  std::vector<uint64_t> reference;
  for (int threads : {1, 4, 8}) {
    SetNumThreads(threads);
    ExplainServer server;
  RegisterLoans(&server);
    AsyncFrontEnd frontend(&server);
    std::vector<FrameFuture> futures;
    for (ExplainerKind kind : kinds) {
      ExplainRequest request = Request(kind);
      request.instance = train_.Row(1);
      futures.push_back(frontend.SubmitWire(EncodeRequest(request)));
    }
    std::vector<uint64_t> hashes;
    for (auto& future : futures) {
      const WireResponse wire = DecodeResponse(future.Get()).ValueOrDie();
      EXPECT_EQ(PayloadHash(wire.response), wire.payload_hash);
      hashes.push_back(wire.payload_hash);
    }
    if (reference.empty()) {
      reference = hashes;
    } else {
      EXPECT_EQ(hashes, reference) << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace async
}  // namespace serve
}  // namespace xai
