#include "xai/serve/batcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

namespace xai {
namespace serve {
namespace {

BatchJob JobFor(const std::string& model, uint64_t instance_hash,
                bool coalescable = true) {
  BatchJob job;
  job.request.model = model;
  job.key = CacheKey{1, instance_hash, 2};
  job.coalescable = coalescable;
  return job;
}

/// Executor that stamps the instance hash into the response so tests can
/// check which execution a future was served from.
class CountingExecutor {
 public:
  RequestBatcher::Executor AsFn() {
    return [this](const BatchJob& job) -> Result<ExplainResponse> {
      ++calls_;
      ExplainResponse response;
      response.model_fingerprint = job.key.instance_hash;
      return response;
    };
  }
  int calls() const { return calls_.load(); }

 private:
  std::atomic<int> calls_{0};
};

TEST(RequestBatcherTest, ExecutesAndResolvesFutures) {
  CountingExecutor executor;
  RequestBatcher batcher(RequestBatcher::Config{}, executor.AsFn());
  auto future = batcher.Submit(JobFor("m", 42)).ValueOrDie();
  auto result = future.get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().model_fingerprint, 42u);
  EXPECT_EQ(executor.calls(), 1);
}

TEST(RequestBatcherTest, CoalescesIdenticalKeysIntoOneExecution) {
  CountingExecutor executor;
  RequestBatcher::Config config;
  config.max_batch = 8;
  RequestBatcher batcher(config, executor.AsFn());

  // Hold the worker so all submissions land in one batch.
  batcher.Pause();
  std::vector<std::future<Result<ExplainResponse>>> futures;
  for (int i = 0; i < 4; ++i)
    futures.push_back(batcher.Submit(JobFor("m", 7)).ValueOrDie());
  futures.push_back(batcher.Submit(JobFor("m", 9)).ValueOrDie());
  EXPECT_EQ(batcher.queue_depth(), 5);
  batcher.Resume();

  for (int i = 0; i < 4; ++i) {
    auto result = futures[i].get();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.ValueOrDie().model_fingerprint, 7u);
  }
  EXPECT_EQ(futures[4].get().ValueOrDie().model_fingerprint, 9u);
  EXPECT_EQ(executor.calls(), 2) << "4 duplicates + 1 distinct => 2 runs";
}

TEST(RequestBatcherTest, NonCoalescableJobsAlwaysRun) {
  CountingExecutor executor;
  RequestBatcher batcher(RequestBatcher::Config{}, executor.AsFn());
  batcher.Pause();
  std::vector<std::future<Result<ExplainResponse>>> futures;
  for (int i = 0; i < 3; ++i)
    futures.push_back(
        batcher.Submit(JobFor("m", 7, /*coalescable=*/false)).ValueOrDie());
  batcher.Resume();
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());
  EXPECT_EQ(executor.calls(), 3);
}

TEST(RequestBatcherTest, FailsFastWhenQueueFullAndNonBlocking) {
  CountingExecutor executor;
  RequestBatcher::Config config;
  config.max_queue = 2;
  config.block_when_full = false;
  RequestBatcher batcher(config, executor.AsFn());

  batcher.Pause();
  auto f1 = batcher.Submit(JobFor("m", 1));
  auto f2 = batcher.Submit(JobFor("m", 2));
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  auto rejected = batcher.Submit(JobFor("m", 3));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);
  batcher.Resume();
  EXPECT_TRUE(f1.ValueOrDie().get().ok());
  EXPECT_TRUE(f2.ValueOrDie().get().ok());
}

TEST(RequestBatcherTest, BlocksSubmittersUntilSpaceWhenConfigured) {
  CountingExecutor executor;
  RequestBatcher::Config config;
  config.max_queue = 1;
  config.block_when_full = true;
  RequestBatcher batcher(config, executor.AsFn());

  batcher.Pause();
  auto f1 = batcher.Submit(JobFor("m", 1)).ValueOrDie();

  std::atomic<bool> submitted{false};
  std::thread blocked([&] {
    auto f2 = batcher.Submit(JobFor("m", 2)).ValueOrDie();
    submitted = true;
    EXPECT_TRUE(f2.get().ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(submitted) << "second submit must block on the full queue";

  batcher.Resume();
  blocked.join();
  EXPECT_TRUE(submitted);
  EXPECT_TRUE(f1.get().ok());
  EXPECT_EQ(executor.calls(), 2);
}

TEST(RequestBatcherTest, BatchesDrainOneModelAtATime) {
  CountingExecutor executor;
  RequestBatcher batcher(RequestBatcher::Config{}, executor.AsFn());
  batcher.Pause();
  std::vector<std::future<Result<ExplainResponse>>> futures;
  for (uint64_t i = 0; i < 3; ++i)
    futures.push_back(batcher.Submit(JobFor("a", 10 + i)).ValueOrDie());
  for (uint64_t i = 0; i < 3; ++i)
    futures.push_back(batcher.Submit(JobFor("b", 20 + i)).ValueOrDie());
  batcher.Resume();
  batcher.Flush();
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());
  EXPECT_EQ(executor.calls(), 6);
  EXPECT_EQ(batcher.queue_depth(), 0);
}

TEST(RequestBatcherTest, ConcurrentSubmittersAllGetAnswers) {
  CountingExecutor executor;
  RequestBatcher::Config config;
  config.max_batch = 4;
  RequestBatcher batcher(config, executor.AsFn());

  constexpr int kClients = 8;
  constexpr int kPerClient = 16;
  std::vector<std::thread> clients;
  std::atomic<int> answered{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        auto future =
            batcher.Submit(JobFor("m", static_cast<uint64_t>(c * 100 + i)))
                .ValueOrDie();
        auto result = future.get();
        if (result.ok() &&
            result.ValueOrDie().model_fingerprint ==
                static_cast<uint64_t>(c * 100 + i))
          ++answered;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(answered, kClients * kPerClient);
}

TEST(RequestBatcherTest, SubmitCallbackDeliversOnWorker) {
  CountingExecutor executor;
  RequestBatcher batcher(RequestBatcher::Config{}, executor.AsFn());
  std::promise<Result<ExplainResponse>> delivered;
  auto future = delivered.get_future();
  ASSERT_TRUE(batcher
                  .SubmitCallback(JobFor("m", 42),
                                  [&](Result<ExplainResponse> result) {
                                    delivered.set_value(std::move(result));
                                  })
                  .ok());
  auto result = future.get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().model_fingerprint, 42u);
}

TEST(RequestBatcherTest, SubmitCallbackNeverBlocksOnFullQueue) {
  CountingExecutor executor;
  RequestBatcher::Config config;
  config.max_queue = 1;
  config.block_when_full = true;  // SubmitCallback must ignore this.
  RequestBatcher batcher(config, executor.AsFn());

  batcher.Pause();
  ASSERT_TRUE(
      batcher.SubmitCallback(JobFor("m", 1), [](Result<ExplainResponse>) {})
          .ok());
  std::atomic<bool> ran{false};
  Status rejected = batcher.SubmitCallback(
      JobFor("m", 2), [&](Result<ExplainResponse>) { ran = true; });
  EXPECT_EQ(rejected.code(), StatusCode::kOverloaded);
  batcher.Resume();
  batcher.Flush();
  EXPECT_FALSE(ran) << "rejected callback must never run";
  EXPECT_EQ(executor.calls(), 1);
}

TEST(RequestBatcherTest, ShutdownFailsQueuedCallbacks) {
  std::promise<Result<ExplainResponse>> delivered;
  auto future = delivered.get_future();
  {
    CountingExecutor executor;
    RequestBatcher batcher(RequestBatcher::Config{}, executor.AsFn());
    batcher.Pause();
    ASSERT_TRUE(batcher
                    .SubmitCallback(JobFor("m", 1),
                                    [&](Result<ExplainResponse> result) {
                                      delivered.set_value(std::move(result));
                                    })
                    .ok());
  }
  auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(RequestBatcherTest, ShutdownFailsQueuedJobs) {
  CountingExecutor executor;
  std::future<Result<ExplainResponse>> orphan;
  {
    RequestBatcher batcher(RequestBatcher::Config{}, executor.AsFn());
    batcher.Pause();
    orphan = batcher.Submit(JobFor("m", 1)).ValueOrDie();
  }
  auto result = orphan.get();
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace serve
}  // namespace xai
