#include <gtest/gtest.h>

#include "xai/relational/expression.h"
#include "xai/relational/operators.h"
#include "xai/relational/provenance.h"
#include "xai/relational/relation.h"
#include "xai/relational/value.h"

namespace xai::rel {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).type(), Value::Type::kInt);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
  EXPECT_EQ(Value::Int(7).AsDouble(), 7.0);
  EXPECT_EQ(Value::Double(2.6).AsInt(), 3);  // Rounds.
}

TEST(ValueTest, EqualityAcrossNumericTypes) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_NE(Value::Int(2), Value::Double(2.5));
  EXPECT_NE(Value::Int(2), Value::Str("2"));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int(0));
}

TEST(ValueTest, OrderingAndToString) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Str("x").ToString(), "x");
}

TEST(ProvenanceTest, SimplificationRules) {
  auto x = ProvExpr::Base(1);
  EXPECT_EQ(ProvExpr::Plus(ProvExpr::Zero(), x).get(), x.get());
  EXPECT_EQ(ProvExpr::Times(ProvExpr::One(), x).get(), x.get());
  EXPECT_EQ(ProvExpr::Times(ProvExpr::Zero(), x)->kind(),
            ProvExpr::Kind::kZero);
}

TEST(ProvenanceTest, BooleanEvaluation) {
  // t1*t2 + t3.
  auto expr = ProvExpr::Plus(
      ProvExpr::Times(ProvExpr::Base(1), ProvExpr::Base(2)),
      ProvExpr::Base(3));
  auto with = [&](std::set<int> present) {
    return expr->EvalBool([&](int id) { return present.count(id) > 0; });
  };
  EXPECT_TRUE(with({1, 2}));
  EXPECT_TRUE(with({3}));
  EXPECT_FALSE(with({1}));
  EXPECT_FALSE(with({}));
}

TEST(ProvenanceTest, CountingSemiring) {
  // (t1 + t2) * t3 with multiplicities 2, 3, 4 = (2+3)*4 = 20.
  auto expr = ProvExpr::Times(
      ProvExpr::Plus(ProvExpr::Base(1), ProvExpr::Base(2)),
      ProvExpr::Base(3));
  std::map<int, int64_t> mult = {{1, 2}, {2, 3}, {3, 4}};
  EXPECT_EQ(expr->EvalCount([&](int id) { return mult[id]; }), 20);
}

TEST(ProvenanceTest, NumericSemiringMaxTimes) {
  // Viterbi-like: plus = max, times = product.
  auto expr = ProvExpr::Plus(
      ProvExpr::Times(ProvExpr::Base(1), ProvExpr::Base(2)),
      ProvExpr::Base(3));
  std::map<int, double> prob = {{1, 0.5}, {2, 0.8}, {3, 0.3}};
  double v = expr->EvalNumeric(
      [&](int id) { return prob[id]; },
      [](double a, double b) { return std::max(a, b); },
      [](double a, double b) { return a * b; }, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(v, 0.4);  // max(0.5*0.8, 0.3).
}

TEST(ProvenanceTest, LineageCollectsAllVariables) {
  auto expr = ProvExpr::Plus(
      ProvExpr::Times(ProvExpr::Base(1), ProvExpr::Base(2)),
      ProvExpr::Base(3));
  EXPECT_EQ(expr->Lineage(), (std::set<int>{1, 2, 3}));
}

TEST(ProvenanceTest, WhyProvenanceMinimalWitnesses) {
  auto expr = ProvExpr::Plus(
      ProvExpr::Times(ProvExpr::Base(1), ProvExpr::Base(2)),
      ProvExpr::Base(3));
  std::set<std::set<int>> why = expr->WhyProvenance();
  EXPECT_EQ(why, (std::set<std::set<int>>{{1, 2}, {3}}));
}

TEST(ProvenanceTest, WhyProvenanceDropsDominatedWitness) {
  // t1 + t1*t2: witness {1,2} is dominated by {1}.
  auto expr = ProvExpr::Plus(
      ProvExpr::Base(1),
      ProvExpr::Times(ProvExpr::Base(1), ProvExpr::Base(2)));
  EXPECT_EQ(expr->WhyProvenance(), (std::set<std::set<int>>{{1}}));
}

TEST(ProvenanceTest, ExactProbabilityIndependentTuples) {
  // P(t1*t2 + t3) with p1=0.5, p2=0.5, p3=0.2:
  // = P(t3) + P(t1 t2) - P(t1 t2 t3) = 0.2 + 0.25 - 0.05 = 0.4.
  auto expr = ProvExpr::Plus(
      ProvExpr::Times(ProvExpr::Base(1), ProvExpr::Base(2)),
      ProvExpr::Base(3));
  auto prob = [](int id) { return id == 3 ? 0.2 : 0.5; };
  EXPECT_NEAR(expr->ProbabilityExact(prob), 0.4, 1e-12);
}

TEST(ProvenanceTest, ProbabilityOfCertainAndImpossible) {
  EXPECT_DOUBLE_EQ(ProvExpr::One()->ProbabilityExact([](int) { return 0.5; }),
                   1.0);
  EXPECT_DOUBLE_EQ(
      ProvExpr::Zero()->ProbabilityExact([](int) { return 0.5; }), 0.0);
  auto base = ProvExpr::Base(7);
  EXPECT_DOUBLE_EQ(base->ProbabilityExact([](int) { return 0.3; }), 0.3);
}

TEST(ProvenanceTest, MonteCarloMatchesExact) {
  auto expr = ProvExpr::Plus(
      ProvExpr::Times(ProvExpr::Base(1), ProvExpr::Base(2)),
      ProvExpr::Times(ProvExpr::Base(2), ProvExpr::Base(3)));
  auto prob = [](int id) { return 0.1 * id + 0.2; };
  double exact = expr->ProbabilityExact(prob);
  double mc = expr->ProbabilityMonteCarlo(prob, 200000, 42);
  EXPECT_NEAR(mc, exact, 0.01);
}

TEST(ProvenanceTest, SharedVariableProbabilityNotNaiveProduct) {
  // t1*t2 + t1*t3 with all p=0.5: correct P = p1 * (1-(1-p2)(1-p3)) =
  // 0.5 * 0.75 = 0.375 (naive independent-monomial math would give
  // 0.25+0.25-0.0625 = 0.4375).
  auto expr = ProvExpr::Plus(
      ProvExpr::Times(ProvExpr::Base(1), ProvExpr::Base(2)),
      ProvExpr::Times(ProvExpr::Base(1), ProvExpr::Base(3)));
  EXPECT_NEAR(expr->ProbabilityExact([](int) { return 0.5; }), 0.375,
              1e-12);
}

TEST(ProvenanceTest, PolynomialRendering) {
  auto expr = ProvExpr::Times(
      ProvExpr::Plus(ProvExpr::Base(1), ProvExpr::Base(2)),
      ProvExpr::Base(3));
  EXPECT_EQ(expr->ToString(), "(t1 + t2)*t3");
}

// A small employee/department database.
struct TestDb {
  Relation employees{"emp", {"name", "dept", "salary"}};
  Relation departments{"dept", {"dname", "budget"}};
  TupleIdAllocator ids;

  TestDb() {
    auto add_emp = [&](const std::string& n, const std::string& d,
                       int64_t s) {
      ASSERT_TRUE(employees
                      .AppendBase({Value::Str(n), Value::Str(d),
                                   Value::Int(s)},
                                  ids.Next())
                      .ok());
    };
    auto add_dept = [&](const std::string& d, int64_t b) {
      ASSERT_TRUE(departments
                      .AppendBase({Value::Str(d), Value::Int(b)},
                                  ids.Next())
                      .ok());
    };
    add_emp("ann", "eng", 120);
    add_emp("bob", "eng", 100);
    add_emp("cat", "sales", 90);
    add_emp("dan", "sales", 80);
    add_dept("eng", 1000);
    add_dept("sales", 500);
  }
};

TEST(OperatorsTest, SelectFiltersAndKeepsAnnotations) {
  TestDb db;
  auto rich = Select(db.employees,
                     Expr::Gt(Expr::Column(2), Expr::Const(Value::Int(95))))
                  .ValueOrDie();
  EXPECT_EQ(rich.num_tuples(), 2);
  EXPECT_EQ(rich.tuple(0)[0].AsString(), "ann");
  EXPECT_EQ(rich.annotation(0)->kind(), ProvExpr::Kind::kBase);
}

TEST(OperatorsTest, ProjectBagKeepsDuplicates) {
  TestDb db;
  auto depts = Project(db.employees, {1}, /*distinct=*/false).ValueOrDie();
  EXPECT_EQ(depts.num_tuples(), 4);
}

TEST(OperatorsTest, ProjectDistinctMergesWithPlus) {
  TestDb db;
  auto depts = Project(db.employees, {1}, /*distinct=*/true).ValueOrDie();
  EXPECT_EQ(depts.num_tuples(), 2);
  // "eng" appears via two employees: its annotation is a Plus.
  EXPECT_EQ(depts.annotation(0)->kind(), ProvExpr::Kind::kPlus);
  // Counting semiring recovers the duplicate count.
  EXPECT_EQ(depts.annotation(0)->EvalCount([](int) { return 1; }), 2);
}

TEST(OperatorsTest, EquiJoinMultipliesAnnotations) {
  TestDb db;
  auto joined = EquiJoin(db.employees, db.departments, 1, 0).ValueOrDie();
  EXPECT_EQ(joined.num_tuples(), 4);  // Every employee matches one dept.
  EXPECT_EQ(joined.num_columns(), 5);
  for (int i = 0; i < joined.num_tuples(); ++i)
    EXPECT_EQ(joined.annotation(i)->kind(), ProvExpr::Kind::kTimes);
}

TEST(OperatorsTest, JoinProducesCorrectPairs) {
  TestDb db;
  auto joined = EquiJoin(db.employees, db.departments, 1, 0).ValueOrDie();
  for (int i = 0; i < joined.num_tuples(); ++i)
    EXPECT_EQ(joined.tuple(i)[1].AsString(), joined.tuple(i)[3].AsString());
}

TEST(OperatorsTest, UnionConcatenates) {
  TestDb db;
  auto a = Select(db.employees,
                  Expr::Eq(Expr::Column(1), Expr::Const(Value::Str("eng"))))
               .ValueOrDie();
  auto b = Select(db.employees, Expr::Eq(Expr::Column(1),
                                         Expr::Const(Value::Str("sales"))))
               .ValueOrDie();
  auto u = Union(a, b).ValueOrDie();
  EXPECT_EQ(u.num_tuples(), 4);
  EXPECT_FALSE(Union(a, db.departments).ok());  // Arity mismatch.
}

TEST(OperatorsTest, GroupByCountAndSum) {
  TestDb db;
  auto counts =
      GroupByAggregate(db.employees, {1}, AggFn::kCount, -1, "cnt")
          .ValueOrDie();
  EXPECT_EQ(counts.num_tuples(), 2);
  EXPECT_EQ(counts.tuple(0)[1].AsInt(), 2);

  auto sums = GroupByAggregate(db.employees, {1}, AggFn::kSum, 2, "total")
                  .ValueOrDie();
  // eng: 120+100, sales: 90+80 (order of groups = first appearance).
  EXPECT_DOUBLE_EQ(sums.tuple(0)[1].AsDouble(), 220);
  EXPECT_DOUBLE_EQ(sums.tuple(1)[1].AsDouble(), 170);
}

TEST(OperatorsTest, GroupByMinMaxAvg) {
  TestDb db;
  auto mx = GroupByAggregate(db.employees, {1}, AggFn::kMax, 2, "mx")
                .ValueOrDie();
  EXPECT_DOUBLE_EQ(mx.tuple(0)[1].AsDouble(), 120);
  auto mn = GroupByAggregate(db.employees, {1}, AggFn::kMin, 2, "mn")
                .ValueOrDie();
  EXPECT_DOUBLE_EQ(mn.tuple(1)[1].AsDouble(), 80);
  auto avg = GroupByAggregate(db.employees, {1}, AggFn::kAvg, 2, "avg")
                 .ValueOrDie();
  EXPECT_DOUBLE_EQ(avg.tuple(0)[1].AsDouble(), 110);
}

TEST(OperatorsTest, GroupByLineageCoversGroupMembers) {
  TestDb db;
  auto counts =
      GroupByAggregate(db.employees, {1}, AggFn::kCount, -1, "cnt")
          .ValueOrDie();
  // eng group: employees 0 and 1.
  EXPECT_EQ(counts.annotation(0)->Lineage(), (std::set<int>{0, 1}));
}

TEST(OperatorsTest, ComposedQueryProvenance) {
  // SELECT dname FROM emp JOIN dept ON emp.dept = dept.dname
  // WHERE salary > 95 — classic SPJ with polynomial provenance.
  TestDb db;
  auto joined = EquiJoin(db.employees, db.departments, 1, 0).ValueOrDie();
  auto rich = Select(joined, Expr::Gt(Expr::Column(2),
                                      Expr::Const(Value::Int(95))))
                  .ValueOrDie();
  auto names = Project(rich, {3}, /*distinct=*/true).ValueOrDie();
  ASSERT_EQ(names.num_tuples(), 1);
  EXPECT_EQ(names.tuple(0)[0].AsString(), "eng");
  // Provenance: ann*eng_dept + bob*eng_dept = t0*t4 + t1*t4.
  std::set<int> lineage = names.annotation(0)->Lineage();
  EXPECT_EQ(lineage, (std::set<int>{0, 1, 4}));
  std::set<std::set<int>> why = names.annotation(0)->WhyProvenance();
  EXPECT_EQ(why, (std::set<std::set<int>>{{0, 4}, {1, 4}}));
}

TEST(RelationTest, ColumnIndexAndToString) {
  TestDb db;
  EXPECT_EQ(db.employees.ColumnIndex("salary"), 2);
  EXPECT_EQ(db.employees.ColumnIndex("zzz"), -1);
  std::string text = db.employees.ToString(true);
  EXPECT_NE(text.find("ann"), std::string::npos);
  EXPECT_NE(text.find("@ t0"), std::string::npos);
}

TEST(RelationTest, ArityEnforced) {
  Relation r("r", {"a", "b"});
  EXPECT_FALSE(r.Append({Value::Int(1)}, ProvExpr::One()).ok());
}

TEST(OperatorsTest, EquiJoinNullKeysMatchAndDuplicatesFanOut) {
  // NULL == NULL is true under Value equality, so NULL keys *join*;
  // duplicate keys fan out a-major with b rows in ascending order.
  Relation a("a", {"k", "tag"});
  Relation b("b", {"k"});
  TupleIdAllocator ids;
  ASSERT_TRUE(a.AppendBase({Value::Int(1), Value::Str("a0")}, ids.Next()).ok());
  ASSERT_TRUE(
      a.AppendBase({Value::Null(), Value::Str("a1")}, ids.Next()).ok());
  ASSERT_TRUE(a.AppendBase({Value::Int(2), Value::Str("a2")}, ids.Next()).ok());
  ASSERT_TRUE(a.AppendBase({Value::Int(1), Value::Str("a3")}, ids.Next()).ok());
  ASSERT_TRUE(b.AppendBase({Value::Int(1)}, ids.Next()).ok());   // t4
  ASSERT_TRUE(b.AppendBase({Value::Null()}, ids.Next()).ok());   // t5
  ASSERT_TRUE(b.AppendBase({Value::Int(1)}, ids.Next()).ok());   // t6
  auto j = EquiJoin(a, b, 0, 0).ValueOrDie();
  // a0 x {t4,t6}, a1 x {t5}, a2 x {}, a3 x {t4,t6}.
  ASSERT_EQ(j.num_tuples(), 5);
  EXPECT_EQ(j.tuple(0)[1].AsString(), "a0");
  EXPECT_EQ(j.tuple(1)[1].AsString(), "a0");
  EXPECT_EQ(j.tuple(2)[1].AsString(), "a1");
  EXPECT_TRUE(j.tuple(2)[0].is_null());
  EXPECT_TRUE(j.tuple(2)[2].is_null());
  EXPECT_EQ(j.annotation(2)->Lineage(), (std::set<int>{1, 5}));
  EXPECT_EQ(j.tuple(3)[1].AsString(), "a3");
  EXPECT_EQ(j.annotation(4)->Lineage(), (std::set<int>{3, 6}));
}

TEST(OperatorsTest, GroupByAggregateOnEmptyInput) {
  Relation empty("e", {"g", "v"});
  for (AggFn fn :
       {AggFn::kCount, AggFn::kSum, AggFn::kAvg, AggFn::kMin, AggFn::kMax}) {
    auto out = GroupByAggregate(empty, {0}, fn, 1, "agg").ValueOrDie();
    EXPECT_EQ(out.num_tuples(), 0);
    ASSERT_EQ(out.num_columns(), 2);
    EXPECT_EQ(out.columns()[1], "agg");
  }
}

TEST(OperatorsTest, AggregatesOverAllNullColumn) {
  // NULL coerces to 0.0 under Value::AsDouble, so aggregates over an
  // all-NULL column see zeros: count still counts rows, avg/min are 0.
  Relation r("n", {"g", "v"});
  TupleIdAllocator ids;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        r.AppendBase({Value::Str("g"), Value::Null()}, ids.Next()).ok());
  }
  auto cnt = GroupByAggregate(r, {0}, AggFn::kCount, -1, "c").ValueOrDie();
  ASSERT_EQ(cnt.num_tuples(), 1);
  EXPECT_EQ(cnt.tuple(0)[1].AsInt(), 3);
  auto avg = GroupByAggregate(r, {0}, AggFn::kAvg, 1, "a").ValueOrDie();
  EXPECT_DOUBLE_EQ(avg.tuple(0)[1].AsDouble(), 0.0);
  auto mn = GroupByAggregate(r, {0}, AggFn::kMin, 1, "m").ValueOrDie();
  EXPECT_DOUBLE_EQ(mn.tuple(0)[1].AsDouble(), 0.0);
}

TEST(OperatorsTest, ProjectDistinctAddsAnnotationsAcrossRenderings) {
  // INT 2 and DOUBLE 2.0 render identically ("2"), so distinct merges
  // them and their provenance combines with +; the merged tuple keeps the
  // first appearance's value.
  Relation r("m", {"x"});
  TupleIdAllocator ids;
  ASSERT_TRUE(r.AppendBase({Value::Int(2)}, ids.Next()).ok());
  ASSERT_TRUE(r.AppendBase({Value::Double(2.0)}, ids.Next()).ok());
  ASSERT_TRUE(r.AppendBase({Value::Int(3)}, ids.Next()).ok());
  auto d = Project(r, {0}, /*distinct=*/true).ValueOrDie();
  ASSERT_EQ(d.num_tuples(), 2);
  EXPECT_EQ(d.tuple(0)[0].type(), Value::Type::kInt);
  EXPECT_EQ(d.annotation(0)->kind(), ProvExpr::Kind::kPlus);
  EXPECT_EQ(d.annotation(0)->EvalCount([](int) { return 1; }), 2);
  EXPECT_EQ(d.annotation(0)->Lineage(), (std::set<int>{0, 1}));
  EXPECT_EQ(d.annotation(1)->kind(), ProvExpr::Kind::kBase);
}

TEST(ExpressionTest, ArithmeticAndLogic) {
  Tuple t = {Value::Int(10), Value::Int(3)};
  auto sum = Expr::Add(Expr::Column(0), Expr::Column(1));
  EXPECT_DOUBLE_EQ(sum->Eval(t).AsDouble(), 13.0);
  auto logic = Expr::And(
      Expr::Ge(Expr::Column(0), Expr::Const(Value::Int(10))),
      Expr::Not(Expr::Eq(Expr::Column(1), Expr::Const(Value::Int(4)))));
  EXPECT_TRUE(logic->EvalBool(t));
  auto mul = Expr::Mul(Expr::Sub(Expr::Column(0), Expr::Column(1)),
                       Expr::Const(Value::Double(2.0)));
  EXPECT_DOUBLE_EQ(mul->Eval(t).AsDouble(), 14.0);
}

}  // namespace
}  // namespace xai::rel
