#include "xai/serve/async/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xai/model/serialization.h"
#include "xai/serve/request.h"

namespace xai {
namespace serve {
namespace async {
namespace {

constexpr ExplainerKind kAllKinds[] = {
    ExplainerKind::kTreeShap,       ExplainerKind::kKernelShap,
    ExplainerKind::kSamplingShapley, ExplainerKind::kExactShapley,
    ExplainerKind::kLime,           ExplainerKind::kAnchors,
    ExplainerKind::kCounterfactual,
};

ExplainRequest MakeRequest(ExplainerKind kind) {
  ExplainRequest request;
  request.model = "loans";
  request.instance = {1.5, -2.25, 0.0, 1e300, -0.0, 42.0};
  request.kind = kind;
  request.fidelity = FidelityTier::kStandard;
  request.deadline_ms = 12.5;
  request.seed = 9001;
  request.allow_degradation = false;
  request.use_cache = true;
  request.desired_class = 0;
  request.tenant = "acme";
  request.trace.trace_id = 0xDEADBEEFCAFEF00Dull;
  return request;
}

/// A synthetic response with every payload field exercised for `kind`.
ExplainResponse MakeResponse(ExplainerKind kind) {
  ExplainResponse response;
  response.kind = kind;
  response.served_tier = FidelityTier::kReduced;
  response.degraded = true;
  response.cache_hit = true;
  response.deadline_met = false;
  response.model_fingerprint = 0x1234567890ABCDEFull;
  response.planned_evals = 1 << 20;
  response.latency_ms = 3.75;
  if (kind == ExplainerKind::kAnchors) {
    response.anchor.features = {2, 0, 5};
    response.anchor.precision = 0.97;
    response.anchor.precision_lb = 0.91;
    response.anchor.coverage = 0.25;
    response.anchor.samples_used = 4200;
    response.anchor.description = {"28 < age <= 45", "purpose = car"};
  } else if (kind == ExplainerKind::kCounterfactual) {
    Counterfactual cf;
    cf.x = {0.5, 1.5, -3.0};
    cf.prediction = 0.8;
    cf.valid = true;
    cf.proximity = 1.25;
    cf.sparsity = 2;
    cf.plausibility_distance = 0.4;
    response.counterfactuals = {cf, cf};
    response.counterfactuals[1].valid = false;
    response.counterfactuals[1].x = {9.0};
  } else {
    response.attribution.attributions = {0.25, -1.5, 3.0, 0.0};
    response.attribution.base_value = 0.5;
    response.attribution.prediction = 2.25;
    response.attribution.feature_names = {"age", "income", "debt", "term"};
  }
  return response;
}

TEST(WireRequestTest, RoundTripsEveryKind) {
  for (ExplainerKind kind : kAllKinds) {
    const ExplainRequest request = MakeRequest(kind);
    const std::string frame = EncodeRequest(request, /*session_id=*/77);
    ASSERT_EQ(PeekFrameType(frame).ValueOrDie(), FrameType::kRequest);

    uint64_t session_id = 0;
    const ExplainRequest decoded =
        DecodeRequest(frame, &session_id).ValueOrDie();
    EXPECT_EQ(session_id, 77u);
    EXPECT_EQ(decoded.model, request.model);
    EXPECT_EQ(decoded.instance, request.instance);
    EXPECT_EQ(decoded.kind, request.kind);
    EXPECT_EQ(decoded.fidelity, request.fidelity);
    EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
    EXPECT_EQ(decoded.seed, request.seed);
    EXPECT_EQ(decoded.allow_degradation, request.allow_degradation);
    EXPECT_EQ(decoded.use_cache, request.use_cache);
    EXPECT_EQ(decoded.desired_class, request.desired_class);
    EXPECT_EQ(decoded.tenant, request.tenant);
    EXPECT_EQ(decoded.trace.trace_id, request.trace.trace_id);
  }
}

TEST(WireRequestTest, HeaderAgreesWithFullDecodeWithoutTouchingInstance) {
  const ExplainRequest request = MakeRequest(ExplainerKind::kKernelShap);
  const std::string frame = EncodeRequest(request);
  const WireRequestHeader header = DecodeRequestHeader(frame).ValueOrDie();

  EXPECT_EQ(header.model, request.model);
  EXPECT_EQ(header.tenant, request.tenant);
  EXPECT_EQ(header.kind, request.kind);
  EXPECT_EQ(header.fidelity, request.fidelity);
  EXPECT_EQ(header.session_id, 0u);
  EXPECT_EQ(header.instance_hash, ContentHash64(request.instance));
  EXPECT_EQ(header.instance_count, request.instance.size());
  // The instance occupies exactly the frame's tail.
  EXPECT_EQ(header.instance_offset + header.instance_count * 8, frame.size());

  const ExplainRequest body = DecodeRequestBody(frame, header).ValueOrDie();
  EXPECT_EQ(body.instance, request.instance);
}

TEST(WireRequestTest, InstanceHashMismatchIsRejected) {
  const ExplainRequest request = MakeRequest(ExplainerKind::kLime);
  std::string frame = EncodeRequest(request);
  const WireRequestHeader header = DecodeRequestHeader(frame).ValueOrDie();
  // Corrupt one instance byte: the header (and its hash) still parse, but
  // materialization must refuse — this is the cache-poisoning gate.
  frame[header.instance_offset + 3] ^= 0x40;
  ASSERT_TRUE(DecodeRequestHeader(frame).ok());
  const auto body = DecodeRequestBody(frame, header);
  ASSERT_FALSE(body.ok());
  EXPECT_EQ(body.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireRequestTest, TruncationAtEveryLengthIsRejected) {
  const std::string frame = EncodeRequest(MakeRequest(ExplainerKind::kLime));
  for (size_t len = 0; len < frame.size(); ++len) {
    const std::string prefix = frame.substr(0, len);
    EXPECT_FALSE(DecodeRequest(prefix).ok()) << "prefix length " << len;
  }
  EXPECT_TRUE(DecodeRequest(frame).ok());
}

TEST(WireRequestTest, BadMagicVersionAndTypeAreRejected) {
  const std::string good = EncodeRequest(MakeRequest(ExplainerKind::kLime));

  std::string bad_magic = good;
  bad_magic[0] = 'Y';
  EXPECT_FALSE(PeekFrameType(bad_magic).ok());
  EXPECT_FALSE(DecodeRequest(bad_magic).ok());

  std::string bad_version = good;
  bad_version[4] = static_cast<char>(kWireVersion + 1);
  EXPECT_FALSE(PeekFrameType(bad_version).ok());
  EXPECT_FALSE(DecodeRequest(bad_version).ok());

  std::string bad_type = good;
  bad_type[5] = 9;
  EXPECT_FALSE(PeekFrameType(bad_type).ok());
  EXPECT_FALSE(DecodeRequest(bad_type).ok());

  // A response decoder refuses a (valid) request frame: type mismatch.
  EXPECT_FALSE(DecodeResponse(good).ok());
  EXPECT_FALSE(DecodeError(good).ok());
}

TEST(WireRequestTest, UnknownEnumBytesAreRejected) {
  std::string frame = EncodeRequest(MakeRequest(ExplainerKind::kLime));
  // Byte layout after the 6-byte header: flags, kind, fidelity.
  std::string bad_kind = frame;
  bad_kind[7] = 99;
  EXPECT_FALSE(DecodeRequestHeader(bad_kind).ok());
  std::string bad_tier = frame;
  bad_tier[8] = static_cast<char>(200);
  EXPECT_FALSE(DecodeRequestHeader(bad_tier).ok());
}

TEST(WireResponseTest, RoundTripsEveryKindUnTorn) {
  for (ExplainerKind kind : kAllKinds) {
    const ExplainResponse response = MakeResponse(kind);
    const std::string frame = EncodeResponse(response);
    ASSERT_EQ(PeekFrameType(frame).ValueOrDie(), FrameType::kResponse);

    const WireResponse decoded = DecodeResponse(frame).ValueOrDie();
    // The torn-response check the bench runs on every response: the
    // embedded hash must match a recomputation over the decoded payload,
    // and both must match the sender's payload.
    EXPECT_EQ(decoded.payload_hash, PayloadHash(response));
    EXPECT_EQ(PayloadHash(decoded.response), PayloadHash(response));

    EXPECT_EQ(decoded.response.kind, response.kind);
    EXPECT_EQ(decoded.response.served_tier, response.served_tier);
    EXPECT_EQ(decoded.response.degraded, response.degraded);
    EXPECT_EQ(decoded.response.cache_hit, response.cache_hit);
    EXPECT_EQ(decoded.response.deadline_met, response.deadline_met);
    EXPECT_EQ(decoded.response.model_fingerprint,
              response.model_fingerprint);
    EXPECT_EQ(decoded.response.planned_evals, response.planned_evals);
    EXPECT_EQ(decoded.response.latency_ms, response.latency_ms);
    if (kind == ExplainerKind::kAnchors) {
      EXPECT_EQ(decoded.response.anchor.features, response.anchor.features);
      EXPECT_EQ(decoded.response.anchor.description,
                response.anchor.description);
      EXPECT_EQ(decoded.response.anchor.samples_used,
                response.anchor.samples_used);
    } else if (kind == ExplainerKind::kCounterfactual) {
      ASSERT_EQ(decoded.response.counterfactuals.size(),
                response.counterfactuals.size());
      EXPECT_EQ(decoded.response.counterfactuals[0].x,
                response.counterfactuals[0].x);
      EXPECT_EQ(decoded.response.counterfactuals[1].valid,
                response.counterfactuals[1].valid);
    } else {
      EXPECT_EQ(decoded.response.attribution.attributions,
                response.attribution.attributions);
      EXPECT_EQ(decoded.response.attribution.feature_names,
                response.attribution.feature_names);
    }
  }
}

TEST(WireResponseTest, PayloadCorruptionIsDetectedByTheEmbeddedHash) {
  const ExplainResponse response = MakeResponse(ExplainerKind::kKernelShap);
  std::string frame = EncodeResponse(response);
  // Flip a bit inside base_value: first payload field after the fixed
  // 41-byte prefix (6 header + kind/tier/flags + fingerprint + planned +
  // latency + hash).
  frame[45] ^= 0x01;
  const auto decoded = DecodeResponse(frame);
  // The frame still parses structurally...
  ASSERT_TRUE(decoded.ok());
  // ...but recomputing the payload hash exposes the tear.
  EXPECT_NE(PayloadHash(decoded->response), decoded->payload_hash);
}

TEST(WireResponseTest, TruncationAtEveryLengthIsRejected) {
  for (ExplainerKind kind :
       {ExplainerKind::kKernelShap, ExplainerKind::kAnchors,
        ExplainerKind::kCounterfactual}) {
    const std::string frame = EncodeResponse(MakeResponse(kind));
    for (size_t len = 0; len < frame.size(); ++len) {
      EXPECT_FALSE(DecodeResponse(frame.substr(0, len)).ok())
          << ExplainerKindName(kind) << " prefix length " << len;
    }
    EXPECT_TRUE(DecodeResponse(frame).ok());
  }
}

TEST(WireResponseTest, LyingElementCountIsRejectedWithoutAllocating) {
  // Attribution count u32 lives at offset 57 (41-byte fixed prefix +
  // base_value + prediction). Claim 0xFFFFFFFF doubles in a ~100-byte
  // frame: the decoder must reject on the frame's actual size before
  // sizing any allocation (a ~32 GiB resize is an OOM DoS vector).
  std::string frame = EncodeResponse(MakeResponse(ExplainerKind::kKernelShap));
  for (size_t i = 0; i < 4; ++i) frame[57 + i] = static_cast<char>(0xFF);
  const auto decoded = DecodeResponse(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);

  // Same for a counterfactual's x vector: cf count u16 at 41, then
  // prediction(8) + valid(1) + proximity(8) + sparsity(4) +
  // plausibility(8) puts the first x count at offset 72.
  std::string cf_frame =
      EncodeResponse(MakeResponse(ExplainerKind::kCounterfactual));
  for (size_t i = 0; i < 4; ++i) cf_frame[72 + i] = static_cast<char>(0xFF);
  const auto cf_decoded = DecodeResponse(cf_frame);
  ASSERT_FALSE(cf_decoded.ok());
  EXPECT_EQ(cf_decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireErrorTest, RoundTripsEveryStatusCode) {
  const Status statuses[] = {
      Status::InvalidArgument("bad frame"),
      Status::NotFound("no such model"),
      Status::OutOfRange("deadline cannot fund tier"),
      Status::Internal("executor failure"),
      Status::Overloaded("shed (rate_limited) for tenant 'acme'"),
  };
  for (const Status& status : statuses) {
    const std::string frame = EncodeError(status, 0xABCDull);
    ASSERT_EQ(PeekFrameType(frame).ValueOrDie(), FrameType::kError);
    const WireError error = DecodeError(frame).ValueOrDie();
    EXPECT_EQ(error.code, status.code());
    EXPECT_EQ(error.message, status.message());
    EXPECT_EQ(error.trace_id, 0xABCDull);
  }
}

TEST(WireErrorTest, UnknownCodeAndTruncationAreRejected) {
  std::string frame = EncodeError(Status::Internal("x"), 1);
  std::string bad_code = frame;
  bad_code[6] = 0;  // kOk is not a valid error code on the wire.
  EXPECT_FALSE(DecodeError(bad_code).ok());
  bad_code[6] = static_cast<char>(250);
  EXPECT_FALSE(DecodeError(bad_code).ok());
  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(DecodeError(frame.substr(0, len)).ok());
  }
}

TEST(WireErrorTest, OversizeMessageIsTruncatedNotFatal) {
  // Error text embeds client-controlled strings (tenant/model names up to
  // 64 KiB arrive legally off the wire), so EncodeError must truncate to
  // the u16 prefix rather than CHECK-abort the server.
  const std::string huge(0x18000, 'm');
  const std::string frame = EncodeError(Status::Overloaded(huge), 7);
  const WireError error = DecodeError(frame).ValueOrDie();
  EXPECT_EQ(error.code, StatusCode::kOverloaded);
  EXPECT_EQ(error.trace_id, 7u);
  EXPECT_EQ(error.message.size(), 0xFFFFu);
  EXPECT_EQ(error.message, huge.substr(0, 0xFFFF));
}

TEST(WireDeathTest, OversizeTenantAborts) {
  ExplainRequest request = MakeRequest(ExplainerKind::kLime);
  request.tenant.assign(0x10000, 't');
  EXPECT_DEATH(EncodeRequest(request), "u16 length prefix");
}

}  // namespace
}  // namespace async
}  // namespace serve
}  // namespace xai
