#include "xai/core/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "xai/core/rng.h"

namespace xai {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m = {{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(2, 1), 6);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  Matrix d = Matrix::Diagonal({2, 3});
  EXPECT_DOUBLE_EQ(d(0, 0), 2);
  EXPECT_DOUBLE_EQ(d(1, 1), 3);
}

TEST(MatrixTest, RowColAccessors) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.Row(1), (Vector{4, 5, 6}));
  EXPECT_EQ(m.Col(2), (Vector{3, 6}));
  m.SetRow(0, {7, 8, 9});
  EXPECT_EQ(m.Row(0), (Vector{7, 8, 9}));
}

TEST(MatrixTest, Transpose) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
}

TEST(MatrixTest, ArithmeticOps) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  EXPECT_DOUBLE_EQ((a + b)(0, 0), 6);
  EXPECT_DOUBLE_EQ((b - a)(1, 1), 4);
  EXPECT_DOUBLE_EQ((a * 2.0)(1, 0), 6);
}

TEST(MatrixTest, MatMulKnownProduct) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, MatVecAndTransposeMatVec) {
  Matrix a = {{1, 2}, {3, 4}, {5, 6}};
  Vector v = {1, -1};
  EXPECT_EQ(a.MatVec(v), (Vector{-1, -1, -1}));
  Vector w = {1, 1, 1};
  EXPECT_EQ(a.TransposeMatVec(w), (Vector{9, 12}));
}

TEST(MatrixTest, GramMatchesExplicit) {
  Rng rng(5);
  Matrix x(7, 3);
  for (int i = 0; i < 7; ++i)
    for (int j = 0; j < 3; ++j) x(i, j) = rng.Normal();
  Matrix g = x.Gram();
  Matrix expected = x.Transpose().MatMul(x);
  EXPECT_TRUE(g.ApproxEquals(expected, 1e-12));
}

TEST(MatrixTest, WeightedGramMatchesExplicit) {
  Rng rng(6);
  Matrix x(6, 3);
  Vector w(6);
  for (int i = 0; i < 6; ++i) {
    w[i] = rng.Uniform(0.1, 2.0);
    for (int j = 0; j < 3; ++j) x(i, j) = rng.Normal();
  }
  Matrix g = x.WeightedGram(w);
  Matrix wx = x;
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 3; ++j) wx(i, j) *= w[i];
  Matrix expected = x.Transpose().MatMul(wx);
  EXPECT_TRUE(g.ApproxEquals(expected, 1e-12));
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m = {{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(VectorOpsTest, DotNormAddSubScaleAxpy) {
  Vector a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5);
  EXPECT_EQ(Add(a, b), (Vector{5, 7, 9}));
  EXPECT_EQ(Sub(b, a), (Vector{3, 3, 3}));
  EXPECT_EQ(Scale(a, 2), (Vector{2, 4, 6}));
  Vector c = a;
  Axpy(2.0, b, &c);
  EXPECT_EQ(c, (Vector{9, 12, 15}));
}

TEST(CholeskyTest, FactorKnownMatrix) {
  Matrix a = {{4, 2}, {2, 3}};
  Matrix l = CholeskyFactor(a).ValueOrDie();
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a = {{1, 2}, {2, 1}};  // Indefinite.
  EXPECT_FALSE(CholeskyFactor(a).ok());
  Matrix b = {{1, 2, 3}, {4, 5, 6}};  // Non-square.
  EXPECT_FALSE(CholeskyFactor(b).ok());
}

TEST(CholeskyTest, SolveMatchesDirect) {
  Matrix a = {{4, 1, 0}, {1, 3, 1}, {0, 1, 2}};
  Vector b = {1, 2, 3};
  Vector x = CholeskySolve(a, b).ValueOrDie();
  Vector ax = a.MatVec(x);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(LuTest, SolveGeneralSystem) {
  Matrix a = {{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}};  // Needs pivoting.
  Vector b = {-8, 0, 3};
  Vector x = LuSolve(a, b).ValueOrDie();
  Vector ax = a.MatVec(x);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(LuTest, RejectsSingular) {
  Matrix a = {{1, 2}, {2, 4}};
  EXPECT_FALSE(LuSolve(a, {1, 1}).ok());
}

TEST(InverseTest, InverseTimesSelfIsIdentity) {
  Matrix a = {{2, 1, 0}, {1, 3, 1}, {0, 1, 4}};
  Matrix inv = Inverse(a).ValueOrDie();
  EXPECT_TRUE(a.MatMul(inv).ApproxEquals(Matrix::Identity(3), 1e-10));
}

// Property sweep: random SPD systems of several sizes solve correctly.
class SpdSolveTest : public ::testing::TestWithParam<int> {};

TEST_P(SpdSolveTest, CholeskySolvesRandomSpd) {
  int n = GetParam();
  Rng rng(1000 + n);
  Matrix x(2 * n, n);
  for (int i = 0; i < x.rows(); ++i)
    for (int j = 0; j < n; ++j) x(i, j) = rng.Normal();
  Matrix a = x.Gram();
  a.AddScaledIdentity(0.5);
  Vector b(n);
  for (int i = 0; i < n; ++i) b[i] = rng.Normal();
  Vector sol = CholeskySolve(a, b).ValueOrDie();
  Vector ax = a.MatVec(sol);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);

  // LU agrees with Cholesky on SPD systems.
  Vector lu = LuSolve(a, b).ValueOrDie();
  for (int i = 0; i < n; ++i) EXPECT_NEAR(lu[i], sol[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpdSolveTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace xai
