#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "xai/core/stats.h"
#include "xai/data/synthetic.h"
#include "xai/influence/complaint.h"
#include "xai/influence/group_influence.h"
#include "xai/influence/influence_function.h"
#include "xai/influence/tree_influence.h"

namespace xai {
namespace {

TEST(LinearInfluenceTest, LooParamChangeIsExact) {
  auto [d, gt] = MakeLinearData(60, 3, 0.3, 1);
  (void)gt;
  LinearRegressionModel::Config config;
  config.l2 = 1e-8;
  auto model = LinearRegressionModel::Train(d, config).ValueOrDie();
  auto influence =
      LinearInfluence::Make(model, d.x(), d.y()).ValueOrDie();
  for (int i : {0, 7, 33}) {
    // Ground truth: retrain without point i.
    Dataset reduced = d.Without({i});
    auto retrained =
        LinearRegressionModel::Train(reduced, config).ValueOrDie();
    Vector predicted_change = influence.LooParamChange(i);
    for (int j = 0; j < 3; ++j) {
      double actual = retrained.weights()[j] - model.weights()[j];
      EXPECT_NEAR(predicted_change[j], actual, 1e-6) << "i=" << i;
    }
    double actual_bias = retrained.bias() - model.bias();
    EXPECT_NEAR(predicted_change[3], actual_bias, 1e-6);
  }
}

TEST(LinearInfluenceTest, LooPredictionChangeIsExact) {
  auto [d, gt] = MakeLinearData(50, 2, 0.5, 2);
  (void)gt;
  LinearRegressionModel::Config config;
  config.l2 = 1e-8;
  auto model = LinearRegressionModel::Train(d, config).ValueOrDie();
  auto influence =
      LinearInfluence::Make(model, d.x(), d.y()).ValueOrDie();
  Vector x_test = {0.7, -1.2};
  for (int i : {3, 19}) {
    auto retrained =
        LinearRegressionModel::Train(d.Without({i}), config).ValueOrDie();
    double actual = retrained.Predict(x_test) - model.Predict(x_test);
    EXPECT_NEAR(influence.LooPredictionChange(x_test, i), actual, 1e-6);
  }
}

TEST(LinearInfluenceTest, LeverageInUnitIntervalAndSumsToRank) {
  auto [d, gt] = MakeLinearData(80, 4, 0.2, 3);
  (void)gt;
  auto model = LinearRegressionModel::Train(d).ValueOrDie();
  auto influence =
      LinearInfluence::Make(model, d.x(), d.y()).ValueOrDie();
  double total = 0.0;
  for (int i = 0; i < d.num_rows(); ++i) {
    double h = influence.Leverage(i);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0 + 1e-9);
    total += h;
  }
  // Trace of the hat matrix = number of parameters (d + intercept).
  EXPECT_NEAR(total, 5.0, 0.01);
}

TEST(LinearInfluenceTest, OutlierHasLargeCooksDistance) {
  auto [d, gt] = MakeLinearData(60, 2, 0.1, 4);
  (void)gt;
  // Inject one gross outlier.
  Dataset corrupted = d;
  (*corrupted.mutable_y())[10] += 50.0;
  auto model = LinearRegressionModel::Train(corrupted).ValueOrDie();
  auto influence =
      LinearInfluence::Make(model, corrupted.x(), corrupted.y())
          .ValueOrDie();
  std::vector<double> cooks;
  for (int i = 0; i < corrupted.num_rows(); ++i)
    cooks.push_back(influence.CooksDistance(i));
  EXPECT_EQ(ArgMax(cooks), 10);
}

struct LogisticSetup {
  Dataset train;
  Dataset test;
  LogisticRegressionModel model;
};

LogisticSetup MakeLogisticSetup(uint64_t seed, int n = 300, int d = 4) {
  auto [data, gt] = MakeLogisticData(n, d, seed);
  (void)gt;
  auto [train, test] = data.TrainTestSplit(0.25, seed + 1);
  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  auto model = LogisticRegressionModel::Train(train, config).ValueOrDie();
  return {std::move(train), std::move(test), std::move(model)};
}

TEST(LogisticInfluenceTest, CorrelatesWithActualRetraining) {
  LogisticSetup s = MakeLogisticSetup(5, 200);
  auto influence =
      LogisticInfluence::Make(s.model, s.train.x(), s.train.y())
          .ValueOrDie();
  Vector x_test = s.test.Row(0);
  double y_test = s.test.Label(0);
  Vector predicted =
      influence.InfluenceOnLossAll(x_test, y_test).ValueOrDie();

  // Ground truth for a subset of points (retraining 40 models).
  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  std::vector<double> actual, predicted_subset;
  for (int i = 0; i < 40; ++i) {
    auto retrained =
        LogisticRegressionModel::Train(s.train.Without({i}).x(),
                                       s.train.Without({i}).y(), config)
            .ValueOrDie();
    actual.push_back(retrained.ExampleLoss(x_test, y_test) -
                     s.model.ExampleLoss(x_test, y_test));
    predicted_subset.push_back(predicted[i]);
  }
  EXPECT_GT(PearsonCorrelation(predicted_subset, actual), 0.95);
}

TEST(LogisticInfluenceTest, CgMatchesCholesky) {
  LogisticSetup s = MakeLogisticSetup(6);
  InfluenceConfig chol_config, cg_config;
  cg_config.use_conjugate_gradient = true;
  auto chol = LogisticInfluence::Make(s.model, s.train.x(), s.train.y(),
                                      chol_config)
                  .ValueOrDie();
  auto cg = LogisticInfluence::Make(s.model, s.train.x(), s.train.y(),
                                    cg_config)
                .ValueOrDie();
  Vector v = {0.5, -0.2, 0.1, 0.9, 0.3};
  Vector a = chol.SolveHessian(v).ValueOrDie();
  Vector b = cg.SolveHessian(v).ValueOrDie();
  for (size_t j = 0; j < a.size(); ++j) EXPECT_NEAR(a[j], b[j], 1e-5);
}

TEST(LogisticInfluenceTest, ParamChangePredictsRemovalDirection) {
  LogisticSetup s = MakeLogisticSetup(7, 250);
  auto influence =
      LogisticInfluence::Make(s.model, s.train.x(), s.train.y())
          .ValueOrDie();
  std::vector<int> removed = {0, 1, 2, 3, 4};
  Vector predicted =
      influence.ParamChangeOnRemoval(removed).ValueOrDie();
  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  Dataset reduced = s.train.Without(removed);
  auto retrained =
      LogisticRegressionModel::Train(reduced, config).ValueOrDie();
  // Sign agreement and rough magnitude on each coordinate.
  for (int j = 0; j < 4; ++j) {
    double actual = retrained.weights()[j] - s.model.weights()[j];
    EXPECT_NEAR(predicted[j], actual, std::fabs(actual) * 0.7 + 5e-3);
  }
}

TEST(GroupInfluenceTest, SecondOrderBeatsFirstOrderForLargeGroups) {
  LogisticSetup s = MakeLogisticSetup(8, 300);
  auto influence =
      LogisticInfluence::Make(s.model, s.train.x(), s.train.y())
          .ValueOrDie();
  // A coherent group: the 60 rows with the largest x0.
  std::vector<double> col = s.train.x().Col(0);
  std::vector<int> order = ArgSortDescending(col);
  std::vector<int> group(order.begin(), order.begin() + 60);

  Vector first =
      FirstOrderGroupParamChange(influence, group).ValueOrDie();
  Vector second = SecondOrderGroupParamChange(s.model, s.train.x(),
                                              s.train.y(), group)
                      .ValueOrDie();
  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  auto retrained =
      LogisticRegressionModel::Train(s.train.Without(group), config)
          .ValueOrDie();
  double err_first = 0, err_second = 0;
  for (int j = 0; j < 4; ++j) {
    double actual = retrained.weights()[j] - s.model.weights()[j];
    err_first += std::fabs(first[j] - actual);
    err_second += std::fabs(second[j] - actual);
  }
  EXPECT_LT(err_second, err_first);
}

TEST(GroupInfluenceTest, MarginChangeHelper) {
  Vector param_change = {0.5, -1.0, 0.25};  // last = bias.
  Vector x_test = {2.0, 1.0};
  EXPECT_DOUBLE_EQ(MarginChange(param_change, x_test),
                   0.5 * 2 - 1.0 * 1 + 0.25);
}

TEST(TreeInfluenceTest, SelfInfluenceIsNegativeForCorrectlyLabeled) {
  // Removing a training point typically moves the margin *away* from its
  // own label at its own location.
  Dataset d = MakeLoans(400, 9);
  GbdtModel::Config config;
  config.n_trees = 20;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  auto influence = GbdtLeafInfluence::Make(model, d.x(), d.y()).ValueOrDie();
  int checked = 0, consistent = 0;
  for (int i = 0; i < 60; ++i) {
    if (model.PredictClass(d.Row(i)) != static_cast<int>(d.Label(i)))
      continue;
    double inf = influence.InfluenceOnMargin(d.Row(i), i);
    // Removing a positive-label point lowers its own margin and vice versa.
    double expected_sign = d.Label(i) == 1.0 ? -1.0 : 1.0;
    if (inf * expected_sign >= 0) ++consistent;
    ++checked;
  }
  ASSERT_GT(checked, 20);
  EXPECT_GT(static_cast<double>(consistent) / checked, 0.8);
}

TEST(TreeInfluenceTest, PointsOutsideLeafHaveZeroInfluence) {
  Dataset d = MakeLoans(200, 10);
  GbdtModel::Config config;
  config.n_trees = 5;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  auto influence = GbdtLeafInfluence::Make(model, d.x(), d.y()).ValueOrDie();
  Vector x_test = d.Row(0);
  Vector all = influence.InfluenceOnMarginAll(x_test);
  // A training point sharing no leaf with x_test must have zero influence.
  for (int i = 0; i < d.num_rows(); ++i) {
    bool shares_leaf = false;
    for (const Tree& tree : model.trees())
      if (tree.LeafIndexOf(d.Row(i)) == tree.LeafIndexOf(x_test))
        shares_leaf = true;
    if (!shares_leaf) {
      EXPECT_DOUBLE_EQ(all[i], 0.0);
    }
  }
}

TEST(ComplaintTest, SurfacesCorruptedPoints) {
  // Poison the training data of one group so the model over-approves it,
  // then complain that the approval count for that group is too high: the
  // corrupted points must rank near the top.
  auto [data, gt] = MakeLogisticData(500, 3, 11);
  (void)gt;
  auto [train, query] = data.TrainTestSplit(0.3, 12);
  // Corrupt: flip 40 negative-label training points with x0 > 0.5 to 1.
  std::vector<int> corrupted;
  for (int i = 0; i < train.num_rows() && corrupted.size() < 40u; ++i) {
    if (train.Label(i) == 0.0 && train.At(i, 0) > 0.5) {
      (*train.mutable_y())[i] = 1.0;
      corrupted.push_back(i);
    }
  }
  ASSERT_GT(corrupted.size(), 15u);
  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  auto model = LogisticRegressionModel::Train(train, config).ValueOrDie();
  auto influence =
      LogisticInfluence::Make(model, train.x(), train.y()).ValueOrDie();

  Complaint complaint;
  complaint.direction = +1;  // Aggregate too high.
  for (int r = 0; r < query.num_rows(); ++r)
    if (query.At(r, 0) > 0.5) complaint.query_rows.push_back(r);
  ComplaintResult result =
      ExplainComplaint(influence, query.x(), complaint).ValueOrDie();

  // Precision@k: fraction of the top-|corrupted| ranked points that are
  // actually corrupted.
  int k = static_cast<int>(corrupted.size());
  int hits = 0;
  for (int rank = 0; rank < k; ++rank) {
    if (std::find(corrupted.begin(), corrupted.end(),
                  result.ranking[rank]) != corrupted.end())
      ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / k, 0.5);
}

TEST(ComplaintTest, RejectsBadInput) {
  LogisticSetup s = MakeLogisticSetup(13);
  auto influence =
      LogisticInfluence::Make(s.model, s.train.x(), s.train.y())
          .ValueOrDie();
  Complaint bad_direction;
  bad_direction.direction = 0;
  bad_direction.query_rows = {0};
  EXPECT_FALSE(
      ExplainComplaint(influence, s.test.x(), bad_direction).ok());
  Complaint bad_row;
  bad_row.query_rows = {99999};
  EXPECT_FALSE(ExplainComplaint(influence, s.test.x(), bad_row).ok());
}

}  // namespace
}  // namespace xai
