#include <gtest/gtest.h>

#include <cmath>

#include "xai/causal/scm.h"
#include "xai/explain/shapley/asymmetric_shapley.h"
#include "xai/explain/shapley/causal_shapley.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/shapley_flow.h"
#include "xai/explain/shapley/value_function.h"

namespace xai {
namespace {

// Model reading only the last node of a chain: f(x) = x2.
PredictFn LastNodeModel() {
  return [](const Vector& x) { return x[2]; };
}

TEST(InterventionalGameTest, FullCoalitionIsModelAtInstance) {
  LinearScm scm = MakeChainScm(1.0, 1.0);
  Vector instance = {1.0, 2.0, 3.0};
  InterventionalScmGame game(&scm, LastNodeModel(), instance, 400, 1);
  EXPECT_NEAR(game.Value(0b111), 3.0, 1e-9);
}

TEST(InterventionalGameTest, EmptyCoalitionIsObservationalMean) {
  LinearScm scm = MakeChainScm(1.0, 1.0);
  Vector instance = {1.0, 2.0, 3.0};
  InterventionalScmGame game(&scm, LastNodeModel(), instance, 20000, 2);
  EXPECT_NEAR(game.Value(0), 0.0, 0.05);
}

TEST(InterventionalGameTest, InterventionOnRootPropagates) {
  // do(x0 = 2) in chain with unit weights: E[x2] = 2.
  LinearScm scm = MakeChainScm(1.0, 1.0);
  Vector instance = {2.0, 0.0, 0.0};
  InterventionalScmGame game(&scm, LastNodeModel(), instance, 20000, 3);
  EXPECT_NEAR(game.Value(0b001), 2.0, 0.05);
}

TEST(CausalShapleyTest, RootGetsCreditForIndirectEffect) {
  // f(x) = x2. Marginal SHAP on independent features would credit only x2;
  // causal Shapley credits x0 and x1 via the causal chain.
  LinearScm scm = MakeChainScm(1.0, 1.0);
  Vector instance = {2.0, 2.0, 2.0};  // A consistent world (zero noise).
  CausalShapleyConfig config;
  config.mc_samples = 4000;
  auto exp = CausalShapley(scm, LastNodeModel(), instance, config)
                 .ValueOrDie();
  EXPECT_GT(exp.attributions[0], 0.3);
  EXPECT_GT(exp.attributions[1], 0.3);
  EXPECT_GT(exp.attributions[2], 0.3);
  // Efficiency: sum = f(x) - E[f].
  EXPECT_NEAR(exp.AttributionSum(), 2.0, 0.1);
}

TEST(CausalShapleyTest, ComparedToMarginalGame) {
  // With the marginal (independent-background) game the upstream features
  // get nothing because the model reads only x2.
  LinearScm scm = MakeChainScm(1.0, 1.0);
  Rng rng(4);
  Matrix background = scm.Sample(200, &rng);
  Vector instance = {2.0, 2.0, 2.0};
  MarginalFeatureGame marginal(LastNodeModel(), instance, background);
  Vector phi = ExactShapley(marginal).ValueOrDie();
  EXPECT_NEAR(phi[0], 0.0, 1e-9);
  EXPECT_NEAR(phi[1], 0.0, 1e-9);
  EXPECT_GT(phi[2], 1.0);
}

TEST(AsymmetricShapleyTest, ExactEnumerationOnChain) {
  LinearScm scm = MakeChainScm(1.0, 1.0);
  Vector instance = {2.0, 2.0, 2.0};
  InterventionalScmGame game(&scm, LastNodeModel(), instance, 3000, 5);
  Vector asym = ExactAsymmetricShapley(game, scm.dag()).ValueOrDie();
  // Only the identity permutation (0,1,2) is consistent with the chain:
  // asymmetric SV = its marginal contributions.
  double v0 = game.Value(0), v1 = game.Value(0b001), v2 = game.Value(0b011),
         v3 = game.Value(0b111);
  EXPECT_NEAR(asym[0], v1 - v0, 1e-9);
  EXPECT_NEAR(asym[1], v2 - v1, 1e-9);
  EXPECT_NEAR(asym[2], v3 - v2, 1e-9);
}

TEST(AsymmetricShapleyTest, DistalRootGetsAllCreditOnChain) {
  // In a deterministic unit chain, the root's marginal contribution first
  // is the whole effect; later features add nothing once ancestors fixed.
  LinearScm scm = MakeChainScm(1.0, 1.0);
  scm.SetNoiseStdDev(1, 1e-9);
  scm.SetNoiseStdDev(2, 1e-9);
  Vector instance = {2.0, 2.0, 2.0};
  InterventionalScmGame game(&scm, LastNodeModel(), instance, 2000, 6);
  Vector asym = ExactAsymmetricShapley(game, scm.dag()).ValueOrDie();
  EXPECT_NEAR(asym[0], 2.0, 0.1);
  EXPECT_NEAR(asym[1], 0.0, 0.1);
  EXPECT_NEAR(asym[2], 0.0, 0.1);
}

TEST(AsymmetricShapleyTest, NoEdgesEqualsSymmetricShapley) {
  Dag dag({"a", "b", "c"});
  LinearScm scm(dag);
  Vector instance = {1.0, 2.0, 3.0};
  PredictFn f = [](const Vector& x) { return x[0] + 2 * x[1] - x[2]; };
  InterventionalScmGame game(&scm, f, instance, 2000, 7);
  Vector sym = ExactShapley(game).ValueOrDie();
  Vector asym = ExactAsymmetricShapley(game, dag).ValueOrDie();
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(asym[j], sym[j], 1e-9);
}

TEST(AsymmetricShapleyTest, SampledMatchesExact) {
  LinearScm scm = MakeForkScm(1.0, 0.5);
  Vector instance = {1.0, 1.0, 0.5};
  PredictFn f = [](const Vector& x) { return x[1] + x[2]; };
  InterventionalScmGame game(&scm, f, instance, 2000, 8);
  Vector exact = ExactAsymmetricShapley(game, scm.dag()).ValueOrDie();
  Rng rng(9);
  Vector sampled =
      SampledAsymmetricShapley(game, scm.dag(), 4000, &rng).ValueOrDie();
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(sampled[j], exact[j], 0.05);
}

TEST(RandomLinearExtensionTest, RespectsDag) {
  Dag dag({"a", "b", "c", "d"});
  ASSERT_TRUE(dag.AddEdge(0, 2).ok());
  ASSERT_TRUE(dag.AddEdge(1, 3).ok());
  Rng rng(10);
  for (int t = 0; t < 50; ++t) {
    std::vector<int> ext = RandomLinearExtension(dag, &rng);
    std::vector<int> pos(4);
    for (int i = 0; i < 4; ++i) pos[ext[i]] = i;
    EXPECT_LT(pos[0], pos[2]);
    EXPECT_LT(pos[1], pos[3]);
  }
}

TEST(LinearEffectsTest, DirectIndirectDecomposition) {
  // Chain 0->1->2, weights 2 and 3; model w = (1, 1, 1).
  LinearScm scm = MakeChainScm(2.0, 3.0);
  Vector weights = {1.0, 1.0, 1.0};
  Vector instance = {1.0, 2.0, 6.0};
  Vector baseline = {0.0, 0.0, 0.0};
  auto effects =
      LinearDirectIndirectEffects(scm, weights, instance, baseline);
  // Feature 0: direct = 1*1; total = 1*(1 + 2 + 6) = 9; indirect = 8.
  EXPECT_NEAR(effects[0].first, 1.0, 1e-12);
  EXPECT_NEAR(effects[0].second, 8.0, 1e-12);
  // Feature 2: no descendants: indirect = 0.
  EXPECT_NEAR(effects[2].second, 0.0, 1e-12);
}

TEST(ShapleyFlowTest, CreditsSumToOutputDifference) {
  LinearScm scm = MakeChainScm(1.5, -2.0);
  PredictFn f = [](const Vector& x) { return x[0] + 0.5 * x[2]; };
  Rng rng(11);
  Vector instance = scm.Sample(1, &rng).Row(0);
  Vector baseline(3, 0.0);
  auto result =
      ShapleyFlow(scm, f, instance, baseline, 30, &rng).ValueOrDie();
  double total = 0.0;
  for (const auto& e : result.edges) total += e.credit;
  EXPECT_NEAR(total, result.foreground_output - result.background_output,
              1e-9);
}

TEST(ShapleyFlowTest, AllEdgesActiveReproducesModelAtInstance) {
  LinearScm scm = MakeChainScm(1.0, 1.0);
  PredictFn f = [](const Vector& x) { return x[2]; };
  Rng rng(12);
  Vector instance = scm.Sample(1, &rng).Row(0);
  auto result = ShapleyFlow(scm, f, instance, {0, 0, 0}, 5, &rng)
                    .ValueOrDie();
  EXPECT_NEAR(result.foreground_output, instance[2], 1e-9);
}

TEST(ShapleyFlowTest, EdgeLabelsReadable) {
  LinearScm scm = MakeChainScm(1.0, 1.0);
  PredictFn f = [](const Vector& x) { return x[2]; };
  Rng rng(13);
  auto result =
      ShapleyFlow(scm, f, {1, 1, 1}, {0, 0, 0}, 3, &rng).ValueOrDie();
  bool found_source = false, found_model = false;
  for (size_t i = 0; i < result.edges.size(); ++i) {
    std::string label = result.EdgeLabel(scm.dag(), i);
    if (label.find("source->") == 0) found_source = true;
    if (label.find("->model") != std::string::npos) found_model = true;
  }
  EXPECT_TRUE(found_source);
  EXPECT_TRUE(found_model);
}

TEST(ShapleyFlowTest, IrrelevantEdgeGetsNoCredit) {
  // Model ignores x1 entirely and the chain weight into x2 is zero, so the
  // x0->x1 edge and x1->model edge carry no credit.
  LinearScm scm = MakeChainScm(1.0, 0.0);
  PredictFn f = [](const Vector& x) { return x[0]; };
  Rng rng(14);
  Vector instance = {2.0, 2.0, 0.0};
  auto result =
      ShapleyFlow(scm, f, instance, {0, 0, 0}, 20, &rng).ValueOrDie();
  for (size_t i = 0; i < result.edges.size(); ++i) {
    const auto& e = result.edges[i];
    if (e.from == 1 || (e.to == 1 && e.from == 0)) {
      // x1 is causally live but the model never reads x1/x2.
    }
    if (e.from == 1 && e.to == 3) {
      EXPECT_NEAR(e.credit, 0.0, 1e-9);
    }
    if (e.from == 2 && e.to == 3) {
      EXPECT_NEAR(e.credit, 0.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace xai
