// Tests for the compiled SoA tree-ensemble inference kernel
// (model/flat_ensemble.h): bit-identity against the scalar AoS paths it
// replaces across every model kind, structural edge cases, cache
// invalidation, and the 64-feature coalition-mask guard.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "xai/core/parallel.h"
#include "xai/data/synthetic.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/decision_tree.h"
#include "xai/model/flat_ensemble.h"
#include "xai/model/gbdt.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/random_forest.h"
#include "xai/model/tree_ensemble_view.h"

namespace xai {
namespace {

// Scalar reference for a random forest: sum Tree::PredictRow, divide by T,
// exactly like RandomForestModel::Predict.
double ScalarForest(const RandomForestModel& model, const Vector& row) {
  double acc = 0.0;
  for (const Tree& tree : model.trees()) acc += tree.PredictRow(row);
  return model.trees().empty() ? 0.0 : acc / model.trees().size();
}

// Scalar reference for a GBDT, mirroring GbdtModel::Predict.
double ScalarGbdt(const GbdtModel& model, const Vector& row) {
  double acc = model.base_score();
  for (const Tree& tree : model.trees()) acc += tree.PredictRow(row);
  return model.task() == TaskType::kClassification ? Sigmoid(acc) : acc;
}

TEST(FlatEnsembleTest, ForestBitIdenticalToScalarTrees) {
  Dataset d = MakeLoans(400, 11);
  RandomForestConfig config;
  config.n_trees = 13;
  auto model = RandomForestModel::Train(d, config).ValueOrDie();
  auto flat = model.shared_flat();
  ASSERT_EQ(flat->num_trees(), 13);
  for (int i = 0; i < d.num_rows(); ++i) {
    Vector row = d.Row(i);
    EXPECT_EQ(flat->PredictRow(row), ScalarForest(model, row));
    EXPECT_EQ(model.Predict(row), ScalarForest(model, row));
  }
}

TEST(FlatEnsembleTest, GbdtBitIdenticalToScalarTrees) {
  Dataset d = MakeLoans(400, 12);
  GbdtConfig config;
  config.n_trees = 17;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  auto flat = model.shared_flat();
  EXPECT_TRUE(flat->sigmoid());
  for (int i = 0; i < d.num_rows(); ++i) {
    Vector row = d.Row(i);
    EXPECT_EQ(flat->PredictRow(row), ScalarGbdt(model, row));
    EXPECT_EQ(flat->MarginRow(row.data()), model.Margin(row));
  }
}

TEST(FlatEnsembleTest, SingleTreeBitIdentical) {
  Dataset d = MakeLoans(300, 13);
  auto model = DecisionTreeModel::Train(d).ValueOrDie();
  auto flat = model.shared_flat();
  ASSERT_EQ(flat->num_trees(), 1);
  EXPECT_EQ(flat->num_nodes(), model.tree().num_nodes());
  for (int i = 0; i < d.num_rows(); ++i) {
    Vector row = d.Row(i);
    EXPECT_EQ(flat->PredictRow(row), model.tree().PredictRow(row));
  }
}

TEST(FlatEnsembleTest, ViewFlatFoldsScalesBitIdentically) {
  Dataset d = MakeLoans(300, 14);
  RandomForestConfig config;
  config.n_trees = 9;
  auto model = RandomForestModel::Train(d, config).ValueOrDie();
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  auto flat = view.flat();
  // The view pre-scales each tree by 1/T; its flat kernel must reproduce
  // that accumulation order, not the forest's sum-then-divide.
  for (int i = 0; i < 50; ++i) {
    Vector row = d.Row(i);
    EXPECT_EQ(flat->PredictRow(row), view.Margin(row));
  }
}

TEST(FlatEnsembleTest, BatchMatchesRowPathAtEveryThreadCount) {
  Dataset d = MakeLoans(257, 15);  // Deliberately not a multiple of 64.
  RandomForestConfig rf_config;
  rf_config.n_trees = 8;
  auto rf = RandomForestModel::Train(d, rf_config).ValueOrDie();
  GbdtConfig gb_config;
  gb_config.n_trees = 8;
  auto gb = GbdtModel::Train(d, gb_config).ValueOrDie();

  Vector rf_serial(d.num_rows()), gb_serial(d.num_rows());
  for (int i = 0; i < d.num_rows(); ++i) {
    rf_serial[i] = rf.Predict(d.Row(i));
    gb_serial[i] = gb.Predict(d.Row(i));
  }
  const int saved = GetNumThreads();
  for (int threads : {1, 4, 8}) {
    SetNumThreads(threads);
    Vector rf_batch = rf.PredictBatch(d.x());
    Vector gb_batch = gb.PredictBatch(d.x());
    for (int i = 0; i < d.num_rows(); ++i) {
      EXPECT_EQ(rf_batch[i], rf_serial[i]) << "threads=" << threads;
      EXPECT_EQ(gb_batch[i], gb_serial[i]) << "threads=" << threads;
    }
  }
  SetNumThreads(saved);
}

TEST(FlatEnsembleTest, EmptyEnsembleScoresBase) {
  FlatEnsemble::Options options;
  options.base = 2.5;
  FlatEnsemble flat = FlatEnsemble::Build({}, options);
  EXPECT_EQ(flat.num_trees(), 0);
  Matrix x(3, 2, 1.0);
  Vector out = flat.PredictBatch(x);
  for (double v : out) EXPECT_EQ(v, 2.5);
}

TEST(FlatEnsembleTest, SingleNodeTreeIsALeaf) {
  Tree leaf({TreeNode{}});
  ASSERT_TRUE(leaf.nodes()[0].IsLeaf());
  Tree stump = leaf;
  stump.mutable_nodes()->front().value = 0.75;
  FlatEnsemble flat = FlatEnsemble::Build({&stump}, {});
  EXPECT_EQ(flat.num_nodes(), 1);
  Vector row = {1.0, 2.0};
  EXPECT_EQ(flat.PredictRow(row), 0.75);
}

TEST(FlatEnsembleTest, NanRoutesRightLikeScalarPath) {
  // Internal node: x0 <= 0.5 -> leaf(1), else leaf(2).
  std::vector<TreeNode> nodes(3);
  nodes[0].feature = 0;
  nodes[0].threshold = 0.5;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].value = -1.0;
  nodes[2].value = 1.0;
  Tree tree(std::move(nodes));
  FlatEnsemble flat = FlatEnsemble::Build({&tree}, {});
  Vector nan_row = {std::nan("")};
  EXPECT_EQ(flat.PredictRow(nan_row), tree.PredictRow(nan_row));
  EXPECT_EQ(flat.PredictRow(nan_row), 1.0);
}

TEST(FlatEnsembleTest, MutableTreesInvalidatesCachedKernel) {
  Dataset d = MakeLoans(200, 16);
  GbdtConfig config;
  config.n_trees = 4;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  Vector row = d.Row(0);
  const double before = model.PredictBatch(d.x())[0];

  // Shift every leaf of the first tree; the next batch call must rebuild
  // the kernel and see the mutation.
  for (TreeNode& node : *model.mutable_trees()->front().mutable_nodes())
    if (node.IsLeaf()) node.value += 1.0;
  const double after = model.PredictBatch(d.x())[0];
  EXPECT_NE(before, after);
  EXPECT_EQ(after, ScalarGbdt(model, row));
}

TEST(FlatEnsembleTest, AsPredictFnUsesKernelAndMatchesPredict) {
  Dataset d = MakeLoans(300, 17);
  RandomForestConfig rf_config;
  rf_config.n_trees = 6;
  auto rf = RandomForestModel::Train(d, rf_config).ValueOrDie();
  GbdtConfig gb_config;
  gb_config.n_trees = 6;
  auto gb = GbdtModel::Train(d, gb_config).ValueOrDie();
  auto dt = DecisionTreeModel::Train(d).ValueOrDie();
  PredictFn rf_fn = AsPredictFn(rf);
  PredictFn gb_fn = AsPredictFn(gb);
  PredictFn dt_fn = AsPredictFn(dt);
  for (int i = 0; i < 40; ++i) {
    Vector row = d.Row(i);
    EXPECT_EQ(rf_fn(row), rf.Predict(row));
    EXPECT_EQ(gb_fn(row), gb.Predict(row));
    EXPECT_EQ(dt_fn(row), dt.Predict(row));
  }
}

TEST(FlatEnsembleTest, ModelAwareGameBitMatchesPredictFnGame) {
  Dataset d = MakeLoans(120, 18);
  GbdtConfig config;
  config.n_trees = 6;
  auto model = GbdtModel::Train(d, config).ValueOrDie();
  Vector instance = d.Row(0);
  MarginalFeatureGame fn_game(AsPredictFn(model), instance, d.x());
  MarginalFeatureGame batch_game(model, instance, d.x());
  const uint64_t full = (uint64_t{1} << instance.size()) - 1;
  for (uint64_t mask : std::vector<uint64_t>{0, 1, 5, full}) {
    EXPECT_EQ(fn_game.Value(mask), batch_game.Value(mask)) << mask;
  }
}

TEST(FlatEnsembleDeathTest, GamesRejectMoreThan64Features) {
  // 65 features cannot key a uint64_t coalition mask; the game must abort
  // loudly instead of silently truncating attributions.
  Vector instance(65, 0.0);
  Matrix background(2, 65, 0.0);
  PredictFn f = [](const Vector&) { return 0.0; };
  EXPECT_DEATH(MarginalFeatureGame(f, instance, background), "64");
  EXPECT_DEATH(ConditionalFeatureGame(f, instance, background), "64");
}

TEST(FlatEnsembleDeathTest, BuildRejectsEmptyTree) {
  Tree empty;
  EXPECT_DEATH(FlatEnsemble::Build({&empty}, {}), "empty");
}

}  // namespace
}  // namespace xai
