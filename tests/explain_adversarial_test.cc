#include "xai/explain/adversarial.h"

#include <gtest/gtest.h>

#include <cmath>

#include "xai/data/synthetic.h"
#include "xai/explain/lime.h"
#include "xai/explain/shapley/exact_shapley.h"
#include "xai/explain/shapley/value_function.h"

namespace xai {
namespace {

struct AttackSetup {
  Dataset train;
  Perturber perturber;
  AdversarialModel model;
  int sensitive;
};

// Biased model: decides purely on the sensitive feature (race).
// Innocuous model: decides on an unrelated numeric feature.
AttackSetup MakeAttack(uint64_t seed) {
  Dataset train = MakeRecidivism(600, seed);
  int race = train.schema().FeatureIndex("race");
  int age = train.schema().FeatureIndex("age");
  PredictFn biased = [race](const Vector& x) {
    return x[race] == 1.0 ? 0.9 : 0.1;
  };
  PredictFn innocuous = [age](const Vector& x) {
    return x[age] > 40.0 ? 0.9 : 0.1;
  };
  Perturber perturber(train, Perturber::Strategy::kGaussian);
  AdversarialConfig config;
  config.seed = seed + 1;
  AdversarialModel model =
      AdversarialModel::Make(train, perturber, biased, innocuous, config)
          .ValueOrDie();
  return {std::move(train), std::move(perturber), std::move(model), race};
}

TEST(AdversarialTest, DetectorSeparatesRealFromPerturbed) {
  AttackSetup setup = MakeAttack(1);
  Dataset holdout = MakeRecidivism(200, 99);
  double acc =
      setup.model.DetectorAccuracy(holdout, setup.perturber, 5);
  EXPECT_GT(acc, 0.8);
}

TEST(AdversarialTest, BiasedOnRealData) {
  AttackSetup setup = MakeAttack(2);
  Dataset holdout = MakeRecidivism(100, 98);
  int race = setup.sensitive;
  int agree = 0, total = 0;
  for (int i = 0; i < holdout.num_rows(); ++i) {
    Vector row = holdout.Row(i);
    double expected = row[race] == 1.0 ? 0.9 : 0.1;
    if (setup.model.Predict(row) == expected) ++agree;
    ++total;
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.85);
}

TEST(AdversarialTest, InnocuousOnPerturbations) {
  AttackSetup setup = MakeAttack(3);
  Rng rng(4);
  int hidden = 0, total = 0;
  for (int i = 0; i < 50; ++i) {
    Matrix pert = setup.perturber.Sample(setup.train.Row(i), 2, &rng);
    for (int p = 0; p < 2; ++p) {
      Vector row = pert.Row(p);
      int age = setup.train.schema().FeatureIndex("age");
      double expected = row[age] > 40.0 ? 0.9 : 0.1;
      if (setup.model.Predict(row) == expected) ++hidden;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(hidden) / total, 0.7);
}

TEST(AdversarialTest, FoolsLime) {
  // The §2.1.1 attack: LIME queries the model on Gaussian perturbations,
  // which the detector recognizes as synthetic, so the explanation reflects
  // the innocuous model and hides the bias on the sensitive feature.
  AttackSetup setup = MakeAttack(5);
  int race = setup.sensitive;
  int idx = 0;
  while (setup.train.At(idx, race) != 1.0) ++idx;
  Vector instance = setup.train.Row(idx);

  LimeConfig config;
  config.strategy = Perturber::Strategy::kGaussian;
  config.num_samples = 1500;
  LimeExplainer lime(setup.train, config);
  LimeExplanation exp =
      lime.Explain(AsPredictFn(setup.model), instance, 7).ValueOrDie();
  // The sensitive feature must not be the strongest attribution.
  EXPECT_NE(exp.TopFeatures(1)[0], race);
}

TEST(AdversarialTest, HonestModelIsNotFooled) {
  // Control experiment: explaining the biased model directly puts all mass
  // on the sensitive feature.
  Dataset train = MakeRecidivism(400, 6);
  int race = train.schema().FeatureIndex("race");
  PredictFn biased = [race](const Vector& x) {
    return x[race] == 1.0 ? 0.9 : 0.1;
  };
  int idx = 0;
  while (train.At(idx, race) != 1.0) ++idx;
  MarginalFeatureGame game(biased, train.Row(idx), train.x(), 30);
  Vector phi = ExactShapley(game).ValueOrDie();
  for (size_t j = 0; j < phi.size(); ++j) {
    if (static_cast<int>(j) == race) continue;
    EXPECT_LT(std::fabs(phi[j]), std::fabs(phi[race]));
  }
}

}  // namespace
}  // namespace xai
