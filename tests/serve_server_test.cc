#include "xai/serve/explain_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "xai/core/parallel.h"
#include "xai/core/rng.h"
#include "xai/data/synthetic.h"
#include "xai/explain/shapley/kernel_shap.h"
#include "xai/explain/shapley/tree_shap.h"
#include "xai/explain/shapley/value_function.h"
#include "xai/model/gbdt.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/serialization.h"
#include "xai/serve/async/admission.h"
#include "xai/serve/async/session.h"

namespace xai {
namespace serve {
namespace {

class ExplainServerTest : public ::testing::Test {
 protected:
  ExplainServerTest()
      : train_(MakeLoans(300, 3)), background_(MakeLoans(48, 4)) {
    GbdtModel::Config config;
    config.n_trees = 10;
    gbdt_text_ =
        SerializeModel(GbdtModel::Train(train_, config).ValueOrDie());
    instance_ = train_.Row(0);
  }

  void TearDown() override { SetNumThreads(1); }

  void RegisterGbdt(ExplainServer* server, const std::string& name = "loans") {
    server->registry().Register(name, gbdt_text_, background_).ValueOrDie();
  }

  ExplainRequest Request(ExplainerKind kind) const {
    ExplainRequest request;
    request.model = "loans";
    request.instance = instance_;
    request.kind = kind;
    request.seed = 17;
    return request;
  }

  Dataset train_;
  Dataset background_;
  std::string gbdt_text_;
  Vector instance_;
};

TEST_F(ExplainServerTest, TreeShapMatchesDirectCall) {
  ExplainServer server;
  RegisterGbdt(&server);
  auto response = server.Explain(Request(ExplainerKind::kTreeShap))
                      .ValueOrDie();

  auto entry = server.registry().Find("loans");
  AttributionExplanation direct = TreeShap(*entry->tree_view, instance_);
  ASSERT_EQ(response.attribution.attributions.size(),
            direct.attributions.size());
  for (size_t i = 0; i < direct.attributions.size(); ++i)
    EXPECT_DOUBLE_EQ(response.attribution.attributions[i],
                     direct.attributions[i]);
  EXPECT_EQ(response.served_tier, FidelityTier::kExact);
  EXPECT_FALSE(response.degraded);
}

TEST_F(ExplainServerTest, KernelShapMatchesDirectCall) {
  ExplainServer server;
  RegisterGbdt(&server);
  auto response = server.Explain(Request(ExplainerKind::kKernelShap))
                      .ValueOrDie();

  auto entry = server.registry().Find("loans");
  MarginalFeatureGame game(AsPredictFn(*entry->model), instance_,
                           background_.x());
  KernelShapConfig config;
  config.coalition_budget = 2048;  // The kHigh rung.
  Rng rng(17);
  auto direct = KernelShap(game, config, &rng).ValueOrDie();
  ASSERT_EQ(response.attribution.attributions.size(),
            direct.attributions.size());
  for (size_t i = 0; i < direct.attributions.size(); ++i)
    EXPECT_DOUBLE_EQ(response.attribution.attributions[i],
                     direct.attributions[i]);
}

TEST_F(ExplainServerTest, RepeatRequestHitsCacheWithIdenticalPayload) {
  ExplainServer server;
  RegisterGbdt(&server);
  auto request = Request(ExplainerKind::kKernelShap);

  auto first = server.Explain(request).ValueOrDie();
  EXPECT_FALSE(first.cache_hit);
  auto second = server.Explain(request).ValueOrDie();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(PayloadHash(first), PayloadHash(second));
  EXPECT_GE(server.cache().GetStats().hits, 1);
}

TEST_F(ExplainServerTest, CacheSeparatesSeedInstanceAndKind) {
  ExplainServer server;
  RegisterGbdt(&server);

  auto request = Request(ExplainerKind::kKernelShap);
  server.Explain(request).ValueOrDie();

  auto other_seed = request;
  other_seed.seed = 18;
  EXPECT_FALSE(server.Explain(other_seed).ValueOrDie().cache_hit);

  auto other_instance = request;
  other_instance.instance = train_.Row(1);
  EXPECT_FALSE(server.Explain(other_instance).ValueOrDie().cache_hit);

  auto other_kind = request;
  other_kind.kind = ExplainerKind::kSamplingShapley;
  EXPECT_FALSE(server.Explain(other_kind).ValueOrDie().cache_hit);
}

TEST_F(ExplainServerTest, CacheIsTenantScoped) {
  ExplainServer server;
  RegisterGbdt(&server);
  auto request = Request(ExplainerKind::kKernelShap);
  request.tenant = "acme";
  EXPECT_FALSE(server.Explain(request).ValueOrDie().cache_hit);

  // Identical request from a different tenant must miss: on the deferred
  // wire path a hit is served from the client-supplied instance hash alone,
  // so cross-tenant hits would let one tenant read another's explanations.
  auto other_tenant = request;
  other_tenant.tenant = "globex";
  EXPECT_FALSE(server.Explain(other_tenant).ValueOrDie().cache_hit);

  // Same tenant keeps its own warm path.
  EXPECT_TRUE(server.Explain(request).ValueOrDie().cache_hit);

  // Empty tenant and its normalized form share one cell.
  auto unlabeled = request;
  unlabeled.tenant = "";
  EXPECT_FALSE(server.Explain(unlabeled).ValueOrDie().cache_hit);
  auto normalized = request;
  normalized.tenant = "default";
  EXPECT_TRUE(server.Explain(normalized).ValueOrDie().cache_hit);
}

TEST_F(ExplainServerTest, CacheOptOutNeverHits) {
  ExplainServer server;
  RegisterGbdt(&server);
  auto request = Request(ExplainerKind::kKernelShap);
  request.use_cache = false;
  server.Explain(request).ValueOrDie();
  auto again = server.Explain(request).ValueOrDie();
  EXPECT_FALSE(again.cache_hit);
  EXPECT_EQ(server.cache().GetStats().entries, 0);
}

TEST_F(ExplainServerTest, RegistryReloadKeepsCacheWarm) {
  ExplainServer server;
  RegisterGbdt(&server);
  auto request = Request(ExplainerKind::kKernelShap);
  server.Explain(request).ValueOrDie();

  // Reload the identical snapshot: same fingerprint, so the cache stays hot.
  RegisterGbdt(&server);
  EXPECT_TRUE(server.Explain(request).ValueOrDie().cache_hit);
}

TEST_F(ExplainServerTest, TightDeadlineDegradesDeterministically) {
  // 12 features so the Shapley rungs are well separated (2^12 - 2 > 2048).
  auto [data, gt] = MakeLogisticData(400, 12, 5);
  (void)gt;
  auto model = LogisticRegressionModel::Train(data).ValueOrDie();

  ExplainServer server;
  server.registry()
      .Register("wide", SerializeModel(model),
                Dataset(data.schema(),
                        Matrix(data.x()),  // full copy as background
                        data.y()))
      .ValueOrDie();

  ExplainRequest request;
  request.model = "wide";
  request.instance = data.Row(0);
  request.kind = ExplainerKind::kKernelShap;
  request.fidelity = FidelityTier::kHigh;
  request.deadline_ms = 40.0;

  auto response = server.Explain(request).ValueOrDie();
  EXPECT_TRUE(response.degraded);
  EXPECT_GT(static_cast<int>(response.served_tier),
            static_cast<int>(FidelityTier::kHigh));
  // The tier decision is pure arithmetic: the same request always lands on
  // the same rung.
  auto repeat = server.Explain(request).ValueOrDie();
  EXPECT_EQ(repeat.served_tier, response.served_tier);
  EXPECT_EQ(PayloadHash(repeat), PayloadHash(response));

  // Without a deadline the requested tier is served.
  request.deadline_ms = 0.0;
  auto full = server.Explain(request).ValueOrDie();
  EXPECT_FALSE(full.degraded);
  EXPECT_EQ(full.served_tier, FidelityTier::kHigh);
  EXPECT_GT(full.planned_evals, response.planned_evals);
}

TEST_F(ExplainServerTest, DegradationRefusedFailsTheRequest) {
  ExplainServer server;
  RegisterGbdt(&server);
  auto request = Request(ExplainerKind::kKernelShap);
  request.deadline_ms = 0.1;  // Below the cost model's fixed overhead.
  request.allow_degradation = false;
  auto result = server.Explain(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ExplainServerTest, UnknownModelAndSchemaMismatchAreErrors) {
  ExplainServer server;
  RegisterGbdt(&server);

  auto request = Request(ExplainerKind::kKernelShap);
  request.model = "nope";
  EXPECT_EQ(server.Explain(request).status().code(), StatusCode::kNotFound);

  request = Request(ExplainerKind::kKernelShap);
  request.instance = {1.0};
  EXPECT_EQ(server.Explain(request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExplainServerTest, TreeShapOnNonTreeModelIsInvalid) {
  ExplainServer server;
  auto logistic = LogisticRegressionModel::Train(train_).ValueOrDie();
  server.registry()
      .Register("logit", SerializeModel(logistic), background_)
      .ValueOrDie();
  auto request = Request(ExplainerKind::kTreeShap);
  request.model = "logit";
  EXPECT_EQ(server.Explain(request).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExplainServerTest, AsyncPathMatchesSync) {
  ExplainServer server;
  RegisterGbdt(&server);
  auto request = Request(ExplainerKind::kSamplingShapley);
  request.use_cache = false;

  auto sync = server.Explain(request).ValueOrDie();
  auto future = server.SubmitAsync(request).ValueOrDie();
  auto async = future.get().ValueOrDie();
  EXPECT_EQ(PayloadHash(sync), PayloadHash(async));
}

TEST_F(ExplainServerTest, EveryExplainerKindServes) {
  ExplainServer server;
  RegisterGbdt(&server);
  for (ExplainerKind kind :
       {ExplainerKind::kTreeShap, ExplainerKind::kKernelShap,
        ExplainerKind::kSamplingShapley, ExplainerKind::kExactShapley,
        ExplainerKind::kLime, ExplainerKind::kAnchors,
        ExplainerKind::kCounterfactual}) {
    auto request = Request(kind);
    request.fidelity = FidelityTier::kMinimal;  // Keep the test fast.
    auto result = server.Explain(request);
    ASSERT_TRUE(result.ok()) << ExplainerKindName(kind) << ": "
                             << result.status().ToString();
    EXPECT_EQ(result.ValueOrDie().kind, kind);
  }
}

TEST_F(ExplainServerTest, ResponsesAreBitIdenticalAcrossThreadCounts) {
  const std::vector<ExplainerKind> kinds = {
      ExplainerKind::kTreeShap, ExplainerKind::kKernelShap,
      ExplainerKind::kSamplingShapley, ExplainerKind::kLime};

  std::map<ExplainerKind, uint64_t> reference;
  for (int threads : {1, 4, 8}) {
    SetNumThreads(threads);
    ExplainServer server;  // Fresh cache per thread count.
    RegisterGbdt(&server);
    for (ExplainerKind kind : kinds) {
      auto request = Request(kind);
      request.fidelity = FidelityTier::kReduced;
      uint64_t hash =
          PayloadHash(server.Explain(request).ValueOrDie());
      auto [it, inserted] = reference.emplace(kind, hash);
      EXPECT_EQ(it->second, hash)
          << ExplainerKindName(kind) << " differs at " << threads
          << " threads";
    }
  }
}

TEST_F(ExplainServerTest, ConcurrentClientsGetConsistentAnswers) {
  SetNumThreads(4);
  ExplainServer server;
  RegisterGbdt(&server);

  auto request = Request(ExplainerKind::kSamplingShapley);
  request.fidelity = FidelityTier::kMinimal;
  const uint64_t expected =
      PayloadHash(server.Explain(request).ValueOrDie());
  server.cache().Clear();

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::atomic<int> consistent{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 4; ++i) {
        auto result = server.Explain(request);
        if (result.ok() &&
            PayloadHash(result.ValueOrDie()) == expected)
          ++consistent;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(consistent, kClients * 4);
  // Coalescing + caching: far fewer executions than requests.
  auto stats = server.cache().GetStats();
  EXPECT_GE(stats.hits, 1);
}

TEST_F(ExplainServerTest, ProvenanceIsCompleteOnMissAndHit) {
  ExplainServer server;
  RegisterGbdt(&server);
  auto request = Request(ExplainerKind::kKernelShap);

  auto miss = server.Explain(request).ValueOrDie();
  const ExplanationProvenance& mp = miss.provenance;
  EXPECT_TRUE(mp.complete);
  EXPECT_NE(mp.trace_id, 0u);
  EXPECT_NE(mp.root_span_id, 0u);
  EXPECT_FALSE(mp.cache_hit);
  EXPECT_FALSE(mp.coalesced);
  EXPECT_EQ(mp.tenant, "default");
  EXPECT_EQ(mp.model, "loans");
  EXPECT_STREQ(mp.kind, ExplainerKindName(ExplainerKind::kKernelShap));
  EXPECT_STREQ(mp.served_tier, FidelityTierName(miss.served_tier));
  EXPECT_GT(mp.planned_evals, 0);
  EXPECT_GT(mp.used_evals, 0);
  EXPECT_STRNE(mp.simd_backend, "");
  EXPECT_GE(mp.batch_size, 1);
  EXPECT_GT(mp.compute_ms, 0.0);
  EXPECT_GE(mp.total_ms, mp.compute_ms);

  auto hit = server.Explain(request).ValueOrDie();
  ASSERT_TRUE(hit.cache_hit);
  const ExplanationProvenance& hp = hit.provenance;
  EXPECT_TRUE(hp.complete);
  EXPECT_TRUE(hp.cache_hit);
  // The hit is a new request: its own trace identity, but the payload and
  // its producing-execution facts are shared with the miss.
  EXPECT_NE(hp.trace_id, 0u);
  EXPECT_NE(hp.trace_id, mp.trace_id);
  EXPECT_NE(hp.root_span_id, mp.root_span_id);
  EXPECT_EQ(hp.used_evals, 0);
  EXPECT_EQ(hp.compute_ms, 0.0);
  EXPECT_EQ(hp.queue_ms, 0.0);
  EXPECT_STREQ(hp.algorithm, mp.algorithm);
  EXPECT_EQ(PayloadHash(hit), PayloadHash(miss));
}

TEST_F(ExplainServerTest, CallerTraceIdPropagatesToProvenance) {
  ExplainServer server;
  RegisterGbdt(&server);
  auto request = Request(ExplainerKind::kTreeShap);
  request.trace.trace_id = 1234;
  auto response = server.Explain(request).ValueOrDie();
  EXPECT_EQ(response.provenance.trace_id, 1234u);
  EXPECT_NE(response.provenance.root_span_id, 0u);

  // Server-assigned ids come from a seeded deterministic stream: two
  // servers with the same seed assign the same first id.
  ExplainServer::Config config;
  config.trace_seed = 99;
  ExplainServer a(config);
  ExplainServer b(config);
  RegisterGbdt(&a);
  RegisterGbdt(&b);
  auto from_a = a.Explain(Request(ExplainerKind::kTreeShap)).ValueOrDie();
  auto from_b = b.Explain(Request(ExplainerKind::kTreeShap)).ValueOrDie();
  EXPECT_EQ(from_a.provenance.trace_id, from_b.provenance.trace_id);
  EXPECT_NE(from_a.provenance.trace_id, 0u);
}

TEST_F(ExplainServerTest, TenantSloAccountsMissesDegradationAndErrors) {
  ExplainServer server;
  RegisterGbdt(&server);

  // Unmeetable deadline: degrades to a cheaper rung and still misses.
  auto slow = Request(ExplainerKind::kKernelShap);
  slow.tenant = "acme";
  slow.deadline_ms = 1e-4;
  auto degraded = server.Explain(slow).ValueOrDie();
  EXPECT_TRUE(degraded.degraded);
  EXPECT_FALSE(degraded.deadline_met);
  EXPECT_FALSE(degraded.provenance.deadline_met);

  auto ok = Request(ExplainerKind::kTreeShap);
  ok.tenant = "acme";
  (void)server.Explain(ok).ValueOrDie();

  auto bad = Request(ExplainerKind::kTreeShap);
  bad.tenant = "acme";
  bad.model = "missing";
  EXPECT_FALSE(server.Explain(bad).ok());

  std::map<std::pair<std::string, std::string>, TenantSloStats> by_key;
  for (const auto& s : server.slo().Snapshot())
    by_key[{s.tenant, s.model}] = s;

  ASSERT_TRUE(by_key.count({"acme", "loans"}));
  const TenantSloStats& loans = by_key[{"acme", "loans"}];
  EXPECT_EQ(loans.requests, 2);
  EXPECT_EQ(loans.deadline_misses, 1);
  EXPECT_EQ(loans.degraded, 1);
  EXPECT_EQ(loans.errors, 0);
  EXPECT_GT(loans.latency_p99_ms, 0.0);
  // 1 miss in 2 requests against a 99.9% target: budget blown many times
  // over.
  EXPECT_GT(loans.deadline_budget_used, 1.0);
  EXPECT_GT(loans.degradation_budget_used, 1.0);

  ASSERT_TRUE(by_key.count({"acme", "missing"}));
  const TenantSloStats& missing = by_key[{"acme", "missing"}];
  EXPECT_EQ(missing.requests, 1);
  EXPECT_EQ(missing.errors, 1);
  // Errors count against the deadline budget.
  EXPECT_GT(missing.deadline_budget_used, 1.0);
}

TEST_F(ExplainServerTest, CoalescedFollowersLinkToLeaderTrace) {
  ExplainServer server;
  RegisterGbdt(&server);
  auto request = Request(ExplainerKind::kKernelShap);
  request.fidelity = FidelityTier::kMinimal;

  // Hold the batch worker so identical submissions pile up and coalesce
  // into one batch (and one execution).
  constexpr int kDuplicates = 3;
  server.batcher()->Pause();
  std::vector<std::future<Result<ExplainResponse>>> futures;
  for (int i = 0; i < kDuplicates; ++i)
    futures.push_back(server.SubmitAsync(request).ValueOrDie());
  server.batcher()->Resume();

  std::vector<ExplainResponse> responses;
  for (auto& f : futures) responses.push_back(f.get().ValueOrDie());

  int leaders = 0;
  uint64_t leader_trace = 0;
  for (const auto& r : responses) {
    EXPECT_TRUE(r.provenance.complete);
    EXPECT_EQ(r.provenance.batch_size, kDuplicates);
    if (!r.provenance.coalesced) {
      ++leaders;
      leader_trace = r.provenance.trace_id;
    }
  }
  ASSERT_EQ(leaders, 1);
  for (const auto& r : responses) {
    if (r.provenance.coalesced) {
      EXPECT_EQ(r.provenance.coalesced_onto, leader_trace);
      EXPECT_NE(r.provenance.trace_id, leader_trace);
      // A follower ran nothing: the leader's execution is billed once.
      EXPECT_EQ(r.provenance.used_evals, 0);
      EXPECT_EQ(r.provenance.compute_ms, 0.0);
    } else {
      EXPECT_GT(r.provenance.used_evals, 0);
    }
    EXPECT_EQ(PayloadHash(r), PayloadHash(responses[0]));
  }
}

TEST_F(ExplainServerTest, MetricsSnapshotRendersSloStandings) {
  ExplainServer server;
  RegisterGbdt(&server);
  auto request = Request(ExplainerKind::kTreeShap);
  request.tenant = "acme";
  (void)server.Explain(request).ValueOrDie();

  const std::string prom =
      server.MetricsSnapshot(ExplainServer::MetricsFormat::kPrometheus);
  EXPECT_NE(prom.find("xai_slo_requests_total{tenant=\"acme\""),
            std::string::npos);
  EXPECT_NE(prom.find("xai_slo_deadline_budget_used"), std::string::npos);
  EXPECT_NE(prom.find("xai_slo_latency_ms"), std::string::npos);

  const std::string jsonl =
      server.MetricsSnapshot(ExplainServer::MetricsFormat::kJsonl);
  EXPECT_NE(jsonl.find("\"type\":\"slo\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"tenant\":\"acme\""), std::string::npos);
}

TEST_F(ExplainServerTest, MetricsSnapshotRendersAttachedAdmissionAndSessions) {
  ExplainServer server;
  RegisterGbdt(&server);
  async::AdmissionController admission(async::AdmissionController::Config{});
  async::SessionManager sessions(&server);
  server.AttachAdmission(&admission);
  server.AttachSessions(&sessions);

  ASSERT_EQ(admission.Admit("acme", 0),
            async::AdmissionController::Outcome::kAdmitted);
  admission.OnComplete("acme");
  const uint64_t session = sessions.OpenSession(0).ValueOrDie();
  auto request = Request(ExplainerKind::kKernelShap);
  (void)sessions.Explain(session, request, 0).ValueOrDie();

  const std::string prom =
      server.MetricsSnapshot(ExplainServer::MetricsFormat::kPrometheus);
  EXPECT_NE(prom.find("xai_admission_admitted_total{tenant=\"acme\""),
            std::string::npos);
  EXPECT_NE(prom.find("xai_admission_tokens_available"), std::string::npos);
  EXPECT_NE(prom.find("xai_sessions_active 1"), std::string::npos);
  EXPECT_NE(prom.find("xai_sessions_memo_misses_total"), std::string::npos);

  const std::string jsonl =
      server.MetricsSnapshot(ExplainServer::MetricsFormat::kJsonl);
  EXPECT_NE(jsonl.find("\"type\":\"admission\""), std::string::npos);
  EXPECT_NE(jsonl.find("{\"type\":\"sessions\",\"active\":1"),
            std::string::npos);

  // Detached, the sections disappear (and dangling reads are impossible).
  server.AttachAdmission(nullptr);
  server.AttachSessions(nullptr);
  const std::string detached =
      server.MetricsSnapshot(ExplainServer::MetricsFormat::kPrometheus);
  EXPECT_EQ(detached.find("xai_admission_"), std::string::npos);
  EXPECT_EQ(detached.find("xai_sessions_"), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace xai
