#!/usr/bin/env python3
"""Compares two BENCH_<id>.json run reports and flags metric regressions.

Usage: compare_bench_reports.py BASELINE.json CURRENT.json [--tolerance=0.3]

For every metric present in both reports, a direction is inferred from the
metric name (stdlib only, no config file):

  * higher-is-better: speedup, throughput, accuracy, r2, identical,
    cache_hits, coverage, precision;
  * lower-is-better : time, latency, ms, error/err, overhead, misses;
  * boolean gates   : *_identical / *_bit_identical* metrics regress the
    moment they leave 1.0, tolerance notwithstanding — losing bit-identity
    is a correctness bug, not noise;
  * unknown names are printed for information and never fail the run.

A directional metric regresses when it is worse than the baseline by more
than --tolerance (default 0.30, i.e. 30% — wide because CI runners are
noisy; wall-clock ratios like speedups are more portable than absolute
times). Metrics only in one report are listed but never fatal, so adding or
renaming metrics does not break the comparison gate.

Exit code 0 when no metric regressed, 1 otherwise (the CI step running this
is non-fatal: it annotates the build rather than failing it).
"""

import json
import sys

HIGHER_IS_BETTER = ("speedup", "throughput", "accuracy", "r2", "identical",
                    "cache_hits", "coverage", "precision")
LOWER_IS_BETTER = ("time", "latency", "ms", "error", "err", "overhead",
                   "misses")


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")
    if not isinstance(report.get("metrics"), dict):
        fail(f"{path} has no metrics object")
    return report


def direction(name):
    lowered = name.lower()
    if "identical" in lowered:
        return "boolean"
    for needle in HIGHER_IS_BETTER:
        if needle in lowered:
            return "higher"
    for needle in LOWER_IS_BETTER:
        if needle in lowered:
            return "lower"
    return "unknown"


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    tolerance = 0.30
    for arg in sys.argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
    if len(args) != 2:
        fail(f"usage: {sys.argv[0]} BASELINE.json CURRENT.json "
             f"[--tolerance=0.3]")
    baseline_path, current_path = args
    baseline = load(baseline_path)
    current = load(current_path)
    if baseline.get("id") != current.get("id"):
        print(f"note: comparing different ids "
              f"{baseline.get('id')!r} vs {current.get('id')!r}")

    base_metrics = baseline["metrics"]
    curr_metrics = current["metrics"]
    regressions = []
    compared = 0

    for name in sorted(set(base_metrics) & set(curr_metrics)):
        base, curr = base_metrics[name], curr_metrics[name]
        if not all(isinstance(v, (int, float)) for v in (base, curr)):
            continue
        compared += 1
        kind = direction(name)
        verdict = "ok"
        if kind == "boolean":
            if base == 1.0 and curr != 1.0:
                verdict = "REGRESSION"
        elif kind == "higher":
            if curr < base * (1.0 - tolerance):
                verdict = "REGRESSION"
        elif kind == "lower":
            # Guard against a zero/near-zero baseline blowing up the ratio
            # (e.g. a sub-noise overhead percentage).
            if curr > base * (1.0 + tolerance) and curr - base > 1e-9:
                verdict = "REGRESSION"
        else:
            verdict = "info"
        delta = curr - base
        print(f"{verdict:>10}  {name:<44} base={base:<12.6g} "
              f"curr={curr:<12.6g} delta={delta:+.6g} [{kind}]")
        if verdict == "REGRESSION":
            regressions.append(name)

    for name in sorted(set(base_metrics) - set(curr_metrics)):
        print(f"{'gone':>10}  {name} (only in baseline)")
    for name in sorted(set(curr_metrics) - set(base_metrics)):
        print(f"{'new':>10}  {name} (only in current)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{tolerance:.0%} tolerance: {', '.join(regressions)}",
              file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: {compared} shared metrics within {tolerance:.0%} "
          f"tolerance")


if __name__ == "__main__":
    main()
