#!/usr/bin/env python3
"""Reconstructs per-request causal trees from an exported Chrome trace.

Usage: analyze_trace.py BENCH_<id>.trace.json [--require-traces N]
                        [--provenance BENCH_<id>.provenance.jsonl] [--top K]

The serving layer stamps every sampled span with decimal-string
args.trace_id / span_id / parent_span_id (see src/xai/core/telemetry.cc,
WriteChromeTrace). This tool groups events by trace_id, rebuilds each
request's span tree via parent_span_id, and prints the critical path —
the chain of longest-duration children from the root — for the slowest
requests. Spans whose parent is absent from the export (gated out by
XAI_SPAN_IF, head-sampled away, or dropped on buffer overflow) are
treated as roots of their own subtree rather than discarded.

With --provenance, each reconstructed trace is joined against the
provenance JSONL on trace_id and annotated with tenant/model/tier.
With --require-traces N, exits 1 unless at least N distinct non-zero
trace_ids are present (the CI hook that keeps the causal stamping from
silently regressing). Buffer drops recorded in the export header are
always surfaced, as a warning when non-zero.

Stdlib only; exit 0 on success, 1 on any violation.
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_trace(path):
    try:
        with open(path) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load chrome trace {path}: {e}")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail("chrome trace missing traceEvents list")
    return trace.get("otherData", {}), events


def load_provenance(path):
    by_trace = {}
    try:
        with open(path) as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{path}:{line_no}: bad JSON: {e}")
                by_trace[record.get("trace_id", "0")] = record
    except OSError as e:
        fail(f"cannot load provenance {path}: {e}")
    return by_trace


def group_traces(events):
    """trace_id -> list of spans with causal ids, plus count of flat spans."""
    traces = defaultdict(list)
    flat = 0
    for e in events:
        args = e.get("args")
        tid = args.get("trace_id", "0") if isinstance(args, dict) else "0"
        if tid == "0":
            flat += 1
            continue
        traces[tid].append({
            "name": e.get("name", "?"),
            "ts": e.get("ts", 0.0),
            "dur": e.get("dur", 0.0),
            "span_id": args.get("span_id", "0"),
            "parent": args.get("parent_span_id", "0"),
        })
    return traces, flat


def critical_path(spans):
    """Longest-child chain from each root; returns the slowest one."""
    by_id = {s["span_id"]: s for s in spans}
    children = defaultdict(list)
    roots = []
    for s in spans:
        # An absent parent (gated, unsampled, or dropped) orphans the span;
        # it then anchors its own subtree instead of vanishing.
        if s["parent"] != "0" and s["parent"] in by_id:
            children[s["parent"]].append(s)
        else:
            roots.append(s)
    best = []
    for root in roots:
        path = [root]
        node = root
        while children[node["span_id"]]:
            node = max(children[node["span_id"]], key=lambda c: c["dur"])
            path.append(node)
        if not best or path[0]["dur"] > best[0]["dur"]:
            best = path
    return best


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("trace")
    parser.add_argument("--require-traces", type=int, default=0,
                        metavar="N")
    parser.add_argument("--provenance", metavar="FILE")
    parser.add_argument("--top", type=int, default=5, metavar="K")
    opts = parser.parse_args()

    header, events = load_trace(opts.trace)
    traces, flat = group_traces(events)
    provenance = load_provenance(opts.provenance) if opts.provenance else {}

    dropped = header.get("dropped_events", 0)
    retained_dropped = header.get("retained_dropped", 0)
    print(f"{opts.trace}: {len(events)} events, {len(traces)} traces, "
          f"{flat} flat spans (no request context)")
    print(f"buffers: capacity/thread={header.get('buffer_capacity_per_thread')}"
          f" retained={header.get('retained_capacity')}"
          f" sample_rate={header.get('sample_rate')}")
    if dropped or retained_dropped:
        print(f"WARNING: trace is truncated — {dropped} thread-buffer drops, "
              f"{retained_dropped} retained-buffer drops", file=sys.stderr)

    ranked = sorted(traces.items(),
                    key=lambda kv: max(s["dur"] for s in kv[1]),
                    reverse=True)
    for trace_id, spans in ranked[:opts.top]:
        path = critical_path(spans)
        label = ""
        record = provenance.get(trace_id)
        if record:
            label = (f"  [{record.get('tenant')}/{record.get('model')} "
                     f"{record.get('kind')} tier={record.get('served_tier')}]")
        total = path[0]["dur"] if path else 0.0
        print(f"\ntrace {trace_id}: {len(spans)} spans, "
              f"root {total:.1f} us{label}")
        for depth, span in enumerate(path):
            share = 100.0 * span["dur"] / total if total > 0 else 0.0
            print(f"  {'  ' * depth}{span['name']:<32} "
                  f"{span['dur']:9.1f} us  ({share:5.1f}% of root)")

    if opts.provenance:
        matched = sum(1 for tid in traces if tid in provenance)
        print(f"\nprovenance join: {matched}/{len(traces)} traces matched")

    if opts.require_traces and len(traces) < opts.require_traces:
        fail(f"only {len(traces)} distinct traces, "
             f"require {opts.require_traces}")
    print("OK")


if __name__ == "__main__":
    main()
