#!/usr/bin/env python3
"""Validates a BENCH_<id>.json run report against the expected schema.

Usage: validate_bench_report.py BENCH_e02.json [--require-telemetry]

Checks (stdlib only, no jsonschema dependency):
  * the report parses as JSON and carries id/claim/threads/metrics/notes/
    telemetry/trace_file;
  * telemetry holds counter and histogram maps; with --require-telemetry
    (an XAI_TELEMETRY=1 build) the counter snapshot must include a positive
    "model/evals" and every histogram must expose count/sum/p50/p95/p99;
  * the referenced Chrome trace file loads as JSON with a traceEvents list
    (non-empty when telemetry is required).

Exit code 0 on success; prints the first violation and exits 1 otherwise.
"""

import json
import os
import sys


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    require_telemetry = "--require-telemetry" in sys.argv
    if len(args) != 1:
        fail(f"usage: {sys.argv[0]} BENCH_<id>.json [--require-telemetry]")
    report_path = args[0]

    try:
        with open(report_path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {report_path}: {e}")

    for key, typ in [("id", str), ("claim", str), ("threads", int),
                     ("telemetry_compiled", bool), ("metrics", dict),
                     ("notes", dict), ("telemetry", dict),
                     ("trace_file", str)]:
        if key not in report:
            fail(f"missing top-level key {key!r}")
        if not isinstance(report[key], typ):
            fail(f"key {key!r} is {type(report[key]).__name__}, "
                 f"want {typ.__name__}")

    if report["threads"] < 1:
        fail("threads must be >= 1")
    for name, value in report["metrics"].items():
        if not isinstance(value, (int, float)):
            fail(f"metric {name!r} is not numeric")

    telemetry = report["telemetry"]
    for key in ("counters", "histograms"):
        if not isinstance(telemetry.get(key), dict):
            fail(f"telemetry.{key} missing or not an object")

    if require_telemetry:
        if not report["telemetry_compiled"]:
            fail("--require-telemetry but report says telemetry_compiled "
                 "is false")
        # Every bench drives work through the model or a valuation utility;
        # one of the two counters must have fired (e08's kNN utility never
        # touches a Model, so model/evals alone is too strict).
        work = {name: telemetry["counters"].get(name, 0)
                for name in ("model/evals", "valuation/utility_calls")}
        if not any(isinstance(v, int) and v > 0 for v in work.values()):
            fail(f"no work counter is positive: {work}")
        if not telemetry["histograms"]:
            fail("histogram snapshot is empty")
    for name, hist in telemetry["histograms"].items():
        for stat in ("count", "sum", "p50", "p95", "p99"):
            if stat not in hist:
                fail(f"histogram {name!r} missing {stat!r}")
        if hist["count"] > 0 and not (hist["p50"] <= hist["p95"]
                                      <= hist["p99"]):
            fail(f"histogram {name!r} quantiles not monotone: {hist}")

    trace_path = os.path.join(os.path.dirname(report_path) or ".",
                              report["trace_file"])
    try:
        with open(trace_path) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load chrome trace {trace_path}: {e}")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail("chrome trace missing traceEvents list")
    if require_telemetry and not events:
        fail("chrome trace has no events in a telemetry-enabled build")
    for e in events[:100]:
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"trace event missing {key!r}: {e}")

    overhead = report["metrics"].get("telemetry_overhead_pct")
    if overhead is not None:
        print(f"telemetry overhead on hot loop: {overhead:+.2f}%")

    print(f"OK: {report_path} ({len(report['metrics'])} metrics, "
          f"{len(telemetry['counters'])} counters, "
          f"{len(telemetry['histograms'])} histograms, "
          f"{len(events)} trace events)")


if __name__ == "__main__":
    main()
