#!/usr/bin/env python3
"""Validates a BENCH_<id>.json run report against the expected schema.

Usage: validate_bench_report.py BENCH_e02.json [--require-telemetry]
           [--require-empty-trace] [--provenance BENCH_<id>.provenance.jsonl]

Checks (stdlib only, no jsonschema dependency):
  * the report parses as JSON and carries id/claim/threads/metrics/notes/
    telemetry/trace_file;
  * telemetry holds counter and histogram maps; with --require-telemetry
    (an XAI_TELEMETRY=1 build) the counter snapshot must include a positive
    "model/evals" and every histogram must expose count/sum/p50/p95/p99;
  * the referenced Chrome trace file loads as JSON with a traceEvents list
    (non-empty when telemetry is required); --require-empty-trace instead
    asserts zero events — the XAI_TELEMETRY=0 job's proof that span
    recording compiles out entirely;
  * with --provenance, every line of the provenance JSONL carries the full
    per-request schema (typed fields, complete=true, non-zero decimal
    trace_id, non-negative timings, coalesced implies coalesced_onto).
    Provenance is a product feature, so this check runs in telemetry-off
    jobs too.

Exit code 0 on success; prints the first violation and exits 1 otherwise.
"""

import json
import os
import sys

PROVENANCE_SCHEMA = {
    "trace_id": str, "root_span_id": str, "tenant": str, "model": str,
    "kind": str, "requested_tier": str, "served_tier": str,
    "algorithm": str, "degraded": bool, "cache_hit": bool,
    "coalesced": bool, "coalesced_onto": str, "planned_evals": int,
    "used_evals": int, "simd_backend": str, "batch_size": int,
    "queue_ms": (int, float), "compute_ms": (int, float),
    "total_ms": (int, float), "deadline_met": bool, "shed": bool,
    "complete": bool,
}

# bench_e23's acceptance gates: *_ok metrics are computed by the bench
# itself (1.0 = the gate held); the two absolutes are restated here so a
# bench bug that stops computing them fails loudly.
E23_GATES = {
    "arrival_rate_ok": 1.0,
    "shed_rate_bounded_ok": 1.0,
    "torn_responses": 0.0,
    "session_speedup_ok": 1.0,
    "session_identical_to_stateless": 1.0,
    "determinism_bit_identical": 1.0,
}

# bench_e24's acceptance gates. Bit-identity and arena steady-state are
# exact; the speedups are floors with margin below the numbers measured on
# the 1-CPU CI container (single ~1.16-1.26x, batch ~1.25x) — the walk is
# dominated by the Algorithm 2 path arithmetic that bit-identity pins in
# place, so the structural win is real but bounded, and a 1-CPU host cannot
# show the batch API's across-rows scaling on top.
E24_EQ_GATES = {
    "rf_single_bit_identical": 1.0,
    "gbdt_single_bit_identical": 1.0,
    "global_bit_identical_t1": 1.0,
    "global_bit_identical_t4": 1.0,
    "global_bit_identical_t8": 1.0,
    "serving_arena_steady_ok": 1.0,
}
E24_FLOOR_GATES = {
    "rf_single_speedup_serial": 1.03,
    "gbdt_single_speedup_serial": 1.05,
    "global_speedup_max": 1.05,
}

# bench_e25's acceptance gates. The bit-identity metrics are exact — the
# columnar engine must reproduce the row engine to the last bit (values,
# types, provenance polynomials) at 1/4/8 threads. The speedup floors sit
# below the numbers measured on the 1-CPU CI container (scan ~60x, filter
# ~3.2-3.6x, aggregate ~6.5x, join ~1.8-2.0x, compiled lineage ~1.2-1.4x,
# shared-scan Shapley ~36-67x): the engine claim is >= 3x on the
# scan/filter/aggregate kernels; the join is bounded by output
# materialization and the lineage micro by the interpreter's own
# short-circuiting, so their floors are correspondingly lower.
E25_EQ_GATES = {
    "pipeline_bit_identical_t1": 1.0,
    "pipeline_bit_identical_t4": 1.0,
    "pipeline_bit_identical_t8": 1.0,
    "lineage_identical": 1.0,
    "shapley_bit_identical": 1.0,
}
E25_FLOOR_GATES = {
    "scan_speedup": 3.0,
    "filter_speedup": 3.0,
    "aggregate_speedup": 3.0,
    "join_speedup": 1.5,
    "lineage_eval_speedup": 1.0,
    "shapley_speedup_max": 2.0,
}


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_provenance(path):
    records = 0
    try:
        with open(path) as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                where = f"{path}:{line_no}"
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{where}: bad JSON: {e}")
                for key, typ in PROVENANCE_SCHEMA.items():
                    if key not in record:
                        fail(f"{where}: missing {key!r}")
                    value = record[key]
                    # bool is an int subclass; keep int fields strictly int.
                    if isinstance(value, bool) and typ is not bool:
                        fail(f"{where}: {key!r} is bool, want {typ}")
                    if not isinstance(value, typ):
                        fail(f"{where}: {key!r} is "
                             f"{type(value).__name__}")
                # Shed records never executed, so they are (by design) not
                # complete; anything that did execute must be.
                if not record["complete"] and not record["shed"]:
                    fail(f"{where}: provenance record not complete")
                if record["complete"] and record["shed"]:
                    fail(f"{where}: record is both complete and shed")
                if not record["trace_id"].isdigit():
                    fail(f"{where}: trace_id {record['trace_id']!r} is not "
                         "a decimal string")
                if int(record["trace_id"]) == 0 and not record["shed"]:
                    fail(f"{where}: trace_id is zero on a non-shed record")
                for key in ("queue_ms", "compute_ms", "total_ms",
                            "planned_evals", "used_evals", "batch_size"):
                    if record[key] < 0:
                        fail(f"{where}: {key} is negative")
                if record["coalesced"] and record["coalesced_onto"] == "0":
                    fail(f"{where}: coalesced record has no leader trace")
                records += 1
    except OSError as e:
        fail(f"cannot load provenance {path}: {e}")
    if records == 0:
        fail(f"{path}: no provenance records")
    return records


def main():
    usage = (f"usage: {sys.argv[0]} BENCH_<id>.json [--require-telemetry] "
             "[--require-empty-trace] [--provenance FILE] [--e23] [--e24] "
             "[--e25]")
    require_telemetry = False
    require_empty_trace = False
    check_e23 = False
    check_e24 = False
    check_e25 = False
    provenance_path = None
    positional = []
    argv = sys.argv[1:]
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--require-telemetry":
            require_telemetry = True
        elif a == "--require-empty-trace":
            require_empty_trace = True
        elif a == "--e23":
            check_e23 = True
        elif a == "--e24":
            check_e24 = True
        elif a == "--e25":
            check_e25 = True
        elif a == "--provenance":
            if i + 1 >= len(argv):
                fail(usage)
            i += 1
            provenance_path = argv[i]
        elif a.startswith("--"):
            fail(f"unknown flag {a!r}\n{usage}")
        else:
            positional.append(a)
        i += 1
    if require_telemetry and require_empty_trace:
        fail("--require-telemetry and --require-empty-trace conflict")
    if len(positional) != 1:
        fail(usage)
    report_path = positional[0]

    try:
        with open(report_path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {report_path}: {e}")

    for key, typ in [("id", str), ("claim", str), ("threads", int),
                     ("telemetry_compiled", bool), ("metrics", dict),
                     ("notes", dict), ("telemetry", dict),
                     ("trace_file", str)]:
        if key not in report:
            fail(f"missing top-level key {key!r}")
        if not isinstance(report[key], typ):
            fail(f"key {key!r} is {type(report[key]).__name__}, "
                 f"want {typ.__name__}")

    if report["threads"] < 1:
        fail("threads must be >= 1")
    for name, value in report["metrics"].items():
        if not isinstance(value, (int, float)):
            fail(f"metric {name!r} is not numeric")

    telemetry = report["telemetry"]
    for key in ("counters", "histograms"):
        if not isinstance(telemetry.get(key), dict):
            fail(f"telemetry.{key} missing or not an object")

    if require_telemetry:
        if not report["telemetry_compiled"]:
            fail("--require-telemetry but report says telemetry_compiled "
                 "is false")
        # Every bench drives work through the model, a valuation utility,
        # the flat TreeSHAP kernel, or the columnar relational operators;
        # one of these counters must have fired (e08's kNN utility never
        # touches a Model, e24's tree walks are not model evaluations, and
        # e25's operators process relations rather than models, so
        # model/evals alone is too strict).
        work = {name: telemetry["counters"].get(name, 0)
                for name in ("model/evals", "valuation/utility_calls",
                             "tree_shap/flat_rows",
                             "relational/columnar_rows")}
        if not any(isinstance(v, int) and v > 0 for v in work.values()):
            fail(f"no work counter is positive: {work}")
        if not telemetry["histograms"]:
            fail("histogram snapshot is empty")
    for name, hist in telemetry["histograms"].items():
        for stat in ("count", "sum", "p50", "p95", "p99"):
            if stat not in hist:
                fail(f"histogram {name!r} missing {stat!r}")
        if hist["count"] > 0 and not (hist["p50"] <= hist["p95"]
                                      <= hist["p99"]):
            fail(f"histogram {name!r} quantiles not monotone: {hist}")

    trace_path = os.path.join(os.path.dirname(report_path) or ".",
                              report["trace_file"])
    try:
        with open(trace_path) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load chrome trace {trace_path}: {e}")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail("chrome trace missing traceEvents list")
    if require_telemetry and not events:
        fail("chrome trace has no events in a telemetry-enabled build")
    if require_empty_trace and events:
        fail(f"chrome trace has {len(events)} events but the build claims "
             "telemetry compiled out")
    for e in events[:100]:
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"trace event missing {key!r}: {e}")

    if check_e23:
        if report["id"] != "e23":
            fail(f"--e23 against report id {report['id']!r}")
        for name, want in E23_GATES.items():
            got = report["metrics"].get(name)
            if got is None:
                fail(f"e23 gate metric {name!r} missing")
            if got != want:
                fail(f"e23 gate {name} = {got}, want {want}")
        if report["metrics"].get("open_loop_shed", 0) <= 0:
            fail("e23 ran without exercising the shed path")

    if check_e24:
        if report["id"] != "e24":
            fail(f"--e24 against report id {report['id']!r}")
        for name, want in E24_EQ_GATES.items():
            got = report["metrics"].get(name)
            if got is None:
                fail(f"e24 gate metric {name!r} missing")
            if got != want:
                fail(f"e24 gate {name} = {got}, want {want}")
        for name, floor in E24_FLOOR_GATES.items():
            got = report["metrics"].get(name)
            if got is None:
                fail(f"e24 gate metric {name!r} missing")
            if got < floor:
                fail(f"e24 gate {name} = {got}, want >= {floor}")
        if report["metrics"].get("serving_treeshap_ms", 0) <= 0:
            fail("e24 ran without timing the serving kTreeShap path")
        counters = telemetry["counters"]
        if counters.get("tree_shap/flat_rows", 0) <= 0:
            fail("e24 ran without the flat kernel counting rows")

    if check_e25:
        if report["id"] != "e25":
            fail(f"--e25 against report id {report['id']!r}")
        for name, want in E25_EQ_GATES.items():
            got = report["metrics"].get(name)
            if got is None:
                fail(f"e25 gate metric {name!r} missing")
            if got != want:
                fail(f"e25 gate {name} = {got}, want {want}")
        for name, floor in E25_FLOOR_GATES.items():
            got = report["metrics"].get(name)
            if got is None:
                fail(f"e25 gate metric {name!r} missing")
            if got < floor:
                fail(f"e25 gate {name} = {got}, want >= {floor}")
        counters = telemetry["counters"]
        if counters.get("relational/columnar_rows", 0) <= 0:
            fail("e25 ran without the columnar operators counting rows")

    provenance_records = 0
    if provenance_path is not None:
        provenance_records = check_provenance(provenance_path)

    overhead = report["metrics"].get("telemetry_overhead_pct")
    if overhead is not None:
        print(f"telemetry overhead on hot loop: {overhead:+.2f}%")

    print(f"OK: {report_path} ({len(report['metrics'])} metrics, "
          f"{len(telemetry['counters'])} counters, "
          f"{len(telemetry['histograms'])} histograms, "
          f"{len(events)} trace events"
          + (f", {provenance_records} provenance records"
             if provenance_path else "") + ")")


if __name__ == "__main__":
    main()
