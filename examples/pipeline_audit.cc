// Provenance-based pipeline debugging (§3): trace rows through a prep
// pipeline and attribute a model-quality regression to the stage that
// caused it.
//
//   ./pipeline_audit

#include <cstdio>
#include <memory>
#include "xai/core/telemetry.h"

#include "xai/data/synthetic.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/metrics.h"
#include "xai/pipeline/operators.h"
#include "xai/pipeline/pipeline.h"
#include "xai/pipeline/stage_attribution.h"

int main(int argc, char** argv) {
  const bool show_telemetry = xai::telemetry::TelemetryFlag(argc, argv);

  using namespace xai;

  Dataset data = MakeLoans(1500, 9);
  auto [input, valid] = data.TrainTestSplit(0.3, 10);
  int income = input.schema().FeatureIndex("income");
  int age = input.schema().FeatureIndex("age");

  // A realistic prep pipeline... with one stage a junior engineer got
  // wrong: the "deduplication" stage flips labels of high-income rows.
  Pipeline pipeline;
  pipeline.Add(std::make_shared<ClipOp>(age, 18.0, 100.0));
  pipeline.Add(std::make_shared<ImputeMeanOp>(income, -999.0));
  pipeline.Add(std::make_shared<CorruptLabelsOp>(
      "dedup_v2", [income](const Vector& x, double) {
        return x[income] > 60.0;
      }));
  pipeline.Add(std::make_shared<ClipOp>(income, 0.0, 400.0));

  // Run with provenance and inspect what touched a few rows.
  PipelineResult result = pipeline.Run(input).ValueOrDie();
  std::printf("row-level provenance samples:\n");
  for (int row : {0, 1, 2}) {
    std::printf("  %s\n", result.TraceRow(row).c_str());
  }

  auto model = LogisticRegressionModel::Train(result.output).ValueOrDie();
  std::printf("\nvalidation accuracy after the pipeline: %.3f (clean "
              "pipeline would give ~0.85)\n",
              EvaluateAccuracy(model, valid));

  // Stage attribution: which stage is responsible?
  auto quality = [&valid](const Dataset& prepared) {
    auto m = LogisticRegressionModel::Train(prepared);
    return m.ok() ? EvaluateAccuracy(*m, valid) : 0.0;
  };
  StageAttribution attribution =
      StageShapley(pipeline, input, quality).ValueOrDie();
  std::printf("\nstage Shapley attribution of validation accuracy:\n%s",
              attribution.ToString().c_str());
  std::printf("\n=> most harmful stage: %s\n",
              attribution.stage_names[attribution.MostHarmfulStage()]
                  .c_str());
  if (show_telemetry)
    std::printf("%s\n", xai::telemetry::SummaryLine().c_str());
  return 0;
}
