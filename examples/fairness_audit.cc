// Fairness auditing with XAI tools (the paper's motivation (3): "the
// identification of sources of harms such as bias and discrimination"):
// group metrics, disparity QII to find proxy features, and partial
// dependence to see how the proxy drives the outcome.
//
//   ./fairness_audit

#include <cstdio>
#include "xai/core/telemetry.h"

#include "xai/data/synthetic.h"
#include "xai/explain/fairness.h"
#include "xai/explain/global_importance.h"
#include "xai/explain/partial_dependence.h"
#include "xai/model/logistic_regression.h"

int main(int argc, char** argv) {
  const bool show_telemetry = xai::telemetry::TelemetryFlag(argc, argv);

  using namespace xai;

  // COMPAS-like data where race never enters the label mechanism but is
  // correlated with priors_count (a proxy).
  Dataset data = MakeRecidivism(4000, 17);
  int race = data.schema().FeatureIndex("race");
  int priors = data.schema().FeatureIndex("priors_count");

  auto model = LogisticRegressionModel::Train(data).ValueOrDie();
  // "Fairness through unawareness": zero the race weight.
  Vector w = model.weights();
  w[race] = 0.0;
  auto unaware = LogisticRegressionModel::FromCoefficients(w, model.bias());

  std::printf("== group fairness of the race-blind model ==\n");
  auto report =
      EvaluateGroupFairness(AsPredictFn(unaware), data, race).ValueOrDie();
  std::printf("%s\n", report.ToString().c_str());
  std::printf(
      "The model never reads race, yet the parity gap is non-zero: a proxy "
      "is at work.\n\n");

  std::printf("== disparity QII: which feature carries the gap? ==\n");
  Rng rng(18);
  Vector influence =
      DisparityQii(AsPredictFn(unaware), data, race, 3, &rng).ValueOrDie();
  std::printf("%s\n",
              ImportanceToString(influence, data.schema()).c_str());
  std::printf("=> randomizing '%s' closes most of the gap: it is the "
              "proxy.\n\n",
              data.schema().features[priors].name.c_str());

  std::printf("== partial dependence of the proxy ==\n");
  auto pd = ComputePartialDependence(AsPredictFn(unaware), data, priors)
                .ValueOrDie();
  std::printf("%s", pd.ToString("priors_count").c_str());
  if (show_telemetry)
    std::printf("%s\n", xai::telemetry::SummaryLine().c_str());
  return 0;
}
