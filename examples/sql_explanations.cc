// Explanations in databases (§3): provenance polynomials, Shapley values of
// tuples, and causal responsibility for a SQL query answer.
//
//   ./sql_explanations

#include <cstdio>
#include "xai/core/telemetry.h"

#include "xai/core/check.h"
#include "xai/dbx/repair_shapley.h"
#include "xai/dbx/responsibility.h"
#include "xai/dbx/tuple_shapley.h"
#include "xai/relational/expression.h"
#include "xai/relational/operators.h"
#include "xai/relational/relation.h"

int main(int argc, char** argv) {
  const bool show_telemetry = xai::telemetry::TelemetryFlag(argc, argv);

  using namespace xai;
  using namespace xai::rel;

  // A tiny order database. Order tuples are endogenous (the "facts" we may
  // question); the product catalog is exogenous (trusted).
  Relation orders("orders", {"customer", "product"});
  Relation products("products", {"product", "category"});
  TupleIdAllocator ids;

  struct OrderRow {
    const char* customer;
    int64_t product;
  };
  OrderRow rows[] = {{"ann", 0}, {"ann", 3}, {"bob", 1},
                     {"bob", 0},  {"cat", 4}, {"cat", 5}};
  std::vector<int> endogenous;
  for (const auto& r : rows) {
    int id = ids.Next();
    endogenous.push_back(id);
    XAI_CHECK(orders
                  .AppendBase({Value::Str(r.customer),
                               Value::Int(r.product)},
                              id)
                  .ok());
  }
  const char* categories[] = {"toys", "toys", "toys", "food", "food",
                              "food"};
  for (int p = 0; p < 6; ++p) {
    XAI_CHECK(products
                  .AppendBase({Value::Int(p), Value::Str(categories[p])},
                              ids.Next())
                  .ok());
  }
  std::printf("%s\n%s\n", orders.ToString(true).c_str(),
              products.ToString(true).c_str());

  // Query: which customers bought toys?
  //   SELECT DISTINCT customer FROM orders JOIN products USING(product)
  //   WHERE category = 'toys';
  auto joined = EquiJoin(orders, products, 1, 0).ValueOrDie();
  auto toys = Select(joined, Expr::Eq(Expr::Column(3),
                                      Expr::Const(Value::Str("toys"))))
                  .ValueOrDie();
  auto answer = Project(toys, {0}, /*distinct=*/true).ValueOrDie();
  std::printf("query answers with provenance polynomials:\n%s\n",
              answer.ToString(true).c_str());

  // Explain the answer "ann": which order tuples make it true, how much
  // does each contribute (Shapley), and what is each one's responsibility?
  for (int a = 0; a < answer.num_tuples(); ++a) {
    const auto& lineage = answer.annotation(a);
    std::printf("answer '%s':\n", answer.tuple(a)[0].AsString().c_str());
    std::printf("  lineage      : %s\n", lineage->ToString().c_str());
    std::printf("  why-provenance (minimal witnesses):");
    for (const auto& witness : lineage->WhyProvenance()) {
      std::printf(" {");
      bool first = true;
      for (int id : witness) {
        std::printf("%st%d", first ? "" : ",", id);
        first = false;
      }
      std::printf("}");
    }
    std::printf("\n");

    auto shapley =
        BooleanQueryTupleShapley(lineage, endogenous).ValueOrDie();
    auto responsibility =
        TupleResponsibility(lineage, endogenous).ValueOrDie();
    std::printf("  %8s %12s %16s\n", "tuple", "shapley", "responsibility");
    for (int id : endogenous) {
      if (shapley.values[id] == 0.0 &&
          responsibility.responsibility[id] == 0.0)
        continue;
      std::printf("  t%-7d %12.4f %16.4f\n", id, shapley.values[id],
                  responsibility.responsibility[id]);
    }
  }

  // --- Bonus: Shapley-guided repair of an inconsistent relation (§3 also
  // cites "Explanations for Data Repair Through Shapley Values").
  Relation addresses("addresses", {"zip", "city"});
  const char* cities[] = {"nyc", "nyc", "boston", "dc"};
  int64_t zips[] = {10001, 10001, 10001, 20002};
  for (int i = 0; i < 4; ++i)
    XAI_CHECK(addresses
                  .AppendBase({Value::Int(zips[i]), Value::Str(cities[i])},
                              i)
                  .ok());
  std::printf("\ninconsistent relation (FD zip -> city):\n%s",
              addresses.ToString().c_str());
  auto blame = RepairShapley(addresses, {0}, {1}).ValueOrDie();
  std::printf("inconsistency Shapley values:");
  for (const auto& [t, v] : blame) std::printf("  t%d=%.2f", t, v);
  auto repair = GreedyRepair(addresses, {0}, {1}).ValueOrDie();
  std::printf("\ngreedy repair deletes:");
  for (int t : repair) std::printf(" t%d", t);
  std::printf("\n");
  if (show_telemetry)
    std::printf("%s\n", xai::telemetry::SummaryLine().c_str());
  return 0;
}
