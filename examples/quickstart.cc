// Quickstart: train a gradient-boosted model on credit data and explain one
// of its predictions with TreeSHAP, LIME and an Anchors-style view of the
// features (see README.md).
//
//   ./quickstart

#include <cstdio>
#include "xai/core/telemetry.h"

#include "xai/data/synthetic.h"
#include "xai/explain/global_importance.h"
#include "xai/explain/lime.h"
#include "xai/explain/shapley/tree_shap.h"
#include "xai/model/gbdt.h"
#include "xai/model/metrics.h"
#include "xai/model/serialization.h"
#include "xai/serve/explain_server.h"

int main(int argc, char** argv) {
  const bool show_telemetry = xai::telemetry::TelemetryFlag(argc, argv);

  using namespace xai;

  // 1. Data: a synthetic credit-lending dataset (schema mirrors the
  //    tutorial's running example; see MakeLoans docs for the mechanism).
  Dataset data = MakeLoans(2000, /*seed=*/42);
  auto [train, test] = data.TrainTestSplit(0.25, /*seed=*/1);

  // 2. Model: a 100-tree GBDT.
  GbdtModel::Config config;
  config.n_trees = 100;
  GbdtModel model = GbdtModel::Train(train, config).ValueOrDie();
  std::printf("model: %s, test accuracy %.3f, test AUC %.3f\n\n",
              model.name().c_str(), EvaluateAccuracy(model, test),
              EvaluateAuc(model, test));

  // 3. Pick an applicant and explain the model's decision.
  Vector applicant = test.Row(0);
  std::printf("applicant:\n");
  for (int j = 0; j < test.num_features(); ++j)
    std::printf("  %-18s %s\n",
                test.schema().features[j].name.c_str(),
                test.RenderValue(j, applicant[j]).c_str());
  std::printf("predicted approval probability: %.3f\n\n",
              model.Predict(applicant));

  // 4a. TreeSHAP: exact per-feature attributions of the margin, in
  //     milliseconds, using the tree structure (no model queries).
  TreeEnsembleView view = TreeEnsembleView::Of(model);
  AttributionExplanation shap = TreeShap(view, applicant);
  shap.feature_names.clear();
  for (const auto& f : test.schema().features)
    shap.feature_names.push_back(f.name);
  std::printf("TreeSHAP attributions (log-odds margin):\n%s\n",
              shap.ToString().c_str());

  // 4b. LIME: a local weighted-ridge surrogate over perturbations.
  LimeExplainer lime(train);
  LimeExplanation lime_exp =
      lime.Explain(AsPredictFn(model), applicant, /*seed=*/7).ValueOrDie();
  lime_exp.feature_names = shap.feature_names;
  std::printf("LIME attributions (local surrogate, R^2 = %.3f):\n%s\n",
              lime_exp.local_r2, lime_exp.ToString().c_str());

  // 5. Global view: aggregate TreeSHAP over the test set ("combine local
  //    explanations to get a global understanding", TreeSHAP paper).
  Vector global = GlobalShapImportance(view, test, 150);
  std::printf("global mean |SHAP| importance:\n%s\n",
              ImportanceToString(global, test.schema()).c_str());

  std::printf(
      "All explainers should surface credit_score / debt_to_income /\n"
      "has_default as the drivers -- the features the generator actually\n"
      "uses -- and gender (not in the mechanism) near zero.\n\n");

  // 6. Serving: the same model published as an online explanation service.
  //    The registry fingerprints the snapshot, repeated requests hit the
  //    sharded cache, and a tight deadline degrades to a cheaper fidelity
  //    tier instead of blowing the latency budget.
  serve::ExplainServer server;
  server.registry()
      .Register("credit", SerializeModel(model),
                MakeLoans(64, /*seed=*/43))  // SHAP background sample
      .ValueOrDie();

  serve::ExplainRequest request;
  request.model = "credit";
  request.instance = applicant;
  request.kind = serve::ExplainerKind::kKernelShap;
  request.fidelity = serve::FidelityTier::kStandard;
  auto cold = server.Explain(request).ValueOrDie();
  auto warm = server.Explain(request).ValueOrDie();
  std::printf("served KernelSHAP: cold %.2f ms, repeat %.3f ms (%s)\n",
              cold.latency_ms, warm.latency_ms,
              warm.cache_hit ? "cache hit" : "cache miss");

  request.deadline_ms = 10.0;  // Interactive budget: degrade, don't miss.
  request.use_cache = false;
  auto rushed = server.Explain(request).ValueOrDie();
  std::printf("with a 10 ms deadline: served tier '%s'%s in %.2f ms "
              "(deadline %s)\n",
              serve::FidelityTierName(rushed.served_tier),
              rushed.degraded ? " (degraded)" : "", rushed.latency_ms,
              rushed.deadline_met ? "met" : "MISSED");
  if (show_telemetry)
    std::printf("%s\n", xai::telemetry::SummaryLine().c_str());
  return 0;
}
