// Counterfactual explanations and algorithmic recourse (§2.1.4) for a
// rejected loan applicant:
//  - GeCo-style genetic search under feasibility constraints,
//  - DiCE-style diverse counterfactual set,
//  - a minimal-cost flipset for the (interpretable) logistic model.
//
//   ./loan_recourse

#include <cstdio>
#include "xai/core/telemetry.h"

#include "xai/data/synthetic.h"
#include "xai/explain/counterfactual/counterfactual.h"
#include "xai/explain/counterfactual/dice.h"
#include "xai/explain/counterfactual/geco.h"
#include "xai/explain/counterfactual/recourse.h"
#include "xai/explain/explanation.h"
#include "xai/model/logistic_regression.h"

namespace {

void PrintChanges(const xai::Dataset& data, const xai::Vector& from,
                  const xai::Vector& to) {
  for (int j = 0; j < data.num_features(); ++j) {
    if (from[j] == to[j]) continue;
    std::printf("    %-18s %s -> %s\n",
                data.schema().features[j].name.c_str(),
                data.RenderValue(j, from[j]).c_str(),
                data.RenderValue(j, to[j]).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool show_telemetry = xai::telemetry::TelemetryFlag(argc, argv);

  using namespace xai;

  Dataset train = MakeLoans(2000, 3);
  auto model = LogisticRegressionModel::Train(train).ValueOrDie();

  // Find a clearly rejected applicant.
  int rejected = -1;
  for (int i = 0; i < train.num_rows(); ++i) {
    if (model.Predict(train.Row(i)) < 0.3) {
      rejected = i;
      break;
    }
  }
  Vector applicant = train.Row(rejected);
  std::printf("rejected applicant (P(approve) = %.3f):\n",
              model.Predict(applicant));
  for (int j = 0; j < train.num_features(); ++j)
    std::printf("  %-18s %s\n", train.schema().features[j].name.c_str(),
                train.RenderCell(rejected, j).c_str());

  // Feasibility: gender and age are immutable; default history can only be
  // cleared, not acquired, etc.
  CounterfactualEvaluator eval(train);
  ActionabilitySpec spec = ActionabilitySpec::AllFree(train);
  spec.immutable[train.schema().FeatureIndex("gender")] = true;
  spec.immutable[train.schema().FeatureIndex("age")] = true;

  std::printf("\n== GeCo: cheapest feasible counterfactual ==\n");
  GecoResult geco = GecoCounterfactual(AsPredictFn(model), applicant, 1,
                                       eval, spec, {}, {})
                        .ValueOrDie();
  if (geco.found) {
    std::printf("  found in %d generations, %d model calls; new P = %.3f\n",
                geco.generations, geco.model_calls,
                geco.best.prediction);
    PrintChanges(train, applicant, geco.best.x);
  }

  std::printf("\n== DiCE: a diverse set of options ==\n");
  Rng rng(11);
  DiceConfig dice_config;
  dice_config.k = 3;
  DiceResult dice = DiceCounterfactuals(AsPredictFn(model), applicant, 1,
                                        eval, spec, dice_config, &rng)
                        .ValueOrDie();
  for (size_t c = 0; c < dice.counterfactuals.size(); ++c) {
    std::printf("  option %zu (P = %.3f, %d feature(s) changed):\n", c + 1,
                dice.counterfactuals[c].prediction,
                dice.counterfactuals[c].sparsity);
    PrintChanges(train, applicant, dice.counterfactuals[c].x);
  }

  std::printf("\n== Actionable recourse (Ustun-style flipset) ==\n");
  Flipset flipset =
      LinearRecourse(model, applicant, spec,
                     MedianAbsoluteDeviation(train.x()))
          .ValueOrDie();
  std::printf("%s", flipset.ToString(train.schema()).c_str());
  if (show_telemetry)
    std::printf("%s\n", xai::telemetry::SummaryLine().c_str());
  return 0;
}
