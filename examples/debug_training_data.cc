// Training-data debugging (§2.3 + §3): find mislabeled training points with
// data valuation and influence functions, then unlearn them incrementally.
//
//   ./debug_training_data

#include <algorithm>
#include <cstdio>
#include "xai/core/telemetry.h"

#include "xai/core/stats.h"
#include "xai/data/synthetic.h"
#include "xai/influence/influence_function.h"
#include "xai/model/logistic_regression.h"
#include "xai/model/metrics.h"
#include "xai/unlearn/incremental_logistic.h"
#include "xai/valuation/knn_shapley.h"

int main(int argc, char** argv) {
  const bool show_telemetry = xai::telemetry::TelemetryFlag(argc, argv);

  using namespace xai;

  // A clean dataset whose labels we partially corrupt — the ground truth a
  // practitioner never has.
  Dataset pool = MakeBlobs(600, 4, 2, 0.8, 5);
  auto [train, valid] = pool.TrainTestSplit(0.3, 6);
  std::vector<int> corrupted = FlipBinaryLabels(&train, 0.12, 7);
  std::printf("injected %zu flipped labels into %d training rows\n",
              corrupted.size(), train.num_rows());

  LogisticRegressionConfig config;
  config.l2 = 1e-3;
  auto model = LogisticRegressionModel::Train(train, config).ValueOrDie();
  std::printf("validation accuracy with corrupted data: %.3f\n\n",
              EvaluateAccuracy(model, valid));

  // --- Step 1: rank training points by KNN-Shapley value (exact, fast).
  Vector values = KnnShapley(train, valid, 5).ValueOrDie();
  std::vector<int> suspects = ArgSortAscending(values);
  int k = static_cast<int>(corrupted.size());
  int hits = 0;
  for (int rank = 0; rank < k; ++rank)
    if (std::find(corrupted.begin(), corrupted.end(), suspects[rank]) !=
        corrupted.end())
      ++hits;
  std::printf("KNN-Shapley: %d of the %d lowest-valued points are truly "
              "corrupted (precision %.2f)\n",
              hits, k, static_cast<double>(hits) / k);

  // --- Step 2: cross-check the top suspects with influence functions.
  auto influence =
      LogisticInfluence::Make(model, train.x(), train.y()).ValueOrDie();
  // Influence of each training point on total validation loss.
  Vector total_influence(train.num_rows(), 0.0);
  for (int v = 0; v < valid.num_rows(); v += 4) {
    Vector inf =
        influence.InfluenceOnLossAll(valid.Row(v), valid.Label(v))
            .ValueOrDie();
    for (int i = 0; i < train.num_rows(); ++i) total_influence[i] += inf[i];
  }
  // Harmful points: removing them would *decrease* validation loss, i.e.
  // negative influence-on-loss-of-removal means beneficial; we want the
  // points whose removal reduces loss the most.
  std::vector<int> influence_rank = ArgSortDescending(total_influence);
  int agree = 0;
  for (int rank = 0; rank < k; ++rank)
    if (std::find(corrupted.begin(), corrupted.end(),
                  influence_rank[rank]) != corrupted.end())
      ++agree;
  std::printf("influence functions: %d of top-%d harmful points are truly "
              "corrupted (precision %.2f)\n\n",
              agree, k, static_cast<double>(agree) / k);

  // --- Step 3: unlearn the suspects (union of both top lists) without a
  // full retrain, using cached-aggregate Newton correction.
  std::vector<int> to_remove(suspects.begin(), suspects.begin() + k);
  auto maintained =
      MaintainedLogisticRegression::Fit(train.x(), train.y(), config)
          .ValueOrDie();
  XAI_CHECK(maintained.RemoveRows(to_remove, /*refine_full_iters=*/2).ok());
  auto repaired = maintained.CurrentModel();
  std::printf("validation accuracy after unlearning %d suspects: %.3f\n",
              k, EvaluateAccuracy(repaired, valid));
  if (show_telemetry)
    std::printf("%s\n", xai::telemetry::SummaryLine().c_str());
  return 0;
}
