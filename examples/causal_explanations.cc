// Causal explanations (§2.1.3-2.1.4): causal Shapley values, Shapley flow
// and LEWIS-style probabilistic contrastive counterfactuals over a
// structural causal model of the lending domain.
//
//   ./causal_explanations

#include <cstdio>
#include "xai/core/telemetry.h"

#include "xai/causal/scm.h"
#include "xai/explain/counterfactual/lewis.h"
#include "xai/explain/shapley/asymmetric_shapley.h"
#include "xai/explain/shapley/causal_shapley.h"
#include "xai/explain/shapley/shapley_flow.h"

int main(int argc, char** argv) {
  const bool show_telemetry = xai::telemetry::TelemetryFlag(argc, argv);

  using namespace xai;

  // A small causal story: education -> income -> savings; the bank's score
  // reads income and savings only.
  Dag dag({"education", "income", "savings"});
  XAI_CHECK(dag.AddEdge("education", "income").ok());
  XAI_CHECK(dag.AddEdge("income", "savings").ok());
  LinearScm scm(std::move(dag));
  XAI_CHECK(scm.SetWeight("education", "income", 1.2).ok());
  XAI_CHECK(scm.SetWeight("income", "savings", 0.8).ok());
  scm.SetNoiseStdDev(1, 0.5);
  scm.SetNoiseStdDev(2, 0.5);

  PredictFn score = [](const Vector& x) { return 0.6 * x[1] + 0.4 * x[2]; };
  Vector person = {1.5, 1.8, 1.44};  // A consistent high-education world.

  std::printf("bank score(person) = %.3f\n\n", score(person));

  std::printf("== causal Shapley values ==\n");
  auto causal = CausalShapley(scm, score, person).ValueOrDie();
  for (size_t j = 0; j < causal.attributions.size(); ++j)
    std::printf("  %-12s %+.4f\n", causal.feature_names[j].c_str(),
                causal.attributions[j]);
  std::printf("  (education is credited although the model never reads "
              "it: its effect flows through income)\n\n");

  std::printf("== asymmetric Shapley values (causal order enforced) ==\n");
  InterventionalScmGame game(&scm, score, person, 3000, 1);
  Vector asym = ExactAsymmetricShapley(game, scm.dag()).ValueOrDie();
  for (int j = 0; j < 3; ++j)
    std::printf("  %-12s %+.4f\n", scm.dag().name(j).c_str(), asym[j]);
  std::printf("\n");

  std::printf("== Shapley flow (credit on causal edges) ==\n");
  Rng rng(2);
  auto flow =
      ShapleyFlow(scm, score, person, {0.0, 0.0, 0.0}, 50, &rng)
          .ValueOrDie();
  for (size_t e = 0; e < flow.edges.size(); ++e)
    std::printf("  %-24s %+.4f\n", flow.EdgeLabel(scm.dag(), e).c_str(),
                flow.edges[e].credit);
  std::printf("\n");

  std::printf("== LEWIS-style contrastive scores for education ==\n");
  PredictFn approve = [&score](const Vector& x) {
    return score(x) > 1.0 ? 1.0 : 0.0;
  };
  LewisExplainer lewis(&scm, approve);
  Rng lewis_rng(3);
  auto scores =
      lewis.AttributeScores(/*feature=*/0, /*hi=*/1.5, /*lo=*/-1.5, 20000,
                            &lewis_rng)
          .ValueOrDie();
  std::printf("  necessity   = %.3f  (P(denied had education been low | "
              "high education, approved))\n",
              scores.necessity);
  std::printf("  sufficiency = %.3f  (P(approved had education been high "
              "| low education, denied))\n",
              scores.sufficiency);
  std::printf("  nesuf       = %.3f\n\n", scores.nesuf);

  std::printf("== LEWIS counterfactual recourse for a denied person ==\n");
  Vector denied = {-1.0, -1.0, -1.1};
  std::printf("score(denied) = %.3f\n", score(denied));
  auto actions = lewis.CounterfactualRecourse(
                          denied,
                          {{0, {0.5, 1.5}}, {1, {1.0, 2.0}}},
                          /*max_features=*/1, {1.0, 1.0, 1.0})
                     .ValueOrDie();
  for (size_t a = 0; a < actions.size() && a < 3; ++a) {
    std::printf("  option %zu (cost %.2f):", a + 1, actions[a].cost);
    for (const auto& [j, v] : actions[a].interventions)
      std::printf(" set %s = %.2f", scm.dag().name(j).c_str(), v);
    std::printf(" -> downstream world gives score %.3f\n",
                score(actions[a].counterfactual_world));
  }
  if (show_telemetry)
    std::printf("%s\n", xai::telemetry::SummaryLine().c_str());
  return 0;
}
